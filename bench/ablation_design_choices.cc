// Ablation study of the design choices DESIGN.md §5 calls out, all on the
// Jester L∞ workload at N = 500:
//  1. drift-weighted g_i vs uniform Bernoulli sampling (paper §6.5);
//  2. number of sampling trials M (1 / Lemma-2(c) auto / 4);
//  3. partial synchronization vs always-full on alarm;
//  4. adaptive re-anchoring threshold (this implementation's addition);
//  5. CVSGM safe-zone radius shrink factor.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "functions/linf_distance.h"
#include "gm/cvsgm.h"
#include "gm/sgm.h"

namespace sgm {
namespace {

RunResult RunSgm(const MonitoredFunction& f, double threshold,
                 const SgmOptions& options, long cycles) {
  auto source = bench::JesterFactory(500)();
  SamplingGeometricMonitor sgm(f, threshold, source->max_step_norm(), options);
  sgm.set_drift_norm_cap(source->max_drift_norm());
  return Simulate(source.get(), &sgm, cycles);
}

RunResult RunCvsgm(const MonitoredFunction& f, double threshold,
                   const CvsgmOptions& options, long cycles) {
  auto source = bench::JesterFactory(500)();
  CvSamplingMonitor cvsgm(f, threshold, source->max_step_norm(), options);
  cvsgm.set_drift_norm_cap(source->max_drift_norm());
  return Simulate(source.get(), &cvsgm, cycles);
}

void AddRow(TablePrinter* table, const std::string& label,
            const RunResult& r) {
  table->AddRow({label, TablePrinter::Int(r.metrics.total_messages()),
                 TablePrinter::Int(r.metrics.full_syncs()),
                 TablePrinter::Int(r.metrics.partial_resolutions() +
                                   r.metrics.one_d_resolutions()),
                 TablePrinter::Int(r.metrics.false_positives()),
                 TablePrinter::Int(r.metrics.false_negative_cycles())});
}

void Run() {
  const long cycles = bench::JesterCycles();
  const LInfDistance linf{Vector(bench::JesterDim())};
  const double threshold = 10.0;

  PrintBanner("Ablation", "Jester Linf, N = 500, T = 10, delta = 0.1");
  TablePrinter table({"configuration", "messages", "full syncs",
                      "cheap resolutions", "FPs", "FN cycles"});

  {
    SgmOptions base;
    AddRow(&table, "SGM (paper defaults)", RunSgm(linf, threshold, base,
                                                  cycles));
  }
  {
    SgmOptions o;
    o.mode = SamplingMode::kUniform;
    AddRow(&table, "1. uniform (Bernoulli) sampling",
           RunSgm(linf, threshold, o, cycles));
  }
  {
    SgmOptions o;
    o.num_trials = 0;
    AddRow(&table, "2a. M = auto (Lemma 2c)", RunSgm(linf, threshold, o,
                                                     cycles));
    o.num_trials = 4;
    AddRow(&table, "2b. M = 4", RunSgm(linf, threshold, o, cycles));
  }
  {
    SgmOptions o;
    o.always_full_sync = true;
    AddRow(&table, "3. no partial sync (full on alarm)",
           RunSgm(linf, threshold, o, cycles));
  }
  {
    SgmOptions o;
    o.escalate_after_consecutive_alarms = 0;
    AddRow(&table, "4a. no adaptive re-anchor", RunSgm(linf, threshold, o,
                                                       cycles));
    o.escalate_after_consecutive_alarms = 2;
    AddRow(&table, "4b. re-anchor after 2", RunSgm(linf, threshold, o,
                                                   cycles));
    o.escalate_after_consecutive_alarms = 20;
    AddRow(&table, "4c. re-anchor after 20", RunSgm(linf, threshold, o,
                                                    cycles));
  }
  for (double shrink : {1.0, 0.7, 0.4}) {
    CvsgmOptions o;
    o.cv.zone_shrink = shrink;
    char label[48];
    std::snprintf(label, sizeof(label), "5. CVSGM zone shrink %.1f", shrink);
    AddRow(&table, label, RunCvsgm(linf, threshold, o, cycles));
  }
  table.Print();
  std::printf("\nReading guide: drift weighting and the partial sync are "
              "load-bearing (rows 1 and 3 cost more); extra trials are "
              "cheap (Lemma 2c); re-anchoring trades messages against "
              "alarm-storm latency; shrinking the safe zone raises alarm "
              "pressure.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
