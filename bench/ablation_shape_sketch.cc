// Two extension studies beyond the paper's evaluation grid:
//
//  A. Shape-sensitive (whitened) monitoring [21]: on an anisotropic
//     workload — a quiet signal coordinate plus a loud irrelevant one —
//     whitening collapses GM's false-positive rate, and composes with SGM.
//
//  B. Sketch-based monitoring [12]: sites summarize item streams with
//     shared-seed AMS sketches; the protocols track the self-join size of
//     the sketched global stream, detecting a concentration change (e.g. a
//     traffic hot-spot forming) at a fraction of GM's cost.

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/rng.h"
#include "data/stream.h"
#include "data/whitened_stream.h"
#include "functions/linear.h"
#include "functions/whitened_function.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/experiment.h"
#include "sim/network.h"
#include "sketch/ams_sketch.h"
#include "sketch/sketch_functions.h"

namespace sgm {
namespace {

// ------------------------------------------------------------- part A ----

class AnisoSource final : public StreamSource {
 public:
  AnisoSource(int num_sites, std::uint64_t seed)
      : num_sites_(num_sites), rng_(seed), state_(num_sites, Vector(2)) {}

  std::string name() const override { return "aniso"; }
  int num_sites() const override { return num_sites_; }
  std::size_t dim() const override { return 2; }
  void Advance(std::vector<Vector>* locals) override {
    locals->resize(num_sites_);
    for (int i = 0; i < num_sites_; ++i) {
      state_[i][0] += 0.01 * rng_.NextGaussian();
      state_[i][1] = 3.0 * rng_.NextGaussian();
      (*locals)[i] = state_[i];
    }
  }
  double max_step_norm() const override { return 20.0; }

 private:
  int num_sites_;
  Rng rng_;
  std::vector<Vector> state_;
};

void RunShapeStudy() {
  PrintBanner("Ablation A: shape-sensitive monitoring",
              "linear signal coord + loud irrelevant coord, N = 60, T = 1");
  const long cycles = ScaledCycles(800);
  const int n = 60;
  const double threshold = 1.0;
  const LinearFunction f(Vector{1.0, 0.0});

  TablePrinter table({"configuration", "messages", "FPs", "FN cycles"});
  {
    AnisoSource source(n, 8);
    GeometricMonitor gm(f, threshold, source.max_step_norm());
    const RunResult r = Simulate(&source, &gm, cycles);
    table.AddRow({"GM", TablePrinter::Int(r.metrics.total_messages()),
                  TablePrinter::Int(r.metrics.false_positives()),
                  TablePrinter::Int(r.metrics.false_negative_cycles())});
  }
  {
    AnisoSource source(n, 8);
    SgmOptions options;
    SamplingGeometricMonitor sgm(f, threshold, source.max_step_norm(),
                                 options);
    const RunResult r = Simulate(&source, &sgm, cycles);
    table.AddRow({"SGM", TablePrinter::Int(r.metrics.total_messages()),
                  TablePrinter::Int(r.metrics.false_positives()),
                  TablePrinter::Int(r.metrics.false_negative_cycles())});
  }
  Vector scales;
  {
    AnisoSource calibration(n, 8);
    scales = WhitenedStream::EstimateScales(&calibration, 100);
  }
  {
    AnisoSource inner(n, 8);
    WhitenedStream source(&inner, scales);
    const WhitenedFunction wf(
        std::make_unique<LinearFunction>(Vector{1.0, 0.0}), scales);
    GeometricMonitor gm(wf, threshold, source.max_step_norm());
    const RunResult r = Simulate(&source, &gm, cycles);
    table.AddRow({"GM + whitening",
                  TablePrinter::Int(r.metrics.total_messages()),
                  TablePrinter::Int(r.metrics.false_positives()),
                  TablePrinter::Int(r.metrics.false_negative_cycles())});
  }
  {
    AnisoSource inner(n, 8);
    WhitenedStream source(&inner, scales);
    const WhitenedFunction wf(
        std::make_unique<LinearFunction>(Vector{1.0, 0.0}), scales);
    SgmOptions options;
    SamplingGeometricMonitor sgm(wf, threshold, source.max_step_norm(),
                                 options);
    const RunResult r = Simulate(&source, &sgm, cycles);
    table.AddRow({"SGM + whitening",
                  TablePrinter::Int(r.metrics.total_messages()),
                  TablePrinter::Int(r.metrics.false_positives()),
                  TablePrinter::Int(r.metrics.false_negative_cycles())});
  }
  table.Print();
  std::printf("\nExpected: whitening removes nearly every FP for both "
              "protocols (the loud coordinate stops inflating the "
              "constraints), and composes with SGM.\n");
}

// ------------------------------------------------------------- part B ----

/// Sites sketch a shared item stream (uniform over 50 items, then a 30 %
/// hot item from mid-run); local vectors are the sketch counters.
class SketchStreamSource final : public StreamSource {
 public:
  SketchStreamSource(int num_sites, int depth, int width, long shift_cycle,
                     std::uint64_t seed)
      : num_sites_(num_sites), shift_cycle_(shift_cycle), rng_(seed) {
    for (int i = 0; i < num_sites; ++i) {
      sketches_.emplace_back(depth, width, /*shared seed=*/42);
    }
  }

  std::string name() const override { return "sketched_items"; }
  int num_sites() const override { return num_sites_; }
  std::size_t dim() const override {
    return sketches_.front().counters().dim();
  }
  void Advance(std::vector<Vector>* locals) override {
    ++cycle_;
    locals->resize(num_sites_);
    for (int i = 0; i < num_sites_; ++i) {
      std::uint64_t item = rng_.NextBounded(50);
      if (cycle_ > shift_cycle_ && rng_.NextBernoulli(0.3)) item = 7;
      sketches_[i].Update(item);
      (*locals)[i] = sketches_[i].counters();
    }
  }
  // One ±1 update per row per cycle.
  double max_step_norm() const override {
    return std::sqrt(static_cast<double>(sketches_.front().depth()));
  }

 private:
  int num_sites_;
  long shift_cycle_;
  Rng rng_;
  std::vector<AmsSketch> sketches_;
  long cycle_ = 0;
};

void RunSketchStudy() {
  const int depth = 5, width = 64, n = 100;
  const long cycles = ScaledCycles(1200);
  const long shift = cycles / 2;
  // F2 of the averaged sketch of a uniform 50-item stream of length t is
  // ≈ t²/50; the post-shift hot item roughly doubles it. Threshold midway.
  const double threshold =
      1.6 * static_cast<double>(cycles) * static_cast<double>(cycles) / 50.0;

  PrintBanner("Ablation B: sketch-based self-join monitoring",
              "AMS 5x64, 100 sites, hot item appears mid-run");
  const SketchSelfJoin f(depth, width);
  TablePrinter table({"protocol", "messages", "full syncs", "detected",
                      "FN cycles"});
  for (bool sampling : {false, true}) {
    SketchStreamSource source(n, depth, width, shift, 2026);
    std::unique_ptr<ProtocolBase> protocol;
    if (sampling) {
      SgmOptions options;
      protocol = std::make_unique<SamplingGeometricMonitor>(
          f, threshold, source.max_step_norm(), options);
    } else {
      protocol = std::make_unique<GeometricMonitor>(f, threshold,
                                                    source.max_step_norm());
    }
    const RunResult r = Simulate(&source, protocol.get(), cycles);
    table.AddRow({sampling ? "SGM" : "GM",
                  TablePrinter::Int(r.metrics.total_messages()),
                  TablePrinter::Int(r.metrics.full_syncs()),
                  protocol->BelievesAbove() ? "yes" : "no",
                  TablePrinter::Int(r.metrics.false_negative_cycles())});
  }
  table.Print();
  std::printf("\nExpected: both detect the concentration change (final "
              "belief 'yes'); SGM with fewer messages.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::RunShapeStudy();
  sgm::RunSketchStudy();
  return 0;
}
