#ifndef SGM_BENCH_BENCH_UTIL_H_
#define SGM_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "data/jester_like.h"
#include "data/reuters_like.h"
#include "data/stream.h"
#include "functions/monitored_function.h"
#include "gm/bernoulli_gm.h"
#include "gm/bgm.h"
#include "gm/cvgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/pgm.h"
#include "gm/sgm.h"
#include "sim/experiment.h"
#include "sim/network.h"

namespace sgm {
namespace bench {

/// Protocols the experiment drivers can instantiate by name.
enum class ProtocolKind { kGm, kBgm, kPgm, kSgm, kMsgm, kBernoulli, kCvgm,
                          kCvsgm };

inline const char* KindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kGm: return "GM";
    case ProtocolKind::kBgm: return "BGM";
    case ProtocolKind::kPgm: return "PGM";
    case ProtocolKind::kSgm: return "SGM";
    case ProtocolKind::kMsgm: return "M-SGM";
    case ProtocolKind::kBernoulli: return "Bernoulli";
    case ProtocolKind::kCvgm: return "CVGM";
    case ProtocolKind::kCvsgm: return "CVSGM";
  }
  return "?";
}

/// Builds a protocol with the drift-cap wired from the stream source.
inline std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind,
                                              const MonitoredFunction& f,
                                              double threshold,
                                              const StreamSource& source,
                                              double delta = 0.1) {
  const double step = source.max_step_norm();
  std::unique_ptr<ProtocolBase> protocol;
  switch (kind) {
    case ProtocolKind::kGm:
      protocol = std::make_unique<GeometricMonitor>(f, threshold, step);
      break;
    case ProtocolKind::kBgm:
      protocol = std::make_unique<BalancedGeometricMonitor>(f, threshold, step);
      break;
    case ProtocolKind::kPgm:
      protocol =
          std::make_unique<PredictionGeometricMonitor>(f, threshold, step);
      break;
    case ProtocolKind::kSgm: {
      SgmOptions options;
      options.delta = delta;
      protocol = std::make_unique<SamplingGeometricMonitor>(f, threshold, step,
                                                            options);
      break;
    }
    case ProtocolKind::kMsgm: {
      SgmOptions options;
      options.delta = delta;
      options.num_trials = 0;  // Lemma 2(c) auto
      protocol = std::make_unique<SamplingGeometricMonitor>(f, threshold, step,
                                                            options);
      break;
    }
    case ProtocolKind::kBernoulli:
      protocol = MakeBernoulliMonitor(f, threshold, step, delta);
      break;
    case ProtocolKind::kCvgm:
      protocol = std::make_unique<ConvexSafeZoneMonitor>(f, threshold, step);
      break;
    case ProtocolKind::kCvsgm: {
      CvsgmOptions options;
      options.delta = delta;
      protocol =
          std::make_unique<CvSamplingMonitor>(f, threshold, step, options);
      break;
    }
  }
  protocol->set_drift_norm_cap(source.max_drift_norm());
  return protocol;
}

/// Runs `kind` on a fresh source from `make_source` for `cycles` cycles.
inline RunResult RunOne(ProtocolKind kind,
                        const std::function<std::unique_ptr<StreamSource>()>&
                            make_source,
                        const MonitoredFunction& f, double threshold,
                        long cycles, double delta = 0.1) {
  auto source = make_source();
  auto protocol = MakeProtocol(kind, f, threshold, *source, delta);
  return Simulate(source.get(), protocol.get(), cycles);
}

/// Standard workload factories (paper Section 6 data sets).
inline std::function<std::unique_ptr<StreamSource>()> JesterFactory(
    int num_sites, std::uint64_t seed = 11) {
  return [num_sites, seed]() -> std::unique_ptr<StreamSource> {
    JesterLikeConfig config;
    config.num_sites = num_sites;
    config.seed = seed;
    return std::make_unique<JesterLikeGenerator>(config);
  };
}

inline std::function<std::unique_ptr<StreamSource>()> ReutersFactory(
    int num_sites, std::uint64_t seed = 7) {
  return [num_sites, seed]() -> std::unique_ptr<StreamSource> {
    ReutersLikeConfig config;
    config.num_sites = num_sites;
    config.seed = seed;
    return std::make_unique<ReutersLikeGenerator>(config);
  };
}

/// Default stream lengths (paper: ~8000 Reuters and ~4850 Jester updates per
/// site; scaled down for the default quick run, SGM_BENCH_SCALE raises them).
inline long ReutersCycles() { return ScaledCycles(2000); }
inline long JesterCycles() { return ScaledCycles(1500); }

/// Number of buckets of the Jester histograms (dimension d of its vectors).
inline std::size_t JesterDim() { return JesterLikeConfig{}.num_buckets; }

/// Reuters window length (χ² contingency total).
inline double ReutersWindow() {
  return static_cast<double>(ReutersLikeConfig{}.window);
}

}  // namespace bench
}  // namespace sgm

#endif  // SGM_BENCH_BENCH_UTIL_H_
