// Example 3's parameter table: ε, the range of g_i and the expected-sample
// bound ln(1/δ)·√N for the paper's (δ, N) grid with U = 17.3 (= √3 · 10
// update cycles of the running example).

#include <cstdio>
#include <cmath>

#include "estimators/sampling.h"
#include "estimators/tail_bounds.h"
#include "sim/experiment.h"

namespace sgm {
namespace {

void Run() {
  PrintBanner("Example 3 table",
              "delta | N | sqrt(N) | g_i range | epsilon | ln(1/d)*sqrt(N)");
  const double U = 17.3;
  TablePrinter table({"delta", "N", "sqrt(N)", "g_i in", "epsilon",
                      "ln(1/d)sqrt(N)"});
  const double deltas[] = {0.1, 0.1, 0.05, 0.05};
  const int sites[] = {100, 961, 100, 961};
  for (int row = 0; row < 4; ++row) {
    const double g_max =
        SamplingProbability(deltas[row], U, sites[row], /*drift=*/U);
    char range[48];
    std::snprintf(range, sizeof(range), "[0, %.3g]", g_max);
    table.AddRow({TablePrinter::Num(deltas[row]), TablePrinter::Int(sites[row]),
                  TablePrinter::Num(std::sqrt(double(sites[row]))), range,
                  TablePrinter::Num(BernsteinEpsilon(deltas[row], U)),
                  TablePrinter::Num(
                      ExpectedSampleBound(deltas[row], sites[row]))});
  }
  table.Print();
  std::printf("\nPaper values: g ranges [0,0.23]/[0,0.074]/[0,0.3]/[0,0.097], "
              "epsilon 9.5/9.5/7.89/7.89, bounds 24/72/30/93.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
