// Figure 2 (quantified): the effect of network scale on the monitored area.
// Drift vectors are drawn uniformly from the unit cube (d = 3, as in the
// paper's illustration); we report the Monte-Carlo fraction of the cube
// covered by Conv(Δv_1, ..., Δv_N) and by the union of the GM local balls
// B(Δv_i/2, ‖Δv_i‖/2). Both must grow toward full coverage as N rises —
// the geometric root of GM's false-positive explosion (Section 1.2).

#include <cstdio>
#include <memory>

#include "core/rng.h"
#include "geometry/ball.h"
#include "geometry/volume.h"
#include "sim/experiment.h"

namespace sgm {
namespace {

void Run() {
  PrintBanner("Figure 2", "Monitored-region coverage of the unit cube vs N "
                          "(d = 3, drifts uniform in the cube)");
  TablePrinter table({"N", "hull coverage", "ball-union coverage"});

  Rng rng(2026);
  const BoxDomain cube{3, 0.0, 1.0};
  const int ball_samples = 20000;
  const int hull_samples = 1500;

  for (int n : {5, 10, 25, 50, 100, 500, 1000}) {
    std::vector<Vector> drifts;
    std::vector<Ball> balls;
    const Vector origin(3);
    for (int i = 0; i < n; ++i) {
      drifts.push_back(SampleBox(cube, &rng));
      balls.push_back(Ball::LocalConstraint(origin, drifts.back()));
    }
    Rng mc1(17), mc2(17);
    const double hull =
        n <= 100 ? ConvexHullCoverage(drifts, cube, hull_samples, &mc1) : -1.0;
    const double union_cov = UnionOfBallsCoverage(balls, cube, ball_samples,
                                                  &mc2);
    table.AddRow({TablePrinter::Int(n),
                  hull >= 0.0 ? TablePrinter::Num(hull) : "(skipped)",
                  TablePrinter::Num(union_cov)});
  }
  table.Print();
  std::printf("\nExpected shape: both columns increase monotonically toward "
              "1.0 with N.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
