// Figure 3 + Table 2: the number of sampling trials M of Lemma 2(c) versus
// network scale for different δ, and the residual probability of failing to
// track at least one instance of Estimator 1.

#include <cstdio>

#include "estimators/sampling.h"
#include "sim/experiment.h"

namespace sgm {
namespace {

void Run() {
  PrintBanner("Figure 3", "M versus N for various values of delta");
  {
    TablePrinter table({"N", "M(d=0.05)", "M(d=0.1)", "M(d=0.2)"});
    for (int n : {50, 100, 200, 500, 1000, 2000, 5000, 10000}) {
      table.AddRow({TablePrinter::Int(n),
                    TablePrinter::Int(NumTrials(0.05, n)),
                    TablePrinter::Int(NumTrials(0.1, n)),
                    TablePrinter::Int(NumTrials(0.2, n))});
    }
    table.Print();
  }

  PrintBanner("Table 2", "Practical values of M and tracking-failure "
                         "probability (paper rows)");
  {
    TablePrinter table({"delta", "N", "M", "P(fail tracking)"});
    const double deltas[] = {0.05, 0.05, 0.05, 0.1, 0.1, 0.1, 0.2, 0.2, 0.2};
    const int sites[] = {100, 500, 1000, 100, 500, 1000, 100, 500, 1000};
    for (int row = 0; row < 9; ++row) {
      const int m = NumTrials(deltas[row], sites[row]);
      table.AddRow(
          {TablePrinter::Num(deltas[row]), TablePrinter::Int(sites[row]),
           TablePrinter::Int(m),
           TablePrinter::Num(
               TrackingFailureProbability(deltas[row], sites[row], m))});
    }
    table.Print();
  }
  std::printf("\nExpected shape: M shrinks with N, failure column <= 0.01 "
              "(paper Table 2 values: 4/3/2, 4/~2, 3/2/2).\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
