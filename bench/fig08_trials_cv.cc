// Figure 8: M versus N for various δ in the convex-safe-zone (CV) context
// (Lemma 5's trial-count formula). Note the inversion against Figure 3:
// here smaller δ needs FEWER trials, because the expected sample grows.

#include <cstdio>

#include "estimators/sampling.h"
#include "sim/experiment.h"

namespace sgm {
namespace {

void Run() {
  PrintBanner("Figure 8", "M versus N in the CV context (Lemma 5)");
  TablePrinter table({"N", "M(d=0.05)", "M(d=0.1)", "M(d=0.2)"});
  for (int n : {50, 100, 200, 500, 1000, 2000, 5000, 10000}) {
    table.AddRow({TablePrinter::Int(n),
                  TablePrinter::Int(NumTrialsCV(0.05, n)),
                  TablePrinter::Int(NumTrialsCV(0.1, n)),
                  TablePrinter::Int(NumTrialsCV(0.2, n))});
  }
  table.Print();
  std::printf("\nExpected shape: 2-4 trials suffice at high N; M decreases "
              "as delta decreases (inverted vs Figure 3).\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
