// Figure 9: ratio of the (un-simplified) Vector Bernstein estimation error
// of the generic scheme over the McDiarmid error of the revised 1-d scheme,
// as a function of δ. The revised scheme tracks roughly 2× more accurately
// across the practical δ range.

#include <cstdio>

#include "estimators/tail_bounds.h"
#include "sim/experiment.h"

namespace sgm {
namespace {

void Run() {
  PrintBanner("Figure 9",
              "Error ratio: Vector Bernstein / McDiarmid vs delta");
  TablePrinter table({"delta", "eps_bernstein/U", "eps_mcdiarmid/U", "ratio"});
  for (double delta = 0.02; delta <= 0.351; delta += 0.03) {
    table.AddRow({TablePrinter::Num(delta),
                  TablePrinter::Num(BernsteinEpsilonFull(delta, 1.0)),
                  TablePrinter::Num(McDiarmidEpsilon(delta, 1.0)),
                  TablePrinter::Num(ErrorRatio(delta))});
  }
  table.Print();
  std::printf("\nExpected shape: ratio ~1.7-2.2 across the delta range "
              "(paper: 'roughly a factor of 2 or more').\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
