// Figure 10: Reuters data set, χ² monitoring.
//  (a) communication cost vs threshold (N = 75);
//  (b) communication cost vs number of sites (T = 0.5);
//  (c) sensitivity of SGM's FP/FN decisions to δ, against PGM's FPs.
//
// Thresholds use the normalized χ² score (φ²-scaled, see
// functions/chi_square.h); the paper's nominal 0.5/1.0/1.5 grid carries
// over. Absolute message counts differ from the paper (synthetic workload,
// see EXPERIMENTS.md); the *shapes* under test: SGM well below GM/BGM/PGM,
// gap widening with N, FPs shrinking and FNs mildly growing with δ,
// FN cycles ≪ δ·cycles.

#include <cstdio>

#include "bench_util.h"
#include "functions/chi_square.h"

namespace sgm {
namespace {

using bench::KindName;
using bench::ProtocolKind;

void Run() {
  const long cycles = bench::ReutersCycles();
  const ChiSquare chi(bench::ReutersWindow());
  const ProtocolKind kinds[] = {ProtocolKind::kGm, ProtocolKind::kBgm,
                                ProtocolKind::kPgm, ProtocolKind::kSgm,
                                ProtocolKind::kMsgm};

  PrintBanner("Figure 10(a)",
              "Chi2 monitoring: total messages vs threshold (N = 75)");
  {
    TablePrinter table({"T", "GM", "BGM", "PGM", "SGM", "M-SGM"});
    for (double threshold : {0.25, 0.5, 0.75, 1.0, 1.5}) {
      std::vector<std::string> row = {TablePrinter::Num(threshold)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::ReutersFactory(75), chi,
                                          threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 10(b)",
              "Chi2 monitoring: total messages vs sites (T = 0.5)");
  {
    TablePrinter table({"N", "GM", "BGM", "PGM", "SGM", "M-SGM"});
    for (int n : {50, 62, 75, 87, 100}) {
      std::vector<std::string> row = {TablePrinter::Int(n)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::ReutersFactory(n), chi,
                                          0.5, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 10(c)",
              "Chi2 monitoring: sensitivity to delta (T = 0.5, N = 75)");
  {
    const RunResult pgm = bench::RunOne(ProtocolKind::kPgm,
                                        bench::ReutersFactory(75), chi, 0.5,
                                        cycles);
    std::printf("PGM false positives (delta-independent): %ld\n\n",
                pgm.metrics.false_positives());
    TablePrinter table({"delta", "SGM FPs", "SGM FN cycles", "FN rate",
                        "total false decisions"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult r = bench::RunOne(ProtocolKind::kSgm,
                                        bench::ReutersFactory(75), chi, 0.5,
                                        cycles, delta);
      const long fns = r.metrics.false_negative_cycles();
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Int(r.metrics.false_positives()),
                    TablePrinter::Int(fns),
                    TablePrinter::Num(static_cast<double>(fns) /
                                      static_cast<double>(r.cycles)),
                    TablePrinter::Int(r.metrics.false_positives() + fns)});
    }
    table.Print();
  }
  std::printf("\nExpected shapes: (a,b) SGM/M-SGM lines lowest and nearly "
              "coincident; (c) FP count falls as delta rises, FN rate stays "
              "well below delta.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
