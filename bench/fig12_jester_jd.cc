// Figure 12: Jester data set, Jeffrey-divergence monitoring (encoding cost
// of the current global histogram against the last-synced one).
//  (a) messages vs threshold (N = 500);
//  (b) messages vs sites (T = 10);
//  (c) SGM FP/FN sensitivity to δ.

#include <cstdio>

#include "bench_util.h"
#include "functions/jeffrey_divergence.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = bench::JesterCycles();
  const JeffreyDivergence jd{Vector(bench::JesterDim())};
  const ProtocolKind kinds[] = {ProtocolKind::kGm, ProtocolKind::kBgm,
                                ProtocolKind::kPgm, ProtocolKind::kSgm,
                                ProtocolKind::kMsgm};

  PrintBanner("Figure 12(a)",
              "JD monitoring: total messages vs threshold (N = 500)");
  {
    TablePrinter table({"T", "GM", "BGM", "PGM", "SGM", "M-SGM"});
    for (double threshold : {3.0, 6.0, 10.0, 20.0, 40.0}) {
      std::vector<std::string> row = {TablePrinter::Num(threshold)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(500), jd,
                                          threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 12(b)",
              "JD monitoring: total messages vs sites (T = 10)");
  {
    TablePrinter table({"N", "GM", "BGM", "PGM", "SGM", "M-SGM"});
    for (int n : {100, 250, 500, 750, 1000}) {
      std::vector<std::string> row = {TablePrinter::Int(n)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(n), jd,
                                          10.0, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 12(c)",
              "JD monitoring: sensitivity to delta (T = 10, N = 500)");
  {
    const RunResult gm = bench::RunOne(ProtocolKind::kGm,
                                       bench::JesterFactory(500), jd, 10.0,
                                       cycles);
    std::printf("GM false positives (delta-independent): %ld\n\n",
                gm.metrics.false_positives());
    TablePrinter table({"delta", "SGM FPs", "SGM FN cycles", "FN rate"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult r = bench::RunOne(ProtocolKind::kSgm,
                                        bench::JesterFactory(500), jd, 10.0,
                                        cycles, delta);
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Int(r.metrics.false_positives()),
                    TablePrinter::Int(r.metrics.false_negative_cycles()),
                    TablePrinter::Num(
                        static_cast<double>(
                            r.metrics.false_negative_cycles()) /
                        static_cast<double>(r.cycles))});
    }
    table.Print();
  }
  std::printf("\nExpected shapes: as Figure 11, with JD nearly FN-free "
              "(paper Section 6.2).\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
