// Figure 13: average number of messages transmitted by each site per data
// update, GM versus SGM, for L∞ / Jeffrey divergence / self-join size
// monitoring across network scales. GM's per-site cost must climb with N
// (toward continuous data collection); SGM's must stay flat or fall.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = bench::JesterCycles();
  const LInfDistance linf{Vector(bench::JesterDim())};
  const JeffreyDivergence jd{Vector(bench::JesterDim())};
  const auto sj = L2Norm::SelfJoinSize();
  struct Workload {
    const char* label;
    const MonitoredFunction* function;
    double threshold;
  };
  const Workload workloads[] = {
      {"Linf", &linf, 10.0}, {"JD", &jd, 10.0}, {"SJ", sj.get(), 2700.0}};

  PrintBanner("Figure 13",
              "Messages transmitted per site per data update vs N");
  TablePrinter table({"N", "Linf GM", "Linf SGM", "JD GM", "JD SGM", "SJ GM",
                      "SJ SGM"});
  for (int n : {100, 250, 500, 750, 1000}) {
    std::vector<std::string> row = {TablePrinter::Int(n)};
    for (const Workload& w : workloads) {
      for (ProtocolKind kind : {ProtocolKind::kGm, ProtocolKind::kSgm}) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(n),
                                          *w.function, w.threshold, cycles);
        row.push_back(TablePrinter::Num(r.metrics.SiteMessagesPerUpdate(n)));
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape: GM columns rise with N; SGM columns stay "
              "flat or fall (sampled-site count grows only as sqrt(N)).\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
