// Figure 14: SGM's drift-weighted sampling function versus the uniform
// Bernoulli variant (same expected sample size, g = ln(1/δ)/√N) on the
// three Jester workloads across network scales.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = bench::JesterCycles();
  const LInfDistance linf{Vector(bench::JesterDim())};
  const JeffreyDivergence jd{Vector(bench::JesterDim())};
  const auto sj = L2Norm::SelfJoinSize();
  struct Workload {
    const char* label;
    const MonitoredFunction* function;
    double threshold;
  };
  const Workload workloads[] = {
      {"Linf", &linf, 10.0}, {"JD", &jd, 10.0}, {"SJ", sj.get(), 2700.0}};

  PrintBanner("Figure 14", "SGM vs Bernoulli sampling variant: messages vs N");
  TablePrinter table({"N", "Linf-SGM", "Linf-Bern", "JD-SGM", "JD-Bern",
                      "SJ-SGM", "SJ-Bern"});
  for (int n : {100, 250, 500, 750, 1000}) {
    std::vector<std::string> row = {TablePrinter::Int(n)};
    for (const Workload& w : workloads) {
      for (ProtocolKind kind :
           {ProtocolKind::kSgm, ProtocolKind::kBernoulli}) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(n),
                                          *w.function, w.threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape: every Bernoulli column above its SGM "
              "column (paper: 2-50x worse) — uniform sampling ignores which "
              "sites actually drifted.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
