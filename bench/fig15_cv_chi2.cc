// Figure 15: impact of the revised (CV) sampling on χ² / Reuters.
//  (a) messages vs N, now including CVGM and CVSGM;
//  (b) FP decisions vs δ, with the share CVSGM resolves via the 1-d
//      signed-distance check ("CVSGM 1-d Res");
//  (c) transmitted bytes vs δ, SGM against CVSGM (the unidimensional
//      mapping's payload saving).

#include <cstdio>

#include "bench_util.h"
#include "functions/chi_square.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = bench::ReutersCycles();
  const ChiSquare chi(bench::ReutersWindow());
  const double threshold = 0.5;

  PrintBanner("Figure 15(a)",
              "Chi2 + CV: total messages vs sites (T = 0.5)");
  {
    const ProtocolKind kinds[] = {ProtocolKind::kGm, ProtocolKind::kPgm,
                                  ProtocolKind::kSgm, ProtocolKind::kCvgm,
                                  ProtocolKind::kCvsgm};
    TablePrinter table({"N", "GM", "PGM", "SGM", "CVGM", "CVSGM"});
    for (int n : {50, 62, 75, 87, 100}) {
      std::vector<std::string> row = {TablePrinter::Int(n)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::ReutersFactory(n), chi,
                                          threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 15(b)",
              "Chi2: FP decisions vs delta (N = 75), incl. 1-d resolutions");
  {
    TablePrinter table({"delta", "SGM FPs", "CVSGM FPs", "CVSGM 1-d Res",
                        "1-d share"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult s = bench::RunOne(ProtocolKind::kSgm,
                                        bench::ReutersFactory(75), chi,
                                        threshold, cycles, delta);
      const RunResult c = bench::RunOne(ProtocolKind::kCvsgm,
                                        bench::ReutersFactory(75), chi,
                                        threshold, cycles, delta);
      const double share =
          c.metrics.false_positives() > 0
              ? static_cast<double>(c.metrics.one_d_resolutions()) /
                    static_cast<double>(c.metrics.false_positives())
              : 0.0;
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Int(s.metrics.false_positives()),
                    TablePrinter::Int(c.metrics.false_positives()),
                    TablePrinter::Int(c.metrics.one_d_resolutions()),
                    TablePrinter::Num(share)});
    }
    table.Print();
  }

  PrintBanner("Figure 15(c)",
              "Chi2: transmitted bytes vs delta (N = 75)");
  {
    TablePrinter table({"delta", "SGM bytes", "CVSGM bytes", "ratio"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult s = bench::RunOne(ProtocolKind::kSgm,
                                        bench::ReutersFactory(75), chi,
                                        threshold, cycles, delta);
      const RunResult c = bench::RunOne(ProtocolKind::kCvsgm,
                                        bench::ReutersFactory(75), chi,
                                        threshold, cycles, delta);
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Num(s.metrics.total_bytes(), 6),
                    TablePrinter::Num(c.metrics.total_bytes(), 6),
                    TablePrinter::Num(s.metrics.total_bytes() /
                                      c.metrics.total_bytes())});
    }
    table.Print();
  }
  std::printf("\nExpected shapes: CVGM competitive at small N but "
              "approaching GM as N grows; CVSGM at or below SGM on FPs with "
              "a large 1-d-resolved share; byte ratio > 1.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
