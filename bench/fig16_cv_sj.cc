// Figure 16: impact of the revised (CV) sampling on self-join-size / Jester.
//  (a) messages vs N (incl. CVGM, CVSGM);
//  (b) FP decisions vs δ with the CVSGM 1-d-resolved share;
//  (c) transmitted bytes vs δ, SGM vs CVSGM.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "functions/l2_norm.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = bench::JesterCycles();
  const auto sj = L2Norm::SelfJoinSize();
  const double threshold = 2700.0;

  PrintBanner("Figure 16(a)",
              "SJ + CV: total messages vs sites (T = 2700)");
  {
    const ProtocolKind kinds[] = {ProtocolKind::kGm, ProtocolKind::kBgm,
                                  ProtocolKind::kPgm, ProtocolKind::kSgm,
                                  ProtocolKind::kCvgm, ProtocolKind::kCvsgm};
    TablePrinter table({"N", "GM", "BGM", "PGM", "SGM", "CVGM", "CVSGM"});
    for (int n : {100, 250, 500, 750, 1000}) {
      std::vector<std::string> row = {TablePrinter::Int(n)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(n), *sj,
                                          threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 16(b)",
              "SJ: FP decisions vs delta (N = 500), incl. 1-d resolutions");
  {
    TablePrinter table({"delta", "SGM FPs", "CVSGM FPs", "CVSGM 1-d Res",
                        "1-d share"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult s = bench::RunOne(ProtocolKind::kSgm,
                                        bench::JesterFactory(500), *sj,
                                        threshold, cycles, delta);
      const RunResult c = bench::RunOne(ProtocolKind::kCvsgm,
                                        bench::JesterFactory(500), *sj,
                                        threshold, cycles, delta);
      const double share =
          c.metrics.false_positives() > 0
              ? static_cast<double>(c.metrics.one_d_resolutions()) /
                    static_cast<double>(c.metrics.false_positives())
              : 0.0;
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Int(s.metrics.false_positives()),
                    TablePrinter::Int(c.metrics.false_positives()),
                    TablePrinter::Int(c.metrics.one_d_resolutions()),
                    TablePrinter::Num(share)});
    }
    table.Print();
  }

  PrintBanner("Figure 16(c)", "SJ: transmitted bytes vs delta (N = 500)");
  {
    TablePrinter table({"delta", "SGM bytes", "CVSGM bytes", "ratio"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      const RunResult s = bench::RunOne(ProtocolKind::kSgm,
                                        bench::JesterFactory(500), *sj,
                                        threshold, cycles, delta);
      const RunResult c = bench::RunOne(ProtocolKind::kCvsgm,
                                        bench::JesterFactory(500), *sj,
                                        threshold, cycles, delta);
      table.AddRow({TablePrinter::Num(delta),
                    TablePrinter::Num(s.metrics.total_bytes(), 6),
                    TablePrinter::Num(c.metrics.total_bytes(), 6),
                    TablePrinter::Num(s.metrics.total_bytes() /
                                      c.metrics.total_bytes())});
    }
    table.Print();
  }
  std::printf("\nExpected shapes: CVGM's small-N advantage erodes at scale; "
              "most CVSGM FPs resolved in 1-d (paper: 'nearly every FP'); "
              "byte savings up to ~d-fold on resolved FPs.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
