// Figure 17: revised sampling on L∞ / Jester — the FN-centric view.
//  (a) messages vs sites (SGM vs CVGM vs CVSGM);
//  (b) FN cycles vs δ (SGM vs CVSGM): the tighter McDiarmid error must cut
//      false negatives even at some message cost.

#include <cstdio>

#include "bench_util.h"
#include "functions/linf_distance.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = ScaledCycles(3000);
  const LInfDistance linf{Vector(bench::JesterDim())};
  const double threshold = 10.0;

  PrintBanner("Figure 17(a)",
              "Linf + CV: total messages vs sites (T = 10)");
  {
    const ProtocolKind kinds[] = {ProtocolKind::kGm, ProtocolKind::kSgm,
                                  ProtocolKind::kCvgm, ProtocolKind::kCvsgm};
    TablePrinter table({"N", "GM", "SGM", "CVGM", "CVSGM"});
    for (int n : {100, 250, 500, 750, 1000}) {
      std::vector<std::string> row = {TablePrinter::Int(n)};
      for (ProtocolKind kind : kinds) {
        const RunResult r = bench::RunOne(kind, bench::JesterFactory(n), linf,
                                          threshold, cycles);
        row.push_back(TablePrinter::Int(r.metrics.total_messages()));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  PrintBanner("Figure 17(b)",
              "Linf: FN cycles vs delta (N = 500, T = 6, long run)");
  {
    // A tighter threshold and a longer stream so missed crossings actually
    // occur; several seeds accumulated since FNs are rare by design.
    const long fn_cycles_per_seed = ScaledCycles(2500);
    TablePrinter table({"delta", "SGM FN cycles", "CVSGM FN cycles",
                        "SGM msgs", "CVSGM msgs"});
    for (double delta : {0.05, 0.1, 0.2, 0.3}) {
      long s_msgs = 0, c_msgs = 0, s_fn = 0, c_fn = 0;
      for (std::uint64_t seed : {11, 47}) {
        const RunResult s = bench::RunOne(ProtocolKind::kSgm,
                                          bench::JesterFactory(500, seed),
                                          linf, 6.0, fn_cycles_per_seed,
                                          delta);
        const RunResult c = bench::RunOne(ProtocolKind::kCvsgm,
                                          bench::JesterFactory(500, seed),
                                          linf, 6.0, fn_cycles_per_seed,
                                          delta);
        s_msgs += s.metrics.total_messages();
        c_msgs += c.metrics.total_messages();
        s_fn += s.metrics.false_negative_cycles();
        c_fn += c.metrics.false_negative_cycles();
      }
      table.AddRow({TablePrinter::Num(delta), TablePrinter::Int(s_fn),
                    TablePrinter::Int(c_fn), TablePrinter::Int(s_msgs),
                    TablePrinter::Int(c_msgs)});
    }
    table.Print();
  }
  std::printf("\nExpected shapes: CVSGM's FN cycles at or below SGM's for "
              "each delta (paper: up to 6.2x lower), possibly at higher "
              "message counts — desirable spend on true crossings.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
