// Figure 18: sum- versus average-parameterized stdev monitoring — the
// GM/SGM message-ratio study of Section 7.4. Four configurations over N:
// {AVG, SUM} × {lower T, upper T}, where the lower threshold sits near the
// average-parameterized stdev's operating value and the upper threshold
// near the sum-parameterized one at N = 500; neither is ever truly crossed,
// isolating the FP behaviour that sum-parameterization exacerbates.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "functions/sum_parameterization.h"
#include "functions/variance.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

double Ratio(const MonitoredFunction& f, double threshold, int n,
             long cycles) {
  const RunResult gm = bench::RunOne(ProtocolKind::kGm,
                                     bench::JesterFactory(n), f, threshold,
                                     cycles);
  const RunResult sgm = bench::RunOne(ProtocolKind::kSgm,
                                      bench::JesterFactory(n), f, threshold,
                                      cycles);
  return static_cast<double>(gm.metrics.total_messages()) /
         static_cast<double>(sgm.metrics.total_messages());
}

void Run() {
  const long cycles = bench::JesterCycles();
  // Operating values on this workload: stdev(avg histogram) ≈ 12.9 (dips to
  // ~11.6 on regime shifts); sum values are N times larger.
  const double lower_t = 11.0;    // just below the avg-stdev operating band
  const double upper_t = 6500.0;  // near the sum-stdev value at N = 500

  PrintBanner("Figure 18",
              "GM/SGM message ratio: stdev, sum- vs average-parameterized");
  TablePrinter table({"N", "AVG lower T", "SUM lower T", "AVG upper T",
                      "SUM upper T"});
  for (int n : {250, 500, 750, 1000}) {
    const CoordinateDispersion avg_stdev(false);
    const ScaledInputFunction sum_stdev(CoordinateDispersion::StdDev(),
                                        static_cast<double>(n));
    table.AddRow({TablePrinter::Int(n),
                  TablePrinter::Num(Ratio(avg_stdev, lower_t, n, cycles)),
                  TablePrinter::Num(Ratio(sum_stdev, lower_t, n, cycles)),
                  TablePrinter::Num(Ratio(avg_stdev, upper_t, n, cycles)),
                  TablePrinter::Num(Ratio(sum_stdev, upper_t, n, cycles))});
  }
  table.Print();
  std::printf("\nExpected shapes: SUM columns dominate their AVG "
              "counterparts (sum-parameterization scales every drift by N, "
              "so sampling saves proportionally more); 'AVG upper T' — a "
              "threshold absurdly far from the average-parameterized value "
              "— shows the smallest ratios; 'SUM upper T' grows with N.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
