// google-benchmark microbenchmarks of the library's hot kernels: the
// per-site per-cycle operations every protocol executes (drift norms, ball
// construction and threshold tests, sampling-probability evaluation,
// Horvitz–Thompson estimation, signed distances) plus the heavier geometric
// utilities (χ² certified enclosures, hull projection).

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "core/vector.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/sampling.h"
#include "functions/chi_square.h"
#include "functions/jeffrey_divergence.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "geometry/ball.h"
#include "geometry/convex.h"
#include "geometry/safe_zone.h"

namespace sgm {
namespace {

Vector RandomVector(std::size_t dim, Rng* rng) {
  Vector v(dim);
  for (std::size_t j = 0; j < dim; ++j) v[j] = rng->NextDouble(-5.0, 5.0);
  return v;
}

void BM_VectorNorm(benchmark::State& state) {
  Rng rng(1);
  const Vector v = RandomVector(state.range(0), &rng);
  for (auto _ : state) benchmark::DoNotOptimize(v.Norm());
}
BENCHMARK(BM_VectorNorm)->Arg(8)->Arg(64)->Arg(512);

void BM_VectorAxpy(benchmark::State& state) {
  Rng rng(2);
  Vector x = RandomVector(state.range(0), &rng);
  const Vector y = RandomVector(state.range(0), &rng);
  for (auto _ : state) {
    x.Axpy(0.001, y);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_VectorAxpy)->Arg(8)->Arg(64)->Arg(512);

void BM_LocalConstraintBall(benchmark::State& state) {
  Rng rng(3);
  const Vector e = RandomVector(16, &rng);
  const Vector drift = RandomVector(16, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ball::LocalConstraint(e, drift));
  }
}
BENCHMARK(BM_LocalConstraintBall);

void BM_LinfBallTest(benchmark::State& state) {
  Rng rng(4);
  const LInfDistance f{Vector(16)};
  const Ball ball(RandomVector(16, &rng), 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.BallCrossesThreshold(ball, 10.0));
  }
}
BENCHMARK(BM_LinfBallTest);

void BM_SelfJoinBallTest(benchmark::State& state) {
  Rng rng(5);
  const auto f = L2Norm::SelfJoinSize();
  const Ball ball(RandomVector(16, &rng), 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->BallCrossesThreshold(ball, 120.0));
  }
}
BENCHMARK(BM_SelfJoinBallTest);

void BM_JdBallTest(benchmark::State& state) {
  Rng rng(6);
  Vector ref = RandomVector(16, &rng);
  for (std::size_t j = 0; j < 16; ++j) ref[j] = std::abs(ref[j]) + 1.0;
  const JeffreyDivergence f(ref);
  Vector center = ref;
  center[3] += 2.0;
  const Ball ball(center, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.BallCrossesThreshold(ball, 5.0));
  }
}
BENCHMARK(BM_JdBallTest);

void BM_ChiSquareBallTest(benchmark::State& state) {
  const ChiSquare f(200.0);
  const Ball ball(Vector{6.0, 10.0, 40.0}, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.BallCrossesThreshold(ball, 0.5));
  }
}
BENCHMARK(BM_ChiSquareBallTest);

void BM_SamplingProbability(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplingProbability(0.1, 30.0, 500, 7.5));
  }
}
BENCHMARK(BM_SamplingProbability);

void BM_HtEstimate(benchmark::State& state) {
  Rng rng(7);
  const int sample = static_cast<int>(state.range(0));
  std::vector<Vector> drifts;
  for (int i = 0; i < sample; ++i) drifts.push_back(RandomVector(16, &rng));
  const Vector e = RandomVector(16, &rng);
  for (auto _ : state) {
    HtVectorEstimator est(1000, 16);
    for (const Vector& d : drifts) est.AddSample(d, 0.1);
    benchmark::DoNotOptimize(est.Estimate(e));
  }
}
BENCHMARK(BM_HtEstimate)->Arg(8)->Arg(32)->Arg(128);

void BM_SignedDistanceBallZone(benchmark::State& state) {
  Rng rng(8);
  const BallSafeZone zone(Ball(RandomVector(16, &rng), 5.0));
  const Vector p = RandomVector(16, &rng);
  for (auto _ : state) benchmark::DoNotOptimize(zone.SignedDistance(p));
}
BENCHMARK(BM_SignedDistanceBallZone);

void BM_HullProjection(benchmark::State& state) {
  Rng rng(9);
  std::vector<Vector> points;
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back(RandomVector(4, &rng));
  }
  const Vector query = RandomVector(4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectOntoHull(points, query, 500, 1e-8));
  }
}
BENCHMARK(BM_HullProjection)->Arg(10)->Arg(100);

}  // namespace
}  // namespace sgm

BENCHMARK_MAIN();
