// Table 3: duration of SGM false negatives (Mode and Median of FN run
// lengths, in update cycles) for χ² monitoring on the Reuters workload,
// across sites and thresholds. The paper's headline: Mode = 1 almost
// everywhere — a missed crossing is corrected essentially immediately.

#include <cstdio>

#include "bench_util.h"
#include "functions/chi_square.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  // Longer streams than the figure benches so enough true crossings (and
  // hence FN opportunities) accumulate.
  const long cycles = ScaledCycles(6000);
  const ChiSquare chi(bench::ReutersWindow());

  PrintBanner("Table 3", "FN duration (Mode / Median), chi2 monitoring, SGM "
                         "(single trial = worst case)");
  TablePrinter table({"N", "T=0.3 Mode", "T=0.3 Mdn", "T=0.4 Mode",
                      "T=0.4 Mdn", "T=0.5 Mode", "T=0.5 Mdn", "FN runs"});
  for (int n : {60, 70, 80, 90, 100}) {
    std::vector<std::string> row = {TablePrinter::Int(n)};
    long total_runs = 0;
    for (double threshold : {0.3, 0.4, 0.5}) {
      const RunResult r = bench::RunOne(ProtocolKind::kSgm,
                                        bench::ReutersFactory(n), chi,
                                        threshold, cycles);
      row.push_back(TablePrinter::Int(r.metrics.FnDurationMode()));
      row.push_back(TablePrinter::Num(r.metrics.FnDurationMedian()));
      total_runs += r.metrics.false_negative_runs();
    }
    row.push_back(TablePrinter::Int(total_runs));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape: Mode 1-2 and Median <= ~4 cycles wherever "
              "FNs occur at all (0 = no FN observed).\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
