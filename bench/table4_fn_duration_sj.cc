// Table 4: duration of SGM false negatives (Mode / Median of FN run
// lengths) for self-join-size monitoring on the Jester workload, across
// large network scales and thresholds straddling the SJ operating value.

#include <cstdio>

#include "bench_util.h"
#include "functions/l2_norm.h"

namespace sgm {
namespace {

using bench::ProtocolKind;

void Run() {
  const long cycles = ScaledCycles(3000);
  const auto sj = L2Norm::SelfJoinSize();

  PrintBanner("Table 4", "FN duration (Mode / Median), self-join size, SGM");
  TablePrinter table({"N", "T=2450 Mode", "T=2450 Mdn", "T=2520 Mode",
                      "T=2520 Mdn", "T=2590 Mode", "T=2590 Mdn", "FN runs"});
  for (int n : {600, 700, 800, 900, 1000}) {
    std::vector<std::string> row = {TablePrinter::Int(n)};
    long total_runs = 0;
    for (double threshold : {2450.0, 2520.0, 2590.0}) {
      const RunResult r = bench::RunOne(ProtocolKind::kSgm,
                                        bench::JesterFactory(n), *sj,
                                        threshold, cycles);
      row.push_back(TablePrinter::Int(r.metrics.FnDurationMode()));
      row.push_back(TablePrinter::Num(r.metrics.FnDurationMedian()));
      total_runs += r.metrics.false_negative_runs();
    }
    row.push_back(TablePrinter::Int(total_runs));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape: Mode = 1 in the vast majority of cells "
              "(immediate FN compensation), Median 1-3.\n");
}

}  // namespace
}  // namespace sgm

int main() {
  sgm::Run();
  return 0;
}
