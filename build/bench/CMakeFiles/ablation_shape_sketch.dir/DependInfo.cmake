
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_shape_sketch.cc" "bench/CMakeFiles/ablation_shape_sketch.dir/ablation_shape_sketch.cc.o" "gcc" "bench/CMakeFiles/ablation_shape_sketch.dir/ablation_shape_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_predict.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
