file(REMOVE_RECURSE
  "CMakeFiles/ablation_shape_sketch.dir/ablation_shape_sketch.cc.o"
  "CMakeFiles/ablation_shape_sketch.dir/ablation_shape_sketch.cc.o.d"
  "ablation_shape_sketch"
  "ablation_shape_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shape_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
