# Empty compiler generated dependencies file for ablation_shape_sketch.
# This may be replaced when dependencies are built.
