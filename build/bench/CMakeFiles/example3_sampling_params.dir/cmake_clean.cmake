file(REMOVE_RECURSE
  "CMakeFiles/example3_sampling_params.dir/example3_sampling_params.cc.o"
  "CMakeFiles/example3_sampling_params.dir/example3_sampling_params.cc.o.d"
  "example3_sampling_params"
  "example3_sampling_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example3_sampling_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
