# Empty compiler generated dependencies file for example3_sampling_params.
# This may be replaced when dependencies are built.
