file(REMOVE_RECURSE
  "CMakeFiles/fig02_hull_growth.dir/fig02_hull_growth.cc.o"
  "CMakeFiles/fig02_hull_growth.dir/fig02_hull_growth.cc.o.d"
  "fig02_hull_growth"
  "fig02_hull_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_hull_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
