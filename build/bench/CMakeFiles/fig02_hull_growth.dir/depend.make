# Empty dependencies file for fig02_hull_growth.
# This may be replaced when dependencies are built.
