file(REMOVE_RECURSE
  "CMakeFiles/fig03_table2_trials.dir/fig03_table2_trials.cc.o"
  "CMakeFiles/fig03_table2_trials.dir/fig03_table2_trials.cc.o.d"
  "fig03_table2_trials"
  "fig03_table2_trials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_table2_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
