# Empty dependencies file for fig03_table2_trials.
# This may be replaced when dependencies are built.
