file(REMOVE_RECURSE
  "CMakeFiles/fig08_trials_cv.dir/fig08_trials_cv.cc.o"
  "CMakeFiles/fig08_trials_cv.dir/fig08_trials_cv.cc.o.d"
  "fig08_trials_cv"
  "fig08_trials_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_trials_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
