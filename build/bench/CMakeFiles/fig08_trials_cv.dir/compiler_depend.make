# Empty compiler generated dependencies file for fig08_trials_cv.
# This may be replaced when dependencies are built.
