# Empty compiler generated dependencies file for fig09_error_ratio.
# This may be replaced when dependencies are built.
