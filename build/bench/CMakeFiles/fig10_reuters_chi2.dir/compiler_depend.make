# Empty compiler generated dependencies file for fig10_reuters_chi2.
# This may be replaced when dependencies are built.
