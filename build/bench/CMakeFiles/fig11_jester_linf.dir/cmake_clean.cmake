file(REMOVE_RECURSE
  "CMakeFiles/fig11_jester_linf.dir/fig11_jester_linf.cc.o"
  "CMakeFiles/fig11_jester_linf.dir/fig11_jester_linf.cc.o.d"
  "fig11_jester_linf"
  "fig11_jester_linf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_jester_linf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
