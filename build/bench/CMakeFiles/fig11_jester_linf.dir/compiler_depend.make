# Empty compiler generated dependencies file for fig11_jester_linf.
# This may be replaced when dependencies are built.
