file(REMOVE_RECURSE
  "CMakeFiles/fig12_jester_jd.dir/fig12_jester_jd.cc.o"
  "CMakeFiles/fig12_jester_jd.dir/fig12_jester_jd.cc.o.d"
  "fig12_jester_jd"
  "fig12_jester_jd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_jester_jd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
