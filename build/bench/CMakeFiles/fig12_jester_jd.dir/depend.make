# Empty dependencies file for fig12_jester_jd.
# This may be replaced when dependencies are built.
