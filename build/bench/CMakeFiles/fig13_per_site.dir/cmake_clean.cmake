file(REMOVE_RECURSE
  "CMakeFiles/fig13_per_site.dir/fig13_per_site.cc.o"
  "CMakeFiles/fig13_per_site.dir/fig13_per_site.cc.o.d"
  "fig13_per_site"
  "fig13_per_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_per_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
