# Empty compiler generated dependencies file for fig13_per_site.
# This may be replaced when dependencies are built.
