file(REMOVE_RECURSE
  "CMakeFiles/fig14_bernoulli.dir/fig14_bernoulli.cc.o"
  "CMakeFiles/fig14_bernoulli.dir/fig14_bernoulli.cc.o.d"
  "fig14_bernoulli"
  "fig14_bernoulli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bernoulli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
