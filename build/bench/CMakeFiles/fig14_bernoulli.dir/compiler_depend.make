# Empty compiler generated dependencies file for fig14_bernoulli.
# This may be replaced when dependencies are built.
