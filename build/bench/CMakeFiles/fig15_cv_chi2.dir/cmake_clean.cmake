file(REMOVE_RECURSE
  "CMakeFiles/fig15_cv_chi2.dir/fig15_cv_chi2.cc.o"
  "CMakeFiles/fig15_cv_chi2.dir/fig15_cv_chi2.cc.o.d"
  "fig15_cv_chi2"
  "fig15_cv_chi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cv_chi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
