# Empty dependencies file for fig15_cv_chi2.
# This may be replaced when dependencies are built.
