file(REMOVE_RECURSE
  "CMakeFiles/fig16_cv_sj.dir/fig16_cv_sj.cc.o"
  "CMakeFiles/fig16_cv_sj.dir/fig16_cv_sj.cc.o.d"
  "fig16_cv_sj"
  "fig16_cv_sj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cv_sj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
