# Empty dependencies file for fig16_cv_sj.
# This may be replaced when dependencies are built.
