file(REMOVE_RECURSE
  "CMakeFiles/fig17_cv_linf.dir/fig17_cv_linf.cc.o"
  "CMakeFiles/fig17_cv_linf.dir/fig17_cv_linf.cc.o.d"
  "fig17_cv_linf"
  "fig17_cv_linf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cv_linf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
