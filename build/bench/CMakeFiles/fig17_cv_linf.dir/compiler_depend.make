# Empty compiler generated dependencies file for fig17_cv_linf.
# This may be replaced when dependencies are built.
