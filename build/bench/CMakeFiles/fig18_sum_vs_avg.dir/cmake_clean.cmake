file(REMOVE_RECURSE
  "CMakeFiles/fig18_sum_vs_avg.dir/fig18_sum_vs_avg.cc.o"
  "CMakeFiles/fig18_sum_vs_avg.dir/fig18_sum_vs_avg.cc.o.d"
  "fig18_sum_vs_avg"
  "fig18_sum_vs_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sum_vs_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
