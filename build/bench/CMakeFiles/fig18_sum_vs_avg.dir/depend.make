# Empty dependencies file for fig18_sum_vs_avg.
# This may be replaced when dependencies are built.
