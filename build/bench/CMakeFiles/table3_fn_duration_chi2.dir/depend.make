# Empty dependencies file for table3_fn_duration_chi2.
# This may be replaced when dependencies are built.
