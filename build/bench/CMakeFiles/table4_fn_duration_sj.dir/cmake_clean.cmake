file(REMOVE_RECURSE
  "CMakeFiles/table4_fn_duration_sj.dir/table4_fn_duration_sj.cc.o"
  "CMakeFiles/table4_fn_duration_sj.dir/table4_fn_duration_sj.cc.o.d"
  "table4_fn_duration_sj"
  "table4_fn_duration_sj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fn_duration_sj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
