# Empty dependencies file for table4_fn_duration_sj.
# This may be replaced when dependencies are built.
