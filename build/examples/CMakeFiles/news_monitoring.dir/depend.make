# Empty dependencies file for news_monitoring.
# This may be replaced when dependencies are built.
