file(REMOVE_RECURSE
  "CMakeFiles/ratings_histogram.dir/ratings_histogram.cpp.o"
  "CMakeFiles/ratings_histogram.dir/ratings_histogram.cpp.o.d"
  "ratings_histogram"
  "ratings_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratings_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
