# Empty dependencies file for ratings_histogram.
# This may be replaced when dependencies are built.
