file(REMOVE_RECURSE
  "CMakeFiles/sgm_core.dir/core/rng.cc.o"
  "CMakeFiles/sgm_core.dir/core/rng.cc.o.d"
  "CMakeFiles/sgm_core.dir/core/status.cc.o"
  "CMakeFiles/sgm_core.dir/core/status.cc.o.d"
  "CMakeFiles/sgm_core.dir/core/vector.cc.o"
  "CMakeFiles/sgm_core.dir/core/vector.cc.o.d"
  "libsgm_core.a"
  "libsgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
