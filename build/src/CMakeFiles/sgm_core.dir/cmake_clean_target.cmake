file(REMOVE_RECURSE
  "libsgm_core.a"
)
