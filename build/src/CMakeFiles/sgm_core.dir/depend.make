# Empty dependencies file for sgm_core.
# This may be replaced when dependencies are built.
