
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_stream.cc" "src/CMakeFiles/sgm_data.dir/data/csv_stream.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/csv_stream.cc.o.d"
  "/root/repo/src/data/jester_like.cc" "src/CMakeFiles/sgm_data.dir/data/jester_like.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/jester_like.cc.o.d"
  "/root/repo/src/data/reuters_like.cc" "src/CMakeFiles/sgm_data.dir/data/reuters_like.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/reuters_like.cc.o.d"
  "/root/repo/src/data/sliding_window.cc" "src/CMakeFiles/sgm_data.dir/data/sliding_window.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/sliding_window.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/sgm_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/whitened_stream.cc" "src/CMakeFiles/sgm_data.dir/data/whitened_stream.cc.o" "gcc" "src/CMakeFiles/sgm_data.dir/data/whitened_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
