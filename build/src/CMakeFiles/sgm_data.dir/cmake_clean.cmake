file(REMOVE_RECURSE
  "CMakeFiles/sgm_data.dir/data/csv_stream.cc.o"
  "CMakeFiles/sgm_data.dir/data/csv_stream.cc.o.d"
  "CMakeFiles/sgm_data.dir/data/jester_like.cc.o"
  "CMakeFiles/sgm_data.dir/data/jester_like.cc.o.d"
  "CMakeFiles/sgm_data.dir/data/reuters_like.cc.o"
  "CMakeFiles/sgm_data.dir/data/reuters_like.cc.o.d"
  "CMakeFiles/sgm_data.dir/data/sliding_window.cc.o"
  "CMakeFiles/sgm_data.dir/data/sliding_window.cc.o.d"
  "CMakeFiles/sgm_data.dir/data/synthetic.cc.o"
  "CMakeFiles/sgm_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/sgm_data.dir/data/whitened_stream.cc.o"
  "CMakeFiles/sgm_data.dir/data/whitened_stream.cc.o.d"
  "libsgm_data.a"
  "libsgm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
