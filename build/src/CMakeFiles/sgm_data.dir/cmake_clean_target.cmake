file(REMOVE_RECURSE
  "libsgm_data.a"
)
