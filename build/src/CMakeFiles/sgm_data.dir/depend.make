# Empty dependencies file for sgm_data.
# This may be replaced when dependencies are built.
