
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/horvitz_thompson.cc" "src/CMakeFiles/sgm_estimators.dir/estimators/horvitz_thompson.cc.o" "gcc" "src/CMakeFiles/sgm_estimators.dir/estimators/horvitz_thompson.cc.o.d"
  "/root/repo/src/estimators/sampling.cc" "src/CMakeFiles/sgm_estimators.dir/estimators/sampling.cc.o" "gcc" "src/CMakeFiles/sgm_estimators.dir/estimators/sampling.cc.o.d"
  "/root/repo/src/estimators/tail_bounds.cc" "src/CMakeFiles/sgm_estimators.dir/estimators/tail_bounds.cc.o" "gcc" "src/CMakeFiles/sgm_estimators.dir/estimators/tail_bounds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
