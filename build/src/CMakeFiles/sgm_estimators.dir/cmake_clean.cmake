file(REMOVE_RECURSE
  "CMakeFiles/sgm_estimators.dir/estimators/horvitz_thompson.cc.o"
  "CMakeFiles/sgm_estimators.dir/estimators/horvitz_thompson.cc.o.d"
  "CMakeFiles/sgm_estimators.dir/estimators/sampling.cc.o"
  "CMakeFiles/sgm_estimators.dir/estimators/sampling.cc.o.d"
  "CMakeFiles/sgm_estimators.dir/estimators/tail_bounds.cc.o"
  "CMakeFiles/sgm_estimators.dir/estimators/tail_bounds.cc.o.d"
  "libsgm_estimators.a"
  "libsgm_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
