file(REMOVE_RECURSE
  "libsgm_estimators.a"
)
