# Empty dependencies file for sgm_estimators.
# This may be replaced when dependencies are built.
