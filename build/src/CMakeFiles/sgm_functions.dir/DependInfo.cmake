
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/functions/chi_square.cc" "src/CMakeFiles/sgm_functions.dir/functions/chi_square.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/chi_square.cc.o.d"
  "/root/repo/src/functions/cosine_similarity.cc" "src/CMakeFiles/sgm_functions.dir/functions/cosine_similarity.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/cosine_similarity.cc.o.d"
  "/root/repo/src/functions/entropy.cc" "src/CMakeFiles/sgm_functions.dir/functions/entropy.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/entropy.cc.o.d"
  "/root/repo/src/functions/inner_product.cc" "src/CMakeFiles/sgm_functions.dir/functions/inner_product.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/inner_product.cc.o.d"
  "/root/repo/src/functions/jeffrey_divergence.cc" "src/CMakeFiles/sgm_functions.dir/functions/jeffrey_divergence.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/jeffrey_divergence.cc.o.d"
  "/root/repo/src/functions/l2_norm.cc" "src/CMakeFiles/sgm_functions.dir/functions/l2_norm.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/l2_norm.cc.o.d"
  "/root/repo/src/functions/linear.cc" "src/CMakeFiles/sgm_functions.dir/functions/linear.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/linear.cc.o.d"
  "/root/repo/src/functions/linf_distance.cc" "src/CMakeFiles/sgm_functions.dir/functions/linf_distance.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/linf_distance.cc.o.d"
  "/root/repo/src/functions/monitored_function.cc" "src/CMakeFiles/sgm_functions.dir/functions/monitored_function.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/monitored_function.cc.o.d"
  "/root/repo/src/functions/mutual_information.cc" "src/CMakeFiles/sgm_functions.dir/functions/mutual_information.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/mutual_information.cc.o.d"
  "/root/repo/src/functions/sum_parameterization.cc" "src/CMakeFiles/sgm_functions.dir/functions/sum_parameterization.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/sum_parameterization.cc.o.d"
  "/root/repo/src/functions/variance.cc" "src/CMakeFiles/sgm_functions.dir/functions/variance.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/variance.cc.o.d"
  "/root/repo/src/functions/whitened_function.cc" "src/CMakeFiles/sgm_functions.dir/functions/whitened_function.cc.o" "gcc" "src/CMakeFiles/sgm_functions.dir/functions/whitened_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
