file(REMOVE_RECURSE
  "CMakeFiles/sgm_functions.dir/functions/chi_square.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/chi_square.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/cosine_similarity.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/cosine_similarity.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/entropy.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/entropy.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/inner_product.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/inner_product.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/jeffrey_divergence.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/jeffrey_divergence.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/l2_norm.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/l2_norm.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/linear.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/linear.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/linf_distance.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/linf_distance.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/monitored_function.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/monitored_function.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/mutual_information.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/mutual_information.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/sum_parameterization.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/sum_parameterization.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/variance.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/variance.cc.o.d"
  "CMakeFiles/sgm_functions.dir/functions/whitened_function.cc.o"
  "CMakeFiles/sgm_functions.dir/functions/whitened_function.cc.o.d"
  "libsgm_functions.a"
  "libsgm_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
