file(REMOVE_RECURSE
  "libsgm_functions.a"
)
