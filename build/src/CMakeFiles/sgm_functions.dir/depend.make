# Empty dependencies file for sgm_functions.
# This may be replaced when dependencies are built.
