
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/ball.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/ball.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/ball.cc.o.d"
  "/root/repo/src/geometry/convex.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/convex.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/convex.cc.o.d"
  "/root/repo/src/geometry/ellipsoid.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/ellipsoid.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/ellipsoid.cc.o.d"
  "/root/repo/src/geometry/halfspace.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/halfspace.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/halfspace.cc.o.d"
  "/root/repo/src/geometry/safe_zone.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/safe_zone.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/safe_zone.cc.o.d"
  "/root/repo/src/geometry/volume.cc" "src/CMakeFiles/sgm_geometry.dir/geometry/volume.cc.o" "gcc" "src/CMakeFiles/sgm_geometry.dir/geometry/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
