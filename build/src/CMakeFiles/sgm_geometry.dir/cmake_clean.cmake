file(REMOVE_RECURSE
  "CMakeFiles/sgm_geometry.dir/geometry/ball.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/ball.cc.o.d"
  "CMakeFiles/sgm_geometry.dir/geometry/convex.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/convex.cc.o.d"
  "CMakeFiles/sgm_geometry.dir/geometry/ellipsoid.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/ellipsoid.cc.o.d"
  "CMakeFiles/sgm_geometry.dir/geometry/halfspace.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/halfspace.cc.o.d"
  "CMakeFiles/sgm_geometry.dir/geometry/safe_zone.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/safe_zone.cc.o.d"
  "CMakeFiles/sgm_geometry.dir/geometry/volume.cc.o"
  "CMakeFiles/sgm_geometry.dir/geometry/volume.cc.o.d"
  "libsgm_geometry.a"
  "libsgm_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
