file(REMOVE_RECURSE
  "libsgm_geometry.a"
)
