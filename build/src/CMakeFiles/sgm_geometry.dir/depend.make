# Empty dependencies file for sgm_geometry.
# This may be replaced when dependencies are built.
