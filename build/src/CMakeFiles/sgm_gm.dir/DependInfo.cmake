
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gm/bernoulli_gm.cc" "src/CMakeFiles/sgm_gm.dir/gm/bernoulli_gm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/bernoulli_gm.cc.o.d"
  "/root/repo/src/gm/bgm.cc" "src/CMakeFiles/sgm_gm.dir/gm/bgm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/bgm.cc.o.d"
  "/root/repo/src/gm/cvgm.cc" "src/CMakeFiles/sgm_gm.dir/gm/cvgm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/cvgm.cc.o.d"
  "/root/repo/src/gm/cvsgm.cc" "src/CMakeFiles/sgm_gm.dir/gm/cvsgm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/cvsgm.cc.o.d"
  "/root/repo/src/gm/gm.cc" "src/CMakeFiles/sgm_gm.dir/gm/gm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/gm.cc.o.d"
  "/root/repo/src/gm/pgm.cc" "src/CMakeFiles/sgm_gm.dir/gm/pgm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/pgm.cc.o.d"
  "/root/repo/src/gm/sgm.cc" "src/CMakeFiles/sgm_gm.dir/gm/sgm.cc.o" "gcc" "src/CMakeFiles/sgm_gm.dir/gm/sgm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
