file(REMOVE_RECURSE
  "CMakeFiles/sgm_gm.dir/gm/bernoulli_gm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/bernoulli_gm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/bgm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/bgm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/cvgm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/cvgm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/cvsgm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/cvsgm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/gm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/gm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/pgm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/pgm.cc.o.d"
  "CMakeFiles/sgm_gm.dir/gm/sgm.cc.o"
  "CMakeFiles/sgm_gm.dir/gm/sgm.cc.o.d"
  "libsgm_gm.a"
  "libsgm_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
