file(REMOVE_RECURSE
  "libsgm_gm.a"
)
