# Empty dependencies file for sgm_gm.
# This may be replaced when dependencies are built.
