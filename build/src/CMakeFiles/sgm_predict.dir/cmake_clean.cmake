file(REMOVE_RECURSE
  "CMakeFiles/sgm_predict.dir/predict/model.cc.o"
  "CMakeFiles/sgm_predict.dir/predict/model.cc.o.d"
  "libsgm_predict.a"
  "libsgm_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
