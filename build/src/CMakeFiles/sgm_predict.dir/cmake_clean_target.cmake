file(REMOVE_RECURSE
  "libsgm_predict.a"
)
