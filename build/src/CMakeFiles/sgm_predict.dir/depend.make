# Empty dependencies file for sgm_predict.
# This may be replaced when dependencies are built.
