
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/coordinator_node.cc" "src/CMakeFiles/sgm_runtime.dir/runtime/coordinator_node.cc.o" "gcc" "src/CMakeFiles/sgm_runtime.dir/runtime/coordinator_node.cc.o.d"
  "/root/repo/src/runtime/driver.cc" "src/CMakeFiles/sgm_runtime.dir/runtime/driver.cc.o" "gcc" "src/CMakeFiles/sgm_runtime.dir/runtime/driver.cc.o.d"
  "/root/repo/src/runtime/serialization.cc" "src/CMakeFiles/sgm_runtime.dir/runtime/serialization.cc.o" "gcc" "src/CMakeFiles/sgm_runtime.dir/runtime/serialization.cc.o.d"
  "/root/repo/src/runtime/site_node.cc" "src/CMakeFiles/sgm_runtime.dir/runtime/site_node.cc.o" "gcc" "src/CMakeFiles/sgm_runtime.dir/runtime/site_node.cc.o.d"
  "/root/repo/src/runtime/transport.cc" "src/CMakeFiles/sgm_runtime.dir/runtime/transport.cc.o" "gcc" "src/CMakeFiles/sgm_runtime.dir/runtime/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_estimators.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
