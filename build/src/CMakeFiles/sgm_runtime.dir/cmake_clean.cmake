file(REMOVE_RECURSE
  "CMakeFiles/sgm_runtime.dir/runtime/coordinator_node.cc.o"
  "CMakeFiles/sgm_runtime.dir/runtime/coordinator_node.cc.o.d"
  "CMakeFiles/sgm_runtime.dir/runtime/driver.cc.o"
  "CMakeFiles/sgm_runtime.dir/runtime/driver.cc.o.d"
  "CMakeFiles/sgm_runtime.dir/runtime/serialization.cc.o"
  "CMakeFiles/sgm_runtime.dir/runtime/serialization.cc.o.d"
  "CMakeFiles/sgm_runtime.dir/runtime/site_node.cc.o"
  "CMakeFiles/sgm_runtime.dir/runtime/site_node.cc.o.d"
  "CMakeFiles/sgm_runtime.dir/runtime/transport.cc.o"
  "CMakeFiles/sgm_runtime.dir/runtime/transport.cc.o.d"
  "libsgm_runtime.a"
  "libsgm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
