file(REMOVE_RECURSE
  "libsgm_runtime.a"
)
