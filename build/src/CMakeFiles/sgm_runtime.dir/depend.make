# Empty dependencies file for sgm_runtime.
# This may be replaced when dependencies are built.
