
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/sgm_sim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/sgm_sim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/sgm_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/sgm_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/multi_query.cc" "src/CMakeFiles/sgm_sim.dir/sim/multi_query.cc.o" "gcc" "src/CMakeFiles/sgm_sim.dir/sim/multi_query.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/sgm_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/sgm_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/protocol.cc" "src/CMakeFiles/sgm_sim.dir/sim/protocol.cc.o" "gcc" "src/CMakeFiles/sgm_sim.dir/sim/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sgm_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
