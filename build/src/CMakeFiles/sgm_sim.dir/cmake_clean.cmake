file(REMOVE_RECURSE
  "CMakeFiles/sgm_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/sgm_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/sgm_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/sgm_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/sgm_sim.dir/sim/multi_query.cc.o"
  "CMakeFiles/sgm_sim.dir/sim/multi_query.cc.o.d"
  "CMakeFiles/sgm_sim.dir/sim/network.cc.o"
  "CMakeFiles/sgm_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/sgm_sim.dir/sim/protocol.cc.o"
  "CMakeFiles/sgm_sim.dir/sim/protocol.cc.o.d"
  "libsgm_sim.a"
  "libsgm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
