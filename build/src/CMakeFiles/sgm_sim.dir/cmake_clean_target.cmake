file(REMOVE_RECURSE
  "libsgm_sim.a"
)
