# Empty compiler generated dependencies file for sgm_sim.
# This may be replaced when dependencies are built.
