file(REMOVE_RECURSE
  "CMakeFiles/sgm_sketch.dir/sketch/ams_sketch.cc.o"
  "CMakeFiles/sgm_sketch.dir/sketch/ams_sketch.cc.o.d"
  "CMakeFiles/sgm_sketch.dir/sketch/sketch_functions.cc.o"
  "CMakeFiles/sgm_sketch.dir/sketch/sketch_functions.cc.o.d"
  "libsgm_sketch.a"
  "libsgm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
