file(REMOVE_RECURSE
  "libsgm_sketch.a"
)
