# Empty dependencies file for sgm_sketch.
# This may be replaced when dependencies are built.
