file(REMOVE_RECURSE
  "CMakeFiles/ball_test.dir/ball_test.cc.o"
  "CMakeFiles/ball_test.dir/ball_test.cc.o.d"
  "ball_test"
  "ball_test.pdb"
  "ball_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ball_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
