file(REMOVE_RECURSE
  "CMakeFiles/convex_test.dir/convex_test.cc.o"
  "CMakeFiles/convex_test.dir/convex_test.cc.o.d"
  "convex_test"
  "convex_test.pdb"
  "convex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
