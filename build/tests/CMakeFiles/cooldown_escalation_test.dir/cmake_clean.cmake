file(REMOVE_RECURSE
  "CMakeFiles/cooldown_escalation_test.dir/cooldown_escalation_test.cc.o"
  "CMakeFiles/cooldown_escalation_test.dir/cooldown_escalation_test.cc.o.d"
  "cooldown_escalation_test"
  "cooldown_escalation_test.pdb"
  "cooldown_escalation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooldown_escalation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
