# Empty compiler generated dependencies file for cooldown_escalation_test.
# This may be replaced when dependencies are built.
