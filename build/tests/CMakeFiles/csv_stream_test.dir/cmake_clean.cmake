file(REMOVE_RECURSE
  "CMakeFiles/csv_stream_test.dir/csv_stream_test.cc.o"
  "CMakeFiles/csv_stream_test.dir/csv_stream_test.cc.o.d"
  "csv_stream_test"
  "csv_stream_test.pdb"
  "csv_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
