# Empty dependencies file for csv_stream_test.
# This may be replaced when dependencies are built.
