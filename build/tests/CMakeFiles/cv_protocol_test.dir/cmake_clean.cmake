file(REMOVE_RECURSE
  "CMakeFiles/cv_protocol_test.dir/cv_protocol_test.cc.o"
  "CMakeFiles/cv_protocol_test.dir/cv_protocol_test.cc.o.d"
  "cv_protocol_test"
  "cv_protocol_test.pdb"
  "cv_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
