# Empty dependencies file for cv_protocol_test.
# This may be replaced when dependencies are built.
