file(REMOVE_RECURSE
  "CMakeFiles/ellipsoid_test.dir/ellipsoid_test.cc.o"
  "CMakeFiles/ellipsoid_test.dir/ellipsoid_test.cc.o.d"
  "ellipsoid_test"
  "ellipsoid_test.pdb"
  "ellipsoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ellipsoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
