# Empty dependencies file for ellipsoid_test.
# This may be replaced when dependencies are built.
