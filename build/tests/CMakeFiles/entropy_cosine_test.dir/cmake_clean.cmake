file(REMOVE_RECURSE
  "CMakeFiles/entropy_cosine_test.dir/entropy_cosine_test.cc.o"
  "CMakeFiles/entropy_cosine_test.dir/entropy_cosine_test.cc.o.d"
  "entropy_cosine_test"
  "entropy_cosine_test.pdb"
  "entropy_cosine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_cosine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
