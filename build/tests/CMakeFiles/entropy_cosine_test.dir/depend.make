# Empty dependencies file for entropy_cosine_test.
# This may be replaced when dependencies are built.
