file(REMOVE_RECURSE
  "CMakeFiles/experiment_util_test.dir/experiment_util_test.cc.o"
  "CMakeFiles/experiment_util_test.dir/experiment_util_test.cc.o.d"
  "experiment_util_test"
  "experiment_util_test.pdb"
  "experiment_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
