file(REMOVE_RECURSE
  "CMakeFiles/function_enclosure_property_test.dir/function_enclosure_property_test.cc.o"
  "CMakeFiles/function_enclosure_property_test.dir/function_enclosure_property_test.cc.o.d"
  "function_enclosure_property_test"
  "function_enclosure_property_test.pdb"
  "function_enclosure_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_enclosure_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
