# Empty compiler generated dependencies file for function_enclosure_property_test.
# This may be replaced when dependencies are built.
