file(REMOVE_RECURSE
  "CMakeFiles/gm_protocol_test.dir/gm_protocol_test.cc.o"
  "CMakeFiles/gm_protocol_test.dir/gm_protocol_test.cc.o.d"
  "gm_protocol_test"
  "gm_protocol_test.pdb"
  "gm_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
