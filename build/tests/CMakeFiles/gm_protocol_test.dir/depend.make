# Empty dependencies file for gm_protocol_test.
# This may be replaced when dependencies are built.
