file(REMOVE_RECURSE
  "CMakeFiles/horvitz_thompson_test.dir/horvitz_thompson_test.cc.o"
  "CMakeFiles/horvitz_thompson_test.dir/horvitz_thompson_test.cc.o.d"
  "horvitz_thompson_test"
  "horvitz_thompson_test.pdb"
  "horvitz_thompson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horvitz_thompson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
