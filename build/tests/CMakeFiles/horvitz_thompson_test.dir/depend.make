# Empty dependencies file for horvitz_thompson_test.
# This may be replaced when dependencies are built.
