file(REMOVE_RECURSE
  "CMakeFiles/protocol_base_test.dir/protocol_base_test.cc.o"
  "CMakeFiles/protocol_base_test.dir/protocol_base_test.cc.o.d"
  "protocol_base_test"
  "protocol_base_test.pdb"
  "protocol_base_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
