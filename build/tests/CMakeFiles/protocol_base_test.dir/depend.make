# Empty dependencies file for protocol_base_test.
# This may be replaced when dependencies are built.
