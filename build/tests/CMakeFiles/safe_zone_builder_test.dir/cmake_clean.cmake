file(REMOVE_RECURSE
  "CMakeFiles/safe_zone_builder_test.dir/safe_zone_builder_test.cc.o"
  "CMakeFiles/safe_zone_builder_test.dir/safe_zone_builder_test.cc.o.d"
  "safe_zone_builder_test"
  "safe_zone_builder_test.pdb"
  "safe_zone_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_zone_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
