# Empty compiler generated dependencies file for safe_zone_builder_test.
# This may be replaced when dependencies are built.
