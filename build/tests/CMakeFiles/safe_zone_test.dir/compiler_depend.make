# Empty compiler generated dependencies file for safe_zone_test.
# This may be replaced when dependencies are built.
