file(REMOVE_RECURSE
  "CMakeFiles/sgm_protocol_test.dir/sgm_protocol_test.cc.o"
  "CMakeFiles/sgm_protocol_test.dir/sgm_protocol_test.cc.o.d"
  "sgm_protocol_test"
  "sgm_protocol_test.pdb"
  "sgm_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
