# Empty dependencies file for sgm_protocol_test.
# This may be replaced when dependencies are built.
