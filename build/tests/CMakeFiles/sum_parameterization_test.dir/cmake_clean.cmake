file(REMOVE_RECURSE
  "CMakeFiles/sum_parameterization_test.dir/sum_parameterization_test.cc.o"
  "CMakeFiles/sum_parameterization_test.dir/sum_parameterization_test.cc.o.d"
  "sum_parameterization_test"
  "sum_parameterization_test.pdb"
  "sum_parameterization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sum_parameterization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
