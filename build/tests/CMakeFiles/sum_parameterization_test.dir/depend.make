# Empty dependencies file for sum_parameterization_test.
# This may be replaced when dependencies are built.
