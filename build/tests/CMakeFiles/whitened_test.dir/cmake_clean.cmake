file(REMOVE_RECURSE
  "CMakeFiles/whitened_test.dir/whitened_test.cc.o"
  "CMakeFiles/whitened_test.dir/whitened_test.cc.o.d"
  "whitened_test"
  "whitened_test.pdb"
  "whitened_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitened_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
