# Empty compiler generated dependencies file for whitened_test.
# This may be replaced when dependencies are built.
