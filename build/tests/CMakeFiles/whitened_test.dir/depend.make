# Empty dependencies file for whitened_test.
# This may be replaced when dependencies are built.
