file(REMOVE_RECURSE
  "CMakeFiles/sgm_monitor.dir/sgm_monitor.cc.o"
  "CMakeFiles/sgm_monitor.dir/sgm_monitor.cc.o.d"
  "sgm_monitor"
  "sgm_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgm_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
