# Empty dependencies file for sgm_monitor.
# This may be replaced when dependencies are built.
