// Embedding the message-passing runtime (src/runtime): the deployment-shaped
// API where each SiteNode sees only its own data and everything flows
// through an explicit Transport — swap InMemoryBus for your RPC layer and
// the same nodes run distributed.
//
// Scenario: 64 edge collectors each hold a sliding histogram of recent
// request latencies; operations wants a standing alert on whether the
// fleet-average histogram has drifted (L∞) more than 5 slots from the last
// agreed baseline.

#include <cstdio>

#include "data/jester_like.h"
#include "functions/linf_distance.h"
#include "runtime/driver.h"

int main() {
  // Reusing the histogram workload generator as the "edge collectors".
  sgm::JesterLikeConfig workload;
  workload.num_sites = 64;
  workload.window = 80;
  workload.seed = 4096;
  sgm::JesterLikeGenerator collectors(workload);

  const sgm::LInfDistance drift{sgm::Vector(workload.num_buckets)};

  sgm::RuntimeConfig config;
  config.threshold = 5.0;
  config.delta = 0.1;
  config.max_step_norm = collectors.max_step_norm();
  config.drift_norm_cap = collectors.max_drift_norm();

  sgm::RuntimeDriver driver(workload.num_sites, drift, config);

  std::vector<sgm::Vector> locals;
  collectors.Advance(&locals);
  driver.Initialize(locals);
  std::printf("baseline agreed; eps_T = %.2f\n\n",
              driver.coordinator().epsilon_T());

  bool last_alert = driver.coordinator().BelievesAbove();
  const long cycles = 2500;
  for (long t = 1; t <= cycles; ++t) {
    collectors.Advance(&locals);
    driver.Tick(locals);
    const bool alert = driver.coordinator().BelievesAbove();
    if (alert != last_alert) {
      std::printf("cycle %5ld: fleet histogram drift %s threshold\n", t,
                  alert ? "EXCEEDED" : "back under");
      last_alert = alert;
    }
  }

  const auto& bus = driver.bus();
  std::printf("\nafter %ld cycles x %d sites (%ld site-updates):\n", cycles,
              workload.num_sites,
              cycles * static_cast<long>(workload.num_sites));
  std::printf("  messages on the bus : %ld (%.4f per site-update)\n",
              bus.messages_sent(),
              static_cast<double>(bus.site_messages_sent()) /
                  static_cast<double>(cycles * workload.num_sites));
  std::printf("  bytes               : %.0f\n", bus.bytes_sent());
  std::printf("  full syncs          : %ld\n",
              driver.coordinator().full_syncs());
  std::printf("  partial resolutions : %ld\n",
              driver.coordinator().partial_resolutions());
  std::printf("\nNaive continuous collection would have cost %ld messages.\n",
              cycles * static_cast<long>(workload.num_sites));
  return 0;
}
