// News-stream monitoring (the paper's running example and Reuters workload):
// a federation of news outlets tracks whether a term has become strongly
// associated with a category — χ² association score over windowed
// (term, category) contingency counts — raising a detection whenever the
// score crosses the threshold, at a fraction of GM's communication.

#include <cstdio>

#include "data/reuters_like.h"
#include "functions/chi_square.h"
#include "functions/mutual_information.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"

namespace {

// A detection-log protocol wrapper would be overkill here: we simply run
// cycle by cycle and report the coordinator's belief transitions.
void RunWithDetections(sgm::StreamSource* stream, sgm::Protocol* protocol,
                       long cycles) {
  std::vector<sgm::Vector> locals;
  stream->Advance(&locals);
  sgm::Metrics metrics;
  protocol->Initialize(locals, &metrics);

  bool last_belief = protocol->BelievesAbove();
  long detections = 0;
  for (long t = 1; t <= cycles; ++t) {
    stream->Advance(&locals);
    protocol->OnCycle(locals, &metrics);
    const bool belief = protocol->BelievesAbove();
    if (belief != last_belief) {
      std::printf("  cycle %5ld: association %s threshold (%s)\n", t,
                  belief ? "ROSE ABOVE" : "fell below", protocol->name().c_str());
      last_belief = belief;
      ++detections;
    }
  }
  metrics.Finalize();
  std::printf("  -> %ld detections, %ld messages, %ld full syncs, "
              "%ld false positives\n\n",
              detections, metrics.total_messages(), metrics.full_syncs(),
              metrics.false_positives());
}

}  // namespace

int main() {
  sgm::ReutersLikeConfig config;
  config.num_sites = 75;
  config.seed = 99;
  const long cycles = 4000;

  // The association query of the paper's Reuters experiments: normalized χ²
  // of the (term, category) contingency table over each outlet's last 200
  // stories, thresholded at 0.5 (moderate association).
  const sgm::ChiSquare chi(static_cast<double>(config.window));
  const double threshold = 0.5;

  std::printf("== GM coordinator log ==\n");
  {
    sgm::ReutersLikeGenerator stream(config);
    sgm::GeometricMonitor gm(chi, threshold, stream.max_step_norm());
    gm.set_drift_norm_cap(stream.max_drift_norm());
    RunWithDetections(&stream, &gm, cycles);
  }

  std::printf("== SGM coordinator log (delta = 0.1) ==\n");
  {
    sgm::ReutersLikeGenerator stream(config);
    sgm::SgmOptions options;
    sgm::SamplingGeometricMonitor monitor(chi, threshold,
                                          stream.max_step_norm(), options);
    monitor.set_drift_norm_cap(stream.max_drift_norm());
    RunWithDetections(&stream, &monitor, cycles);
  }

  // The same infrastructure also tracks the running example's Mutual
  // Information query — swap the function, keep everything else.
  std::printf("== SGM on Mutual Information (running example) ==\n");
  {
    sgm::ReutersLikeGenerator stream(config);
    const sgm::MutualInformation mi(static_cast<double>(config.window),
                                    config.num_sites);
    sgm::SgmOptions options;
    sgm::SamplingGeometricMonitor monitor(mi, mi.ExampleThreshold(),
                                          stream.max_step_norm(), options);
    monitor.set_drift_norm_cap(stream.max_drift_norm());
    RunWithDetections(&stream, &monitor, cycles);
  }
  return 0;
}
