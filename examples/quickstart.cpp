// Quickstart: monitor a non-linear function of a distributed average with
// the sampling-based geometric monitor (SGM), and compare its communication
// cost against classic Geometric Monitoring (GM) on the same stream.
//
// The task: 200 sites each maintain a 4-dimensional measurement vector that
// drifts over time; the coordinator must know at all times whether the
// Euclidean norm of the global average exceeds T = 2.5 — without streaming
// every update to the center.

#include <cstdio>

#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"

int main() {
  // 1. A workload: 200 sites with drifting local vectors. Any StreamSource
  //    works here; real deployments would feed live per-site updates.
  sgm::SyntheticDriftConfig config;
  config.num_sites = 200;
  config.dim = 4;
  config.seed = 7;

  // 2. The query: is ‖average‖ > 2.5? Any MonitoredFunction plugs in the
  //    same way (L∞/Jeffrey distances, χ², variance, join sizes, ...).
  const sgm::L2Norm norm;
  const double threshold = 2.5;
  const long cycles = 2000;

  // 3. Baseline: Sharfman et al.'s Geometric Monitoring.
  sgm::SyntheticDriftGenerator gm_stream(config);
  sgm::GeometricMonitor gm(norm, threshold, gm_stream.max_step_norm());
  const sgm::RunResult gm_run = sgm::Simulate(&gm_stream, &gm, cycles);

  // 4. This library's contribution: SGM — only a √N-sized, drift-weighted
  //    sample of sites monitors each cycle; alarms are vetted against a
  //    Horvitz–Thompson estimate before anyone pays for a full sync.
  sgm::SyntheticDriftGenerator sgm_stream(config);  // identical stream
  sgm::SgmOptions options;
  options.delta = 0.1;  // the single accuracy knob: FN tolerance
  sgm::SamplingGeometricMonitor sampling_monitor(
      norm, threshold, sgm_stream.max_step_norm(), options);
  const sgm::RunResult sgm_run =
      sgm::Simulate(&sgm_stream, &sampling_monitor, cycles);

  std::printf("monitoring ||avg|| > %.2f over %d sites for %ld cycles\n\n",
              threshold, config.num_sites, cycles);
  std::printf("%-28s %12s %12s %6s %10s\n", "protocol", "messages", "bytes",
              "FPs", "FN cycles");
  std::printf("%-28s %12ld %12.0f %6ld %10ld\n", "GM (exact)",
              gm_run.metrics.total_messages(), gm_run.metrics.total_bytes(),
              gm_run.metrics.false_positives(),
              gm_run.metrics.false_negative_cycles());
  std::printf("%-28s %12ld %12.0f %6ld %10ld\n", "SGM (delta = 0.1)",
              sgm_run.metrics.total_messages(), sgm_run.metrics.total_bytes(),
              sgm_run.metrics.false_positives(),
              sgm_run.metrics.false_negative_cycles());
  std::printf("\nmessage reduction: %.1fx;  FN-cycle rate: %.4f "
              "(guaranteed < delta = %.2f)\n",
              static_cast<double>(gm_run.metrics.total_messages()) /
                  static_cast<double>(sgm_run.metrics.total_messages()),
              static_cast<double>(sgm_run.metrics.false_negative_cycles()) /
                  static_cast<double>(sgm_run.cycles),
              options.delta);
  return 0;
}
