// Ratings-histogram drift monitoring (the paper's Jester workload): a large
// recommendation platform watches how far the global rating histogram has
// drifted — in Jeffrey divergence — from the snapshot shipped at the last
// synchronization. Demonstrates the revised 1-d safe-zone scheme (CVSGM)
// and its byte savings from shipping scalar signed distances instead of
// d-dimensional histograms during false-positive resolution.

#include <cstdio>

#include "data/jester_like.h"
#include "functions/jeffrey_divergence.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"

namespace {

void Report(const char* label, const sgm::RunResult& r, int num_sites) {
  std::printf("%-24s msgs %8ld  bytes %10.0f  full %4ld  cheap-resolve %5ld"
              "  FP %4ld  FN-cycles %4ld  per-site %.4f\n",
              label, r.metrics.total_messages(), r.metrics.total_bytes(),
              r.metrics.full_syncs(),
              r.metrics.partial_resolutions() + r.metrics.one_d_resolutions(),
              r.metrics.false_positives(), r.metrics.false_negative_cycles(),
              r.metrics.SiteMessagesPerUpdate(num_sites));
}

}  // namespace

int main() {
  sgm::JesterLikeConfig config;
  config.num_sites = 500;
  config.seed = 5;
  const long cycles = 3000;

  const sgm::JeffreyDivergence jd{sgm::Vector(config.num_buckets)};
  const double threshold = 10.0;

  std::printf("JD drift monitoring over %d sites, %zu-bucket histograms, "
              "T = %.1f\n\n", config.num_sites, config.num_buckets, threshold);

  {
    sgm::JesterLikeGenerator stream(config);
    sgm::GeometricMonitor gm(jd, threshold, stream.max_step_norm());
    gm.set_drift_norm_cap(stream.max_drift_norm());
    Report("GM", sgm::Simulate(&stream, &gm, cycles), config.num_sites);
  }
  {
    sgm::JesterLikeGenerator stream(config);
    sgm::SgmOptions options;
    sgm::SamplingGeometricMonitor monitor(jd, threshold,
                                          stream.max_step_norm(), options);
    monitor.set_drift_norm_cap(stream.max_drift_norm());
    Report("SGM", sgm::Simulate(&stream, &monitor, cycles), config.num_sites);
  }
  {
    sgm::JesterLikeGenerator stream(config);
    sgm::CvsgmOptions options;
    sgm::CvSamplingMonitor monitor(jd, threshold, stream.max_step_norm(),
                                   options);
    monitor.set_drift_norm_cap(stream.max_drift_norm());
    Report("CVSGM (1-d mapping)", sgm::Simulate(&stream, &monitor, cycles),
           config.num_sites);
  }

  std::printf("\nCVSGM's cheap resolutions move one double per site instead "
              "of a %zu-dimensional histogram — the Lemma-4 unidimensional "
              "mapping at work.\n", config.num_buckets);
  return 0;
}
