// Sum-parameterized monitoring (Section 7): a sensor fleet tracks the
// dispersion (standard deviation across histogram buckets) of the *total*
// measurement histogram — a sum-parameterized query, since the fleet cares
// about absolute volume, not the per-sensor average. Demonstrates the two
// equivalent formulations the paper analyzes:
//   * Adapted Vectors  — monitor f(N·v) against T (drifts scale by N);
//   * Function Transformation — monitor f(v) against T / N^α (α = 1 for
//     stdev), which Lemma 7 proves yields the identical tracking scheme.

#include <cstdio>

#include "data/jester_like.h"
#include "functions/sum_parameterization.h"
#include "functions/variance.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "sim/network.h"

namespace {

sgm::RunResult RunSgm(const sgm::MonitoredFunction& f, double threshold,
                      const sgm::JesterLikeConfig& config, long cycles) {
  sgm::JesterLikeGenerator stream(config);
  sgm::SgmOptions options;
  sgm::SamplingGeometricMonitor monitor(f, threshold, stream.max_step_norm(),
                                        options);
  monitor.set_drift_norm_cap(stream.max_drift_norm());
  return sgm::Simulate(&stream, &monitor, cycles);
}

}  // namespace

int main() {
  sgm::JesterLikeConfig config;
  config.num_sites = 400;
  config.seed = 21;
  const long cycles = 2500;
  const double sum_threshold = 5000.0;  // on the fleet-total dispersion

  const sgm::CoordinateDispersion stdev(false);
  double degree = 0.0;
  stdev.HomogeneityDegree(&degree);
  std::printf("stdev is homogeneous of degree %.0f; RRG(N=%d) = %.0f "
              "(Section 7.2)\n\n",
              degree, config.num_sites,
              sgm::RelativeRateOfGrowth(degree, config.num_sites));

  // Adapted Vectors: wrap the function so inputs (and implicitly all drift
  // balls) scale by N.
  const sgm::ScaledInputFunction sum_stdev(
      sgm::CoordinateDispersion::StdDev(),
      static_cast<double>(config.num_sites));
  const sgm::RunResult adapted =
      RunSgm(sum_stdev, sum_threshold, config, cycles);

  // Function Transformation: monitor the plain average-parameterized stdev
  // against the transformed threshold T / N.
  const double avg_threshold =
      sgm::TransformThresholdForAverage(stdev, sum_threshold,
                                        config.num_sites);
  const sgm::RunResult transformed =
      RunSgm(stdev, avg_threshold, config, cycles);

  std::printf("%-32s %10s %6s %10s\n", "formulation", "messages", "FPs",
              "FN cycles");
  std::printf("%-32s %10ld %6ld %10ld\n", "adapted vectors f(N*v) <= T",
              adapted.metrics.total_messages(),
              adapted.metrics.false_positives(),
              adapted.metrics.false_negative_cycles());
  std::printf("%-32s %10ld %6ld %10ld\n", "transformed f(v) <= T/N",
              transformed.metrics.total_messages(),
              transformed.metrics.false_positives(),
              transformed.metrics.false_negative_cycles());
  std::printf("\nLemma 7: the two formulations are isometric — every "
              "crossing decision matches, so the monitored-quantity "
              "timelines coincide (counts above differ only through "
              "independent sampling coin flips).\n");
  return 0;
}
