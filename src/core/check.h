#ifndef SGM_CORE_CHECK_H_
#define SGM_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Fatal invariant-checking macros in the RocksDB/Arrow tradition.
///
/// The library does not use exceptions (see DESIGN.md); recoverable errors
/// travel through sgm::Status / sgm::Result, while programming errors and
/// broken internal invariants abort via SGM_CHECK.

/// Aborts the process with a diagnostic if `condition` is false.
///
/// Use for conditions that can only fail due to a bug in the library or in
/// the caller's use of it, never for data-dependent runtime errors.
#define SGM_CHECK(condition)                                                  \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "SGM_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #condition);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

/// SGM_CHECK with a printf-style explanatory message appended.
#define SGM_CHECK_MSG(condition, ...)                                         \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "SGM_CHECK failed at %s:%d: %s: ", __FILE__,       \
                   __LINE__, #condition);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fprintf(stderr, "\n");                                             \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

/// Debug-only variant of SGM_CHECK; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SGM_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define SGM_DCHECK(condition) SGM_CHECK(condition)
#endif

#endif  // SGM_CORE_CHECK_H_
