#include "core/crc32c.h"

#include <array>

namespace sgm {
namespace {

/// Reflected-table construction for the Castagnoli polynomial. Built once at
/// first use; 1 KiB, byte-at-a-time processing. Throughput is irrelevant at
/// our frame sizes (tens to thousands of bytes) — determinism is the point.
const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size) {
  const auto& table = Table();
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32c(const std::uint8_t* data, std::size_t size) {
  return Crc32cExtend(kCrc32cInit, data, size);
}

}  // namespace sgm
