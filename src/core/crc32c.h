#ifndef SGM_CORE_CRC32C_H_
#define SGM_CORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sgm {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) over a byte range.
/// Table-driven software implementation — deterministic across platforms,
/// no hardware intrinsics. Detects all single-bit and all two-bit errors in
/// frames far larger than anything this codebase serializes, which is why
/// both the wire format (v4) and the checkpoint codec use it as their
/// integrity check.
std::uint32_t Crc32c(const std::uint8_t* data, std::size_t size);

/// Incremental form: feed `crc` from a previous call to extend the checksum
/// over a discontiguous range. Start with `kCrc32cInit`.
inline constexpr std::uint32_t kCrc32cInit = 0u;
std::uint32_t Crc32cExtend(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size);

}  // namespace sgm

#endif  // SGM_CORE_CRC32C_H_
