#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SGM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  SGM_CHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
  // Two splitmix64 steps over (seed, stream): the first whitens the master
  // seed, the second folds in the stream id, so nearby (seed, stream) pairs
  // land on unrelated points of the sequence.
  std::uint64_t state = seed;
  const std::uint64_t whitened = SplitMix64(&state);
  state = whitened ^ (stream + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(&state);
}

}  // namespace sgm
