#ifndef SGM_CORE_RNG_H_
#define SGM_CORE_RNG_H_

#include <cstdint>

namespace sgm {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Every stochastic component of the library — the sites' independent biased
/// coin flips, the dataset generators, the Monte-Carlo geometry estimators —
/// draws from an explicitly-seeded Rng so that simulations and tests are
/// bit-reproducible across runs and platforms. No global RNG state exists
/// anywhere in the library.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams
  /// (seed expansion via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponential deviate with rate `lambda` > 0.
  double NextExponential(double lambda);

  /// Derives an independent child generator; used to hand every simulated
  /// site its own stream so per-site randomness is order-independent.
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Derives an independent sub-seed from a master seed and a stream id
/// (splitmix64 over the pair). The deterministic-simulation components use
/// this to fan one replayable seed out into per-link / per-site / per-config
/// streams whose draws never interleave: consuming randomness on one stream
/// cannot shift another stream's sequence.
std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace sgm

#endif  // SGM_CORE_RNG_H_
