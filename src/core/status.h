#ifndef SGM_CORE_STATUS_H_
#define SGM_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/check.h"

namespace sgm {

/// Machine-readable error category, modeled after Arrow/RocksDB status codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
};

/// Lightweight success/error result for fallible operations.
///
/// The library is exception-free: every operation that can fail for
/// data-dependent reasons returns a Status (or a Result<T>, below).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs an error status with a human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    SGM_CHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder, the exception-free analogue of `T` returns.
///
/// A Result is either a value of type T or an error Status; `ok()`
/// discriminates and `ValueOrDie()` asserts the value case.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T> (same convenience contract as arrow::Result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error Status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    SGM_CHECK_MSG(!std::get<Status>(payload_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Returns the value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    SGM_CHECK_MSG(ok(), "Result::ValueOrDie on error: %s",
                  std::get<Status>(payload_).ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    SGM_CHECK_MSG(ok(), "Result::ValueOrDie on error: %s",
                  std::get<Status>(payload_).ToString().c_str());
    return std::move(std::get<T>(payload_));
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define SGM_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::sgm::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace sgm

#endif  // SGM_CORE_STATUS_H_
