#include "core/vector.h"

#include <cmath>
#include <cstdio>

namespace sgm {

Vector& Vector::operator+=(const Vector& rhs) {
  SGM_CHECK(dim() == rhs.dim());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  SGM_CHECK(dim() == rhs.dim());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  SGM_CHECK(scalar != 0.0);
  for (double& x : data_) x /= scalar;
  return *this;
}

Vector& Vector::Axpy(double scalar, const Vector& rhs) {
  SGM_CHECK(dim() == rhs.dim());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * rhs.data_[i];
  }
  return *this;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return sum;
}

double Vector::L1Norm() const {
  double sum = 0.0;
  for (double x : data_) sum += std::abs(x);
  return sum;
}

double Vector::LInfNorm() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

double Vector::Dot(const Vector& rhs) const {
  SGM_CHECK(dim() == rhs.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += data_[i] * rhs.data_[i];
  }
  return sum;
}

double Vector::DistanceTo(const Vector& rhs) const {
  SGM_CHECK(dim() == rhs.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double diff = data_[i] - rhs.data_[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

void Vector::SetZero() {
  for (double& x : data_) x = 0.0;
}

std::string Vector::ToString() const {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < data_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", data_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += "]";
  return out;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(Vector lhs, double scalar) {
  lhs *= scalar;
  return lhs;
}

Vector operator*(double scalar, Vector rhs) {
  rhs *= scalar;
  return rhs;
}

Vector operator/(Vector lhs, double scalar) {
  lhs /= scalar;
  return lhs;
}

Vector Mean(const std::vector<Vector>& vectors) {
  Vector sum = Sum(vectors);
  sum /= static_cast<double>(vectors.size());
  return sum;
}

Vector Sum(const std::vector<Vector>& vectors) {
  SGM_CHECK(!vectors.empty());
  Vector sum(vectors.front().dim());
  for (const Vector& v : vectors) sum += v;
  return sum;
}

}  // namespace sgm
