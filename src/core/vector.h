#ifndef SGM_CORE_VECTOR_H_
#define SGM_CORE_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/check.h"

namespace sgm {

/// Dense d-dimensional measurement vector.
///
/// This is the fundamental data type of the geometric-monitoring library:
/// every site maintains a local measurements vector v_i(t), the coordinator
/// maintains the estimate vector e(t), and drift/deviation vectors are
/// differences of these. The type is a thin, value-semantic wrapper over
/// std::vector<double> with the linear-algebra operations the protocols need
/// (L1/L2/Linf norms, axpy-style updates, dot products).
///
/// Dimension mismatches in arithmetic are programming errors and abort via
/// SGM_CHECK (debug-friendly; the protocols never mix dimensionalities).
class Vector {
 public:
  Vector() = default;

  /// Zero vector of dimension `dim`.
  explicit Vector(std::size_t dim) : data_(dim, 0.0) {}

  /// Vector with all coordinates set to `fill`.
  Vector(std::size_t dim, double fill) : data_(dim, fill) {}

  /// From explicit coordinates, e.g. `Vector({1.0, 2.0, 3.0})`.
  Vector(std::initializer_list<double> coords) : data_(coords) {}

  /// From an existing buffer.
  explicit Vector(std::vector<double> coords) : data_(std::move(coords)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  std::size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](std::size_t i) const {
    SGM_DCHECK(i < data_.size());
    return data_[i];
  }
  double& operator[](std::size_t i) {
    SGM_DCHECK(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }

  /// In-place arithmetic. All binary forms SGM_CHECK equal dimensions.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// Adds `scalar * rhs` to this vector (BLAS axpy).
  Vector& Axpy(double scalar, const Vector& rhs);

  /// Euclidean (L2) norm — the `‖y‖` of the paper (Table 1).
  double Norm() const;
  /// Squared Euclidean norm, avoids the sqrt.
  double SquaredNorm() const;
  /// Sum of absolute coordinate values.
  double L1Norm() const;
  /// Maximum absolute coordinate value.
  double LInfNorm() const;
  /// Sum of coordinates (histogram mass, contingency-table total, ...).
  double Sum() const;

  double Dot(const Vector& rhs) const;

  /// Euclidean distance to `rhs`.
  double DistanceTo(const Vector& rhs) const;

  /// Sets all coordinates to zero, keeping the dimension.
  void SetZero();

  /// "[x0, x1, ...]" with limited precision, for logs and test output.
  std::string ToString() const;

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

/// Value-returning arithmetic helpers.
Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector lhs, double scalar);
Vector operator*(double scalar, Vector rhs);
Vector operator/(Vector lhs, double scalar);

/// Arithmetic mean of `vectors`; SGM_CHECKs a non-empty, equal-dim input.
Vector Mean(const std::vector<Vector>& vectors);

/// Coordinate-wise sum of `vectors`; SGM_CHECKs a non-empty input.
Vector Sum(const std::vector<Vector>& vectors);

}  // namespace sgm

#endif  // SGM_CORE_VECTOR_H_
