#ifndef SGM_CORE_VERSION_H_
#define SGM_CORE_VERSION_H_

namespace sgm {

/// Build/version string reported by the ops endpoints (/healthz) and any
/// artifact that wants to name the producing build. Bumped with the library,
/// not per-commit: it identifies a wire/trace-format generation, so two
/// processes reporting different strings should not be mixed in one
/// deployment.
inline constexpr const char kSgmVersion[] = "sgm/0.9.0";

}  // namespace sgm

#endif  // SGM_CORE_VERSION_H_
