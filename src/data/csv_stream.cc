#include "data/csv_stream.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/check.h"

namespace sgm {

namespace {

/// Splits a CSV line on commas; trims nothing (the format is numeric).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

Status ParseDouble(const std::string& cell, long row, double* out) {
  char* end = nullptr;
  *out = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   ": not a number: '" + cell + "'");
  }
  return Status::OK();
}

Status ParseLong(const std::string& cell, long row, long* out) {
  char* end = nullptr;
  *out = std::strtol(cell.c_str(), &end, 10);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   ": not an integer: '" + cell + "'");
  }
  return Status::OK();
}

double MaxStepOf(const std::vector<std::vector<Vector>>& frames) {
  double max_step = 0.0;
  for (std::size_t t = 1; t < frames.size(); ++t) {
    for (std::size_t i = 0; i < frames[t].size(); ++i) {
      max_step = std::max(max_step, frames[t][i].DistanceTo(frames[t - 1][i]));
    }
  }
  return max_step > 0.0 ? max_step : 1.0;
}

}  // namespace

CsvVectorStream::CsvVectorStream(std::vector<std::vector<Vector>> frames,
                                 double max_step_norm)
    : frames_(std::move(frames)), max_step_norm_(max_step_norm) {
  SGM_CHECK(!frames_.empty());
  SGM_CHECK(!frames_.front().empty());
  if (max_step_norm_ <= 0.0) max_step_norm_ = MaxStepOf(frames_);
}

Result<CsvVectorStream> CsvVectorStream::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }

  // (cycle, site) → vector; validated for contiguity afterwards.
  std::vector<std::vector<Vector>> frames;
  std::string line;
  long row = 0;
  std::size_t dim = 0;
  while (std::getline(file, line)) {
    ++row;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> cells = SplitCsv(line);
    if (cells.size() < 3) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": expected cycle,site,x0,... columns");
    }
    long cycle = 0, site = 0;
    SGM_RETURN_NOT_OK(ParseLong(cells[0], row, &cycle));
    SGM_RETURN_NOT_OK(ParseLong(cells[1], row, &site));
    if (cycle < 0 || site < 0) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": negative cycle or site");
    }
    if (dim == 0) {
      dim = cells.size() - 2;
    } else if (cells.size() - 2 != dim) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": inconsistent dimensionality");
    }
    Vector v(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      double value = 0.0;
      SGM_RETURN_NOT_OK(ParseDouble(cells[j + 2], row, &value));
      v[j] = value;
    }
    if (static_cast<std::size_t>(cycle) >= frames.size()) {
      frames.resize(cycle + 1);
    }
    auto& frame = frames[cycle];
    if (static_cast<std::size_t>(site) >= frame.size()) {
      frame.resize(site + 1);
    }
    if (!frame[site].empty()) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": duplicate (cycle, site) pair");
    }
    frame[site] = v;
  }
  if (frames.empty()) {
    return Status::InvalidArgument("CSV file holds no data rows: " + path);
  }

  const std::size_t num_sites = frames.front().size();
  for (std::size_t t = 0; t < frames.size(); ++t) {
    if (frames[t].size() != num_sites) {
      return Status::InvalidArgument("cycle " + std::to_string(t) +
                                     " covers " +
                                     std::to_string(frames[t].size()) +
                                     " sites, expected " +
                                     std::to_string(num_sites));
    }
    for (std::size_t i = 0; i < num_sites; ++i) {
      if (frames[t][i].empty()) {
        return Status::InvalidArgument(
            "missing vector for cycle " + std::to_string(t) + ", site " +
            std::to_string(i));
      }
    }
  }
  return CsvVectorStream(std::move(frames));
}

int CsvVectorStream::num_sites() const {
  return static_cast<int>(frames_.front().size());
}

std::size_t CsvVectorStream::dim() const {
  return frames_.front().front().dim();
}

void CsvVectorStream::Advance(std::vector<Vector>* local_vectors) {
  SGM_CHECK(local_vectors != nullptr);
  const std::size_t index = std::min(next_, frames_.size() - 1);
  *local_vectors = frames_[index];
  ++next_;
}

// ----------------------------------------------------------------------

CsvEventStream::CsvEventStream(
    std::vector<std::vector<std::size_t>> events_per_site, std::size_t window,
    std::size_t dim)
    : events_(std::move(events_per_site)), window_size_(window), dim_(dim) {
  cursor_.assign(events_.size(), 0);
  windows_.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    windows_.emplace_back(window, dim);
  }
}

Result<CsvEventStream> CsvEventStream::Load(const std::string& path,
                                            int num_sites, std::size_t window,
                                            std::size_t dim) {
  if (num_sites <= 0 || window == 0 || dim == 0) {
    return Status::InvalidArgument("num_sites, window and dim must be > 0");
  }
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::vector<std::vector<std::size_t>> events(num_sites);
  std::string line;
  long row = 0;
  while (std::getline(file, line)) {
    ++row;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> cells = SplitCsv(line);
    if (cells.size() != 2) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": expected site,category");
    }
    long site = 0, category = 0;
    SGM_RETURN_NOT_OK(ParseLong(cells[0], row, &site));
    SGM_RETURN_NOT_OK(ParseLong(cells[1], row, &category));
    if (site < 0 || site >= num_sites) {
      return Status::OutOfRange("row " + std::to_string(row) +
                                ": site out of range");
    }
    if (category < 0 || static_cast<std::size_t>(category) > dim) {
      return Status::OutOfRange("row " + std::to_string(row) +
                                ": category out of range");
    }
    events[site].push_back(static_cast<std::size_t>(category));
  }
  return CsvEventStream(std::move(events), window, dim);
}

void CsvEventStream::Advance(std::vector<Vector>* local_vectors) {
  SGM_CHECK(local_vectors != nullptr);
  local_vectors->resize(windows_.size());
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (cursor_[i] < events_[i].size()) {
      windows_[i].Push(events_[i][cursor_[i]]);
      ++cursor_[i];
    }
    (*local_vectors)[i] = windows_[i].counts();
  }
}

double CsvEventStream::max_step_norm() const { return std::sqrt(2.0); }

double CsvEventStream::max_drift_norm() const {
  return std::sqrt(2.0) * static_cast<double>(window_size_);
}

}  // namespace sgm
