#ifndef SGM_DATA_CSV_STREAM_H_
#define SGM_DATA_CSV_STREAM_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/vector.h"
#include "data/sliding_window.h"
#include "data/stream.h"

namespace sgm {

/// Replays pre-recorded per-site vectors from a CSV file — the adapter for
/// running the protocols on *real* traces (e.g. the original Jester or
/// RCV1 data once locally available) instead of the synthetic stand-ins.
///
/// Format: one row per (cycle, site) pair,
///     cycle,site,x0,x1,...,x{d-1}
/// with a `#`-prefixed optional header. Cycles must be contiguous from 0
/// and every cycle must cover every site exactly once; Load() validates
/// and reports precise row numbers on violations. The replay repeats the
/// final cycle once the trace is exhausted (so monitors can run past the
/// end of the file).
class CsvVectorStream final : public StreamSource {
 public:
  /// Parses `path`. Returns InvalidArgument/NotFound on malformed input.
  static Result<CsvVectorStream> Load(const std::string& path);

  /// Builds directly from in-memory frames (frames[t][i] = site i at t).
  explicit CsvVectorStream(std::vector<std::vector<Vector>> frames,
                           double max_step_norm = 0.0);

  std::string name() const override { return "csv_vector_stream"; }
  int num_sites() const override;
  std::size_t dim() const override;
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override { return max_step_norm_; }

  long num_cycles() const { return static_cast<long>(frames_.size()); }

 private:
  std::vector<std::vector<Vector>> frames_;
  double max_step_norm_;
  std::size_t next_ = 0;
};

/// Streams categorical events from CSV into per-site sliding-window count
/// vectors — the shape of the paper's real workloads (ratings → histogram
/// buckets, tagged documents → contingency cells).
///
/// Format: one event row per line,
///     site,category
/// where category ∈ [0, dim] (dim = the uncounted placeholder). Each
/// Advance() consumes one event per site (events are dealt to sites in file
/// order; a site with no remaining events replays its last state).
class CsvEventStream final : public StreamSource {
 public:
  static Result<CsvEventStream> Load(const std::string& path, int num_sites,
                                     std::size_t window, std::size_t dim);

  std::string name() const override { return "csv_event_stream"; }
  int num_sites() const override {
    return static_cast<int>(windows_.size());
  }
  std::size_t dim() const override { return dim_; }
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override;
  double max_drift_norm() const override;

 private:
  CsvEventStream(std::vector<std::vector<std::size_t>> events_per_site,
                 std::size_t window, std::size_t dim);

  std::vector<std::vector<std::size_t>> events_;  ///< per site, in order
  std::vector<std::size_t> cursor_;
  std::vector<SlidingCountWindow> windows_;
  std::size_t window_size_;
  std::size_t dim_;
};

}  // namespace sgm

#endif  // SGM_DATA_CSV_STREAM_H_
