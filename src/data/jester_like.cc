#include "data/jester_like.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

JesterLikeGenerator::JesterLikeGenerator(const JesterLikeConfig& config)
    : config_(config), regime_rng_(config.seed) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.window > 0);
  SGM_CHECK(config.num_buckets >= 2);
  SGM_CHECK(config.mood_period > 0);
  SGM_CHECK(config.shift_spacing > 0);

  Rng root(config.seed ^ 0x5151515151ULL);
  site_rngs_.reserve(config.num_sites);
  site_offsets_.reserve(config.num_sites);
  windows_.reserve(config.num_sites);
  for (int i = 0; i < config.num_sites; ++i) {
    site_rngs_.push_back(root.Fork());
    // Offsets snap to bucket centers: a site's ratings concentrate in one
    // bucket, so baseline windows are nearly static (quiet baseline; the
    // realistic regime where per-site outliers, not ubiquitous churn,
    // drive GM's false positives).
    const double raw_offset = 2.5 * site_rngs_.back().NextGaussian();
    const double width = 20.0 / static_cast<double>(config.num_buckets);
    const double snapped =
        (std::floor(raw_offset / width) + 0.5) * width;
    site_offsets_.push_back(std::clamp(snapped, -8.0, 8.0));
    windows_.emplace_back(config.window, config.num_buckets);
  }
  quirk_until_.assign(config.num_sites, -1);
  quirk_offset_.assign(config.num_sites, 0.0);
  next_shift_ = 1 + static_cast<long>(
                        regime_rng_.NextExponential(1.0) *
                        static_cast<double>(config.shift_spacing));

  std::vector<Vector> scratch;
  for (std::size_t k = 0; k < config.window; ++k) Advance(&scratch);
}

std::size_t JesterLikeGenerator::BucketOf(double rating) const {
  const double clamped = std::clamp(rating, -10.0, 10.0 - 1e-9);
  const double width = 20.0 / static_cast<double>(config_.num_buckets);
  return static_cast<std::size_t>((clamped + 10.0) / width);
}

void JesterLikeGenerator::Advance(std::vector<Vector>* local_vectors) {
  SGM_CHECK(local_vectors != nullptr);
  local_vectors->resize(config_.num_sites);
  ++cycle_;

  if (cycle_ >= next_shift_) {
    shift_level_ += config_.shift_magnitude *
                    (regime_rng_.NextBernoulli(0.5) ? 1.0 : -1.0);
    shift_level_ = std::clamp(shift_level_, -5.0, 5.0);
    next_shift_ = cycle_ + 1 +
                  static_cast<long>(regime_rng_.NextExponential(1.0) *
                                    static_cast<double>(config_.shift_spacing));
  }
  const double phase = 2.0 * M_PI * static_cast<double>(cycle_) /
                       static_cast<double>(config_.mood_period);
  global_mood_ = config_.mood_amplitude * std::sin(phase) + shift_level_;

  for (int i = 0; i < config_.num_sites; ++i) {
    Rng& rng = site_rngs_[i];
    if (quirk_until_[i] < cycle_ && rng.NextBernoulli(config_.quirk_rate)) {
      const long until =
          cycle_ + 1 +
          static_cast<long>(rng.NextExponential(
              1.0 / static_cast<double>(config_.quirk_length)));
      const double offset = config_.quirk_magnitude *
                            (rng.NextBernoulli(0.5) ? 1.0 : -1.0);
      // Infect a contiguous cluster starting at the seeding site; members
      // share the direction and duration (correlated drift).
      const int cluster =
          std::max(1, static_cast<int>(config_.quirk_cluster_fraction *
                                       static_cast<double>(
                                           config_.num_sites)));
      for (int k = 0; k < cluster; ++k) {
        const int member = (i + k) % config_.num_sites;
        if (quirk_until_[member] < cycle_) {
          quirk_until_[member] = until;
          quirk_offset_[member] = offset;
        }
      }
    }
    const double quirk = (quirk_until_[i] >= cycle_) ? quirk_offset_[i] : 0.0;
    const double rating = global_mood_ + site_offsets_[i] + quirk +
                          config_.rating_noise * rng.NextGaussian();
    windows_[i].Push(BucketOf(rating));
    (*local_vectors)[i] = windows_[i].counts();
  }
}

double JesterLikeGenerator::max_step_norm() const {
  // One rating enters a bucket and one leaves another: ±1 in two buckets.
  return std::sqrt(2.0);
}

double JesterLikeGenerator::max_drift_norm() const {
  // Two window histograms of mass w each are at most √2·w apart in L2.
  return std::sqrt(2.0) * static_cast<double>(config_.window);
}

}  // namespace sgm
