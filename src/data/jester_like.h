#ifndef SGM_DATA_JESTER_LIKE_H_
#define SGM_DATA_JESTER_LIKE_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/sliding_window.h"
#include "data/stream.h"

namespace sgm {

/// Configuration of the Jester-style ratings workload.
struct JesterLikeConfig {
  int num_sites = 500;
  /// Sliding window of ratings per site (paper: 100, one per joke).
  std::size_t window = 100;
  /// Number of equi-width histogram buckets over the rating range [-10, 10].
  std::size_t num_buckets = 8;
  /// Per-rating Gaussian spread around the site's current mood.
  double rating_noise = 0.4;
  /// Amplitude/period of the shared slow mood oscillation.
  double mood_amplitude = 0.3;
  int mood_period = 1500;
  /// Expected spacing (cycles) of abrupt global mood shifts and their size.
  int shift_spacing = 1500;
  double shift_magnitude = 3.0;
  /// Localized "quirk" episodes: each cycle a site may seed a quirk
  /// (probability quirk_rate) that infects a contiguous *cluster* of sites
  /// — quirk_cluster_fraction of the network — displacing their ratings by
  /// a common ±quirk_magnitude for ~quirk_length cycles. A small cluster
  /// barely moves the N-site average but drags its members' windows far
  /// from the synced snapshots in a **common direction** — the correlated
  /// per-site outlier behaviour that makes plain GM fire false positives at
  /// rates growing with N (Section 1.2) and that balancing cannot cancel
  /// cheaply (it must probe many opposite-drift sites to offset a cluster).
  double quirk_rate = 0.00003;
  int quirk_length = 50;
  double quirk_magnitude = 9.0;
  double quirk_cluster_fraction = 0.04;
  std::uint64_t seed = 11;
};

/// Synthetic stand-in for the Jester ratings workload (see DESIGN.md §2).
///
/// Each site receives one rating in [-10, 10] per update cycle and
/// maintains a windowed equi-width histogram of its last `window` ratings —
/// the local vectors of the paper's L∞ / Jeffrey-divergence / self-join-size
/// Jester experiments. Ratings follow per-site moods coupled to a shared
/// global mood (slow oscillation plus occasional abrupt shifts), so the
/// *global* histogram genuinely migrates across buckets: L∞/JD distances to
/// the last-synced histogram grow until a true threshold crossing occurs,
/// while per-site noise supplies the uncorrelated drift that makes GM's
/// union-of-balls fire false positives at scale.
class JesterLikeGenerator final : public StreamSource {
 public:
  explicit JesterLikeGenerator(const JesterLikeConfig& config);

  std::string name() const override { return "jester_like"; }
  int num_sites() const override { return config_.num_sites; }
  std::size_t dim() const override { return config_.num_buckets; }
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override;
  double max_drift_norm() const override;

  /// Current shared mood (exposed for tests/calibration).
  double global_mood() const { return global_mood_; }

 private:
  std::size_t BucketOf(double rating) const;

  JesterLikeConfig config_;
  Rng regime_rng_;
  std::vector<Rng> site_rngs_;
  std::vector<double> site_offsets_;
  std::vector<SlidingCountWindow> windows_;
  std::vector<long> quirk_until_;
  std::vector<double> quirk_offset_;
  double global_mood_ = 0.0;
  double shift_level_ = 0.0;
  long cycle_ = 0;
  long next_shift_ = 0;
};

}  // namespace sgm

#endif  // SGM_DATA_JESTER_LIKE_H_
