#include "data/reuters_like.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

ReutersLikeGenerator::ReutersLikeGenerator(const ReutersLikeConfig& config)
    : config_(config), regime_rng_(config.seed) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.window > 0);
  SGM_CHECK(config.term_rate > 0.0 && config.term_rate < 1.0);
  SGM_CHECK(config.category_rate > 0.0 && config.category_rate < 1.0);
  SGM_CHECK(config.burst_spacing > 0);
  SGM_CHECK(config.burst_length > 0);

  site_rngs_.reserve(config.num_sites);
  windows_.reserve(config.num_sites);
  Rng root(config.seed ^ 0xabcdef1234567ULL);
  for (int i = 0; i < config.num_sites; ++i) {
    site_rngs_.push_back(root.Fork());
    windows_.emplace_back(config.window, /*dim=*/3);
  }
  scoop_until_.assign(config.num_sites, -1);
  next_burst_ = 1 + static_cast<long>(
                        regime_rng_.NextExponential(1.0) *
                        static_cast<double>(config.burst_spacing));

  // Warm the windows up so the first monitored cycle sees full windows.
  std::vector<Vector> scratch;
  for (std::size_t k = 0; k < config.window; ++k) Advance(&scratch);
}

void ReutersLikeGenerator::AdvanceRelevance() {
  ++cycle_;
  if (cycle_ >= next_burst_ && burst_end_ < cycle_) {
    burst_end_ = cycle_ + config_.burst_length;
    next_burst_ = burst_end_ +
                  1 +
                  static_cast<long>(regime_rng_.NextExponential(1.0) *
                                    static_cast<double>(config_.burst_spacing));
  }
  // Smooth rise/decay toward the burst plateau.
  const double target = (cycle_ <= burst_end_) ? 1.0 : 0.0;
  relevance_ += 0.04 * (target - relevance_);
  relevance_ = std::clamp(relevance_, 0.0, 1.0);
}

void ReutersLikeGenerator::Advance(std::vector<Vector>* local_vectors) {
  SGM_CHECK(local_vectors != nullptr);
  local_vectors->resize(config_.num_sites);
  AdvanceRelevance();

  for (int i = 0; i < config_.num_sites; ++i) {
    Rng& rng = site_rngs_[i];
    if (scoop_until_[i] < cycle_ && rng.NextBernoulli(config_.scoop_rate)) {
      scoop_until_[i] =
          cycle_ + 1 +
          static_cast<long>(rng.NextExponential(
              1.0 / static_cast<double>(config_.scoop_length)));
    }
    const bool scooping = scoop_until_[i] >= cycle_;
    // Per-site jitter keeps sites heterogeneous within the shared regime; a
    // scooping outlet behaves as if fully bursting on its own.
    const double rho =
        scooping ? 1.0
                 : std::clamp(relevance_ + 0.1 * rng.NextGaussian(), 0.0, 1.0);
    const bool category =
        rng.NextBernoulli(scooping ? std::min(0.9, 2.0 * config_.category_rate)
                                   : config_.category_rate);
    const double boost =
        scooping ? config_.scoop_association : config_.association * rho;
    const double p_term =
        category ? std::min(0.95, config_.term_rate + boost)
                 : config_.term_rate;
    const bool term = rng.NextBernoulli(p_term);

    std::size_t cell;
    if (term && category) {
      cell = 0;  // co-occurrence
    } else if (term) {
      cell = 1;  // term only
    } else if (category) {
      cell = 2;  // category only
    } else {
      cell = 3;  // neither: occupies a window slot, counts nowhere
    }
    windows_[i].Push(cell);
    (*local_vectors)[i] = windows_[i].counts();
  }
}

double ReutersLikeGenerator::max_step_norm() const {
  // One story enters one cell and one leaves another: at most ±1 in two of
  // the three counted dimensions per cycle.
  return std::sqrt(2.0);
}

double ReutersLikeGenerator::max_drift_norm() const {
  // Two count windows of total mass ≤ w differ by at most √2·w in L2
  // (disjoint single-cell extremes), however far apart in time.
  return std::sqrt(2.0) * static_cast<double>(config_.window);
}

}  // namespace sgm
