#ifndef SGM_DATA_REUTERS_LIKE_H_
#define SGM_DATA_REUTERS_LIKE_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/sliding_window.h"
#include "data/stream.h"

namespace sgm {

/// Configuration of the Reuters-style tagged-news workload.
struct ReutersLikeConfig {
  int num_sites = 75;
  /// Sliding window of news stories per site (paper: 200, roughly a day).
  std::size_t window = 200;
  /// Baseline probability that a story carries the tracked term / category.
  double term_rate = 0.04;
  double category_rate = 0.20;
  /// Maximum extra term∧category association injected at burst peak: at
  /// relevance ρ, P(term | category) = term_rate + association·ρ.
  double association = 0.50;
  /// Expected burst spacing and duration, in update cycles.
  int burst_spacing = 900;
  int burst_length = 250;
  /// Per-site idiosyncratic "scoop" episodes: a single outlet briefly runs
  /// its own strongly-associated story series (probability per cycle, mean
  /// duration). One scooping site drags its own 3-d window far from the
  /// synced snapshot while leaving the N-site average essentially unmoved —
  /// the per-site outlier behaviour behind GM's FP growth with N.
  double scoop_rate = 0.00003;
  int scoop_length = 120;
  /// Term|category association during a scoop (≫ the burst association, so
  /// a scooping outlet's own window crosses even the highest thresholds).
  double scoop_association = 0.80;
  std::uint64_t seed = 7;
};

/// Synthetic stand-in for the Reuters RCV1-v2 workload (see DESIGN.md §2).
///
/// Each site receives one tagged news story per update cycle and maintains a
/// windowed 3-dimensional count vector [#(term∧cat), #(term∧¬cat),
/// #(¬term∧cat)] — exactly the local vectors of the paper's Example 1 and
/// of its χ²/MI Reuters experiments. A hidden global relevance process
/// ρ(t) ∈ [0,1] (smooth bursts at random spacings, shared across sites with
/// per-site jitter) modulates the term–category association, driving the χ²
/// score through the paper's threshold range and giving all sites correlated
/// drift — the regime in which plain GM produces mass false positives.
class ReutersLikeGenerator final : public StreamSource {
 public:
  explicit ReutersLikeGenerator(const ReutersLikeConfig& config);

  std::string name() const override { return "reuters_like"; }
  int num_sites() const override { return config_.num_sites; }
  std::size_t dim() const override { return 3; }
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override;
  double max_drift_norm() const override;

  /// Current hidden relevance level (exposed for tests/calibration).
  double relevance() const { return relevance_; }

 private:
  void AdvanceRelevance();

  ReutersLikeConfig config_;
  Rng regime_rng_;
  std::vector<Rng> site_rngs_;
  std::vector<SlidingCountWindow> windows_;
  std::vector<long> scoop_until_;
  double relevance_ = 0.0;
  long cycle_ = 0;
  long next_burst_ = 0;
  long burst_end_ = -1;
};

}  // namespace sgm

#endif  // SGM_DATA_REUTERS_LIKE_H_
