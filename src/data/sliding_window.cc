#include "data/sliding_window.h"

#include "core/check.h"

namespace sgm {

SlidingCountWindow::SlidingCountWindow(std::size_t window_size,
                                       std::size_t dim)
    : slots_(window_size, dim), counts_(dim) {
  SGM_CHECK(window_size > 0);
  SGM_CHECK(dim > 0);
}

void SlidingCountWindow::Push(std::size_t category) {
  SGM_CHECK_MSG(category <= dim(), "category %zu out of range (dim %zu)",
                category, dim());
  if (filled_ == slots_.size()) {
    const std::size_t evicted = slots_[head_];
    if (evicted < dim()) counts_[evicted] -= 1.0;
  } else {
    ++filled_;
  }
  slots_[head_] = category;
  if (category < dim()) counts_[category] += 1.0;
  head_ = (head_ + 1) % slots_.size();
}

}  // namespace sgm
