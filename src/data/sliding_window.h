#ifndef SGM_DATA_SLIDING_WINDOW_H_
#define SGM_DATA_SLIDING_WINDOW_H_

#include <cstddef>
#include <vector>

#include "core/vector.h"

namespace sgm {

/// Count-sketch sliding window over categorical items.
///
/// Keeps the last `window_size` item categories and maintains the per-
/// category count vector incrementally (O(1) per slide), which is what makes
/// simulating thousands of cycles over hundreds of sites cheap. The special
/// category `dim` (one past the last bucket) denotes "observed but not
/// counted" (e.g. a news story with neither the tracked term nor category):
/// it occupies a window slot but contributes to no count.
class SlidingCountWindow {
 public:
  SlidingCountWindow(std::size_t window_size, std::size_t dim);

  /// Appends an item of `category` ∈ [0, dim]; evicts the oldest item once
  /// the window is full. Category == dim() is the uncounted placeholder.
  void Push(std::size_t category);

  /// Current per-category counts (dimension dim()).
  const Vector& counts() const { return counts_; }

  std::size_t window_size() const { return slots_.size(); }
  std::size_t dim() const { return counts_.dim(); }
  /// Number of items currently held (< window_size() until warmed up).
  std::size_t size() const { return filled_; }
  bool full() const { return filled_ == slots_.size(); }

 private:
  std::vector<std::size_t> slots_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  Vector counts_;
};

}  // namespace sgm

#endif  // SGM_DATA_SLIDING_WINDOW_H_
