#ifndef SGM_DATA_STREAM_H_
#define SGM_DATA_STREAM_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/vector.h"

namespace sgm {

/// A distributed stream workload: N sites, each maintaining a d-dimensional
/// local measurements vector that evolves once per update cycle.
///
/// One Advance() call corresponds to one execution of the paper's monitoring
/// phase ("update cycle": a window slide / epoch expiration at every site).
/// Implementations own all per-site state (sliding windows, per-site RNG
/// streams) so that a source is deterministic given its seed.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual std::string name() const = 0;
  virtual int num_sites() const = 0;
  virtual std::size_t dim() const = 0;

  /// Advances one update cycle, rewriting `local_vectors` (resized to
  /// num_sites() on first use) with the new v_i(t).
  virtual void Advance(std::vector<Vector>* local_vectors) = 0;

  /// Upper bound on the per-cycle L2 change of any single site's vector;
  /// the U-policy of Section 3 accumulates this per cycle since the last
  /// synchronization (Example 3's U = √d · #cycles pattern).
  virtual double max_step_norm() const = 0;

  /// A-priori upper bound on ‖Δv_i(t)‖ over any horizon — finite for
  /// sliding-window streams (two disjoint window histograms are at most
  /// √2·window apart), infinite for unbounded random walks. Protocols cap
  /// U(t) here so the estimation error ε stops growing once the window has
  /// fully turned over.
  virtual double max_drift_norm() const {
    return std::numeric_limits<double>::infinity();
  }
};

}  // namespace sgm

#endif  // SGM_DATA_STREAM_H_
