#include "data/synthetic.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

SyntheticDriftGenerator::SyntheticDriftGenerator(
    const SyntheticDriftConfig& config)
    : config_(config) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.dim > 0);
  SGM_CHECK(config.step_norm >= 0.0);
  SGM_CHECK(config.global_period > 0);

  Rng root(config.seed);
  site_rngs_.reserve(config.num_sites);
  anchors_.reserve(config.num_sites);
  state_.reserve(config.num_sites);
  for (int i = 0; i < config.num_sites; ++i) {
    site_rngs_.push_back(root.Fork());
    Vector anchor(config.dim);
    for (std::size_t j = 0; j < config.dim; ++j) {
      anchor[j] = site_rngs_.back().NextGaussian();
    }
    anchors_.push_back(anchor);
    state_.push_back(anchor);
  }
}

void SyntheticDriftGenerator::Advance(std::vector<Vector>* local_vectors) {
  SGM_CHECK(local_vectors != nullptr);
  local_vectors->resize(config_.num_sites);
  ++cycle_;
  const double phase = 2.0 * M_PI * static_cast<double>(cycle_) /
                       static_cast<double>(config_.global_period);
  const double shared = config_.global_amplitude * std::sin(phase);

  for (int i = 0; i < config_.num_sites; ++i) {
    Rng& rng = site_rngs_[i];
    Vector& v = state_[i];
    // Shared drift moves all anchors along the first coordinate.
    Vector target = anchors_[i];
    target[0] += shared;
    // OU pull plus isotropic step of fixed length.
    Vector step(config_.dim);
    for (std::size_t j = 0; j < config_.dim; ++j) {
      step[j] = rng.NextGaussian();
    }
    const double norm = step.Norm();
    if (norm > 0.0) step *= config_.step_norm / norm;
    for (std::size_t j = 0; j < config_.dim; ++j) {
      v[j] += config_.mean_reversion * (target[j] - v[j]) + step[j];
    }
    (*local_vectors)[i] = v;
  }
}

double SyntheticDriftGenerator::max_step_norm() const {
  // OU pull is bounded in practice by the anchor spread; budget it together
  // with the fixed-length step.
  return config_.step_norm +
         config_.mean_reversion *
             (config_.global_amplitude + 6.0);
}

}  // namespace sgm
