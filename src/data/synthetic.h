#ifndef SGM_DATA_SYNTHETIC_H_
#define SGM_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/stream.h"

namespace sgm {

/// Configuration of the generic drifting-vector workload.
struct SyntheticDriftConfig {
  int num_sites = 100;
  std::size_t dim = 4;
  /// L2 length of each site's per-cycle random step.
  double step_norm = 0.5;
  /// Ornstein–Uhlenbeck pull toward the site anchor per cycle (0 = pure
  /// random walk, 1 = memoryless around the anchor).
  double mean_reversion = 0.02;
  /// Amplitude of a shared (all-site) slow sinusoidal drift of the anchors;
  /// this is what makes the *global average* — not just individual sites —
  /// actually cross thresholds.
  double global_amplitude = 2.0;
  /// Period (in cycles) of the shared drift.
  int global_period = 800;
  std::uint64_t seed = 42;
};

/// Generic controllable workload used by the quickstart example and the
/// property/ablation tests: per-site OU random walks around anchors that
/// themselves follow a shared slow oscillation.
class SyntheticDriftGenerator final : public StreamSource {
 public:
  explicit SyntheticDriftGenerator(const SyntheticDriftConfig& config);

  std::string name() const override { return "synthetic_drift"; }
  int num_sites() const override { return config_.num_sites; }
  std::size_t dim() const override { return config_.dim; }
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override;

 private:
  SyntheticDriftConfig config_;
  std::vector<Rng> site_rngs_;
  std::vector<Vector> anchors_;
  std::vector<Vector> state_;
  long cycle_ = 0;
};

}  // namespace sgm

#endif  // SGM_DATA_SYNTHETIC_H_
