#include "data/whitened_stream.h"

#include <algorithm>
#include <cmath>

namespace sgm {

WhitenedStream::WhitenedStream(StreamSource* inner, Vector scales)
    : inner_(inner), scales_(std::move(scales)) {
  SGM_CHECK(inner != nullptr);
  SGM_CHECK(scales_.dim() == inner->dim());
  max_scale_ = scales_[0];
  for (std::size_t j = 0; j < scales_.dim(); ++j) {
    SGM_CHECK_MSG(scales_[j] > 0.0, "whitening scales must be positive");
    max_scale_ = std::max(max_scale_, scales_[j]);
  }
}

Vector WhitenedStream::EstimateScales(StreamSource* calibration,
                                      int probe_cycles) {
  SGM_CHECK(calibration != nullptr);
  SGM_CHECK(probe_cycles >= 2);
  const std::size_t dim = calibration->dim();

  std::vector<Vector> previous, current;
  calibration->Advance(&previous);
  Vector sum(dim), sum_sq(dim);
  long steps = 0;
  for (int t = 1; t < probe_cycles; ++t) {
    calibration->Advance(&current);
    for (std::size_t i = 0; i < current.size(); ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        const double step = current[i][j] - previous[i][j];
        sum[j] += step;
        sum_sq[j] += step * step;
      }
    }
    steps += static_cast<long>(current.size());
    previous = current;
  }
  SGM_CHECK(steps > 0);

  Vector scales(dim, 1.0);
  for (std::size_t j = 0; j < dim; ++j) {
    const double mean = sum[j] / static_cast<double>(steps);
    const double variance =
        std::max(0.0, sum_sq[j] / static_cast<double>(steps) - mean * mean);
    const double std_dev = std::sqrt(variance);
    if (std_dev > 1e-12) scales[j] = 1.0 / std_dev;
  }
  return scales;
}

void WhitenedStream::Advance(std::vector<Vector>* local_vectors) {
  inner_->Advance(local_vectors);
  for (Vector& v : *local_vectors) {
    for (std::size_t j = 0; j < v.dim(); ++j) v[j] *= scales_[j];
  }
}

double WhitenedStream::max_step_norm() const {
  // ‖D·step‖ ≤ max(scales)·‖step‖.
  return max_scale_ * inner_->max_step_norm();
}

double WhitenedStream::max_drift_norm() const {
  return max_scale_ * inner_->max_drift_norm();
}

}  // namespace sgm
