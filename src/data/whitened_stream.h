#ifndef SGM_DATA_WHITENED_STREAM_H_
#define SGM_DATA_WHITENED_STREAM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "data/stream.h"

namespace sgm {

/// Applies a diagonal whitening transform z = D·v to every site vector of a
/// wrapped stream — the data half of shape-sensitive monitoring (pair with
/// WhitenedFunction). Scales with large per-coordinate spreads get small
/// D entries so each whitened coordinate drifts comparably, which is what
/// makes spherical constraints shape-appropriate.
class WhitenedStream final : public StreamSource {
 public:
  /// Does not own `inner`; `scales` entries must be positive.
  WhitenedStream(StreamSource* inner, Vector scales);

  /// Estimates whitening scales as 1/std of each coordinate's per-cycle
  /// step, from `probe_cycles` cycles of a calibration stream (consumed!).
  /// Degenerate (constant) coordinates get scale 1.
  static Vector EstimateScales(StreamSource* calibration, int probe_cycles);

  std::string name() const override { return inner_->name() + "_whitened"; }
  int num_sites() const override { return inner_->num_sites(); }
  std::size_t dim() const override { return inner_->dim(); }
  void Advance(std::vector<Vector>* local_vectors) override;
  double max_step_norm() const override;
  double max_drift_norm() const override;

 private:
  StreamSource* inner_;
  Vector scales_;
  double max_scale_;
};

}  // namespace sgm

#endif  // SGM_DATA_WHITENED_STREAM_H_
