#include "estimators/horvitz_thompson.h"

#include "core/check.h"

namespace sgm {

HtVectorEstimator::HtVectorEstimator(int num_sites, std::size_t dim)
    : num_sites_(num_sites), weighted_sum_(dim) {
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(dim > 0);
}

void HtVectorEstimator::AddSample(const Vector& drift,
                                  double inclusion_probability) {
  SGM_CHECK_MSG(inclusion_probability > 0.0 && inclusion_probability <= 1.0,
                "inclusion probability must lie in (0, 1]; got %f",
                inclusion_probability);
  weighted_sum_.Axpy(1.0 / inclusion_probability, drift);
  ++sample_size_;
}

Vector HtVectorEstimator::Estimate(const Vector& e) const {
  Vector estimate = e;
  estimate.Axpy(1.0 / static_cast<double>(num_sites_), weighted_sum_);
  return estimate;
}

Vector HtVectorEstimator::DriftEstimate() const {
  return weighted_sum_ / static_cast<double>(num_sites_);
}

void HtVectorEstimator::Reset() {
  weighted_sum_.SetZero();
  sample_size_ = 0;
}

HtScalarEstimator::HtScalarEstimator(int num_sites) : num_sites_(num_sites) {
  SGM_CHECK(num_sites > 0);
}

void HtScalarEstimator::AddSample(double signed_distance,
                                  double inclusion_probability) {
  SGM_CHECK_MSG(inclusion_probability > 0.0 && inclusion_probability <= 1.0,
                "inclusion probability must lie in (0, 1]; got %f",
                inclusion_probability);
  weighted_sum_ += signed_distance / inclusion_probability;
  ++sample_size_;
}

double HtScalarEstimator::Estimate() const {
  return weighted_sum_ / static_cast<double>(num_sites_);
}

void HtScalarEstimator::Reset() {
  weighted_sum_ = 0.0;
  sample_size_ = 0;
}

}  // namespace sgm
