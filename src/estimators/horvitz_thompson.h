#ifndef SGM_ESTIMATORS_HORVITZ_THOMPSON_H_
#define SGM_ESTIMATORS_HORVITZ_THOMPSON_H_

#include <cstddef>

#include "core/vector.h"

namespace sgm {

/// Horvitz–Thompson estimator of the global average vector (Estimator 1):
///
///   v̂ = e + Σ_{i∈K} Δv_i / g_i / N
///
/// Each sampled drift is inversely weighted by its inclusion probability, so
/// the estimate is unbiased for any per-site probabilities 0 < g_i ≤ 1
/// (Lemma 1(a)). With an empty sample the estimate degenerates to e itself,
/// which the paper notes stays within the (ε, δ) guarantee.
class HtVectorEstimator {
 public:
  /// `num_sites` is the population size N; `dim` the vector dimensionality.
  HtVectorEstimator(int num_sites, std::size_t dim);

  /// Adds a sampled site's drift Δv_i with inclusion probability g_i > 0.
  void AddSample(const Vector& drift, double inclusion_probability);

  /// v̂ given the last-synced global average e.
  Vector Estimate(const Vector& e) const;

  /// Σ Δv_i/g_i / N — the drift estimate Δv̂ alone.
  Vector DriftEstimate() const;

  int sample_size() const { return sample_size_; }
  void Reset();

 private:
  int num_sites_;
  int sample_size_ = 0;
  Vector weighted_sum_;
};

/// Horvitz–Thompson estimator of the average signed distance (Estimator 5):
///
///   D̂_C = Σ_{i∈K} d_C(e + Δv_i) / (N · g_i^C)
///
/// The 1-d analogue used by the revised CVSGM scheme (Corollary 2 proves
/// unbiasedness as the scalar special case of Lemma 1(a)).
class HtScalarEstimator {
 public:
  explicit HtScalarEstimator(int num_sites);

  void AddSample(double signed_distance, double inclusion_probability);

  double Estimate() const;
  int sample_size() const { return sample_size_; }
  void Reset();

 private:
  int num_sites_;
  int sample_size_ = 0;
  double weighted_sum_ = 0.0;
};

}  // namespace sgm

#endif  // SGM_ESTIMATORS_HORVITZ_THOMPSON_H_
