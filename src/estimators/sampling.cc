#include "estimators/sampling.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

namespace {

double LogInverse(double delta) {
  SGM_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
  return std::log(1.0 / delta);
}

double CheckedSqrtN(int num_sites) {
  SGM_CHECK(num_sites > 0);
  return std::sqrt(static_cast<double>(num_sites));
}

}  // namespace

double SamplingProbability(double delta, double U, int num_sites,
                           double drift_norm) {
  SGM_CHECK(U > 0.0);
  SGM_CHECK(drift_norm >= 0.0);
  const double g =
      drift_norm * LogInverse(delta) / (U * CheckedSqrtN(num_sites));
  return std::clamp(g, 0.0, 1.0);
}

double SamplingProbabilityCV(double delta, double U, int num_sites,
                             double signed_distance) {
  SGM_CHECK(U > 0.0);
  const double g = std::abs(signed_distance) * LogInverse(delta) /
                   (U * CheckedSqrtN(num_sites));
  return std::clamp(g, 0.0, 1.0);
}

double BernoulliSamplingProbability(double delta, int num_sites) {
  return std::clamp(LogInverse(delta) / CheckedSqrtN(num_sites), 0.0, 1.0);
}

double ExpectedSampleBound(double delta, int num_sites) {
  return LogInverse(delta) * CheckedSqrtN(num_sites);
}

double SingleTrialFailureBound(double delta, int num_sites) {
  return LogInverse(delta) / CheckedSqrtN(num_sites) +
         1.0 / static_cast<double>(num_sites);
}

int NumTrials(double delta, int num_sites) {
  const double bound = SingleTrialFailureBound(delta, num_sites);
  SGM_CHECK_MSG(bound < 1.0,
                "Lemma 2(c) requires ln(1/delta)/sqrt(N) + 1/N < 1; "
                "increase N or delta");
  const int m = static_cast<int>(
      std::ceil(std::log(0.01) / std::log(bound)));
  return std::max(1, m);
}

double TrackingFailureProbability(double delta, int num_sites,
                                  int num_trials) {
  SGM_CHECK(num_trials >= 1);
  return std::pow(SingleTrialFailureBound(delta, num_sites), num_trials);
}

int NumTrialsCV(double delta, int num_sites) {
  const double exponent =
      0.042 * std::sqrt(LogInverse(delta) * static_cast<double>(num_sites));
  SGM_CHECK_MSG(exponent > 0.0, "invalid CV trial-count parameters");
  // log(0.01) / log(e^{-exponent}) = ln(0.01) / (-exponent).
  const int m =
      static_cast<int>(std::ceil(std::log(0.01) / (-exponent)));
  return std::max(1, m);
}

double FalseNegativeBound(double delta, int num_sites, int num_trials,
                          int num_crossing_sites, double epsilon_T, double U) {
  SGM_CHECK(U > 0.0);
  SGM_CHECK(epsilon_T >= 0.0);
  SGM_CHECK(num_trials >= 1);
  SGM_CHECK(num_crossing_sites >= 0);
  const double exponent = static_cast<double>(num_crossing_sites) *
                          static_cast<double>(num_trials) * epsilon_T /
                          (U * CheckedSqrtN(num_sites));
  return std::pow(delta, exponent);
}

}  // namespace sgm
