#ifndef SGM_ESTIMATORS_SAMPLING_H_
#define SGM_ESTIMATORS_SAMPLING_H_

namespace sgm {

/// The sampling functions and trial-count formulas of Sections 2.2, 3 & 4.2.

/// g_i = ‖Δv_i‖·ln(1/δ) / (U·√N), clamped to [0, 1] (Equation 4).
///
/// The drift-norm weighting is the design heart of the scheme: sites whose
/// local vectors have drifted far since the last synchronization — exactly
/// the ones able to pull the global average across the threshold — are
/// proportionally more likely to include themselves in the sample.
double SamplingProbability(double delta, double U, int num_sites,
                           double drift_norm);

/// g_i^C = |d_C(e+Δv_i)|·ln(1/δ) / (U·√N), clamped to [0, 1] (Equation 9).
double SamplingProbabilityCV(double delta, double U, int num_sites,
                             double signed_distance);

/// Uniform Bernoulli baseline of Section 6.5: g = ln(1/δ)/√N, same expected
/// sample size as the drift-weighted scheme, no drift information.
double BernoulliSamplingProbability(double delta, int num_sites);

/// Per-trial expected-sample-size bound ln(1/δ)·√N (Lemma 2(c) premise).
double ExpectedSampleBound(double delta, int num_sites);

/// Upper bound on the probability that a single trial fails to place the
/// trial's estimator inside the un-scaled GM balls: ln(1/δ)/√N + 1/N
/// (proof of Lemma 2(c), via Markov on |K|/(N·g_i)).
double SingleTrialFailureBound(double delta, int num_sites);

/// M — the Lemma 2(c) trial count: smallest M with failure bound^M ≤ 0.01,
/// i.e. ceil(log 0.01 / log(ln(1/δ)/√N + 1/N)); at least 1. Valid (and
/// SGM_CHECKed) only when the single-trial bound is < 1, which is the
/// highly-distributed regime the paper targets.
int NumTrials(double delta, int num_sites);

/// Residual failure probability after M trials (Table 2, last column).
double TrackingFailureProbability(double delta, int num_sites, int num_trials);

/// M for the revised CV scheme (Lemma 5):
/// ceil(log 0.01 / log(exp(−0.042·√(ln(1/δ)·N)))).
int NumTrialsCV(double delta, int num_sites);

/// Worst-case FN bound of Lemma 3/5's second case: δ^(|Z|·M·ε_T/(U·√N)).
double FalseNegativeBound(double delta, int num_sites, int num_trials,
                          int num_crossing_sites, double epsilon_T, double U);

}  // namespace sgm

#endif  // SGM_ESTIMATORS_SAMPLING_H_
