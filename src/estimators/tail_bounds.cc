#include "estimators/tail_bounds.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

namespace {

double LogInverse(double delta) {
  SGM_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
  return std::log(1.0 / delta);
}

}  // namespace

double BernsteinSigma(double delta, double U) {
  SGM_CHECK(U > 0.0);
  return U / (2.0 * LogInverse(delta));
}

double BernsteinEpsilon(double delta, double U) {
  const double L = LogInverse(delta);
  return (1.0 + std::sqrt(L)) / (2.0 * L) * U;
}

double BernsteinEpsilonFull(double delta, double U) {
  const double L = LogInverse(delta);
  return (1.0 + 2.0 * std::sqrt(L)) / (2.0 * L) * U;
}

double McDiarmidEpsilon(double delta, double U) {
  SGM_CHECK(U > 0.0);
  const double L = LogInverse(delta);
  return U / (std::sqrt(2.0) * std::sqrt(L));
}

double ErrorRatio(double delta) {
  return BernsteinEpsilonFull(delta, 1.0) / McDiarmidEpsilon(delta, 1.0);
}

double McDiarmidTailProbability(double epsilon, double beta, int n) {
  SGM_CHECK(epsilon >= 0.0);
  SGM_CHECK(beta > 0.0);
  SGM_CHECK(n > 0);
  return std::exp(-2.0 * epsilon * epsilon /
                  (static_cast<double>(n) * beta * beta));
}

}  // namespace sgm
