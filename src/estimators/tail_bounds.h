#ifndef SGM_ESTIMATORS_TAIL_BOUNDS_H_
#define SGM_ESTIMATORS_TAIL_BOUNDS_H_

namespace sgm {

/// Multidimensional/scalar tail-probability machinery of Sections 2–4.
///
/// All bounds are parameterized by the application tolerance δ ∈ (0, e⁻¹)
/// and the drift-norm cap U (‖Δv_i‖ ≤ U, Section 3 "Guidance for setting U").

/// σ = U / (2·ln(1/δ)) — the standard-deviation bound of Inequality 3 with
/// the paper's choice x = 1/2.
double BernsteinSigma(double delta, double U);

/// ε = (1 + √ln(1/δ)) / (2·ln(1/δ)) · U — the simplified Vector-Bernstein
/// estimation error of Equation 4 (the value the protocols use; the paper's
/// footnote 2 notes the full inequality yields a slightly higher ε).
double BernsteinEpsilon(double delta, double U);

/// ε = (1 + 2·√ln(1/δ)) / (2·ln(1/δ)) · U — the un-simplified Vector
/// Bernstein error used for the Figure-9 error-ratio study.
double BernsteinEpsilonFull(double delta, double U);

/// ε_C = U / (√2 · √ln(1/δ)) — the McDiarmid error of the revised 1-d
/// scheme (Equation 9). Satisfies ε_C ≤ ε for the δ range of interest.
double McDiarmidEpsilon(double delta, double U);

/// Figure 9's ratio: un-simplified Vector Bernstein over McDiarmid.
double ErrorRatio(double delta);

/// McDiarmid tail for an average of N terms with common bounded difference
/// β: P[E[θ] − θ ≥ ε_C] ≤ exp(−2·ε_C²/(N·β²)) — Inequality 7 with β_i = β.
double McDiarmidTailProbability(double epsilon, double beta, int n);

}  // namespace sgm

#endif  // SGM_ESTIMATORS_TAIL_BOUNDS_H_
