#include "functions/chi_square.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

ChiSquare::ChiSquare(double window, double smoothing, double scale)
    : window_(window), smoothing_(smoothing), scale_(scale) {
  SGM_CHECK_MSG(window > 0.0, "window must be positive");
  SGM_CHECK_MSG(smoothing > 0.0, "smoothing must be positive");
  SGM_CHECK_MSG(scale > 0.0, "scale must be positive");
}

double ChiSquare::Value(const Vector& v) const {
  SGM_CHECK_MSG(v.dim() == 3, "chi_square expects [a, b, c] count vectors");
  // Smooth and clamp the three observed cells; the fourth cell is the
  // remainder of the window.
  const double a = std::max(v[0], 0.0) + smoothing_;
  const double b = std::max(v[1], 0.0) + smoothing_;
  const double c = std::max(v[2], 0.0) + smoothing_;
  const double d =
      std::max(window_ - (v[0] + v[1] + v[2]), 0.0) + smoothing_;
  const double total = a + b + c + d;
  // Normalized cells make the score invariant to a global rescaling of v.
  const double pa = a / total, pb = b / total, pc = c / total, pd = d / total;
  const double numerator = pa * pd - pb * pc;
  const double denominator = (pa + pb) * (pc + pd) * (pa + pc) * (pb + pd);
  return scale_ * numerator * numerator / denominator;
}

Interval ChiSquare::RangeOverBall(const Ball& ball) const {
  // φ² is smooth and nearly quadratic around independence (∇f ≈ 0 there):
  // the second-order probe enclosure is decisively tighter than the
  // Lipschitz one, which would otherwise place the threshold surface a
  // spurious factor ~4 too close.
  return ProbeQuadraticRange(ball, /*random_probes=*/16,
                             /*safety_factor=*/2.0);
}

double ChiSquare::GradientNormBound(const Ball& ball) const {
  // d = 3: axis probes plus extra random boundary probes cover the sphere
  // well; the 2x safety factor absorbs residual curvature.
  return ProbeGradientNormBound(ball, /*random_probes=*/16,
                                /*safety_factor=*/2.0);
}

bool ChiSquare::HomogeneityDegree(double* degree) const {
  // Section 7.2 lists the χ² *score* (on a full contingency table) as
  // homogeneous of degree 0, but this parameterization derives the fourth
  // cell from the fixed window remainder w − a − b − c, which does not scale
  // with v; the composed function is therefore not homogeneous.
  (void)degree;
  return false;
}

}  // namespace sgm
