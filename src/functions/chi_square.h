#ifndef SGM_FUNCTIONS_CHI_SQUARE_H_
#define SGM_FUNCTIONS_CHI_SQUARE_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Normalized χ² (mean-square contingency) score of a (term, category)
/// contingency table derived from the 3-dimensional windowed count vector
/// v = [a, b, c]:
///
///   a = #(term ∧ category),  b = #(term ∧ ¬category),
///   c = #(¬term ∧ category), d = w − a − b − c,
///   φ²(v) = (p_a·p_d − p_b·p_c)² / ((p_a+p_b)(p_c+p_d)(p_a+p_c)(p_b+p_d))
///   f(v)  = scale · φ²(v)
///
/// with p_* the window-normalized cells. φ² = χ²/n is the Pearson statistic
/// per observation (the squared correlation of the two indicators), so the
/// score measures association *strength*, bounded in [0, scale] — the form
/// under which the paper's Reuters thresholds 0.5–1.5 (with default scale 2)
/// sit meaningfully between independence and perfect association. This is
/// the Reuters workload of the paper ([18, 19, 21]). Cells are
/// Laplace-smoothed to keep denominators positive.
///
/// No closed-form ball extrema exist; ball tests use the default certified-
/// by-probing Lipschitz enclosure with an elevated safety factor (d = 3, so
/// the probes cover the sphere densely).
class ChiSquare final : public MonitoredFunction {
 public:
  /// `window` is the per-site sliding-window length w (fixes the derived
  /// fourth cell); `smoothing` the per-cell Laplace constant; `scale` the
  /// output scaling of φ².
  explicit ChiSquare(double window, double smoothing = 2.0,
                     double scale = 2.0);

  std::string name() const override { return "chi_square"; }

  double Value(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double GradientNormBound(const Ball& ball) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<ChiSquare>(*this);
  }

 private:
  double window_;
  double smoothing_;
  double scale_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_CHI_SQUARE_H_
