#include "functions/cosine_similarity.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

CosineSimilarity::CosineSimilarity(std::size_t dim, double floor)
    : dim_(dim), floor_(floor) {
  SGM_CHECK_MSG(dim > 0 && dim % 2 == 0,
                "cosine_similarity needs an even, positive dimension");
  SGM_CHECK(floor > 0.0);
}

double CosineSimilarity::Value(const Vector& v) const {
  SGM_CHECK(v.dim() == dim_);
  const std::size_t half = dim_ / 2;
  double dot = 0.0, xx = 0.0, yy = 0.0;
  for (std::size_t j = 0; j < half; ++j) {
    dot += v[j] * v[j + half];
    xx += v[j] * v[j];
    yy += v[j + half] * v[j + half];
  }
  const double denom =
      std::sqrt(std::max(xx, floor_)) * std::sqrt(std::max(yy, floor_));
  return dot / denom;
}

Vector CosineSimilarity::Gradient(const Vector& v) const {
  SGM_CHECK(v.dim() == dim_);
  const std::size_t half = dim_ / 2;
  double dot = 0.0, xx = 0.0, yy = 0.0;
  for (std::size_t j = 0; j < half; ++j) {
    dot += v[j] * v[j + half];
    xx += v[j] * v[j];
    yy += v[j + half] * v[j + half];
  }
  const double nx = std::sqrt(std::max(xx, floor_));
  const double ny = std::sqrt(std::max(yy, floor_));
  const double f = dot / (nx * ny);

  Vector grad(dim_);
  // ∂f/∂x = y/(‖x‖‖y‖) − f·x/‖x‖² (zero through a floored norm).
  const bool x_floored = xx < floor_;
  const bool y_floored = yy < floor_;
  for (std::size_t j = 0; j < half; ++j) {
    grad[j] = v[j + half] / (nx * ny) -
              (x_floored ? 0.0 : f * v[j] / (nx * nx));
    grad[j + half] =
        v[j] / (nx * ny) - (y_floored ? 0.0 : f * v[j + half] / (ny * ny));
  }
  return grad;
}

Interval CosineSimilarity::RangeOverBall(const Ball& ball) const {
  Interval range = ProbeQuadraticRange(ball, /*random_probes=*/12,
                                       /*safety_factor=*/2.0);
  // Cosine similarity is globally bounded; tighten the enclosure with it.
  range.lo = std::max(range.lo, -1.0);
  range.hi = std::min(range.hi, 1.0);
  return range;
}

bool CosineSimilarity::HomogeneityDegree(double* degree) const {
  // Scale-invariant away from the norm floor.
  *degree = 0.0;
  return true;
}

}  // namespace sgm
