#ifndef SGM_FUNCTIONS_COSINE_SIMILARITY_H_
#define SGM_FUNCTIONS_COSINE_SIMILARITY_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Cosine similarity between the two halves of a concatenated vector
/// v = [x ; y]:
///   f(v) = x·y / (‖x‖·‖y‖)
///
/// The similarity measure of the GM outlier-detection application
/// (Burdakis & Deligiannakis [13]): each monitored pair of sensors
/// contributes x and y, and an alarm fires when their windows stop agreeing
/// (f drops below T). Homogeneous of degree 0 (scale-invariant in each
/// half, hence in v). Exact gradient; probed quadratic enclosure.
class CosineSimilarity final : public MonitoredFunction {
 public:
  /// `dim` must be even; `floor` regularizes the norms away from zero.
  explicit CosineSimilarity(std::size_t dim, double floor = 1e-6);

  std::string name() const override { return "cosine_similarity"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<CosineSimilarity>(*this);
  }

 private:
  std::size_t dim_;
  double floor_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_COSINE_SIMILARITY_H_
