#include "functions/entropy.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

Entropy::Entropy(double smoothing) : smoothing_(smoothing) {
  SGM_CHECK_MSG(smoothing > 0.0, "entropy smoothing must be positive");
}

double Entropy::Smoothed(double x) const {
  return std::max(x, 0.0) + smoothing_;
}

double Entropy::Value(const Vector& v) const {
  SGM_CHECK(!v.empty());
  double total = 0.0;
  for (std::size_t j = 0; j < v.dim(); ++j) total += Smoothed(v[j]);
  double entropy = 0.0;
  for (std::size_t j = 0; j < v.dim(); ++j) {
    const double p = Smoothed(v[j]) / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

Vector Entropy::Gradient(const Vector& v) const {
  // With p_k = w_k/S: dH/dw_j = −(H + ln p_j)/S, zero at the uniform point.
  double total = 0.0;
  for (std::size_t j = 0; j < v.dim(); ++j) total += Smoothed(v[j]);
  const double value = Value(v);
  Vector grad(v.dim());
  for (std::size_t j = 0; j < v.dim(); ++j) {
    if (v[j] < 0.0) {
      grad[j] = 0.0;  // clamped region: f constant in v_j
      continue;
    }
    const double p = Smoothed(v[j]) / total;
    grad[j] = -(value + std::log(p)) / total;
  }
  return grad;
}

Interval Entropy::RangeOverBall(const Ball& ball) const {
  return ProbeQuadraticRange(ball, /*random_probes=*/12,
                             /*safety_factor=*/2.0);
}

}  // namespace sgm
