#ifndef SGM_FUNCTIONS_ENTROPY_H_
#define SGM_FUNCTIONS_ENTROPY_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Shannon entropy of the normalized histogram:
///   f(v) = −Σ_j p_j · ln p_j,   p = (v + α) / Σ(v + α)
///
/// Entropy thresholding over distributed count vectors is a classic GM
/// application (traffic-dispersion / DDoS detection: an attack collapses
/// the destination-port entropy). Smoothing α > 0 keeps p strictly positive
/// at empty buckets. The gradient is exact:
///   ∂f/∂v_j = −(f(v) + ln p_j) / S,   S = Σ(v + α),
/// and ball tests use the certified-by-probing quadratic enclosure (entropy
/// is smooth with vanishing gradient at the uniform point).
class Entropy final : public MonitoredFunction {
 public:
  explicit Entropy(double smoothing = 0.5);

  std::string name() const override { return "entropy"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<Entropy>(*this);
  }

 private:
  double Smoothed(double x) const;

  double smoothing_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_ENTROPY_H_
