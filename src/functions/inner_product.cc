#include "functions/inner_product.h"

#include "core/check.h"

namespace sgm {

InnerProductJoin::InnerProductJoin(std::size_t dim) : dim_(dim) {
  SGM_CHECK_MSG(dim > 0 && dim % 2 == 0,
                "inner_product_join needs an even, positive dimension");
}

double InnerProductJoin::Value(const Vector& v) const {
  SGM_CHECK(v.dim() == dim_);
  const std::size_t half = dim_ / 2;
  double sum = 0.0;
  for (std::size_t j = 0; j < half; ++j) sum += v[j] * v[j + half];
  return sum;
}

Vector InnerProductJoin::Gradient(const Vector& v) const {
  SGM_CHECK(v.dim() == dim_);
  const std::size_t half = dim_ / 2;
  Vector grad(dim_);
  for (std::size_t j = 0; j < half; ++j) {
    grad[j] = v[j + half];
    grad[j + half] = v[j];
  }
  return grad;
}

Interval InnerProductJoin::RangeOverBall(const Ball& ball) const {
  // f(c + u) = f(c) + u·Qc + ½uᵀ(2Q)u/2 with Qc = Gradient(c)/1; the
  // quadratic term is bounded by ½‖u‖² since the swap form has unit spectral
  // radius on R^d (eigenvalues ±1 of the pairing matrix, halved twice).
  const double center_value = Value(ball.center());
  const double r = ball.radius();
  const double linear = r * Gradient(ball.center()).Norm();
  const double quadratic = 0.5 * r * r;
  return Interval{center_value - linear - quadratic,
                  center_value + linear + quadratic};
}

bool InnerProductJoin::HomogeneityDegree(double* degree) const {
  *degree = 2.0;
  return true;
}

}  // namespace sgm
