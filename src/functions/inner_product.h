#ifndef SGM_FUNCTIONS_INNER_PRODUCT_H_
#define SGM_FUNCTIONS_INNER_PRODUCT_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Binary-join size over a concatenated frequency vector v = [x ; y]:
///   f(v) = x·y = Σ_j v_j · v_{j+d/2}.
///
/// Join-aggregate tracking is a flagship GM application ([12, 6]); the
/// concatenation trick reduces it to a single global vector. f is the
/// quadratic form ½·vᵀQv with Q the half-swap permutation (eigenvalues ±½ on
/// paired coordinates), so over B(c, r):
///   |f(c + u) − f(c)| ≤ r·‖Qc‖ + ½r²   (‖u‖ ≤ r, ‖Q‖₂ = ½·2 = 1·½ pairs)
/// which yields a certified enclosure.
class InnerProductJoin final : public MonitoredFunction {
 public:
  /// `dim` must be even: the first half joins against the second half.
  explicit InnerProductJoin(std::size_t dim);

  std::string name() const override { return "inner_product_join"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<InnerProductJoin>(*this);
  }

 private:
  std::size_t dim_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_INNER_PRODUCT_H_
