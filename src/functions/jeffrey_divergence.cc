#include "functions/jeffrey_divergence.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

JeffreyDivergence::JeffreyDivergence(Vector reference, double smoothing)
    : reference_(std::move(reference)), smoothing_(smoothing) {
  SGM_CHECK(!reference_.empty());
  SGM_CHECK_MSG(smoothing > 0.0, "JD smoothing must be positive");
}

double JeffreyDivergence::Smoothed(double x) const {
  // Histogram counts are nonnegative by construction, but the geometric
  // machinery probes arbitrary points of the input domain (ball extremes,
  // gradient probes); clamp so the logarithms stay defined everywhere.
  return std::max(x, 0.0) + smoothing_;
}

double JeffreyDivergence::Value(const Vector& v) const {
  SGM_CHECK(v.dim() == reference_.dim());
  double sum = 0.0;
  for (std::size_t j = 0; j < v.dim(); ++j) {
    const double p = Smoothed(v[j]);
    const double q = Smoothed(reference_[j]);
    sum += (p - q) * std::log(p / q);
  }
  return sum;
}

double JeffreyDivergence::PartialDerivative(double v_smoothed,
                                            double r_smoothed) const {
  return std::log(v_smoothed / r_smoothed) + 1.0 - r_smoothed / v_smoothed;
}

Vector JeffreyDivergence::Gradient(const Vector& v) const {
  SGM_CHECK(v.dim() == reference_.dim());
  Vector grad(v.dim());
  for (std::size_t j = 0; j < v.dim(); ++j) {
    // The clamp in Smoothed() makes f constant in v_j below zero.
    if (v[j] < 0.0) {
      grad[j] = 0.0;
      continue;
    }
    grad[j] = PartialDerivative(Smoothed(v[j]), Smoothed(reference_[j]));
  }
  return grad;
}

double JeffreyDivergence::GradientNormBound(const Ball& ball) const {
  // Per-coordinate certified bound: the partial derivative is monotone in
  // v_j, so its magnitude over [c_j − ρ, c_j + ρ] peaks at an endpoint.
  const Vector& c = ball.center();
  const double r = ball.radius();
  double sq = 0.0;
  for (std::size_t j = 0; j < c.dim(); ++j) {
    const double q = Smoothed(reference_[j]);
    const double lo = Smoothed(c[j] - r);
    const double hi = Smoothed(c[j] + r);
    const double bound = std::max(std::abs(PartialDerivative(lo, q)),
                                  std::abs(PartialDerivative(hi, q)));
    sq += bound * bound;
  }
  return std::sqrt(sq);
}

void JeffreyDivergence::OnSync(const Vector& e) {
  SGM_CHECK(e.dim() == reference_.dim());
  reference_ = e;
}

}  // namespace sgm
