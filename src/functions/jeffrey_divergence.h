#ifndef SGM_FUNCTIONS_JEFFREY_DIVERGENCE_H_
#define SGM_FUNCTIONS_JEFFREY_DIVERGENCE_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Jeffrey divergence between the current histogram and the last-synced one:
///   f(v) = Σ_j (v_j' − r_j') · ln(v_j' / r_j'),   x' = x + α (smoothing).
///
/// This is the symmetric KL-style divergence the paper's Jester JD workload
/// tracks ("the cost of encoding the current global histogram ... to the one
/// communicated during the last central data collection", citing Rubner et
/// al. [43]). It operates on smoothed *count* histograms; α > 0 keeps every
/// term finite. OnSync() re-anchors the reference r to the new e(t).
///
/// f is convex and separable, so a certified ball enclosure follows from a
/// per-coordinate gradient bound: ∂f/∂v_j = ln(v_j'/r_j') + 1 − r_j'/v_j'
/// is non-decreasing in v_j, hence its magnitude over B(c, ρ) is maximized at
/// v_j = c_j ± ρ and L = ‖(max_j |∂_j|)_j‖₂ bounds ‖∇f‖ over the ball.
class JeffreyDivergence final : public MonitoredFunction {
 public:
  /// `reference` is the anchor histogram; `smoothing` the additive α > 0.
  explicit JeffreyDivergence(Vector reference, double smoothing = 0.5);

  std::string name() const override { return "jeffrey_divergence"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  double GradientNormBound(const Ball& ball) const override;
  void OnSync(const Vector& e) override;

  const Vector& reference() const { return reference_; }

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<JeffreyDivergence>(*this);
  }

 private:
  /// Smoothed positive value for a (possibly slightly negative) count.
  double Smoothed(double x) const;
  /// ∂f/∂v_j as a function of the smoothed coordinate and reference.
  double PartialDerivative(double v_smoothed, double r_smoothed) const;

  Vector reference_;
  double smoothing_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_JEFFREY_DIVERGENCE_H_
