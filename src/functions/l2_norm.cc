#include "functions/l2_norm.h"

#include <algorithm>
#include <cmath>

namespace sgm {

double L2Norm::Value(const Vector& v) const {
  return squared_ ? v.SquaredNorm() : v.Norm();
}

Vector L2Norm::Gradient(const Vector& v) const {
  Vector grad = v;
  if (squared_) {
    grad *= 2.0;
    return grad;
  }
  const double norm = v.Norm();
  if (norm > 0.0) grad /= norm;
  return grad;
}

Interval L2Norm::RangeOverBall(const Ball& ball) const {
  const double center_norm = ball.center().Norm();
  const double lo = std::max(0.0, center_norm - ball.radius());
  const double hi = center_norm + ball.radius();
  if (squared_) return Interval{lo * lo, hi * hi};
  return Interval{lo, hi};
}

double L2Norm::DistanceToSurface(const Vector& point, double threshold,
                                 double /*search_radius*/) const {
  // Surface {‖v‖ = s}; empty for negative thresholds (report +inf-ish cap).
  const double s =
      squared_ ? (threshold >= 0.0 ? std::sqrt(threshold) : -1.0) : threshold;
  if (s < 0.0) return std::numeric_limits<double>::infinity();
  return std::abs(point.Norm() - s);
}

std::unique_ptr<SafeZone> L2Norm::BuildSafeZone(const Vector& e,
                                                double threshold,
                                                bool above) const {
  const double s =
      squared_ ? (threshold >= 0.0 ? std::sqrt(threshold) : -1.0) : threshold;
  if (!above && s >= 0.0) {
    return std::make_unique<BallSafeZone>(Ball(Vector(e.dim()), s));
  }
  // Above the surface the admissible region {‖v‖ ≥ s} is not convex; fall
  // back to the inscribed ball around e.
  return MonitoredFunction::BuildSafeZone(e, threshold, above);
}

bool L2Norm::HomogeneityDegree(double* degree) const {
  *degree = squared_ ? 2.0 : 1.0;
  return true;
}

}  // namespace sgm
