#ifndef SGM_FUNCTIONS_L2_NORM_H_
#define SGM_FUNCTIONS_L2_NORM_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Euclidean-norm queries: f(v) = ‖v‖ or the self-join size f(v) = ‖v‖².
///
/// Self-join size tracking over the expected-count histogram vector is one
/// of the three Jester workloads of the paper's Section 6 ("SJ", essentially
/// the L2 norm — [19,12,6]). All geometric primitives are exact:
/// over B(c, r) the norm ranges in [max(0, ‖c‖ − r), ‖c‖ + r], and the
/// distance from p to {‖v‖ = s} is |‖p‖ − s|.
class L2Norm final : public MonitoredFunction {
 public:
  /// `squared` = true yields the self-join size ‖v‖².
  explicit L2Norm(bool squared = false) : squared_(squared) {}

  /// Factory for the paper's SJ workload.
  static std::unique_ptr<L2Norm> SelfJoinSize() {
    return std::make_unique<L2Norm>(/*squared=*/true);
  }

  std::string name() const override {
    return squared_ ? "self_join_size" : "l2_norm";
  }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double DistanceToSurface(const Vector& point, double threshold,
                           double search_radius = 0.0) const override;
  /// Below the threshold the admissible region {‖v‖ ≤ s} is itself a ball
  /// around the origin — the exact (maximal possible) convex safe zone.
  std::unique_ptr<SafeZone> BuildSafeZone(const Vector& e, double threshold,
                                          bool above) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<L2Norm>(*this);
  }

 private:
  bool squared_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_L2_NORM_H_
