#include "functions/linear.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

LinearFunction::LinearFunction(Vector weights, double bias)
    : weights_(std::move(weights)), bias_(bias) {
  SGM_CHECK(!weights_.empty());
}

std::unique_ptr<LinearFunction> LinearFunction::CoordinateSum(
    std::size_t dim) {
  return std::make_unique<LinearFunction>(Vector(dim, 1.0));
}

double LinearFunction::Value(const Vector& v) const {
  return weights_.Dot(v) + bias_;
}

Vector LinearFunction::Gradient(const Vector& /*v*/) const { return weights_; }

Interval LinearFunction::RangeOverBall(const Ball& ball) const {
  const double center_value = Value(ball.center());
  const double spread = ball.radius() * weights_.Norm();
  return Interval{center_value - spread, center_value + spread};
}

double LinearFunction::DistanceToSurface(const Vector& point, double threshold,
                                         double /*search_radius*/) const {
  return std::abs(Value(point) - threshold) / weights_.Norm();
}

std::unique_ptr<SafeZone> LinearFunction::BuildSafeZone(
    const Vector& /*e*/, double threshold, bool above) const {
  // Below: {a·v ≤ T − b}. Above: {−a·v ≤ b − T}. Both exact halfspaces.
  if (!above) {
    return std::make_unique<HalfspaceSafeZone>(
        Halfspace(weights_, threshold - bias_));
  }
  return std::make_unique<HalfspaceSafeZone>(
      Halfspace(weights_ * -1.0, bias_ - threshold));
}

bool LinearFunction::HomogeneityDegree(double* degree) const {
  if (bias_ != 0.0) return false;
  *degree = 1.0;
  return true;
}

}  // namespace sgm
