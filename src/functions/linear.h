#ifndef SGM_FUNCTIONS_LINEAR_H_
#define SGM_FUNCTIONS_LINEAR_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Affine query f(v) = a·v + b — thresholded sums/counts ([9, 10]).
///
/// Linear queries are the degenerate case where geometric monitoring reduces
/// to the classical distributed-threshold schemes; they are included both as
/// the simplest sanity workload and because every geometric primitive is
/// exact (ranges f(c) ± r‖a‖; surface distance |f(p) − T|/‖a‖).
class LinearFunction final : public MonitoredFunction {
 public:
  LinearFunction(Vector weights, double bias = 0.0);

  /// f(v) = Σ_j v_j: the thresholded-count query.
  static std::unique_ptr<LinearFunction> CoordinateSum(std::size_t dim);

  std::string name() const override { return "linear"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double DistanceToSurface(const Vector& point, double threshold,
                           double search_radius = 0.0) const override;
  /// The admissible region {a·v + b ≤ T} (or ≥) is itself a halfspace —
  /// the exact convex safe zone on either side of the surface.
  std::unique_ptr<SafeZone> BuildSafeZone(const Vector& e, double threshold,
                                          bool above) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<LinearFunction>(*this);
  }

 private:
  Vector weights_;
  double bias_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_LINEAR_H_
