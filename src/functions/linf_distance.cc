#include "functions/linf_distance.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

LInfDistance::LInfDistance(Vector reference)
    : reference_(std::move(reference)) {
  SGM_CHECK(!reference_.empty());
}

double LInfDistance::Value(const Vector& v) const {
  return (v - reference_).LInfNorm();
}

Vector LInfDistance::Gradient(const Vector& v) const {
  // Subgradient: unit vector on (one) maximizing coordinate.
  Vector grad(v.dim());
  std::size_t arg = 0;
  double best = -1.0;
  for (std::size_t j = 0; j < v.dim(); ++j) {
    const double a = std::abs(v[j] - reference_[j]);
    if (a > best) {
      best = a;
      arg = j;
    }
  }
  grad[arg] = (v[arg] >= reference_[arg]) ? 1.0 : -1.0;
  return grad;
}

double LInfDistance::DistanceToBox(const Vector& point, double t) const {
  double sq = 0.0;
  for (std::size_t j = 0; j < point.dim(); ++j) {
    const double excess = std::abs(point[j] - reference_[j]) - t;
    if (excess > 0.0) sq += excess * excess;
  }
  return std::sqrt(sq);
}

Interval LInfDistance::RangeOverBall(const Ball& ball) const {
  const double center_value = Value(ball.center());
  const double r = ball.radius();
  const double hi = center_value + r;

  // min over the ball: smallest t with dist(center, Box(ref, t)) ≤ r.
  // DistanceToBox is non-increasing in t, so bisect on [lo_bound, center].
  // The returned lower endpoint is always the certified side of the bisection
  // bracket, preserving the enclosure contract.
  double lo = std::max(0.0, center_value - r);
  if (DistanceToBox(ball.center(), lo) > r) {
    double hi_t = center_value;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi_t);
      if (DistanceToBox(ball.center(), mid) <= r) {
        hi_t = mid;
      } else {
        lo = mid;
      }
    }
  }
  return Interval{lo, hi};
}

double LInfDistance::DistanceToSurface(const Vector& point, double threshold,
                                       double /*search_radius*/) const {
  if (threshold < 0.0) return std::numeric_limits<double>::infinity();
  const double value = Value(point);
  if (value > threshold) {
    // Outside the box: closed-form distance to the box of half-width T.
    return DistanceToBox(point, threshold);
  }
  // Inside: cheapest exit pushes the largest coordinate to the T face.
  return threshold - value;
}

std::unique_ptr<SafeZone> LInfDistance::BuildSafeZone(const Vector& e,
                                                      double threshold,
                                                      bool above) const {
  if (!above && threshold >= 0.0) {
    return std::make_unique<BoxSafeZone>(reference_, threshold);
  }
  return MonitoredFunction::BuildSafeZone(e, threshold, above);
}

void LInfDistance::OnSync(const Vector& e) {
  SGM_CHECK(e.dim() == reference_.dim());
  reference_ = e;
}

}  // namespace sgm
