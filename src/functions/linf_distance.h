#ifndef SGM_FUNCTIONS_LINF_DISTANCE_H_
#define SGM_FUNCTIONS_LINF_DISTANCE_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// f(v) = ‖v − ref‖_∞ — maximum per-bucket deviation from a reference
/// histogram.
///
/// The paper's Jester L∞ workload measures the distance of the current
/// global histogram from the one shipped at the last central data
/// collection, so OnSync() re-anchors `ref` to the freshly-computed e(t).
/// All geometric primitives are exact:
///  * max over B(c,r) is ‖c − ref‖_∞ + r (push one coordinate by r);
///  * min over B(c,r) is found by bisection on t through the closed-form
///    distance from c to the box {‖x − ref‖_∞ ≤ t};
///  * point-to-surface distance has a closed form on both sides.
class LInfDistance final : public MonitoredFunction {
 public:
  /// Starts anchored at `reference` (commonly the zero vector before the
  /// first synchronization).
  explicit LInfDistance(Vector reference);

  std::string name() const override { return "linf_distance"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double DistanceToSurface(const Vector& point, double threshold,
                           double search_radius = 0.0) const override;
  /// Below the threshold the admissible region {‖v − ref‖_∞ ≤ T} is a box
  /// — the exact convex safe zone, with closed-form signed distance.
  std::unique_ptr<SafeZone> BuildSafeZone(const Vector& e, double threshold,
                                          bool above) const override;
  void OnSync(const Vector& e) override;

  const Vector& reference() const { return reference_; }

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<LInfDistance>(*this);
  }

 private:
  /// Euclidean distance from `point` to the box {‖x − ref‖_∞ ≤ t}.
  double DistanceToBox(const Vector& point, double t) const;

  Vector reference_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_LINF_DISTANCE_H_
