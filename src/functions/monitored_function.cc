#include "functions/monitored_function.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

Vector MonitoredFunction::Gradient(const Vector& v) const {
  // Central differences with per-coordinate scaled step.
  Vector grad(v.dim());
  Vector probe = v;
  for (std::size_t j = 0; j < v.dim(); ++j) {
    const double h = 1e-6 * (1.0 + std::abs(v[j]));
    const double saved = probe[j];
    probe[j] = saved + h;
    const double f_plus = Value(probe);
    probe[j] = saved - h;
    const double f_minus = Value(probe);
    probe[j] = saved;
    grad[j] = (f_plus - f_minus) / (2.0 * h);
  }
  return grad;
}

double MonitoredFunction::ProbeGradientNormBound(const Ball& ball,
                                                 int random_probes,
                                                 double safety_factor) const {
  const Vector& c = ball.center();
  const double r = ball.radius();
  double bound = Gradient(c).Norm();

  Vector probe = c;
  for (std::size_t j = 0; j < c.dim(); ++j) {
    const double saved = probe[j];
    probe[j] = saved + r;
    bound = std::max(bound, Gradient(probe).Norm());
    probe[j] = saved - r;
    bound = std::max(bound, Gradient(probe).Norm());
    probe[j] = saved;
  }

  // Deterministic per-ball probe seed keeps results reproducible.
  std::uint64_t seed = 0x5bd1e995u;
  for (std::size_t j = 0; j < c.dim(); ++j) {
    seed = seed * 6364136223846793005ULL +
           static_cast<std::uint64_t>(c[j] * 1e6) + 1442695040888963407ULL;
  }
  Rng rng(seed);
  for (int p = 0; p < random_probes; ++p) {
    Vector direction(c.dim());
    for (std::size_t j = 0; j < c.dim(); ++j) {
      direction[j] = rng.NextGaussian();
    }
    const double norm = direction.Norm();
    if (norm == 0.0) continue;
    Vector x = c;
    x.Axpy(r / norm, direction);
    bound = std::max(bound, Gradient(x).Norm());
  }
  return bound * safety_factor;
}

Interval MonitoredFunction::ProbeQuadraticRange(const Ball& ball,
                                                int random_probes,
                                                double safety_factor) const {
  const Vector& c = ball.center();
  const double r = ball.radius();
  const double center_value = Value(c);
  if (r == 0.0) return Interval{center_value, center_value};
  const Vector center_grad = Gradient(c);

  double curvature = 0.0;
  auto probe = [&](const Vector& x) {
    const double distance = x.DistanceTo(c);
    if (distance <= 0.0) return;
    const double secant = (Gradient(x) - center_grad).Norm() / distance;
    curvature = std::max(curvature, secant);
  };

  Vector x = c;
  for (std::size_t j = 0; j < c.dim(); ++j) {
    const double saved = x[j];
    x[j] = saved + r;
    probe(x);
    x[j] = saved - r;
    probe(x);
    x[j] = saved;
  }
  std::uint64_t seed = 0x2545f491u;
  for (std::size_t j = 0; j < c.dim(); ++j) {
    seed = seed * 6364136223846793005ULL +
           static_cast<std::uint64_t>(c[j] * 1e6) + 1442695040888963407ULL;
  }
  Rng rng(seed);
  for (int p = 0; p < random_probes; ++p) {
    Vector direction(c.dim());
    for (std::size_t j = 0; j < c.dim(); ++j) {
      direction[j] = rng.NextGaussian();
    }
    const double norm = direction.Norm();
    if (norm == 0.0) continue;
    Vector point = c;
    point.Axpy(r / norm, direction);
    probe(point);
  }

  const double spread = r * center_grad.Norm() +
                        0.5 * r * r * curvature * safety_factor;
  return Interval{center_value - spread, center_value + spread};
}

double MonitoredFunction::GradientNormBound(const Ball& ball) const {
  return ProbeGradientNormBound(ball, /*random_probes=*/8,
                                /*safety_factor=*/1.5);
}

Interval MonitoredFunction::RangeOverBall(const Ball& ball) const {
  const double center_value = Value(ball.center());
  const double spread = ball.radius() * GradientNormBound(ball);
  return Interval{center_value - spread, center_value + spread};
}

bool MonitoredFunction::BallCrossesThreshold(const Ball& ball,
                                             double threshold) const {
  return RangeOverBall(ball).Straddles(threshold);
}

double MonitoredFunction::DistanceToSurface(const Vector& point,
                                            double threshold,
                                            double search_radius) const {
  const double value_gap = std::abs(Value(point) - threshold);
  if (value_gap == 0.0) return 0.0;

  // Initial radius guess from the local slope, then exponential expansion up
  // to the cap, then bisection between the last safe and first crossing radii.
  const double slope = Gradient(point).Norm();
  double lo = 0.0;
  double hi = std::max(1e-9, value_gap / (slope + 1e-12));
  const double cap =
      search_radius > 0.0 ? search_radius : std::max(1e3, hi * 1e6);

  int expansions = 0;
  while (!RangeOverBall(Ball(point, hi)).Straddles(threshold)) {
    lo = hi;
    hi *= 2.0;
    if (hi >= cap || ++expansions > 200) return std::min(hi, cap);
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (RangeOverBall(Ball(point, mid)).Straddles(threshold)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

void MonitoredFunction::OnSync(const Vector& /*e*/) {}

std::unique_ptr<SafeZone> MonitoredFunction::BuildSafeZone(
    const Vector& e, double threshold, bool /*above*/) const {
  return std::make_unique<BallSafeZone>(
      Ball(e, DistanceToSurface(e, threshold)));
}

bool MonitoredFunction::HomogeneityDegree(double* /*degree*/) const {
  return false;
}

}  // namespace sgm
