#ifndef SGM_FUNCTIONS_MONITORED_FUNCTION_H_
#define SGM_FUNCTIONS_MONITORED_FUNCTION_H_

#include <memory>
#include <string>

#include "core/rng.h"
#include "core/vector.h"
#include "geometry/ball.h"
#include "geometry/safe_zone.h"

namespace sgm {

/// Closed interval [lo, hi] used as a range enclosure of f over a region.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Straddles(double threshold) const {
    return lo <= threshold && threshold <= hi;
  }
};

/// A (generally non-linear) function f : R^d → R tracked against a threshold.
///
/// This is the query abstraction of the whole library. Geometric monitoring
/// tracks whether f(v(t)) ≤ T for the global average vector v(t); the local
/// test every protocol performs is "does my constraint ball intersect the
/// threshold surface {f = T}?", which this interface exposes as
/// BallCrossesThreshold().
///
/// ### Conservativeness contract
/// RangeOverBall() must return an *enclosure*: `lo ≤ min_B f` and
/// `hi ≥ max_B f`. Consequently BallCrossesThreshold() may report a crossing
/// that does not exist (costing a false-positive synchronization, which GM
/// tolerates by design) but never misses a true crossing — the property the
/// GM correctness argument needs. Subclasses with closed-form extrema
/// override RangeOverBall() with exact bounds; the default implementation
/// uses a certified-by-construction Lipschitz bound f(c) ± r·L where L is
/// GradientNormBound() over the ball.
///
/// ### References
/// Functions whose definition involves the last centrally-collected state
/// (e.g. L∞/Jeffrey distance *to the histogram shipped at the previous
/// synchronization*) override OnSync() to re-anchor themselves. Protocols
/// must therefore own a private Clone() of the function they track.
class MonitoredFunction {
 public:
  virtual ~MonitoredFunction() = default;

  virtual std::string name() const = 0;

  /// f(v).
  virtual double Value(const Vector& v) const = 0;

  /// ∇f(v); default central finite differences (exact overrides preferred).
  virtual Vector Gradient(const Vector& v) const;

  /// Enclosure of f over the closed ball (see conservativeness contract).
  virtual Interval RangeOverBall(const Ball& ball) const;

  /// Upper bound on sup_{x∈ball} ‖∇f(x)‖ used by the default
  /// RangeOverBall(). The default estimates the bound by probing gradients at
  /// the center, the axis-extreme points and random boundary points, padded
  /// by a 1.5× safety factor; override with a certified analytic bound where
  /// one exists.
  virtual double GradientNormBound(const Ball& ball) const;

  /// True when the ball (possibly) intersects the threshold surface {f = T}.
  /// Conservative per the enclosure contract.
  virtual bool BallCrossesThreshold(const Ball& ball, double threshold) const;

  /// Lower bound on the Euclidean distance from `point` to {f = T}
  /// (the ε_T of Figure 5, and the safe-zone radius of Section 6.6).
  /// The default binary-searches the largest ball around `point` whose
  /// RangeOverBall() enclosure stays on one side of T; exact overrides exist
  /// for norms. `search_radius` caps the search.
  virtual double DistanceToSurface(const Vector& point, double threshold,
                                   double search_radius = 0.0) const;

  /// Re-anchors reference-based functions to the freshly-synced global
  /// average `e`; no-op by default.
  virtual void OnSync(const Vector& e);

  /// Builds the best available convex safe zone (Section 4): a convex
  /// subset of the admissible region on `e`'s side of the threshold
  /// surface, containing `e`. The default is the maximal inscribed ball
  /// B(e, DistanceToSurface(e, T)); functions whose admissible region is
  /// itself convex override with the exact region (the CV literature's
  /// point that zone quality is function-specific). `above` tells which
  /// side of the surface is currently admissible.
  virtual std::unique_ptr<SafeZone> BuildSafeZone(const Vector& e,
                                                  double threshold,
                                                  bool above) const;

  /// Degree α when f is homogeneous (f(k·v) = k^α f(v)), used by the
  /// Section-7 sum-parameterization transforms. Returns false when f is not
  /// homogeneous.
  virtual bool HomogeneityDegree(double* degree) const;

  /// Deep copy (protocols anchor private references via OnSync).
  virtual std::unique_ptr<MonitoredFunction> Clone() const = 0;

 protected:
  /// Shared helper for the default GradientNormBound() probing.
  double ProbeGradientNormBound(const Ball& ball, int random_probes,
                                double safety_factor) const;

  /// Second-order enclosure for smooth functions:
  ///   f(c) ± (r·‖∇f(c)‖ + ½·r²·H)
  /// with H a curvature bound probed as max ‖∇f(x) − ∇f(c)‖ / ‖x − c‖ over
  /// axis and random ball points, padded by `safety_factor`. Far tighter
  /// than the Lipschitz enclosure where the gradient vanishes (e.g. χ² near
  /// independence), at the cost of extra gradient evaluations.
  Interval ProbeQuadraticRange(const Ball& ball, int random_probes,
                               double safety_factor) const;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_MONITORED_FUNCTION_H_
