#include "functions/mutual_information.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

MutualInformation::MutualInformation(double window, int num_sites,
                                     double smoothing)
    : window_(window), num_sites_(num_sites), smoothing_(smoothing) {
  SGM_CHECK(window > 0.0);
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(smoothing > 0.0);
}

double MutualInformation::Value(const Vector& v) const {
  SGM_CHECK_MSG(v.dim() == 3, "mutual_information expects [v1, v2, v3]");
  const double v1 = std::max(v[0], 0.0) + smoothing_;
  const double v2 = std::max(v[1], 0.0) + smoothing_;
  const double v3 = std::max(v[2], 0.0) + smoothing_;
  return std::log(v1 * window_ * static_cast<double>(num_sites_) /
                  ((v1 + v3) * (v1 + v2)));
}

Vector MutualInformation::Gradient(const Vector& v) const {
  SGM_CHECK(v.dim() == 3);
  Vector grad(3);
  const bool clamped1 = v[0] < 0.0;
  const bool clamped2 = v[1] < 0.0;
  const bool clamped3 = v[2] < 0.0;
  const double v1 = std::max(v[0], 0.0) + smoothing_;
  const double v2 = std::max(v[1], 0.0) + smoothing_;
  const double v3 = std::max(v[2], 0.0) + smoothing_;
  // f = ln v1 − ln(v1+v3) − ln(v1+v2) + const.
  grad[0] = clamped1 ? 0.0 : 1.0 / v1 - 1.0 / (v1 + v3) - 1.0 / (v1 + v2);
  grad[1] = clamped2 ? 0.0 : -1.0 / (v1 + v2);
  grad[2] = clamped3 ? 0.0 : -1.0 / (v1 + v3);
  return grad;
}

double MutualInformation::GradientNormBound(const Ball& ball) const {
  return ProbeGradientNormBound(ball, /*random_probes=*/16,
                                /*safety_factor=*/2.0);
}

double MutualInformation::ExampleThreshold(double margin) const {
  return std::log(static_cast<double>(num_sites_)) + margin;
}

}  // namespace sgm
