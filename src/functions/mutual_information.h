#ifndef SGM_FUNCTIONS_MUTUAL_INFORMATION_H_
#define SGM_FUNCTIONS_MUTUAL_INFORMATION_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Mutual-information relevance score of the paper's running example
/// (Example 1):
///
///   f(v) = log( v¹·w·N / ((v¹ + v³)(v¹ + v²)) )
///
/// over the 3-dimensional averaged count vector v = [co-occurrences,
/// term-only, category-only] within windows of w observations per site,
/// tracked against T = log(N) + margin. Inputs are smoothed so the logarithm
/// stays defined at empty windows.
class MutualInformation final : public MonitoredFunction {
 public:
  MutualInformation(double window, int num_sites, double smoothing = 0.1);

  std::string name() const override { return "mutual_information"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  double GradientNormBound(const Ball& ball) const override;

  /// The natural threshold of the running example, log(N) + margin.
  double ExampleThreshold(double margin = 0.01) const;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<MutualInformation>(*this);
  }

 private:
  double window_;
  int num_sites_;
  double smoothing_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_MUTUAL_INFORMATION_H_
