#include "functions/sum_parameterization.h"

#include <cmath>

#include "core/check.h"

namespace sgm {

ScaledInputFunction::ScaledInputFunction(
    std::unique_ptr<MonitoredFunction> inner, double scale)
    : inner_(std::move(inner)), scale_(scale) {
  SGM_CHECK(inner_ != nullptr);
  SGM_CHECK_MSG(scale > 0.0, "input scale must be positive");
}

ScaledInputFunction::ScaledInputFunction(const ScaledInputFunction& other)
    : inner_(other.inner_->Clone()), scale_(other.scale_) {}

std::string ScaledInputFunction::name() const {
  return inner_->name() + "_sum";
}

double ScaledInputFunction::Value(const Vector& v) const {
  return inner_->Value(v * scale_);
}

Vector ScaledInputFunction::Gradient(const Vector& v) const {
  return inner_->Gradient(v * scale_) * scale_;
}

Interval ScaledInputFunction::RangeOverBall(const Ball& ball) const {
  // The image of B(c, r) under x ↦ s·x is B(s·c, s·r): the adapted-vectors
  // geometry (balls scaled by N) falls out exactly (Lemma 7).
  return inner_->RangeOverBall(
      Ball(ball.center() * scale_, ball.radius() * scale_));
}

double ScaledInputFunction::DistanceToSurface(const Vector& point,
                                              double threshold,
                                              double search_radius) const {
  // Lemma 6(b): distances in the average-parameterized domain are N times
  // shorter than in the sum domain.
  return inner_->DistanceToSurface(point * scale_, threshold,
                                   search_radius * scale_) /
         scale_;
}

void ScaledInputFunction::OnSync(const Vector& e) {
  inner_->OnSync(e * scale_);
}

bool ScaledInputFunction::HomogeneityDegree(double* degree) const {
  return inner_->HomogeneityDegree(degree);
}

double TransformThresholdForAverage(const MonitoredFunction& function,
                                    double sum_threshold, int num_sites) {
  double degree = 0.0;
  SGM_CHECK_MSG(function.HomogeneityDegree(&degree),
                "function transformation requires a homogeneous function");
  return sum_threshold /
         std::pow(static_cast<double>(num_sites), degree);
}

double RelativeRateOfGrowth(double degree, int num_sites) {
  return std::pow(static_cast<double>(num_sites), degree);
}

}  // namespace sgm
