#ifndef SGM_FUNCTIONS_SUM_PARAMETERIZATION_H_
#define SGM_FUNCTIONS_SUM_PARAMETERIZATION_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Sum-parameterized monitoring (Section 7): tracks f(v_sum) = f(N·v) by
/// composing a scaling of the input domain with the wrapped function.
///
/// This is the *Adapted Vectors* approach of Section 7.1 expressed as a
/// function wrapper: evaluating the wrapped f on N-times-scaled inputs is
/// isometric (Lemma 7) to scaling every drift vector and constraint ball by
/// N, so protocols can monitor sum queries without special-casing — the
/// larger effective balls (and hence the extra false positives the paper
/// analyzes) emerge from RangeOverBall() of the scaled geometry.
class ScaledInputFunction final : public MonitoredFunction {
 public:
  /// Monitors inner(scale · v); scale = N for sum-parameterization.
  ScaledInputFunction(std::unique_ptr<MonitoredFunction> inner, double scale);

  ScaledInputFunction(const ScaledInputFunction& other);
  ScaledInputFunction& operator=(const ScaledInputFunction&) = delete;

  std::string name() const override;
  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double DistanceToSurface(const Vector& point, double threshold,
                           double search_radius = 0.0) const override;
  void OnSync(const Vector& e) override;
  bool HomogeneityDegree(double* degree) const override;

  double scale() const { return scale_; }

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<ScaledInputFunction>(*this);
  }

 private:
  std::unique_ptr<MonitoredFunction> inner_;
  double scale_;
};

/// The *Function Transformation* approach of Section 7.3 for homogeneous
/// functions: f(N·v) ≤ T  ⇔  f(v) ≤ T / N^α. Returns the transformed
/// threshold; the monitored function stays f itself (average input, no drift
/// scaling). SGM_CHECKs that `function` reports a homogeneity degree.
double TransformThresholdForAverage(const MonitoredFunction& function,
                                    double sum_threshold, int num_sites);

/// Relative Rate of Growth RRG = lim ‖v‖→∞ |f(N·v)/f(v)| for a homogeneous
/// function of degree α: N^α (Section 7.2).
double RelativeRateOfGrowth(double degree, int num_sites);

}  // namespace sgm

#endif  // SGM_FUNCTIONS_SUM_PARAMETERIZATION_H_
