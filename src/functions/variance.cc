#include "functions/variance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace sgm {

double CoordinateDispersion::ProjectedNorm(const Vector& v) {
  const double mean = v.Sum() / static_cast<double>(v.dim());
  double sq = 0.0;
  for (std::size_t j = 0; j < v.dim(); ++j) {
    const double centered = v[j] - mean;
    sq += centered * centered;
  }
  return std::sqrt(sq);
}

double CoordinateDispersion::Value(const Vector& v) const {
  SGM_CHECK(!v.empty());
  const double pn = ProjectedNorm(v);
  const double d = static_cast<double>(v.dim());
  return squared_ ? pn * pn / d : pn / std::sqrt(d);
}

Vector CoordinateDispersion::Gradient(const Vector& v) const {
  const double d = static_cast<double>(v.dim());
  const double mean = v.Sum() / d;
  Vector centered = v;
  for (std::size_t j = 0; j < v.dim(); ++j) centered[j] -= mean;
  if (squared_) {
    centered *= 2.0 / d;
    return centered;
  }
  const double pn = centered.Norm();
  if (pn > 0.0) centered *= 1.0 / (std::sqrt(d) * pn);
  return centered;
}

Interval CoordinateDispersion::RangeOverBall(const Ball& ball) const {
  // stdev is the seminorm ‖P·‖/√d, which is (1/√d)-Lipschitz in L2 and whose
  // extremes over a ball are attained along ±P·c (or any range(P) direction
  // when P·c = 0): exact enclosure.
  const double d = static_cast<double>(ball.center().dim());
  const double center_sd = ProjectedNorm(ball.center()) / std::sqrt(d);
  const double spread = ball.radius() / std::sqrt(d);
  const double lo_sd = std::max(0.0, center_sd - spread);
  const double hi_sd = center_sd + spread;
  if (squared_) return Interval{lo_sd * lo_sd, hi_sd * hi_sd};
  return Interval{lo_sd, hi_sd};
}

double CoordinateDispersion::DistanceToSurface(const Vector& point,
                                               double threshold,
                                               double /*search_radius*/) const {
  const double target_sd =
      squared_ ? (threshold >= 0.0 ? std::sqrt(threshold)
                                   : -1.0)
               : threshold;
  if (target_sd < 0.0) return std::numeric_limits<double>::infinity();
  const double d = static_cast<double>(point.dim());
  const double point_sd = ProjectedNorm(point) / std::sqrt(d);
  // Only displacement inside range(P) changes the value; the cheapest move
  // to the surface is radial in that subspace.
  return std::sqrt(d) * std::abs(point_sd - target_sd);
}

bool CoordinateDispersion::HomogeneityDegree(double* degree) const {
  *degree = squared_ ? 2.0 : 1.0;
  return true;
}

}  // namespace sgm
