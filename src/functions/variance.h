#ifndef SGM_FUNCTIONS_VARIANCE_H_
#define SGM_FUNCTIONS_VARIANCE_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Cross-coordinate dispersion of the monitored vector:
///   stdev(v) = ‖P v‖ / √d,  variance(v) = ‖P v‖² / d,
/// with P = I − (1/d)·11ᵀ the mean-removing orthogonal projection.
///
/// This is the function pair of the paper's Section 7.4 sum-vs-average
/// study: stdev is homogeneous of degree 1 and variance of degree 2, so
/// sum-parameterization scales them linearly / quadratically with N.
/// stdev is a seminorm, giving exact ball enclosures
/// [max(0, f(c) − r/√d), f(c) + r/√d] and the exact surface distance
/// √d·|f(p) − T| (movement within range(P) is what changes f).
class CoordinateDispersion final : public MonitoredFunction {
 public:
  /// `squared` = true yields the variance, false the standard deviation.
  explicit CoordinateDispersion(bool squared = false) : squared_(squared) {}

  static std::unique_ptr<CoordinateDispersion> StdDev() {
    return std::make_unique<CoordinateDispersion>(false);
  }
  static std::unique_ptr<CoordinateDispersion> Variance() {
    return std::make_unique<CoordinateDispersion>(true);
  }

  std::string name() const override {
    return squared_ ? "variance" : "stdev";
  }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  double DistanceToSurface(const Vector& point, double threshold,
                           double search_radius = 0.0) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<CoordinateDispersion>(*this);
  }

 private:
  /// ‖P v‖: norm of the mean-removed vector.
  static double ProjectedNorm(const Vector& v);

  bool squared_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_VARIANCE_H_
