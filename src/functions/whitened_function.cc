#include "functions/whitened_function.h"

#include <algorithm>

#include "core/check.h"

namespace sgm {

WhitenedFunction::WhitenedFunction(std::unique_ptr<MonitoredFunction> inner,
                                   Vector scales)
    : inner_(std::move(inner)), scales_(std::move(scales)) {
  SGM_CHECK(inner_ != nullptr);
  SGM_CHECK(!scales_.empty());
  min_scale_ = scales_[0];
  for (std::size_t j = 0; j < scales_.dim(); ++j) {
    SGM_CHECK_MSG(scales_[j] > 0.0, "whitening scales must be positive");
    min_scale_ = std::min(min_scale_, scales_[j]);
  }
}

WhitenedFunction::WhitenedFunction(const WhitenedFunction& other)
    : inner_(other.inner_->Clone()),
      scales_(other.scales_),
      min_scale_(other.min_scale_) {}

Vector WhitenedFunction::Unwhiten(const Vector& z) const {
  SGM_CHECK(z.dim() == scales_.dim());
  Vector v = z;
  for (std::size_t j = 0; j < v.dim(); ++j) v[j] /= scales_[j];
  return v;
}

double WhitenedFunction::Value(const Vector& z) const {
  return inner_->Value(Unwhiten(z));
}

Vector WhitenedFunction::Gradient(const Vector& z) const {
  Vector grad = inner_->Gradient(Unwhiten(z));
  for (std::size_t j = 0; j < grad.dim(); ++j) grad[j] /= scales_[j];
  return grad;
}

void WhitenedFunction::OnSync(const Vector& z) {
  inner_->OnSync(Unwhiten(z));
}

}  // namespace sgm
