#ifndef SGM_FUNCTIONS_WHITENED_FUNCTION_H_
#define SGM_FUNCTIONS_WHITENED_FUNCTION_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Shape-sensitive monitoring à la Sharfman et al. [21], diagonal form:
/// monitor in *whitened* coordinates z = D·v (D = diag(scales) > 0), where
/// per-coordinate data spreads are equalized so the spherical local
/// constraints fit the actual drift distribution. The monitored value is
/// unchanged — Value(z) = f(D⁻¹z) — only the geometry (balls, distances)
/// lives in z-space.
///
/// Geometry happens natively in z-space through the base class's certified
/// probing enclosures over the *whitened* gradient ∇f_w = D⁻¹·∇f(D⁻¹z) —
/// this is the whole point: a direction the function ignores but the data
/// churns in gets a small D entry, the whitened gradient (and hence every
/// ball spread) shrinks along it, and the spherical tests stop paying for
/// irrelevant drift. (Delegating to the inner function over the covering
/// ball of the preimage ellipsoid would re-inflate exactly that axis.)
///
/// Pair with WhitenedStream (data/whitened_stream.h), which applies the
/// same D to the site vectors.
class WhitenedFunction final : public MonitoredFunction {
 public:
  /// `scales` are D's diagonal entries (all > 0), matching the inner
  /// function's dimensionality.
  WhitenedFunction(std::unique_ptr<MonitoredFunction> inner, Vector scales);

  WhitenedFunction(const WhitenedFunction& other);
  WhitenedFunction& operator=(const WhitenedFunction&) = delete;

  std::string name() const override { return inner_->name() + "_whitened"; }

  double Value(const Vector& z) const override;
  Vector Gradient(const Vector& z) const override;
  void OnSync(const Vector& z) override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<WhitenedFunction>(*this);
  }

  const Vector& scales() const { return scales_; }

 private:
  Vector Unwhiten(const Vector& z) const;

  std::unique_ptr<MonitoredFunction> inner_;
  Vector scales_;
  double min_scale_;
};

}  // namespace sgm

#endif  // SGM_FUNCTIONS_WHITENED_FUNCTION_H_
