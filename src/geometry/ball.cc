#include "geometry/ball.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"

namespace sgm {

Ball::Ball(Vector center, double radius)
    : center_(std::move(center)), radius_(radius) {
  SGM_CHECK_MSG(radius >= 0.0, "negative ball radius %f", radius);
}

bool Ball::Contains(const Vector& point) const {
  return center_.DistanceTo(point) <= radius_ + 1e-12;
}

bool Ball::Contains(const Ball& other) const {
  return center_.DistanceTo(other.center_) + other.radius_ <= radius_ + 1e-12;
}

double Ball::DistanceTo(const Vector& point) const {
  return std::max(0.0, center_.DistanceTo(point) - radius_);
}

double Ball::SignedDistanceTo(const Vector& point) const {
  return center_.DistanceTo(point) - radius_;
}

bool Ball::Intersects(const Ball& other) const {
  return center_.DistanceTo(other.center_) <= radius_ + other.radius_ + 1e-12;
}

Ball Ball::LocalConstraint(const Vector& e, const Vector& drift) {
  SGM_CHECK(e.dim() == drift.dim());
  Vector center = e;
  center.Axpy(0.5, drift);
  return Ball(std::move(center), 0.5 * drift.Norm());
}

std::string Ball::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", radius_);
  return "B(" + center_.ToString() + ", " + buf + ")";
}

}  // namespace sgm
