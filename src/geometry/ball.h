#ifndef SGM_GEOMETRY_BALL_H_
#define SGM_GEOMETRY_BALL_H_

#include <string>

#include "core/vector.h"

namespace sgm {

/// Closed Euclidean ball B(c, ρ) — the local-constraint shape of GM.
///
/// Sharfman et al.'s construction has every site inscribe the hypersphere
/// B(e + Δv_i/2, ‖Δv_i‖/2); this type represents such constraints and the
/// ε-ball B(v̂, ε) the coordinator checks during a partial synchronization.
class Ball {
 public:
  Ball() : radius_(0.0) {}
  Ball(Vector center, double radius);

  const Vector& center() const { return center_; }
  double radius() const { return radius_; }
  std::size_t dim() const { return center_.dim(); }

  /// True when `point` lies in the closed ball.
  bool Contains(const Vector& point) const;

  /// True when `other` is fully contained in this ball.
  bool Contains(const Ball& other) const;

  /// Euclidean distance from `point` to the ball (0 inside).
  double DistanceTo(const Vector& point) const;

  /// Signed distance from `point` to the sphere boundary:
  /// negative inside, zero on the boundary, positive outside.
  double SignedDistanceTo(const Vector& point) const;

  /// True when the two closed balls share at least one point.
  bool Intersects(const Ball& other) const;

  /// The GM local constraint for drift vector `drift` around estimate `e`:
  /// B(e + drift/2, ‖drift‖/2). Its defining property (used throughout the
  /// paper) is that the union of these balls over all sites covers
  /// Conv(e + Δv_1, ..., e + Δv_N).
  static Ball LocalConstraint(const Vector& e, const Vector& drift);

  std::string ToString() const;

 private:
  Vector center_;
  double radius_;
};

}  // namespace sgm

#endif  // SGM_GEOMETRY_BALL_H_
