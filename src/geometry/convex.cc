#include "geometry/convex.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

HullProjection ProjectOntoHull(const std::vector<Vector>& points,
                               const Vector& query, int max_iters,
                               double tol) {
  SGM_CHECK(!points.empty());
  const std::size_t n = points.size();

  HullProjection result;
  result.barycentric.assign(n, 0.0);

  // Warm start from the input point nearest to the query.
  std::size_t best = 0;
  double best_dist = points[0].DistanceTo(query);
  for (std::size_t i = 1; i < n; ++i) {
    const double d = points[i].DistanceTo(query);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  result.barycentric[best] = 1.0;
  Vector x = points[best];

  // Away-step Frank–Wolfe on f(x) = ½‖x − query‖². Plain FW zig-zags and
  // converges only at O(1/k) for interior optima; the away step (moving mass
  // off the worst active vertex) restores linear convergence on polytopes,
  // which the hull-membership tests and the Figure-2 volume study need.
  std::vector<double>& w = result.barycentric;
  for (int iter = 0; iter < max_iters; ++iter) {
    // The away-step weight updates multiply all weights by (1 ± γ); rebuild
    // x from the barycentric representation periodically so floating-point
    // drift between the two cannot stall convergence.
    if (iter > 0 && iter % 64 == 0) {
      double total = 0.0;
      for (double weight : w) total += weight;
      if (total > 0.0) {
        x.SetZero();
        for (std::size_t i = 0; i < n; ++i) {
          w[i] /= total;
          x.Axpy(w[i], points[i]);
        }
      }
    }
    const Vector grad = x - query;  // ∇f(x)

    // FW vertex: argmin grad·p over all vertices.
    std::size_t s = 0;
    double s_val = grad.Dot(points[0]);
    // Away vertex: argmax grad·p over the active set.
    std::size_t a = n;  // sentinel
    double a_val = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      const double val = grad.Dot(points[i]);
      if (val < s_val) {
        s_val = val;
        s = i;
      }
      if (w[i] > 0.0 && val > a_val) {
        a_val = val;
        a = i;
      }
    }
    const double x_val = grad.Dot(x);
    const double fw_gap = x_val - s_val;
    if (fw_gap <= tol) break;
    const double away_gap = (a < n) ? (a_val - x_val) : -1.0;

    if (fw_gap >= away_gap) {
      // Classic FW step toward vertex s.
      const Vector direction = points[s] - x;
      const double denom = direction.SquaredNorm();
      if (denom <= 0.0) break;
      const double step = std::clamp(fw_gap / denom, 0.0, 1.0);
      x.Axpy(step, direction);
      for (double& weight : w) weight *= (1.0 - step);
      w[s] += step;
      if (step >= 1.0) break;
    } else {
      // Away step: move away from the worst active vertex a.
      const Vector direction = x - points[a];
      const double denom = direction.SquaredNorm();
      if (denom <= 0.0) break;
      const double max_step = (w[a] < 1.0) ? w[a] / (1.0 - w[a]) : 1e300;
      const double step = std::clamp(away_gap / denom, 0.0, max_step);
      x.Axpy(step, direction);
      for (double& weight : w) weight *= (1.0 + step);
      w[a] -= step;
      if (w[a] < 1e-15) w[a] = 0.0;
    }
  }

  result.nearest = std::move(x);
  result.distance = result.nearest.DistanceTo(query);
  return result;
}

bool HullContains(const std::vector<Vector>& points, const Vector& query,
                  double tol) {
  return ProjectOntoHull(points, query).distance <= tol;
}

double DistanceToHull(const std::vector<Vector>& points, const Vector& query) {
  return ProjectOntoHull(points, query).distance;
}

}  // namespace sgm
