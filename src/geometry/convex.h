#ifndef SGM_GEOMETRY_CONVEX_H_
#define SGM_GEOMETRY_CONVEX_H_

#include <vector>

#include "core/vector.h"

namespace sgm {

/// Result of projecting a query point onto a convex hull.
struct HullProjection {
  double distance = 0.0;           ///< ‖query − nearest hull point‖
  Vector nearest;                  ///< nearest point of the hull
  std::vector<double> barycentric; ///< convex weights over the input points
};

/// Projects `query` onto Conv(points) with the Frank–Wolfe algorithm.
///
/// The library uses this to *verify* the geometric lemmas (e.g. Lemma 1(c):
/// the HT estimate lies in the convex hull of the inflated sampled drifts;
/// Lemma 2(a): the hull is covered by the half-drift balls) and to measure
/// hull growth for the Figure-2 study. It is not on any protocol fast path,
/// so a simple projection-free first-order method is the right tool: each
/// iteration costs one pass over the points and the distance estimate
/// converges at O(1/k).
///
/// `max_iters` bounds the Frank–Wolfe iterations; `tol` is the duality-gap
/// stopping threshold on the squared distance.
HullProjection ProjectOntoHull(const std::vector<Vector>& points,
                               const Vector& query, int max_iters = 8000,
                               double tol = 1e-10);

/// True when `query` lies within `tol` of Conv(points).
bool HullContains(const std::vector<Vector>& points, const Vector& query,
                  double tol = 1e-6);

/// Exact squared distance from `query` to Conv(points); convenience wrapper.
double DistanceToHull(const std::vector<Vector>& points, const Vector& query);

}  // namespace sgm

#endif  // SGM_GEOMETRY_CONVEX_H_
