#include "geometry/ellipsoid.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sgm {

Ellipsoid::Ellipsoid(Vector center, Vector semi_axes)
    : center_(std::move(center)), semi_axes_(std::move(semi_axes)) {
  SGM_CHECK(center_.dim() == semi_axes_.dim());
  SGM_CHECK(!center_.empty());
  for (std::size_t j = 0; j < semi_axes_.dim(); ++j) {
    SGM_CHECK_MSG(semi_axes_[j] > 0.0, "semi-axes must be positive");
  }
}

double Ellipsoid::LevelValue(const Vector& point) const {
  SGM_CHECK(point.dim() == dim());
  double level = 0.0;
  for (std::size_t j = 0; j < dim(); ++j) {
    const double scaled = (point[j] - center_[j]) / semi_axes_[j];
    level += scaled * scaled;
  }
  return level;
}

Vector Ellipsoid::Project(const Vector& point) const {
  SGM_CHECK(point.dim() == dim());
  // Solve the secular equation Σ (a_j·y_j/(a_j² + t))² = 1 for t; the
  // nearest boundary point is x_j = c_j + a_j²·y_j/(a_j² + t).
  Vector y(dim());
  double min_axis_sq = semi_axes_[0] * semi_axes_[0];
  for (std::size_t j = 0; j < dim(); ++j) {
    y[j] = point[j] - center_[j];
    // Perturb exact-zero components off the degenerate manifold; the
    // induced projection error is ~1e-12·a_j.
    if (y[j] == 0.0) y[j] = 1e-12 * semi_axes_[j];
    min_axis_sq = std::min(min_axis_sq, semi_axes_[j] * semi_axes_[j]);
  }

  auto secular = [&](double t) {
    double sum = 0.0;
    for (std::size_t j = 0; j < dim(); ++j) {
      const double a_sq = semi_axes_[j] * semi_axes_[j];
      const double term = semi_axes_[j] * y[j] / (a_sq + t);
      sum += term * term;
    }
    return sum;
  };

  // The secular function decreases monotonically on (−min_axis², ∞) from
  // +∞ to 0; bracket the unique root.
  double lo = -min_axis_sq * (1.0 - 1e-12);
  double hi = 0.0;
  for (std::size_t j = 0; j < dim(); ++j) {
    hi += semi_axes_[j] * semi_axes_[j] * y[j] * y[j];
  }
  hi = std::sqrt(hi);  // F(‖a∘y‖) ≤ 1 since a² + t ≥ t
  hi = std::max(hi, lo + 1.0);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (secular(mid) > 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t = 0.5 * (lo + hi);

  Vector projection(dim());
  for (std::size_t j = 0; j < dim(); ++j) {
    const double a_sq = semi_axes_[j] * semi_axes_[j];
    projection[j] = center_[j] + a_sq * y[j] / (a_sq + t);
  }
  return projection;
}

double Ellipsoid::SignedDistance(const Vector& point) const {
  const double distance = point.DistanceTo(Project(point));
  return LevelValue(point) <= 1.0 ? -distance : distance;
}

std::string Ellipsoid::ToString() const {
  return "Ellipsoid(c=" + center_.ToString() + ", a=" +
         semi_axes_.ToString() + ")";
}

}  // namespace sgm
