#ifndef SGM_GEOMETRY_ELLIPSOID_H_
#define SGM_GEOMETRY_ELLIPSOID_H_

#include <string>

#include "core/vector.h"
#include "geometry/safe_zone.h"

namespace sgm {

/// Axis-aligned ellipsoid { x : Σ_j ((x_j − c_j)/a_j)² ≤ 1 } — the
/// constraint shape of shape-sensitive geometric monitoring [21]: a ball in
/// whitened coordinates is an ellipsoid in the original ones.
///
/// The Euclidean point-to-boundary distance has no closed form; this
/// implementation solves the classic secular equation
///   Σ_j (a_j·y_j / (a_j² + t))² = 1
/// for the Lagrange multiplier t by bisection (y = point − center), giving
/// the exact projection onto the boundary to ~1e-12 relative accuracy —
/// exactness is what Lemma 4's signed-distance machinery needs.
class Ellipsoid {
 public:
  /// `semi_axes` must all be positive and match the center's dimension.
  Ellipsoid(Vector center, Vector semi_axes);

  const Vector& center() const { return center_; }
  const Vector& semi_axes() const { return semi_axes_; }
  std::size_t dim() const { return center_.dim(); }

  /// Σ ((x_j − c_j)/a_j)², the level value (≤ 1 inside).
  double LevelValue(const Vector& point) const;

  bool Contains(const Vector& point) const {
    return LevelValue(point) <= 1.0 + 1e-12;
  }

  /// Exact Euclidean signed distance to the boundary: negative inside.
  double SignedDistance(const Vector& point) const;

  /// The boundary point nearest to `point`.
  Vector Project(const Vector& point) const;

  std::string ToString() const;

 private:
  Vector center_;
  Vector semi_axes_;
};

/// Ellipsoidal convex safe zone (Section 4 with a shape-adapted C).
class EllipsoidSafeZone final : public SafeZone {
 public:
  explicit EllipsoidSafeZone(Ellipsoid ellipsoid)
      : ellipsoid_(std::move(ellipsoid)) {}

  double SignedDistance(const Vector& point) const override {
    return ellipsoid_.SignedDistance(point);
  }

  const Ellipsoid& ellipsoid() const { return ellipsoid_; }
  std::string ToString() const override {
    return "SafeZone" + ellipsoid_.ToString();
  }

 private:
  Ellipsoid ellipsoid_;
};

}  // namespace sgm

#endif  // SGM_GEOMETRY_ELLIPSOID_H_
