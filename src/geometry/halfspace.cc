#include "geometry/halfspace.h"

#include <cstdio>

#include "core/check.h"

namespace sgm {

Halfspace::Halfspace(Vector normal, double offset)
    : normal_(std::move(normal)), offset_(offset) {
  const double norm = normal_.Norm();
  SGM_CHECK_MSG(norm > 0.0, "halfspace requires a nonzero normal");
  normal_ /= norm;
  offset_ /= norm;
}

bool Halfspace::Contains(const Vector& point) const {
  return SignedDistance(point) <= 1e-12;
}

double Halfspace::SignedDistance(const Vector& point) const {
  return normal_.Dot(point) - offset_;
}

Halfspace Halfspace::Supporting(const Vector& inside, const Vector& boundary) {
  Vector direction = boundary - inside;
  SGM_CHECK_MSG(direction.Norm() > 0.0,
                "supporting halfspace needs distinct points");
  const double offset = direction.Dot(boundary);
  return Halfspace(std::move(direction), offset);
}

std::string Halfspace::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", offset_);
  return "H(n=" + normal_.ToString() + ", b=" + buf + ")";
}

}  // namespace sgm
