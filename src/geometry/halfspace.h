#ifndef SGM_GEOMETRY_HALFSPACE_H_
#define SGM_GEOMETRY_HALFSPACE_H_

#include <string>

#include "core/vector.h"

namespace sgm {

/// Closed halfspace { x : n·x ≤ b } with ‖n‖ = 1.
///
/// Halfspaces are one of the convex safe-zone shapes of Section 4 (the
/// infinite-plane zone of Figure 6(f)); the normalized normal makes the
/// signed distance of Lemma 4 a single dot product.
class Halfspace {
 public:
  /// Constructs from a (not necessarily unit) normal and offset; the pair is
  /// normalized so that ‖normal‖ = 1. SGM_CHECKs a nonzero normal.
  Halfspace(Vector normal, double offset);

  const Vector& normal() const { return normal_; }
  double offset() const { return offset_; }
  std::size_t dim() const { return normal_.dim(); }

  /// True when `point` satisfies n·x ≤ b.
  bool Contains(const Vector& point) const;

  /// Signed distance d_C(point): negative strictly inside, positive outside.
  double SignedDistance(const Vector& point) const;

  /// Halfspace containing `inside` whose boundary passes through `boundary`
  /// with outward direction `boundary - inside` — a supporting construction
  /// for safe zones around a reference point.
  static Halfspace Supporting(const Vector& inside, const Vector& boundary);

  std::string ToString() const;

 private:
  Vector normal_;
  double offset_;
};

}  // namespace sgm

#endif  // SGM_GEOMETRY_HALFSPACE_H_
