#include "geometry/safe_zone.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sgm {

BoxSafeZone::BoxSafeZone(Vector center, double half_width)
    : center_(std::move(center)), half_width_(half_width) {
  SGM_CHECK_MSG(half_width >= 0.0, "negative box half-width");
}

double BoxSafeZone::SignedDistance(const Vector& point) const {
  SGM_CHECK(point.dim() == center_.dim());
  double linf = 0.0;
  double outside_sq = 0.0;
  for (std::size_t j = 0; j < point.dim(); ++j) {
    const double dev = std::abs(point[j] - center_[j]);
    linf = std::max(linf, dev);
    const double excess = dev - half_width_;
    if (excess > 0.0) outside_sq += excess * excess;
  }
  if (outside_sq > 0.0) return std::sqrt(outside_sq);
  return linf - half_width_;
}

std::string BoxSafeZone::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", half_width_);
  return "SafeZoneBox(center=" + center_.ToString() + ", r=" + buf + ")";
}

SignedDistanceSummary SummarizeSignedDistances(
    const SafeZone& zone, const std::vector<Vector>& points) {
  SignedDistanceSummary summary;
  for (const Vector& p : points) {
    const double distance = zone.SignedDistance(p);
    summary.sum += distance;
    if (distance > 0.0) ++summary.positive;
  }
  if (!points.empty()) {
    summary.average = summary.sum / static_cast<double>(points.size());
  }
  return summary;
}

}  // namespace sgm
