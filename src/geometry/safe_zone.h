#ifndef SGM_GEOMETRY_SAFE_ZONE_H_
#define SGM_GEOMETRY_SAFE_ZONE_H_

#include <memory>
#include <string>

#include "core/vector.h"
#include "geometry/ball.h"
#include "geometry/halfspace.h"

namespace sgm {

/// A convex subset C of the admissible input-domain region (Section 4).
///
/// The convex safe-zone (CV) approach of Lazerson et al. [14,27] has every
/// site check whether its drift vector e + Δv_i stays inside C; by convexity
/// the global average then cannot leave C. Lemma 4 of the paper additionally
/// maps the whole monitoring task to one dimension through the *signed
/// distance* d_C: negative inside C, zero on the boundary ∂C, positive
/// outside. Implementations must return the exact Euclidean signed distance,
/// because Corollary 1 (mean of signed distances < 0 ⇒ average in C) relies
/// on it.
class SafeZone {
 public:
  virtual ~SafeZone() = default;

  /// Signed distance d_C(point) per Section 4.1.
  virtual double SignedDistance(const Vector& point) const = 0;

  /// True when `point` ∈ C, i.e. d_C(point) ≤ 0.
  bool Contains(const Vector& point) const {
    return SignedDistance(point) <= 1e-12;
  }

  virtual std::string ToString() const = 0;
};

/// Hyperball safe zone (the "maximal non-intersecting hypersphere" the
/// paper's Section 6.6 experiments use; cf. Figure 6(g)).
class BallSafeZone final : public SafeZone {
 public:
  explicit BallSafeZone(Ball ball) : ball_(std::move(ball)) {}

  double SignedDistance(const Vector& point) const override {
    return ball_.SignedDistanceTo(point);
  }

  const Ball& ball() const { return ball_; }
  std::string ToString() const override { return "SafeZone" + ball_.ToString(); }

 private:
  Ball ball_;
};

/// Halfspace safe zone (the infinite-plane zone of Figure 6(f)).
class HalfspaceSafeZone final : public SafeZone {
 public:
  explicit HalfspaceSafeZone(Halfspace halfspace)
      : halfspace_(std::move(halfspace)) {}

  double SignedDistance(const Vector& point) const override {
    return halfspace_.SignedDistance(point);
  }

  const Halfspace& halfspace() const { return halfspace_; }
  std::string ToString() const override {
    return "SafeZone" + halfspace_.ToString();
  }

 private:
  Halfspace halfspace_;
};

/// Axis-aligned box safe zone { x : ‖x − center‖_∞ ≤ half_width } — the
/// exact admissible region of L∞-distance queries, with closed-form signed
/// distance: Euclidean distance to the box outside, −(half_width − ‖x −
/// center‖_∞) inside.
class BoxSafeZone final : public SafeZone {
 public:
  BoxSafeZone(Vector center, double half_width);

  double SignedDistance(const Vector& point) const override;

  const Vector& center() const { return center_; }
  double half_width() const { return half_width_; }
  std::string ToString() const override;

 private:
  Vector center_;
  double half_width_;
};

/// Statistics of site signed distances used by Corollary 1 / Estimator 5.
struct SignedDistanceSummary {
  double sum = 0.0;      ///< Σ d_C(e + Δv_i)
  double average = 0.0;  ///< D_C = Σ d_C / N
  int positive = 0;      ///< number of sites strictly outside C
};

/// Computes Σ/avg/count of the signed distances of `points` from `zone`.
SignedDistanceSummary SummarizeSignedDistances(
    const SafeZone& zone, const std::vector<Vector>& points);

}  // namespace sgm

#endif  // SGM_GEOMETRY_SAFE_ZONE_H_
