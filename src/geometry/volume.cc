#include "geometry/volume.h"

#include "core/check.h"
#include "geometry/convex.h"

namespace sgm {

Vector SampleBox(const BoxDomain& domain, Rng* rng) {
  Vector point(domain.dim);
  for (std::size_t j = 0; j < domain.dim; ++j) {
    point[j] = rng->NextDouble(domain.lo, domain.hi);
  }
  return point;
}

double UnionOfBallsCoverage(const std::vector<Ball>& balls,
                            const BoxDomain& domain, int samples, Rng* rng) {
  SGM_CHECK(samples > 0);
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const Vector point = SampleBox(domain, rng);
    for (const Ball& ball : balls) {
      if (ball.Contains(point)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double ConvexHullCoverage(const std::vector<Vector>& points,
                          const BoxDomain& domain, int samples, Rng* rng) {
  SGM_CHECK(samples > 0);
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const Vector point = SampleBox(domain, rng);
    if (HullContains(points, point, 1e-4)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace sgm
