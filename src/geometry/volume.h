#ifndef SGM_GEOMETRY_VOLUME_H_
#define SGM_GEOMETRY_VOLUME_H_

#include <vector>

#include "core/rng.h"
#include "core/vector.h"
#include "geometry/ball.h"

namespace sgm {

/// Axis-aligned box [lo, hi]^d used as a Monte-Carlo sampling domain.
struct BoxDomain {
  std::size_t dim = 3;
  double lo = 0.0;
  double hi = 1.0;
};

/// Monte-Carlo estimate of the fraction of `domain` covered by the union of
/// `balls`. Reproduces the quantitative claim behind Figure 2: as N grows,
/// the union of GM local-constraint balls covers ever more of the input box.
double UnionOfBallsCoverage(const std::vector<Ball>& balls,
                            const BoxDomain& domain, int samples, Rng* rng);

/// Monte-Carlo estimate of the fraction of `domain` covered by the convex
/// hull of `points` (membership decided by Frank–Wolfe projection).
double ConvexHullCoverage(const std::vector<Vector>& points,
                          const BoxDomain& domain, int samples, Rng* rng);

/// Uniform sample from `domain`.
Vector SampleBox(const BoxDomain& domain, Rng* rng);

}  // namespace sgm

#endif  // SGM_GEOMETRY_VOLUME_H_
