#include "gm/bernoulli_gm.h"

namespace sgm {

std::unique_ptr<SamplingGeometricMonitor> MakeBernoulliMonitor(
    const MonitoredFunction& function, double threshold, double max_step_norm,
    double delta, std::uint64_t seed) {
  SgmOptions options;
  options.delta = delta;
  options.num_trials = 1;
  options.mode = SamplingMode::kUniform;
  options.seed = seed;
  return std::make_unique<SamplingGeometricMonitor>(function, threshold,
                                                    max_step_norm, options);
}

}  // namespace sgm
