#ifndef SGM_GM_BERNOULLI_GM_H_
#define SGM_GM_BERNOULLI_GM_H_

#include <memory>

#include "gm/sgm.h"

namespace sgm {

/// The Section-6.5 Bernoulli sampling variant: the SGM machinery (un-scaled
/// balls, partial synchronizations, HT estimation) with *uniform* per-site
/// probability g = ln(1/δ)/√N — the same expected sample size as SGM but
/// blind to drift magnitudes, so sites with large, threshold-pushing drifts
/// are no likelier to be monitored than quiet ones.
std::unique_ptr<SamplingGeometricMonitor> MakeBernoulliMonitor(
    const MonitoredFunction& function, double threshold, double max_step_norm,
    double delta, std::uint64_t seed = 2024);

}  // namespace sgm

#endif  // SGM_GM_BERNOULLI_GM_H_
