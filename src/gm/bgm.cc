#include "gm/bgm.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "geometry/ball.h"

namespace sgm {

BalancedGeometricMonitor::BalancedGeometricMonitor(
    const MonitoredFunction& function, double threshold, double max_step_norm,
    std::uint64_t seed)
    : ProtocolBase(function, threshold, max_step_norm), rng_(seed) {}

void BalancedGeometricMonitor::AfterSync(
    const std::vector<Vector>& /*local_vectors*/, Metrics* /*metrics*/) {
  slacks_.assign(num_sites_, Vector(dim_));
}

Vector BalancedGeometricMonitor::EffectiveDrift(
    int site, const std::vector<Vector>& local_vectors) const {
  return Drift(site, local_vectors) + slacks_[site];
}

CycleOutcome BalancedGeometricMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;

  // Local tests on effective (slack-adjusted) drifts.
  std::vector<int> violators;
  for (int i = 0; i < num_sites_; ++i) {
    const Ball constraint =
        Ball::LocalConstraint(e_, EffectiveDrift(i, local_vectors));
    if (function_->BallCrossesThreshold(constraint, threshold_)) {
      violators.push_back(i);
    }
  }
  if (violators.empty()) return outcome;
  outcome.local_alarm = true;

  // Balancing: violators ship their drifts; then the coordinator probes
  // further sites in random order until the group-average ball is safe.
  std::vector<bool> in_group(num_sites_, false);
  Vector group_sum(dim_);
  int group_size = 0;
  for (int v : violators) {
    in_group[v] = true;
    group_sum += EffectiveDrift(v, local_vectors);
    ++group_size;
  }
  metrics->AddSiteMessages(group_size, dim_);

  std::vector<int> probe_order(num_sites_);
  std::iota(probe_order.begin(), probe_order.end(), 0);
  for (int i = num_sites_ - 1; i > 0; --i) {
    std::swap(probe_order[i],
              probe_order[rng_.NextBounded(static_cast<std::uint64_t>(i + 1))]);
  }

  std::size_t next_probe = 0;
  while (true) {
    const Vector balanced = group_sum / static_cast<double>(group_size);
    const Ball group_ball = Ball::LocalConstraint(e_, balanced);
    if (!function_->BallCrossesThreshold(group_ball, threshold_)) {
      // Balanced: assign slacks so every member's effective drift becomes
      // the group average (slack deltas sum to zero inside the group).
      for (int i = 0; i < num_sites_; ++i) {
        if (!in_group[i]) continue;
        slacks_[i] += balanced - EffectiveDrift(i, local_vectors);
        metrics->AddCoordinatorUnicast(dim_);
      }
      outcome.partial_resolved = true;
      metrics->OnPartialResolution();
      return outcome;
    }
    // Probe one more site (request + vector reply).
    while (next_probe < probe_order.size() && in_group[probe_order[next_probe]]) {
      ++next_probe;
    }
    if (next_probe >= probe_order.size()) break;  // everyone probed
    const int site = probe_order[next_probe++];
    in_group[site] = true;
    group_sum += EffectiveDrift(site, local_vectors);
    ++group_size;
    metrics->AddCoordinatorUnicast(0);
    metrics->AddSiteMessages(1, dim_);
  }

  // Balancing failed with all N vectors collected: full synchronization.
  FullSync(local_vectors, metrics, /*already_collected=*/num_sites_);
  outcome.full_sync = true;
  return outcome;
}

}  // namespace sgm
