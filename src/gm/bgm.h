#ifndef SGM_GM_BGM_H_
#define SGM_GM_BGM_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "sim/protocol.h"

namespace sgm {

/// GM with the balancing optimization of Sharfman et al. — the paper's
/// "BGM" competitor.
///
/// On a local violation the coordinator tries to avoid a full
/// synchronization by *balancing*: it collects the drift vectors of the
/// violating sites plus progressively more randomly-probed sites, and checks
/// whether the ball of the group's average drift, B(e + Δ̄/2, ‖Δ̄‖/2), is
/// clear of the threshold surface. Success means the probed group's
/// contribution to the convex hull is jointly safe; the coordinator ships
/// each group member a slack vector that re-centers its effective drift at
/// the group average (slacks sum to zero, so the global average is
/// untouched). If every site ends up probed the attempt degenerates into a
/// full synchronization. As the paper stresses, balancing is a heuristic:
/// when many sites drift in a common direction it probes nearly everyone
/// and saves nothing.
class BalancedGeometricMonitor : public ProtocolBase {
 public:
  BalancedGeometricMonitor(const MonitoredFunction& function, double threshold,
                           double max_step_norm, std::uint64_t seed = 1234);

  std::string name() const override { return "BGM"; }

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;
  void AfterSync(const std::vector<Vector>& local_vectors,
                 Metrics* metrics) override;

 private:
  /// Effective drift including any slack assigned in earlier balances.
  Vector EffectiveDrift(int site, const std::vector<Vector>& local_vectors) const;

  Rng rng_;
  std::vector<Vector> slacks_;
};

}  // namespace sgm

#endif  // SGM_GM_BGM_H_
