#include "gm/cvgm.h"

#include "core/check.h"
#include "geometry/ball.h"

namespace sgm {

ConvexSafeZoneMonitor::ConvexSafeZoneMonitor(const MonitoredFunction& function,
                                             double threshold,
                                             double max_step_norm,
                                             const CvOptions& options)
    : ProtocolBase(function, threshold, max_step_norm), options_(options) {
  SGM_CHECK_MSG(options.zone_shrink > 0.0 && options.zone_shrink <= 1.0,
                "zone_shrink must lie in (0, 1]");
}

void ConvexSafeZoneMonitor::RebuildZone() {
  if (options_.zone_shrink >= 1.0) {
    // The function's best convex safe zone: the exact admissible region
    // when it is convex (L∞ box, L2 ball), the maximal inscribed
    // hypersphere around e otherwise.
    zone_ = function_->BuildSafeZone(e_, threshold_, believes_above_);
    return;
  }
  // Shrunken inscribed hypersphere (ablation of the zone-radius choice).
  const double radius =
      options_.zone_shrink * function_->DistanceToSurface(e_, threshold_);
  zone_ = std::make_unique<BallSafeZone>(Ball(e_, radius));
}

void ConvexSafeZoneMonitor::AfterSync(
    const std::vector<Vector>& /*local_vectors*/, Metrics* /*metrics*/) {
  RebuildZone();
}

CycleOutcome ConvexSafeZoneMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;
  for (int i = 0; i < num_sites_; ++i) {
    const Vector position = e_ + Drift(i, local_vectors);
    if (!zone_->Contains(position)) {
      outcome.local_alarm = true;
      break;
    }
  }
  if (outcome.local_alarm) {
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
  }
  return outcome;
}

}  // namespace sgm
