#ifndef SGM_GM_CVGM_H_
#define SGM_GM_CVGM_H_

#include <memory>
#include <string>
#include <vector>

#include "geometry/safe_zone.h"
#include "sim/protocol.h"

namespace sgm {

/// Options shared by the convex-safe-zone protocols.
struct CvOptions {
  /// Fraction of the e-to-surface distance used as the safe-zone ball
  /// radius; < 1 leaves a guard band between ∂C and the threshold surface.
  double zone_shrink = 1.0;
};

/// Convex safe-zone monitoring (Lazerson et al. [14, 27]) — the paper's
/// "CVGM" competitor (Section 4, introductory part).
///
/// After every synchronization the coordinator computes a convex subset C
/// of the admissible region — here, as in the paper's Section 6.6
/// experiments, the maximal non-intersecting hypersphere around e — and
/// broadcasts it. Each site then merely checks e + Δv_i ∈ C: by convexity
/// the exact convex hull (not a ball superset) stays inside C while all its
/// vertices do, so CVGM beats GM on false positives at small N. It still
/// monitors an N-vertex hull, so the paper shows (and fig15/16/17 here
/// reproduce) that its advantage collapses at high network scales.
class ConvexSafeZoneMonitor : public ProtocolBase {
 public:
  ConvexSafeZoneMonitor(const MonitoredFunction& function, double threshold,
                        double max_step_norm, const CvOptions& options = {});

  std::string name() const override { return "CVGM"; }

  const SafeZone* zone() const { return zone_.get(); }

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;
  void AfterSync(const std::vector<Vector>& local_vectors,
                 Metrics* metrics) override;

  /// Rebuilds the maximal-ball safe zone around the current e.
  void RebuildZone();

  CvOptions options_;
  std::unique_ptr<SafeZone> zone_;
};

}  // namespace sgm

#endif  // SGM_GM_CVGM_H_
