#include "gm/cvsgm.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/sampling.h"
#include "estimators/tail_bounds.h"

namespace sgm {

CvSamplingMonitor::CvSamplingMonitor(const MonitoredFunction& function,
                                     double threshold, double max_step_norm,
                                     const CvsgmOptions& options)
    : ConvexSafeZoneMonitor(function, threshold, max_step_norm, options.cv),
      options_(options) {
  SGM_CHECK_MSG(options.delta > 0.0 && options.delta < 1.0,
                "delta must lie in (0, 1)");
  SGM_CHECK(options.num_trials >= 0);
}

void CvSamplingMonitor::AfterSync(const std::vector<Vector>& local_vectors,
                                  Metrics* metrics) {
  ConvexSafeZoneMonitor::AfterSync(local_vectors, metrics);
  if (!site_rngs_.empty()) return;
  Rng root(options_.seed);
  site_rngs_.reserve(num_sites_);
  for (int i = 0; i < num_sites_; ++i) site_rngs_.push_back(root.Fork());
  effective_trials_ = options_.num_trials > 0
                          ? options_.num_trials
                          : NumTrialsCV(options_.delta, num_sites_);
}

CycleOutcome CvSamplingMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;
  ++absolute_cycle_;
  if (absolute_cycle_ <= muted_until_cycle_) {
    consecutive_alarms_ = 0;
    return outcome;
  }
  const double U = CurrentU();

  // Monitoring phase in 1-d: sampled sites check the sign of d_C.
  std::vector<double> distances(num_sites_);
  std::vector<int> first_trial;
  std::vector<double> first_trial_g;
  bool alarm = false;
  for (int i = 0; i < num_sites_; ++i) {
    const Vector position = e_ + Drift(i, local_vectors);
    distances[i] = zone_->SignedDistance(position);
    const double g =
        SamplingProbabilityCV(options_.delta, U, num_sites_, distances[i]);
    bool in_any_trial = false;
    for (int trial = 0; trial < effective_trials_; ++trial) {
      const bool sampled = site_rngs_[i].NextBernoulli(g);
      if (trial == 0 && sampled) {
        first_trial.push_back(i);
        first_trial_g.push_back(g);
      }
      in_any_trial = in_any_trial || sampled;
    }
    if (in_any_trial && distances[i] >= 0.0) alarm = true;
  }
  if (!alarm) {
    consecutive_alarms_ = 0;
    return outcome;
  }
  outcome.local_alarm = true;
  ++consecutive_alarms_;

  if (options_.escalate_after_consecutive_alarms > 0 &&
      consecutive_alarms_ >= options_.escalate_after_consecutive_alarms) {
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }

  // Drift-saturation escalation (see CvsgmOptions).
  if (options_.escalate_probe_fraction > 0.0 &&
      static_cast<double>(first_trial.size()) >=
          options_.escalate_probe_fraction * static_cast<double>(num_sites_)) {
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }

  // 1. Partial probe: first-trial scalars + HT estimate D̂_C.
  metrics->AddBroadcast(0);
  metrics->AddSiteMessages(static_cast<long>(first_trial.size()),
                           /*doubles_each=*/1);
  HtScalarEstimator estimator(num_sites_);
  for (std::size_t k = 0; k < first_trial.size(); ++k) {
    estimator.AddSample(distances[first_trial[k]], first_trial_g[k]);
  }
  const double d_hat = estimator.Estimate();
  // ε_C from McDiarmid, held to half the e-to-surface room exactly as in
  // SGM's partial check (see sgm.cc); ε_C ≤ ε keeps the revised scheme's
  // tighter-error advantage.
  const double epsilon_c = std::min(McDiarmidEpsilon(options_.delta, U),
                                    0.5 * epsilon_T());
  if (d_hat + epsilon_c <= 0.0) {
    outcome.partial_resolved = true;
    last_alarm_reached_stage2_ = false;
    metrics->OnPartialResolution();
    if (options_.certified_cooldown) {
      const long mute = static_cast<long>(
          std::floor((-d_hat - epsilon_c) / max_step_norm_));
      if (mute > 0) {
        muted_until_cycle_ = absolute_cycle_ + mute;
        metrics->AddBroadcast(1);
      }
    }
    return outcome;
  }

  // Two alarms in a row needing the all-sites scalar collection: the 1-d
  // evidence is persistently inconclusive, and each stage-2 round already
  // costs N messages — re-anchor instead (same cost, resets every drift).
  if (last_alarm_reached_stage2_) {
    last_alarm_reached_stage2_ = false;
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }
  last_alarm_reached_stage2_ = true;

  // 2. Preliminary full check, still 1-d: everyone else ships one scalar.
  metrics->AddSiteMessages(
      static_cast<long>(num_sites_) - static_cast<long>(first_trial.size()),
      /*doubles_each=*/1);
  double exact_sum = 0.0;
  for (int i = 0; i < num_sites_; ++i) exact_sum += distances[i];
  const double exact_dc = exact_sum / static_cast<double>(num_sites_);
  if (exact_dc < 0.0) {
    // Corollary 1: the global average is certainly inside C — an FP
    // resolved without any d-dimensional transmission. The exact D_C also
    // certifies a mute with no δ-qualification at all.
    outcome.resolved_1d = true;
    metrics->OnOneDResolution();
    if (options_.certified_cooldown) {
      const long mute =
          static_cast<long>(std::floor(-exact_dc / max_step_norm_));
      if (mute > 0) {
        muted_until_cycle_ = absolute_cycle_ + mute;
        metrics->AddBroadcast(1);
      }
    }
    return outcome;
  }

  // 3. Full synchronization: the scalars do not substitute for vectors.
  consecutive_alarms_ = 0;
  FullSync(local_vectors, metrics, /*already_collected=*/0);
  outcome.full_sync = true;
  return outcome;
}

}  // namespace sgm
