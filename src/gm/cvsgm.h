#ifndef SGM_GM_CVSGM_H_
#define SGM_GM_CVSGM_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "gm/cvgm.h"

namespace sgm {

/// Options of the revised (1-d) sampling-based safe-zone monitor.
struct CvsgmOptions {
  double delta = 0.1;
  /// Sampling trials; 0 = auto via the Lemma-5 formula, 1 = single trial
  /// (the configuration the paper's Section 6.6 evaluates).
  int num_trials = 1;
  /// Adaptive re-anchoring under consecutive alarms, as in SgmOptions.
  int escalate_after_consecutive_alarms = 8;
  /// Drift-saturation escalation, as in SgmOptions.
  double escalate_probe_fraction = 0.125;
  /// Certified alarm cooldown in 1-d, as in SgmOptions: after resolving
  /// with D̂_C + ε_C ≤ 0, D_C moves at most max_step per cycle, so
  /// monitoring can pause ⌊(−D̂_C − ε_C)/max_step⌋ cycles risk-free.
  bool certified_cooldown = true;
  CvOptions cv;
  std::uint64_t seed = 4242;
};

/// CVSGM — the revised sampling-based scheme in the convex-safe-zone
/// context (Section 4.2), built on the paper's novel unidimensional mapping
/// (Lemma 4 / Corollary 1).
///
/// Every site reduces its state to the *signed distance* d_C(e + Δv_i) from
/// the safe zone and samples itself with g_i^C = |d_C|·ln(1/δ)/(U·√N); a
/// sampled site alarms when d_C ≥ 0. The synchronization cascade then works
/// entirely in 1-d for as long as possible:
///   1. partial probe: the first-trial sample ships its scalar distances;
///      the coordinator forms D̂_C (Estimator 5) and dismisses the alarm if
///      D̂_C + ε_C ≤ 0 (McDiarmid ε_C = U/√(2·ln(1/δ)), tighter than the
///      Bernstein ε of the d-dimensional scheme);
///   2. 1-d resolution: otherwise the remaining sites ship their scalars;
///      if the exact D_C < 0 the average is *certainly* inside C
///      (Corollary 1) — an FP resolved at one double per site instead of a
///      d-vector (the "CVSGM 1-d Res" bars of Figures 15(b)/16(b));
///   3. full synchronization only when even the exact D_C is nonnegative.
class CvSamplingMonitor : public ConvexSafeZoneMonitor {
 public:
  CvSamplingMonitor(const MonitoredFunction& function, double threshold,
                    double max_step_norm, const CvsgmOptions& options);

  std::string name() const override { return "CVSGM"; }

  int effective_trials() const { return effective_trials_; }

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;
  void AfterSync(const std::vector<Vector>& local_vectors,
                 Metrics* metrics) override;

 private:
  CvsgmOptions options_;
  std::vector<Rng> site_rngs_;
  int effective_trials_ = 1;
  int consecutive_alarms_ = 0;
  long muted_until_cycle_ = -1;
  long absolute_cycle_ = 0;
  bool last_alarm_reached_stage2_ = false;
};

}  // namespace sgm

#endif  // SGM_GM_CVSGM_H_
