#include "gm/gm.h"

#include "geometry/ball.h"

namespace sgm {

GeometricMonitor::GeometricMonitor(const MonitoredFunction& function,
                                   double threshold, double max_step_norm)
    : ProtocolBase(function, threshold, max_step_norm) {}

bool GeometricMonitor::SiteViolates(
    int site, const std::vector<Vector>& local_vectors) const {
  const Ball constraint =
      Ball::LocalConstraint(e_, Drift(site, local_vectors));
  return function_->BallCrossesThreshold(constraint, threshold_);
}

CycleOutcome GeometricMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;
  for (int i = 0; i < num_sites_; ++i) {
    if (SiteViolates(i, local_vectors)) {
      outcome.local_alarm = true;
      break;
    }
  }
  if (outcome.local_alarm) {
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
  }
  return outcome;
}

}  // namespace sgm
