#ifndef SGM_GM_GM_H_
#define SGM_GM_GM_H_

#include <string>
#include <vector>

#include "sim/protocol.h"

namespace sgm {

/// Baseline Geometric Monitoring of Sharfman, Schuster & Keren (SIGMOD'06)
/// — the paper's "GM" competitor (Section 1.1).
///
/// Every site inscribes the local constraint B(e + Δv_i/2, ‖Δv_i‖/2); the
/// union of these balls covers the convex hull of the translated drifts and
/// therefore the true global average. Any ball that intersects the threshold
/// surface raises a local violation, which triggers a full synchronization
/// (cost N + 1 messages under the broadcast model). GM is exact — given
/// conservative ball tests it can produce false positives but never false
/// negatives.
class GeometricMonitor : public ProtocolBase {
 public:
  GeometricMonitor(const MonitoredFunction& function, double threshold,
                   double max_step_norm);

  std::string name() const override { return "GM"; }

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;

  /// True when site `i`'s local-constraint ball crosses the surface.
  bool SiteViolates(int site, const std::vector<Vector>& local_vectors) const;
};

}  // namespace sgm

#endif  // SGM_GM_GM_H_
