#include "gm/pgm.h"

#include "core/check.h"
#include "geometry/ball.h"

namespace sgm {

PredictionGeometricMonitor::PredictionGeometricMonitor(
    const MonitoredFunction& function, double threshold, double max_step_norm,
    int history, std::unique_ptr<PredictionModel> model)
    : ProtocolBase(function, threshold, max_step_norm),
      history_(history),
      prototype_(model ? std::move(model)
                       : std::make_unique<AdaptiveModel>()) {
  SGM_CHECK_MSG(history >= 2, "predictor needs at least 2 measurements");
}

void PredictionGeometricMonitor::PushHistory(
    const std::vector<Vector>& local_vectors) {
  recent_.push_back(local_vectors);
  while (recent_.size() > static_cast<std::size_t>(history_)) {
    recent_.pop_front();
  }
}

void PredictionGeometricMonitor::AfterSync(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  PushHistory(local_vectors);

  // Each site fits its model on its own history column; parameters ride
  // along the sync vectors (payload only — the messages already flowed).
  site_models_.clear();
  site_models_.reserve(num_sites_);
  std::size_t payload_doubles = 0;
  std::vector<Vector> column(recent_.size());
  for (int i = 0; i < num_sites_; ++i) {
    for (std::size_t t = 0; t < recent_.size(); ++t) {
      column[t] = recent_[t][i];
    }
    site_models_.push_back(prototype_->Clone());
    site_models_.back()->Fit(column);
    payload_doubles += site_models_.back()->ParameterDoubles();
  }
  if (metrics != nullptr && payload_doubles > 0) {
    metrics->AddPiggybackPayload(1, payload_doubles);
    // The coordinator re-broadcasts the aggregate model coefficients.
    metrics->AddPiggybackPayload(1, 2 * dim_);
  }
}

Vector PredictionGeometricMonitor::PredictedEstimate() const {
  Vector pred(dim_);
  for (const auto& model : site_models_) {
    pred += model->Predict(cycles_since_sync_);
  }
  pred /= static_cast<double>(num_sites_);
  return pred;
}

bool PredictionGeometricMonitor::BelievesAbove() const {
  if (!initialized_ || cycles_since_sync_ == 0 || site_models_.empty()) {
    return ProtocolBase::BelievesAbove();
  }
  return function_->Value(PredictedEstimate()) > threshold_;
}

CycleOutcome PredictionGeometricMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;
  const Vector e_pred = PredictedEstimate();
  for (int i = 0; i < num_sites_; ++i) {
    const Vector deviation =
        local_vectors[i] - site_models_[i]->Predict(cycles_since_sync_);
    const Ball constraint = Ball::LocalConstraint(e_pred, deviation);
    if (function_->BallCrossesThreshold(constraint, threshold_)) {
      outcome.local_alarm = true;
      break;
    }
  }
  if (outcome.local_alarm) {
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
  } else {
    PushHistory(local_vectors);
  }
  return outcome;
}

}  // namespace sgm
