#ifndef SGM_GM_PGM_H_
#define SGM_GM_PGM_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "predict/model.h"
#include "sim/protocol.h"

namespace sgm {

/// Prediction-based Geometric Monitoring (Giatrakos et al., SIGMOD'12 /
/// TODS'14) — the paper's "PGM" competitor.
///
/// At each synchronization every site fits a motion model on its recent
/// history (default: the CAA-style AdaptiveModel choosing among static /
/// velocity / velocity–acceleration — the configuration the paper reports)
/// and ships the parameters with its sync vector. Between synchronizations
/// both tiers extrapolate a *moving* estimate e_pred(t) = avg of per-site
/// predictions, and each site monitors the ball of its deviation from its
/// own prediction Δp_i(t) = v_i(t) − pred_i(t) around e_pred(t); since
/// predictions average to e_pred, the union of those balls covers the true
/// global average. Good predictions keep Δp_i tiny; one badly-predicted
/// site triggers violations — why PGM degrades toward GM as N grows
/// (Section 6's observation).
class PredictionGeometricMonitor : public ProtocolBase {
 public:
  /// `history` is the fitting window (the paper varies 3–10 measurements);
  /// `model` is the per-site predictor prototype (cloned per site; default
  /// CAA-style AdaptiveModel).
  PredictionGeometricMonitor(const MonitoredFunction& function,
                             double threshold, double max_step_norm,
                             int history = 6,
                             std::unique_ptr<PredictionModel> model = nullptr);

  std::string name() const override { return "PGM"; }

  /// Prediction-based belief: side of f(e_pred(t)).
  bool BelievesAbove() const override;

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;
  void AfterSync(const std::vector<Vector>& local_vectors,
                 Metrics* metrics) override;

 private:
  Vector PredictedEstimate() const;
  void PushHistory(const std::vector<Vector>& local_vectors);

  int history_;
  std::unique_ptr<PredictionModel> prototype_;
  std::deque<std::vector<Vector>> recent_;        ///< per-cycle snapshots
  std::vector<std::unique_ptr<PredictionModel>> site_models_;
};

}  // namespace sgm

#endif  // SGM_GM_PGM_H_
