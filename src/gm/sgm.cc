#include "gm/sgm.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/sampling.h"
#include "estimators/tail_bounds.h"
#include "geometry/ball.h"

namespace sgm {

SamplingGeometricMonitor::SamplingGeometricMonitor(
    const MonitoredFunction& function, double threshold, double max_step_norm,
    const SgmOptions& options)
    : ProtocolBase(function, threshold, max_step_norm), options_(options) {
  SGM_CHECK_MSG(options.delta > 0.0 && options.delta < 1.0,
                "delta must lie in (0, 1)");
  SGM_CHECK(options.num_trials >= 0);
}

std::string SamplingGeometricMonitor::name() const {
  if (options_.mode == SamplingMode::kUniform) return "Bernoulli";
  return effective_trials_ > 1 ? "M-SGM" : "SGM";
}

void SamplingGeometricMonitor::AfterSync(
    const std::vector<Vector>& /*local_vectors*/, Metrics* /*metrics*/) {
  if (!site_rngs_.empty()) return;  // one-time setup on the first sync
  Rng root(options_.seed);
  site_rngs_.reserve(num_sites_);
  for (int i = 0; i < num_sites_; ++i) site_rngs_.push_back(root.Fork());
  effective_trials_ = options_.num_trials > 0
                          ? options_.num_trials
                          : NumTrials(options_.delta, num_sites_);
}

double SamplingGeometricMonitor::InclusionProbability(double drift_norm,
                                                      double U) const {
  if (options_.mode == SamplingMode::kUniform) {
    return BernoulliSamplingProbability(options_.delta, num_sites_);
  }
  return SamplingProbability(options_.delta, U, num_sites_, drift_norm);
}

double SamplingGeometricMonitor::AverageSampleSize() const {
  if (sample_cycles_ == 0) return 0.0;
  return static_cast<double>(sample_size_accum_) /
         static_cast<double>(sample_cycles_);
}

CycleOutcome SamplingGeometricMonitor::MonitorCycle(
    const std::vector<Vector>& local_vectors, Metrics* metrics) {
  CycleOutcome outcome;
  ++absolute_cycle_;
  if (absolute_cycle_ <= muted_until_cycle_) {
    // Certified cooldown: the average provably cannot have crossed yet.
    consecutive_alarms_ = 0;
    return outcome;
  }
  const double U = CurrentU();

  // Monitoring phase: every site decides its own sample membership; sampled
  // sites (any trial) run the un-scaled GM ball test. The first-trial sample
  // K1 is remembered for the partial synchronization probe.
  std::vector<int> first_trial;
  std::vector<double> first_trial_g;
  bool alarm = false;
  for (int i = 0; i < num_sites_; ++i) {
    const Vector drift = Drift(i, local_vectors);
    const double g = InclusionProbability(drift.Norm(), U);
    bool in_any_trial = false;
    for (int trial = 0; trial < effective_trials_; ++trial) {
      const bool sampled = site_rngs_[i].NextBernoulli(g);
      if (trial == 0 && sampled) {
        first_trial.push_back(i);
        first_trial_g.push_back(g);
      }
      in_any_trial = in_any_trial || sampled;
    }
    if (in_any_trial && !alarm) {
      const Ball constraint = Ball::LocalConstraint(e_, drift);
      if (function_->BallCrossesThreshold(constraint, threshold_)) {
        alarm = true;  // keep drawing samples so RNG use stays uniform
      }
    }
  }
  sample_size_accum_ += static_cast<long>(first_trial.size());
  ++sample_cycles_;
  if (!alarm) {
    consecutive_alarms_ = 0;
    return outcome;
  }
  outcome.local_alarm = true;
  ++consecutive_alarms_;

  if (options_.always_full_sync) {
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }

  // Sustained back-to-back alarm pressure: re-anchor once instead of paying
  // partial probes indefinitely (see SgmOptions).
  if (options_.escalate_after_consecutive_alarms > 0 &&
      consecutive_alarms_ >= options_.escalate_after_consecutive_alarms) {
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }

  // Drift-saturation escalation: when the would-be probe is already a
  // sizable fraction of the network, re-anchor instead (see SgmOptions).
  if (options_.escalate_probe_fraction > 0.0 &&
      static_cast<double>(first_trial.size()) >=
          options_.escalate_probe_fraction * static_cast<double>(num_sites_)) {
    consecutive_alarms_ = 0;
    FullSync(local_vectors, metrics, /*already_collected=*/0);
    outcome.full_sync = true;
    return outcome;
  }

  // Partial synchronization: probe only K1, form the HT estimate, check the
  // ε-ball. Cost: 1 broadcast request + |K1| drift vectors.
  metrics->AddBroadcast(0);
  metrics->AddSiteMessages(static_cast<long>(first_trial.size()), dim_);
  HtVectorEstimator estimator(num_sites_, dim_);
  for (std::size_t k = 0; k < first_trial.size(); ++k) {
    estimator.AddSample(Drift(first_trial[k], local_vectors),
                        first_trial_g[k]);
  }
  const Vector v_hat = estimator.Estimate(e_);
  // ε from the Vector Bernstein bound, additionally held to half the room
  // between e and the surface: with Section 3's third U guidance (U tied to
  // ε_T) the ε-ball check stays decisive — it escalates exactly when the
  // estimate has genuinely consumed a constant fraction of its slack rather
  // than whenever enough cycles have elapsed since the last sync.
  const double epsilon = std::min(BernsteinEpsilon(options_.delta, U),
                                  0.5 * epsilon_T());

  const bool estimate_switched =
      (function_->Value(v_hat) > threshold_) != believes_above_;
  const bool ball_crosses =
      function_->BallCrossesThreshold(Ball(v_hat, epsilon), threshold_);
  if (!estimate_switched && !ball_crosses) {
    // High-probability FP: dismiss without touching the other N − |K| sites.
    outcome.partial_resolved = true;
    metrics->OnPartialResolution();
    if (options_.certified_cooldown) {
      const double room =
          function_->DistanceToSurface(v_hat, threshold_) - epsilon;
      const long mute =
          static_cast<long>(std::floor(room / max_step_norm_));
      if (mute > 0) {
        muted_until_cycle_ = absolute_cycle_ + mute;
        metrics->AddBroadcast(1);  // the coordinator announces the mute
      }
    }
    return outcome;
  }

  consecutive_alarms_ = 0;
  FullSync(local_vectors, metrics,
           /*already_collected=*/static_cast<int>(first_trial.size()));
  outcome.full_sync = true;
  return outcome;
}

}  // namespace sgm
