#ifndef SGM_GM_SGM_H_
#define SGM_GM_SGM_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "sim/protocol.h"

namespace sgm {

/// How sites compute their inclusion probabilities.
enum class SamplingMode {
  /// g_i = ‖Δv_i‖·ln(1/δ)/(U·√N) — the paper's Equation-4 function.
  kDriftWeighted,
  /// g = ln(1/δ)/√N for everyone — the Section-6.5 Bernoulli baseline.
  kUniform,
};

/// Options of the sampling-based monitor.
struct SgmOptions {
  /// Application tolerance δ ∈ (0, e⁻¹); tunes ε, the FN rate and the
  /// expected sample size in one knob (Requirement 3).
  double delta = 0.1;
  /// Sampling trials per site per cycle. 0 = auto via Lemma 2(c)'s formula
  /// (the "M-SGM" configuration); 1 = the paper's plain SGM worst case.
  int num_trials = 1;
  SamplingMode mode = SamplingMode::kDriftWeighted;
  /// Adaptive re-anchoring: when alarms fire in this many *consecutive*
  /// cycles (each partially resolved), escalate once to a full
  /// synchronization — the stream is camped against the threshold surface
  /// and one N+1-message re-anchor is cheaper than partial probes forever.
  /// 0 disables (pure paper behaviour; see bench/ablation_design_choices).
  int escalate_after_consecutive_alarms = 8;
  /// Re-anchor when an alarm's first-trial sample reaches this fraction of
  /// N: the sample size is Σg_i ∝ Σ‖Δv_i‖/U, so a large sample means the
  /// whole network has drifted — at that point one full synchronization
  /// both costs little more than the probe it replaces and resets every
  /// drift (shrinking all future samples). 0 disables.
  double escalate_probe_fraction = 0.125;
  /// Certified alarm cooldown: after a partial resolution with estimate v̂
  /// at distance D from the surface, the true average (which moves at most
  /// max_step_norm per cycle and lies within ε of v̂ w.p. ≥ 1 − δ) cannot
  /// cross for ⌊(D − ε)/max_step⌋ cycles, so the coordinator broadcasts a
  /// mute for that long and nobody alarms — the same (ε, δ) guarantee class
  /// as the paper's partial check, at one extra broadcast. false disables.
  bool certified_cooldown = true;
  /// Ablation switch: skip the partial synchronization entirely and answer
  /// every alarm with a full synchronization (sampling-only monitoring).
  bool always_full_sync = false;
  std::uint64_t seed = 2024;
};

/// SGM / M-SGM — the paper's contribution (Sections 2–3).
///
/// Per update cycle every site flips M independent biased coins with its
/// own probability g_i; only self-sampled sites inscribe the *un-scaled* GM
/// ball B(e + Δv_i/2, ‖Δv_i‖/2) (justified by Lemma 2) and test it against
/// the threshold surface. Because only O(ln(1/δ)·√N) balls exist, the
/// monitored region is a subset of GM's (Requirement 1) and false-positive
/// alarms collapse with N.
///
/// On an alarm the coordinator first runs a *partial synchronization*: it
/// probes only the first-trial sample, forms the Horvitz–Thompson estimate
/// v̂ (Estimator 1, unbiased by Lemma 1), and checks the ε-ball B(v̂, ε)
/// with ε from the Vector Bernstein inequality (Equation 4). If the ε-ball
/// is clear of the surface the alarm is dismissed as an FP at O(√N) cost;
/// otherwise a full synchronization completes the remaining N − |K|
/// collections. The scheme may miss true crossings with probability
/// bounded by Lemma 3 — tunable via δ and self-correcting over cycles.
class SamplingGeometricMonitor : public ProtocolBase {
 public:
  SamplingGeometricMonitor(const MonitoredFunction& function, double threshold,
                           double max_step_norm, const SgmOptions& options);

  std::string name() const override;

  /// The trial count actually in effect for the current network size
  /// (resolved after Initialize() when options.num_trials == 0).
  int effective_trials() const { return effective_trials_; }

  /// Mean per-cycle first-trial sample size observed so far (diagnostics).
  double AverageSampleSize() const;

 protected:
  CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                            Metrics* metrics) override;
  void AfterSync(const std::vector<Vector>& local_vectors,
                 Metrics* metrics) override;

 private:
  double InclusionProbability(double drift_norm, double U) const;

  SgmOptions options_;
  std::vector<Rng> site_rngs_;
  int effective_trials_ = 1;
  long sample_size_accum_ = 0;
  long sample_cycles_ = 0;
  int consecutive_alarms_ = 0;
  long muted_until_cycle_ = -1;  ///< absolute cycle count, see cooldown
  long absolute_cycle_ = 0;
};

}  // namespace sgm

#endif  // SGM_GM_SGM_H_
