#include "obs/accuracy_auditor.h"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.h"

namespace sgm {

const std::vector<double>& AccuracyAuditor::ErrorBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* edges = new std::vector<double>;
    for (double edge = 1.0 / (1 << 20); edge <= 64.0 * 1.5; edge *= 2.0) {
      edges->push_back(edge);
    }
    return edges;
  }();
  return *buckets;
}

const char* AccuracyAuditor::ToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTruePositive: return "TP";
    case Verdict::kTrueNegative: return "TN";
    case Verdict::kFalsePositive: return "FP";
    case Verdict::kFalseNegative: return "FN";
  }
  return "?";
}

AccuracyAuditor::AccuracyAuditor(const AccuracyAuditorConfig& config)
    : config_(config) {
  if (config_.telemetry != nullptr) {
    MetricRegistry& registry = config_.telemetry->registry;
    cycles_ = registry.GetCounter("audit.cycles");
    tp_ = registry.GetCounter("audit.true_positives");
    tn_ = registry.GetCounter("audit.true_negatives");
    fp_ = registry.GetCounter("audit.false_positives");
    fn_ = registry.GetCounter("audit.false_negatives");
    out_of_zone_ = registry.GetCounter("audit.out_of_zone_disagreements");
    violations_ = registry.GetCounter("audit.bound_violations");
    degraded_cycles_ = registry.GetCounter("audit.degraded_cycles");
    degraded_fn_ = registry.GetCounter("audit.degraded_false_negatives");
    max_abs_error_ = registry.GetGauge("audit.max_abs_error");
    instantaneous_error_ = registry.GetGauge("audit.abs_error_last");
    abs_error_ = registry.GetHistogram("audit.abs_error", ErrorBuckets());
  }
}

AccuracyAuditor::Verdict AccuracyAuditor::ObserveCycle(
    const CycleSample& sample) {
  ++report_.cycles;
  if (sample.degraded) {
    ++report_.degraded_cycles;
    if (degraded_cycles_ != nullptr) degraded_cycles_->Increment();
  }
  if (cycles_ != nullptr) cycles_->Increment();

  const Verdict verdict =
      sample.truth_above
          ? (sample.believed_above ? Verdict::kTruePositive
                                   : Verdict::kFalseNegative)
          : (sample.believed_above ? Verdict::kFalsePositive
                                   : Verdict::kTrueNegative);
  switch (verdict) {
    case Verdict::kTruePositive:
      ++report_.true_positives;
      if (tp_ != nullptr) tp_->Increment();
      break;
    case Verdict::kTrueNegative:
      ++report_.true_negatives;
      if (tn_ != nullptr) tn_->Increment();
      break;
    case Verdict::kFalsePositive:
      ++report_.false_positives;
      if (fp_ != nullptr) fp_->Increment();
      break;
    case Verdict::kFalseNegative:
      ++report_.false_negatives;
      if (fn_ != nullptr) fn_->Increment();
      break;
  }

  const double abs_error =
      std::fabs(sample.estimate_value - sample.truth_value);
  report_.sum_abs_error += abs_error;
  report_.max_abs_error = std::max(report_.max_abs_error, abs_error);
  if (abs_error_ != nullptr) abs_error_->Observe(abs_error);
  if (instantaneous_error_ != nullptr) instantaneous_error_->Set(abs_error);
  if (max_abs_error_ != nullptr) max_abs_error_->Set(report_.max_abs_error);

  const bool disagree = sample.truth_above != sample.believed_above;
  const bool out_of_zone =
      disagree && sample.surface_distance > config_.epsilon;
  if (disagree && !out_of_zone) ++report_.in_zone_disagreements;
  if (out_of_zone) {
    ++report_.out_of_zone_disagreements;
    if (verdict == Verdict::kFalseNegative) {
      ++report_.out_of_zone_false_negatives;
      if (sample.degraded) {
        ++report_.degraded_out_of_zone_false_negatives;
        if (degraded_fn_ != nullptr) degraded_fn_->Increment();
      }
    }
    if (out_of_zone_ != nullptr) out_of_zone_->Increment();
    if (out_of_zone_run_ == 0) run_span_ = sample.span;
    ++out_of_zone_run_;
    report_.longest_out_of_zone_run =
        std::max(report_.longest_out_of_zone_run, out_of_zone_run_);
    if (out_of_zone_run_ > config_.max_out_of_zone_run) {
      ++report_.bound_violations;
      if (report_.first_violation_cycle < 0) {
        report_.first_violation_cycle = sample.cycle;
        report_.first_violation_span = run_span_;
      }
      if (violations_ != nullptr) violations_->Increment();
      if (config_.telemetry != nullptr) {
        config_.telemetry->trace.Emit(
            "audit", "bound_violation", -1,
            {{"kind", sample.believed_above ? "false_positive"
                                            : "false_negative"},
             {"span", run_span_},
             {"run", out_of_zone_run_},
             {"abs_error", abs_error},
             {"surface_distance", sample.surface_distance}});
      }
    }
  } else {
    out_of_zone_run_ = 0;
    run_span_ = 0;
  }
  return verdict;
}

}  // namespace sgm
