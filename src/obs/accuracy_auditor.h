#ifndef SGM_OBS_ACCURACY_AUDITOR_H_
#define SGM_OBS_ACCURACY_AUDITOR_H_

#include <cstdint>
#include <vector>

namespace sgm {

struct Telemetry;
class Counter;
class Gauge;
class Histogram;

/// Tolerances of the online accuracy audit, mirroring the stress harness's
/// invariant contract (sim/invariants.h): an approximate protocol (SGM's ε
/// from Lemma 2, CVSGM's ε_C from the McDiarmid analysis) may disagree with
/// the oracle while the true mean sits within `epsilon` of the threshold
/// surface, and may disagree out of that zone only transiently — for at
/// most `max_out_of_zone_run` consecutive cycles (self-correction: the
/// protocol re-detects every cycle, so a missed crossing is retried).
/// Setting both to zero turns the auditor into an exact-agreement check —
/// the negative-test configuration that must fire on any approximate run.
struct AccuracyAuditorConfig {
  double epsilon = 0.0;
  long max_out_of_zone_run = 0;
  /// Nullable. When set, verdict counters / error stats are published live
  /// (`audit.*` metrics) and bound violations emit `bound_violation` trace
  /// events carrying the offending span id.
  Telemetry* telemetry = nullptr;
};

/// Online accuracy auditor: classifies every cycle of a monitored run
/// against the lock-step oracle as TP/FP/FN/TN, tracks the instantaneous
/// error |f(v̂) − f(v)| of the coordinator's estimate, and flags ε-bound
/// violations — an out-of-zone disagreement run exceeding the
/// self-correction horizon — attributed to the sync-cycle span that
/// produced the offending belief.
///
/// Pure observer: it never feeds back into protocol decisions, and with a
/// null telemetry sink it only accumulates its own report struct.
class AccuracyAuditor {
 public:
  /// One cycle's worth of oracle + protocol state.
  struct CycleSample {
    long cycle = 0;
    bool believed_above = false;  ///< coordinator/protocol belief
    bool truth_above = false;     ///< oracle: f(v) > threshold
    double estimate_value = 0.0;  ///< f(v̂), the estimate's function value
    double truth_value = 0.0;     ///< f(v), the oracle's function value
    /// Oracle distance of the true mean to the threshold surface — on a
    /// disagreement cycle this lower-bounds |f(v̂) − f(v)| in vector space,
    /// making it the quantity the ε zone bounds.
    double surface_distance = 0.0;
    /// Root span of the most recent sync cascade (0 when unknown, e.g. the
    /// transportless sim legs).
    std::int64_t span = 0;
    /// True when this cycle's barrier closed degraded (a deadline-bounded
    /// barrier proceeded over the responsive quorum) or one or more sites
    /// sat under a lag quarantine — the bounded-staleness regime whose FN
    /// contribution the report attributes separately.
    bool degraded = false;
  };

  enum class Verdict {
    kTruePositive,   ///< both above
    kTrueNegative,   ///< both below
    kFalsePositive,  ///< believed above, truth below
    kFalseNegative,  ///< believed below, truth above (the paper's FN)
  };

  struct Report {
    long cycles = 0;
    long true_positives = 0;
    long true_negatives = 0;
    long false_positives = 0;
    long false_negatives = 0;
    /// Disagreements with the true mean inside the ε zone around the
    /// surface — benign under the (ε, δ) contract.
    long in_zone_disagreements = 0;
    /// Disagreements out of the zone — only transient runs are tolerated.
    long out_of_zone_disagreements = 0;
    /// Out-of-zone false negatives: genuine missed detections, the events
    /// the paper's δ bounds. fn_rate() below is their per-cycle rate.
    long out_of_zone_false_negatives = 0;
    /// Cycles observed under the degraded regime (deadline-bounded barrier
    /// or active lag quarantine — CycleSample::degraded).
    long degraded_cycles = 0;
    /// The subset of out_of_zone_false_negatives that landed on degraded
    /// cycles: the FN-rate contribution attributable to bounded staleness
    /// rather than to the protocol's own (ε, δ) slack.
    long degraded_out_of_zone_false_negatives = 0;
    long longest_out_of_zone_run = 0;
    /// ε-bound violations: cycles where the out-of-zone disagreement run
    /// exceeded the self-correction horizon.
    long bound_violations = 0;
    long first_violation_cycle = -1;
    std::int64_t first_violation_span = 0;
    double max_abs_error = 0.0;  ///< max |f(v̂) − f(v)| over the run
    double sum_abs_error = 0.0;

    long disagreements() const { return false_positives + false_negatives; }
    double mean_abs_error() const {
      return cycles > 0 ? sum_abs_error / static_cast<double>(cycles) : 0.0;
    }
    /// Out-of-zone FN rate — the empirical counterpart of the paper's δ
    /// failure probability (in-zone FNs are within the ε allowance and do
    /// not count against δ).
    double fn_rate() const {
      return cycles > 0 ? static_cast<double>(out_of_zone_false_negatives) /
                              static_cast<double>(cycles)
                        : 0.0;
    }
    /// Out-of-zone FN rate over degraded cycles only — compares against
    /// the δ + staleness-allowance gate the straggler legs enforce.
    double degraded_fn_rate() const {
      return degraded_cycles > 0
                 ? static_cast<double>(degraded_out_of_zone_false_negatives) /
                       static_cast<double>(degraded_cycles)
                 : 0.0;
    }
    bool ok() const { return bound_violations == 0; }
  };

  explicit AccuracyAuditor(const AccuracyAuditorConfig& config);

  /// Classifies one cycle; call after the cycle's routing reached
  /// quiescence so belief and oracle are in lock step.
  Verdict ObserveCycle(const CycleSample& sample);

  const Report& report() const { return report_; }
  const AccuracyAuditorConfig& config() const { return config_; }

  static const char* ToString(Verdict verdict);

  /// Absolute-error bucket edges for the `audit.abs_error` histogram:
  /// exponential 2^k from 2^-20 (~1e-6) up to 2^6, covering numerical noise
  /// through order-of-threshold errors.
  static const std::vector<double>& ErrorBuckets();

 private:
  AccuracyAuditorConfig config_;
  Report report_;
  long out_of_zone_run_ = 0;
  /// Span carried by the first cycle of the current out-of-zone run — the
  /// cascade whose outcome the run is stuck disagreeing on.
  std::int64_t run_span_ = 0;

  // Cached metric handles (null when telemetry is off).
  Counter* tp_ = nullptr;
  Counter* tn_ = nullptr;
  Counter* fp_ = nullptr;
  Counter* fn_ = nullptr;
  Counter* cycles_ = nullptr;
  Counter* out_of_zone_ = nullptr;
  Counter* violations_ = nullptr;
  Counter* degraded_cycles_ = nullptr;
  Counter* degraded_fn_ = nullptr;
  Gauge* max_abs_error_ = nullptr;
  Gauge* instantaneous_error_ = nullptr;
  Histogram* abs_error_ = nullptr;
};

}  // namespace sgm

#endif  // SGM_OBS_ACCURACY_AUDITOR_H_
