#include "obs/anomaly.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sgm {

std::vector<AnomalySignal> DefaultAnomalySignals() {
  // min_delta floors are calibrated against the clean 50-seed dst_stress
  // sweep (24 sites, 300 cycles): a faultless run's per-cycle deltas must
  // stay inside the band for every seed — the CI no-false-positive gate
  // replays exactly that check. A full sync costs ~2N+2 paper messages, so
  // the paper-message floor has to clear a first-ever full sync arriving
  // after a quiet warmup; the session/restart signals are quiet in clean
  // runs and use tight floors.
  return {
      {"transport.paper_messages", /*min_delta=*/120.0, /*warmup=*/-1},
      {"coordinator.full_syncs", /*min_delta=*/3.0, /*warmup=*/-1},
      {"audit.false_negatives", /*min_delta=*/3.0, /*warmup=*/-1},
      {"transport.retransmissions", /*min_delta=*/4.0, /*warmup=*/-1},
      {"socket.site_disconnects", /*min_delta=*/1.0, /*warmup=*/-1},
      {"socket.site_rehellos", /*min_delta=*/1.0, /*warmup=*/-1},
      // A lagging verdict never fires on a healthy deployment: any lag
      // quarantine is a straggler incident worth an alert.
      {"degraded.lag_quarantines", /*min_delta=*/1.0, /*warmup=*/-1},
      // Zero-tolerance: a restore only ever happens when the coordinator
      // came back from a crash — alert on the first post-recovery cycle.
      {"recovery.restores", /*min_delta=*/1.0, /*warmup=*/0},
  };
}

void AppendAlertJson(const Alert& alert, std::ostream& out) {
  out << "{\"cycle\":" << alert.cycle << ",\"metric\":\""
      << JsonEscape(alert.metric) << "\",\"kind\":\"" << JsonEscape(alert.kind)
      << "\",\"value\":";
  AppendJsonNumber(out, alert.value);
  out << ",\"mean\":";
  AppendJsonNumber(out, alert.mean);
  out << ",\"stddev\":";
  AppendJsonNumber(out, alert.stddev);
  out << ",\"z\":";
  AppendJsonNumber(out, alert.z);
  out << ",\"seed\":" << alert.seed << "}";
}

AnomalyDetector::AnomalyDetector(AnomalyDetectorConfig config)
    : config_(std::move(config)) {
  if (config_.signals.empty()) config_.signals = DefaultAnomalySignals();
  signals_.reserve(config_.signals.size());
  for (const AnomalySignal& signal : config_.signals) {
    SignalState state;
    state.signal = signal;
    if (state.signal.warmup < 0) state.signal.warmup = config_.warmup;
    signals_.push_back(std::move(state));
  }
}

void AnomalyDetector::SetSinks(MetricRegistry* registry, TraceLog* trace) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  trace_ = trace;
}

void AnomalyDetector::AttachStream(std::ostream* stream) {
  std::lock_guard<std::mutex> lock(mu_);
  stream_ = stream;
}

void AnomalyDetector::ObserveCycle(long cycle,
                                   const std::map<std::string, long>& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  for (SignalState& state : signals_) {
    const auto it = delta.find(state.signal.metric);
    const double x = it == delta.end() ? 0.0 : static_cast<double>(it->second);

    // Test against the pre-update baseline, then fold the sample in — the
    // anomalous sample itself must not dilute the band it is judged by.
    const double sigma =
        state.count > 1 ? std::sqrt(state.m2 / static_cast<double>(
                                                   state.count - 1))
                        : 0.0;
    const double deviation = x - state.mean;
    const double magnitude = std::fabs(deviation);
    const double denom = std::max(sigma, config_.stddev_floor);
    const double z = magnitude / denom;

    const bool warm = state.count >= state.signal.warmup;
    const bool in_cooldown =
        state.alerted && cycle - state.last_alert_cycle < config_.cooldown;
    if (warm && !in_cooldown && magnitude >= state.signal.min_delta &&
        z > config_.z_threshold) {
      Alert alert;
      alert.cycle = cycle;
      alert.metric = state.signal.metric;
      alert.kind = deviation >= 0 ? "spike" : "drop";
      alert.value = x;
      alert.mean = state.mean;
      alert.stddev = sigma;
      alert.z = z;
      alert.seed = config_.seed;
      state.alerted = true;
      state.last_alert_cycle = cycle;

      if (registry_ != nullptr) {
        registry_->GetCounter("alert.raised")->Increment();
        registry_->GetCounter("alert.raised." + alert.metric)->Increment();
      }
      if (trace_ != nullptr) {
        // Actor -1: alerts are a deployment-level verdict, reported on the
        // coordinator's pseudo-thread like other global events.
        trace_->Emit("alert", "alert_raised", -1,
                     {{"metric", alert.metric},
                      {"kind", alert.kind},
                      {"value", alert.value},
                      {"mean", alert.mean},
                      {"z", alert.z}});
      }
      if (stream_ != nullptr) {
        AppendAlertJson(alert, *stream_);
        *stream_ << "\n";
        stream_->flush();
      }
      alerts_.push_back(std::move(alert));
    }

    // Welford update.
    state.count += 1;
    const double d1 = x - state.mean;
    state.mean += d1 / static_cast<double>(state.count);
    state.m2 += d1 * (x - state.mean);
  }
}

std::vector<Alert> AnomalyDetector::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

std::size_t AnomalyDetector::alert_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_.size();
}

void AnomalyDetector::WriteAlertsJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Alert& alert : alerts_) {
    AppendAlertJson(alert, out);
    out << "\n";
  }
}

std::string AnomalyDetector::AlertsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Alert& alert : alerts_) {
    out << (first ? "" : ",");
    AppendAlertJson(alert, out);
    first = false;
  }
  out << "]";
  return out.str();
}

}  // namespace sgm
