#ifndef SGM_OBS_ANOMALY_H_
#define SGM_OBS_ANOMALY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace sgm {

/// One tracked signal: a dotted counter name observed as its per-cycle
/// delta (the same stream TimeSeriesExporter records as "delta").
struct AnomalySignal {
  std::string metric;
  /// Absolute floor on |x − mean| before an alert can fire, in units of the
  /// counter's per-cycle delta. Keeps small-count jitter (the first full
  /// sync of a run, a single retransmission) below the alarm line even when
  /// the history's variance is still ~0.
  double min_delta = 1.0;
  /// Minimum samples this signal must have observed before it may alert;
  /// -1 inherits AnomalyDetectorConfig::warmup. 0 marks a *zero-tolerance*
  /// signal — a counter whose baseline is "never moves" (crash recovery,
  /// reliability give-ups): any motion alerts immediately, which is how a
  /// coordinator restart shows up on the very first post-recovery cycle.
  long warmup = -1;
};

/// Tuning of the online detector. Everything here is deterministic: the
/// seed is not a randomness source (the detector draws nothing) but the
/// identity of the metric stream's schedule, stamped into every alert so an
/// alerts file names the run that produced it.
struct AnomalyDetectorConfig {
  double z_threshold = 6.0;
  long warmup = 25;
  /// Minimum cycles between consecutive alerts on the same signal, so a
  /// regime shift raises one alert instead of a storm while the Welford
  /// baseline absorbs the new regime.
  long cooldown = 25;
  /// Floor on the standard deviation used in the z-score denominator;
  /// prevents division by ~0 on constant histories (the z of a
  /// zero-tolerance signal's first motion is capped at min_delta / floor).
  double stddev_floor = 1e-9;
  std::uint64_t seed = 0;
  /// Signals to track; empty = DefaultAnomalySignals().
  std::vector<AnomalySignal> signals;
};

/// The default ops surface: the paper-cost stream (message rate, full-sync
/// rate), the accuracy stream (FN rate), the session/reliability stream
/// (reconnects, retransmissions) and the zero-tolerance restart signal.
std::vector<AnomalySignal> DefaultAnomalySignals();

/// One raised alert. `kind` is "spike" (delta above the band) or "drop"
/// (below); zero-tolerance signals always read "spike".
struct Alert {
  long cycle = 0;
  std::string metric;
  std::string kind;
  double value = 0.0;   ///< the per-cycle delta that fired
  double mean = 0.0;    ///< Welford mean of the history (pre-update)
  double stddev = 0.0;  ///< Welford stddev of the history (pre-update)
  double z = 0.0;       ///< |value − mean| / max(stddev, stddev_floor)
  std::uint64_t seed = 0;
};

/// One `{"cycle":..,"metric":..,"kind":..,"value":..,"mean":..,"stddev":..,
/// "z":..,"seed":..}` object, deterministically formatted.
void AppendAlertJson(const Alert& alert, std::ostream& out);

/// Seeded, deterministic Welford z-score detector over per-cycle counter
/// deltas (the resource-monitor pattern: online mean/variance per signal,
/// alert when a sample leaves the z band). Subscribes to the
/// TimeSeriesExporter sample stream via Telemetry::EnableAnomalyDetection;
/// identical metric streams + config produce byte-identical alert output.
///
/// Pure observer: it never feeds back into the protocol, and its optional
/// sinks (metric counters, trace events, live JSONL stream) only record.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyDetectorConfig config = {});

  /// Optional sinks, all nullable: alert.* counters into `registry`,
  /// catalog-validated `alert_raised` trace events into `trace`.
  void SetSinks(MetricRegistry* registry, TraceLog* trace);

  /// Optional live stream: each alert is appended (one JSONL line) and
  /// flushed the moment it fires, so the alerts file survives a SIGKILL of
  /// the observed process — the same reason the belief log in the chaos
  /// harness appends eagerly. Not owned; must outlive the detector.
  void AttachStream(std::ostream* stream);

  /// Observes one cycle's per-cycle counter deltas (missing signals count
  /// as delta 0, so a signal that never moves still builds its baseline).
  /// Call once per cycle in cycle order.
  void ObserveCycle(long cycle, const std::map<std::string, long>& delta);

  /// Snapshot of the alerts raised so far (copies under the lock — safe
  /// against a concurrent ObserveCycle, e.g. from the HTTP ops thread).
  std::vector<Alert> alerts() const;
  std::size_t alert_count() const;
  const AnomalyDetectorConfig& config() const { return config_; }

  /// All alerts so far, one JSONL line each (same bytes the live stream
  /// received).
  void WriteAlertsJsonl(std::ostream& out) const;
  /// JSON array of the same records, for the /alerts HTTP endpoint.
  std::string AlertsJson() const;

 private:
  struct SignalState {
    AnomalySignal signal;
    long count = 0;      // Welford sample count
    double mean = 0.0;   // Welford running mean
    double m2 = 0.0;     // Welford sum of squared deviations
    long last_alert_cycle = 0;
    bool alerted = false;
  };

  mutable std::mutex mu_;
  AnomalyDetectorConfig config_;
  std::vector<SignalState> signals_;
  std::vector<Alert> alerts_;
  MetricRegistry* registry_ = nullptr;
  TraceLog* trace_ = nullptr;
  std::ostream* stream_ = nullptr;
};

}  // namespace sgm

#endif  // SGM_OBS_ANOMALY_H_
