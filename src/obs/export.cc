#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/check.h"

namespace sgm {

namespace {

void AppendDouble(std::ostream& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    out << static_cast<long long>(value);
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << buffer;
  }
}

/// Exact q-quantile of a sample window (nearest-rank with linear
/// interpolation); the window is small, so a sort per gauge per cycle is
/// cheap and avoids estimation error in the exported series.
double WindowQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

template <typename T>
void TrimToWindow(std::vector<T>* history, long window) {
  if (static_cast<long>(history->size()) > window) {
    history->erase(history->begin(),
                   history->begin() +
                       (static_cast<long>(history->size()) - window));
  }
}

}  // namespace

TimeSeriesExporter::TimeSeriesExporter(TimeSeriesExporterConfig config)
    : config_(config) {
  SGM_CHECK(config_.window >= 1);
}

void TimeSeriesExporter::Sample(long cycle, const MetricRegistry& registry) {
  if (cycle == last_cycle_) return;  // on-demand re-publish, same cycle
  last_cycle_ = cycle;

  Record record;
  record.cycle = cycle;
  record.counters = registry.SnapshotCounters();
  record.gauges = registry.SnapshotGauges();

  for (const auto& [name, value] : record.counters) {
    const auto prev = prev_counters_.find(name);
    const long delta = value - (prev == prev_counters_.end() ? 0 : prev->second);
    record.delta[name] = delta;
    auto& history = delta_history_[name];
    history.push_back(delta);
    TrimToWindow(&history, config_.window);
    long sum = 0;
    for (const long d : history) sum += d;
    record.window_counts[name] = sum;
  }
  prev_counters_ = record.counters;

  for (const auto& [name, value] : record.gauges) {
    auto& history = gauge_history_[name];
    history.push_back(value);
    TrimToWindow(&history, config_.window);
    record.window_gauges[name] = {WindowQuantile(history, 0.50),
                                  WindowQuantile(history, 0.95),
                                  WindowQuantile(history, 0.99)};
  }

  if (observer_) observer_(cycle, record.delta);

  records_.push_back(std::move(record));
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "sgm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusHelpText(const std::string& dotted_name) {
  struct FamilyHelp {
    const char* prefix;
    const char* help;
  };
  // Keep in sync with the metric catalog in docs/OBSERVABILITY.md.
  static const FamilyHelp kFamilies[] = {
      {"paper.", "paper-protocol cost accounting (simulator legs)"},
      {"transport.", "reliable-transport accounting (paper vs wire cost)"},
      {"coordinator.", "coordinator protocol state and sync counters"},
      {"site.", "site-node protocol state and latency scopes"},
      {"audit.", "online accuracy audit verdicts vs the lock-step oracle"},
      {"recovery.", "checkpoint write / crash-recovery lifecycle"},
      {"failure.", "failure-detector liveness verdicts"},
      {"socket.", "socket session lifecycle (hellos, disconnects, frames)"},
      {"serialization.", "wire codec encode/decode accounting"},
      {"alert.", "online anomaly-detector alerts over the metric stream"},
      {"obs.", "telemetry self-cost (trace volume, sampling, ring, ns)"},
      {"sim.", "simulation driver bookkeeping"},
  };
  for (const FamilyHelp& family : kFamilies) {
    if (dotted_name.rfind(family.prefix, 0) == 0) {
      return dotted_name + ": " + family.help;
    }
  }
  return dotted_name + ": sgm metric";
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + temp + " for writing");
    }
    writer(out);
    out.flush();
    if (!out) {
      out.close();
      std::remove(temp.c_str());
      return Status::Internal("write to " + temp + " failed");
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("rename " + temp + " -> " + path + " failed");
  }
  return Status::OK();
}

bool RemoveStaleTempFile(const std::string& path) {
  const std::string temp = path + ".tmp";
  return std::remove(temp.c_str()) == 0;
}

void TimeSeriesExporter::WriteJsonl(std::ostream& out) const {
  for (const Record& record : records_) {
    out << "{\"cycle\":" << record.cycle << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : record.counters) {
      out << (first ? "" : ",") << "\"" << name << "\":" << value;
      first = false;
    }
    out << "},\"delta\":{";
    first = true;
    for (const auto& [name, value] : record.delta) {
      out << (first ? "" : ",") << "\"" << name << "\":" << value;
      first = false;
    }
    out << "},\"window_counts\":{";
    first = true;
    for (const auto& [name, value] : record.window_counts) {
      out << (first ? "" : ",") << "\"" << name << "\":" << value;
      first = false;
    }
    out << "},\"window_gauges\":{";
    first = true;
    for (const auto& [name, quantiles] : record.window_gauges) {
      out << (first ? "" : ",") << "\"" << name << "\":{\"p50\":";
      AppendDouble(out, quantiles[0]);
      out << ",\"p95\":";
      AppendDouble(out, quantiles[1]);
      out << ",\"p99\":";
      AppendDouble(out, quantiles[2]);
      out << "}";
      first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : record.gauges) {
      out << (first ? "" : ",") << "\"" << name << "\":";
      AppendDouble(out, value);
      first = false;
    }
    out << "}}\n";
  }
}

}  // namespace sgm
