#ifndef SGM_OBS_EXPORT_H_
#define SGM_OBS_EXPORT_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metric_registry.h"

namespace sgm {

/// Tuning of the windowed time-series export.
struct TimeSeriesExporterConfig {
  /// Sliding-window width in cycles for the windowed aggregates.
  long window = 50;
};

/// Per-cycle time-series export of a MetricRegistry: every Sample() call
/// snapshots the registry and appends one record holding the cumulative
/// counters, their per-cycle deltas, sliding-window counter sums, and
/// sliding-window quantiles (p50/p95/p99) of every gauge — e.g. the
/// auditor's instantaneous |f(v̂) − f(v)| error gauge becomes windowed
/// error quantiles, and the transport counters become windowed overhead
/// rates.
///
/// One JSONL line per cycle, keys sorted, numbers formatted
/// deterministically — replaying a seed reproduces the series byte for
/// byte:
///
///   {"cycle": 12,
///    "counters": {...cumulative...},
///    "delta": {...since the previous sample...},
///    "window_counts": {...sum of deltas over the window...},
///    "window_gauges": {name: {"p50": v, "p95": v, "p99": v}},
///    "gauges": {...instantaneous...}}
///
/// Pure observer: it reads registry snapshots and never feeds back.
class TimeSeriesExporter {
 public:
  explicit TimeSeriesExporter(TimeSeriesExporterConfig config = {});

  /// Samples the registry as of the end of `cycle`. Idempotent per cycle:
  /// a second call with the same cycle (e.g. an on-demand PublishMetrics
  /// before writing a snapshot) is a no-op.
  void Sample(long cycle, const MetricRegistry& registry);

  void WriteJsonl(std::ostream& out) const;
  std::size_t size() const { return records_.size(); }
  const TimeSeriesExporterConfig& config() const { return config_; }

 private:
  struct Record {
    long cycle = 0;
    std::map<std::string, long> counters;       // cumulative
    std::map<std::string, long> delta;          // vs previous sample
    std::map<std::string, long> window_counts;  // delta sum over the window
    std::map<std::string, double> gauges;       // instantaneous
    /// p50/p95/p99 of each gauge's samples over the window.
    std::map<std::string, std::vector<double>> window_gauges;
  };

  TimeSeriesExporterConfig config_;
  long last_cycle_ = -1;
  std::map<std::string, long> prev_counters_;
  /// Per-counter delta history and per-gauge sample history, bounded to the
  /// window length.
  std::map<std::string, std::vector<long>> delta_history_;
  std::map<std::string, std::vector<double>> gauge_history_;
  std::vector<Record> records_;
};

}  // namespace sgm

#endif  // SGM_OBS_EXPORT_H_
