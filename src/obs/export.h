#ifndef SGM_OBS_EXPORT_H_
#define SGM_OBS_EXPORT_H_

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/metric_registry.h"

namespace sgm {

/// Tuning of the windowed time-series export.
struct TimeSeriesExporterConfig {
  /// Sliding-window width in cycles for the windowed aggregates.
  long window = 50;
};

/// Per-cycle time-series export of a MetricRegistry: every Sample() call
/// snapshots the registry and appends one record holding the cumulative
/// counters, their per-cycle deltas, sliding-window counter sums, and
/// sliding-window quantiles (p50/p95/p99) of every gauge — e.g. the
/// auditor's instantaneous |f(v̂) − f(v)| error gauge becomes windowed
/// error quantiles, and the transport counters become windowed overhead
/// rates.
///
/// One JSONL line per cycle, keys sorted, numbers formatted
/// deterministically — replaying a seed reproduces the series byte for
/// byte:
///
///   {"cycle": 12,
///    "counters": {...cumulative...},
///    "delta": {...since the previous sample...},
///    "window_counts": {...sum of deltas over the window...},
///    "window_gauges": {name: {"p50": v, "p95": v, "p99": v}},
///    "gauges": {...instantaneous...}}
///
/// Pure observer: it reads registry snapshots and never feeds back.
class TimeSeriesExporter {
 public:
  explicit TimeSeriesExporter(TimeSeriesExporterConfig config = {});

  /// Samples the registry as of the end of `cycle`. Idempotent per cycle:
  /// a second call with the same cycle (e.g. an on-demand PublishMetrics
  /// before writing a snapshot) is a no-op.
  void Sample(long cycle, const MetricRegistry& registry);

  /// Per-cycle subscriber to the sample stream, invoked once per new cycle
  /// with the per-cycle counter deltas (the same values the record's
  /// "delta" object serializes). This is how the anomaly detector rides
  /// the export stream without a second registry snapshot.
  using SampleObserver =
      std::function<void(long cycle, const std::map<std::string, long>& delta)>;
  void set_observer(SampleObserver observer) {
    observer_ = std::move(observer);
  }

  void WriteJsonl(std::ostream& out) const;
  std::size_t size() const { return records_.size(); }
  const TimeSeriesExporterConfig& config() const { return config_; }

 private:
  struct Record {
    long cycle = 0;
    std::map<std::string, long> counters;       // cumulative
    std::map<std::string, long> delta;          // vs previous sample
    std::map<std::string, long> window_counts;  // delta sum over the window
    std::map<std::string, double> gauges;       // instantaneous
    /// p50/p95/p99 of each gauge's samples over the window.
    std::map<std::string, std::vector<double>> window_gauges;
  };

  TimeSeriesExporterConfig config_;
  SampleObserver observer_;
  long last_cycle_ = -1;
  std::map<std::string, long> prev_counters_;
  /// Per-counter delta history and per-gauge sample history, bounded to the
  /// window length.
  std::map<std::string, std::vector<long>> delta_history_;
  std::map<std::string, std::vector<double>> gauge_history_;
  std::vector<Record> records_;
};

// ── Prometheus text exposition (version 0.0.4) helpers ─────────────────────
//
// The registry's WritePrometheus uses these; they are exposed so the
// round-trip grammar test (and any future exposition surface) can exercise
// them directly.

/// `transport.paper_bytes` → `sgm_transport_paper_bytes` (metric names
/// allow `[a-zA-Z0-9_:]` only; everything else becomes `_`).
std::string PrometheusMetricName(const std::string& name);

/// Escapes a HELP line's text: `\` → `\\`, newline → `\n`.
std::string PrometheusEscapeHelp(const std::string& text);

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
std::string PrometheusEscapeLabelValue(const std::string& value);

/// One-line HELP text for a dotted metric name, derived from the metric
/// family catalog (docs/OBSERVABILITY.md); unknown prefixes get a generic
/// description rather than no HELP line.
std::string PrometheusHelpText(const std::string& dotted_name);

// ── Atomic file publication ────────────────────────────────────────────────

/// Writes `path` atomically: streams through `path + ".tmp"`, then renames
/// over the target — a reader never observes a half-written file.
/// On any failure the temp file is removed before returning, so the only
/// way a stale `.tmp` survives is a crash between write and rename; pair
/// with RemoveStaleTempFile on daemon start for that case.
Status AtomicWriteFile(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Removes a stale `path + ".tmp"` left by a crash mid-publication.
/// Returns true when a stale file existed and was removed. Call for every
/// atomically published output (--prom-out, --series-out, --alerts-out) on
/// daemon start.
bool RemoveStaleTempFile(const std::string& path);

}  // namespace sgm

#endif  // SGM_OBS_EXPORT_H_
