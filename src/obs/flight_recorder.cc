#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

namespace sgm {

namespace {

/// Process-global crash-dump wiring. Fixed storage only: the handler must
/// not allocate, and sig_atomic_t-free pointer reads are fine here because
/// InstallCrashDump happens-before any signal we care about (it is called
/// during single-threaded startup in the daemons and before fault injection
/// in the tests).
FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[512] = {0};

void CrashDumpHandler(int sig) {
  if (g_crash_recorder != nullptr && g_crash_path[0] != '\0') {
    g_crash_recorder->SignalSafeDump(g_crash_path);
  }
  // Re-deliver with the default action so the process still dies by the
  // original signal (wait status, core dumps and CI all see the truth).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void FlightRecorder::Record(const std::string& line) {
  if (line.size() > kSlotBytes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[head_ % capacity_];
  if (head_ >= capacity_) overwrites_.fetch_add(1, std::memory_order_relaxed);
  ++head_;
  // Unpublish → copy → publish: a concurrent dump skips the torn window.
  slot.len.store(0, std::memory_order_release);
  std::memcpy(slot.data, line.data(), line.size());
  slot.len.store(static_cast<std::uint32_t>(line.size()),
                 std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::string FlightRecorder::DumpString() const {
  std::string out;
  // The mutex is deliberately not taken: DumpString must work from
  // contexts where a writer holds it (the HTTP thread is fine either way,
  // the signal path must not block). Oldest-first order; `head_` is read
  // unsynchronized, so the window edge may be one event stale — harmless
  // for a diagnostic dump.
  const std::uint64_t head = head_;
  const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
  for (std::uint64_t i = start; i < head; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kSlotBytes) continue;
    out.append(slot.data, len);
    out.push_back('\n');
  }
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << DumpString();
  return static_cast<bool>(out);
}

void FlightRecorder::SignalSafeDump(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const std::uint64_t head = head_;
  const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
  for (std::uint64_t i = start; i < head; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kSlotBytes) continue;
    if (::write(fd, slot.data, len) < 0) break;
    if (::write(fd, "\n", 1) < 0) break;
  }
  ::close(fd);
}

void FlightRecorder::InstallCrashDump(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof(g_crash_path) - 1);
  g_crash_path[sizeof(g_crash_path) - 1] = '\0';
  g_crash_recorder = this;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashDumpHandler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

FlightRecorder& FlightRecorder::Instance() {
  static auto* instance = new FlightRecorder();
  return *instance;
}

}  // namespace sgm
