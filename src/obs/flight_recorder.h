#ifndef SGM_OBS_FLIGHT_RECORDER_H_
#define SGM_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace sgm {

/// Always-on in-memory crash recorder: a fixed-size ring of the most recent
/// trace events, each stored as its finished JSONL line, so a process that
/// dies mid-chaos leaves a postmortem window `trace_inspect --merge` can
/// ingest alongside the regular per-process traces.
///
/// Writer protocol per slot: `len` is zeroed, the line is copied, then
/// `len` is published — a dump (including one racing from a fatal-signal
/// handler on another thread) skips any slot whose `len` is 0, so a torn
/// half-written slot is silently dropped instead of corrupting the file.
/// Record() itself serializes writers with a plain mutex; the ring is only
/// ever appended to, never reallocated, so the signal path touches nothing
/// but preallocated memory and write(2).
class FlightRecorder {
 public:
  /// Payload bytes per slot; longer rendered lines are dropped (counted in
  /// lines_dropped) rather than truncated, so every dumped line parses.
  static constexpr std::size_t kSlotBytes = 704;

  explicit FlightRecorder(std::size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one rendered JSONL line (without trailing newline) to the
  /// ring, overwriting the oldest entry when full.
  void Record(const std::string& line);

  /// The current window, oldest line first, one event per line — the
  /// /flightrecorder HTTP payload and the on-demand dump format.
  std::string DumpString() const;

  /// Writes DumpString() to `path`. Returns false when the file cannot be
  /// opened or written.
  bool DumpToFile(const std::string& path) const;

  /// Arms the fatal-signal dump: on SIGSEGV or SIGABRT the ring is written
  /// to `path` with async-signal-safe calls only (open/write/close), then
  /// the default disposition is restored and the signal re-raised so the
  /// process still dies with the original cause. Process-global: the last
  /// recorder armed wins. `path` is copied into a fixed buffer now — no
  /// allocation happens on the signal path.
  void InstallCrashDump(const std::string& path);

  std::size_t capacity() const { return capacity_; }
  long lines_recorded() const { return recorded_.load(); }
  /// Ring wraps: entries lost to overwriting since the start.
  long overwrites() const { return overwrites_.load(); }
  /// Lines longer than kSlotBytes, dropped whole.
  long lines_dropped() const { return dropped_.load(); }

  /// The process-wide recorder the daemon roles arm and expose.
  static FlightRecorder& Instance();

  /// Signal-handler core; public so the free handler function can reach
  /// it, but async-signal-safe and const — usable from any context.
  void SignalSafeDump(const char* path) const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> len{0};
    char data[kSlotBytes];
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::mutex mu_;
  std::uint64_t head_ = 0;  ///< next slot index to write (monotone)
  std::atomic<long> recorded_{0};
  std::atomic<long> overwrites_{0};
  std::atomic<long> dropped_{0};
};

}  // namespace sgm

#endif  // SGM_OBS_FLIGHT_RECORDER_H_
