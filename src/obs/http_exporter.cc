#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace sgm {

namespace {

// Local POSIX helpers: sgm_obs depends only on sgm_core, so the loopback
// boilerplate is duplicated here rather than pulling in the runtime's
// socket layer (which points its dependency arrow the other way).

int ListenLoopback(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the request head terminator, a small cap, or timeout.
/// Returns the bytes read (possibly a partial head on timeout).
std::string ReadRequestHead(int fd, long timeout_ms) {
  std::string head;
  char buffer[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    head.append(buffer, static_cast<std::size_t>(n));
  }
  return head;
}

std::string StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void WriteResponse(int fd, int code, const std::string& content_type,
                   const std::string& body) {
  std::string response = "HTTP/1.0 " + std::to_string(code) + " " +
                         StatusText(code) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  SendAll(fd, response.data(), response.size());
}

}  // namespace

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Route(const std::string& path,
                         const std::string& content_type, Handler handler) {
  routes_[path] = RouteEntry{content_type, std::move(handler)};
}

Status HttpExporter::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("HttpExporter already started");
  }
  stop_.store(false);
  listen_fd_ = ListenLoopback(port, &port_);
  if (listen_fd_ < 0) {
    return Status::Internal("cannot bind loopback HTTP port " +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::Serve() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string head = ReadRequestHead(client, /*timeout_ms=*/1000);
    // Request line: METHOD SP PATH SP VERSION. Query strings are ignored.
    const std::size_t line_end = head.find_first_of("\r\n");
    const std::string line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? line : line.substr(0, sp1);
    std::string path = sp2 == std::string::npos
                           ? (sp1 == std::string::npos
                                  ? ""
                                  : line.substr(sp1 + 1))
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path = path.substr(0, query);

    requests_.fetch_add(1);
    if (method != "GET") {
      WriteResponse(client, 405, "text/plain", "only GET is served\n");
    } else {
      const auto it = routes_.find(path);
      if (it == routes_.end()) {
        std::string known = "not found; routes:";
        for (const auto& [route, entry] : routes_) {
          (void)entry;
          known += " " + route;
        }
        WriteResponse(client, 404, "text/plain", known + "\n");
      } else {
        WriteResponse(client, 200, it->second.content_type,
                      it->second.handler());
      }
    }
    ::close(client);
  }
}

Status HttpGet(int port, const std::string& path, std::string* body,
               int* status_code, long timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port) +
                            ": " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::Internal("request write failed");
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return Status::Internal("response timed out");
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("response read failed");
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t body_at = response.find("\r\n\r\n");
  std::size_t body_skip = 4;
  if (body_at == std::string::npos) {
    body_at = response.find("\n\n");
    body_skip = 2;
  }
  if (body_at == std::string::npos) {
    return Status::Internal("malformed HTTP response (no header terminator)");
  }
  if (status_code != nullptr) {
    *status_code = 0;
    const std::size_t sp = response.find(' ');
    if (sp != std::string::npos) {
      *status_code = std::atoi(response.c_str() + sp + 1);
    }
  }
  *body = response.substr(body_at + body_skip);
  return Status::OK();
}

}  // namespace sgm
