#ifndef SGM_OBS_HTTP_EXPORTER_H_
#define SGM_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "core/status.h"

namespace sgm {

/// Minimal embedded HTTP/1.0 ops endpoint for the monitor daemons: serves
/// GET requests on a loopback-only listener from one background thread,
/// one connection at a time. This is deliberately not a web server — it
/// exists so `curl :PORT/metrics`, `/healthz` and `/alerts` work against a
/// running `sgm_monitor` without touching its files.
///
/// The ops plane is read-only and rides a *separate* socket from the
/// protocol: nothing served here enters the paper/transport accounting.
///
/// Handlers run on the serve thread, so they must be thread-safe against
/// the protocol threads (the registry, trace log and anomaly detector all
/// lock internally; coordinator snapshot accessors take the server mutex).
class HttpExporter {
 public:
  using Handler = std::function<std::string()>;

  HttpExporter() = default;
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Registers a GET route. Call before Start(); `handler` produces the
  /// response body on every request.
  void Route(const std::string& path, const std::string& content_type,
             Handler handler);

  /// Binds the loopback listener (port 0 = ephemeral, see port()) and
  /// starts the serve thread.
  Status Start(int port);
  /// Stops the serve thread and closes the listener. Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }
  long requests_served() const { return requests_.load(); }

 private:
  void Serve();

  struct RouteEntry {
    std::string content_type;
    Handler handler;
  };

  std::map<std::string, RouteEntry> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<long> requests_{0};
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Blocking loopback HTTP/1.0 GET, for `obs_report --watch`, tests and CI
/// scrapes. Fills `body` with the response payload; `status_code` (if
/// non-null) with the parsed status line code. Errors only for transport
/// problems — an HTTP 404 is a successful fetch with status_code 404.
Status HttpGet(int port, const std::string& path, std::string* body,
               int* status_code = nullptr, long timeout_ms = 2000);

}  // namespace sgm

#endif  // SGM_OBS_HTTP_EXPORTER_H_
