#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace sgm {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Hand-rolled recursive-descent parser over the raw text; depth-capped so
/// a corrupted file cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeLiteral("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    Consume('"');
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Error("bad \\u escape");
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            // Non-ASCII escapes don't occur in the machine-written traces;
            // preserve them losslessly enough for round-trip comparison.
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number \"" + token + "\"");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value()
                                                : fallback;
}

}  // namespace sgm
