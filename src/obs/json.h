#ifndef SGM_OBS_JSON_H_
#define SGM_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sgm {

/// Minimal recursive-descent JSON reader for the observability tooling
/// (trace validation, metric snapshots, benchmark drift checks). Supports
/// the full JSON value grammar; objects preserve insertion order and allow
/// linear key lookup — inputs here are small machine-written files, not
/// adversarial payloads (sizes are bounded by the callers).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Convenience: Find(key)->number_value() with a default for absent or
  /// non-numeric members.
  double NumberOr(const std::string& key, double fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace sgm

#endif  // SGM_OBS_JSON_H_
