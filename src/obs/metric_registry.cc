#include "obs/metric_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/check.h"
#include "obs/export.h"

namespace sgm {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SGM_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket edge");
  SGM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket edges must be ascending");
  buckets_ = std::make_unique<std::atomic<long>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size(): overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<long> Histogram::bucket_counts() const {
  std::vector<long> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

long Histogram::overflow_count() const {
  return buckets_[bounds_.size()].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<long> counts = bucket_counts();
  long total = 0;
  for (const long c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  long cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    if (counts[i] == 0) return upper;
    const double into_bucket =
        (rank - static_cast<double>(cumulative - counts[i])) /
        static_cast<double>(counts[i]);
    return lower + (upper - lower) * into_bucket;
  }
  return bounds_.back();
}

const std::vector<double>& LatencyBucketsNs() {
  static const std::vector<double>* buckets = [] {
    auto* edges = new std::vector<double>;
    for (double edge = 256.0; edge <= 67'108'864.0 * 1.5; edge *= 2.0) {
      edges->push_back(edge);
    }
    return edges;
  }();
  return *buckets;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

namespace {

/// %g loses integer-exactness above 6 digits; metric values are either
/// exact longs (counters) or doubles where 17 digits round-trip.
void AppendDouble(std::ostream& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    out << static_cast<long long>(value);
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << buffer;
  }
}

}  // namespace

void MetricRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": ";
    AppendDouble(out, gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << name
        << "\": {\"count\": " << histogram->count() << ", \"sum\": ";
    AppendDouble(out, histogram->sum());
    out << ", \"p50\": ";
    AppendDouble(out, histogram->Quantile(0.50));
    out << ", \"p95\": ";
    AppendDouble(out, histogram->Quantile(0.95));
    out << ", \"p99\": ";
    AppendDouble(out, histogram->Quantile(0.99));
    out << ", \"overflow\": " << histogram->overflow_count();
    out << ", \"buckets\": [";
    const std::vector<long> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < bounds.size()) {
        AppendDouble(out, bounds[i]);
      } else {
        out << "\"+inf\"";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricRegistry::WritePrometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    // The exposed counter family carries the conventional _total suffix;
    // HELP/TYPE reference the exposed name.
    const std::string prom = PrometheusMetricName(name) + "_total";
    out << "# HELP " << prom << " "
        << PrometheusEscapeHelp(PrometheusHelpText(name)) << "\n";
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusMetricName(name);
    out << "# HELP " << prom << " "
        << PrometheusEscapeHelp(PrometheusHelpText(name)) << "\n";
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " ";
    AppendDouble(out, gauge->value());
    out << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusMetricName(name);
    out << "# HELP " << prom << " "
        << PrometheusEscapeHelp(PrometheusHelpText(name)) << "\n";
    out << "# TYPE " << prom << " histogram\n";
    const std::vector<long> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    long cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      std::ostringstream le;
      if (i < bounds.size()) {
        AppendDouble(le, bounds[i]);
      } else {
        le << "+Inf";
      }
      out << prom << "_bucket{le=\""
          << PrometheusEscapeLabelValue(le.str()) << "\"} " << cumulative
          << "\n";
    }
    out << prom << "_sum ";
    AppendDouble(out, histogram->sum());
    out << "\n" << prom << "_count " << histogram->count() << "\n";
    // Above-last-edge observations, surfaced as an explicit (untyped)
    // companion series: quantile estimates clamp there, so alerting on a
    // nonzero value catches a histogram whose layout no longer fits.
    out << prom << "_overflow " << histogram->overflow_count() << "\n";
  }
}

std::map<std::string, long> MetricRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, long> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace sgm
