#ifndef SGM_OBS_METRIC_REGISTRY_H_
#define SGM_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sgm {

/// Monotone event count. Increments are lock-free (relaxed atomics) so hot
/// paths and concurrent components can share one instance; Set() exists for
/// mirroring an externally-owned tally into the registry at snapshot time
/// (the runtime nodes keep plain longs on their single-threaded hot paths
/// and publish them here — see RuntimeDriver::PublishMetrics).
class Counter {
 public:
  void Increment(long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(long value) { value_.store(value, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-written instantaneous value (queue depth, live-site count, bytes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges,
/// with an implicit overflow bucket above the last edge. Observations are
/// lock-free; bucket layout is frozen at construction so snapshots never
/// race a resize.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// One count per bound plus the overflow bucket (size = bounds+1).
  std::vector<long> bucket_counts() const;
  /// Observations above the last edge. Exposed explicitly (JSON "overflow",
  /// Prometheus `<name>_overflow`) because Quantile() clamps these to the
  /// last edge — a nonzero overflow means the reported p99 is a floor, not
  /// an estimate, and the bucket layout needs wider edges.
  long overflow_count() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// holding bucket, the standard Prometheus histogram_quantile estimate.
  /// Observations in the overflow bucket clamp to the last edge; an empty
  /// histogram reports 0.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<long>[]> buckets_;
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency edges for profiling scopes, in nanoseconds: exponential
/// 2^k ns from 256 ns to ~67 ms (19 buckets), covering sub-microsecond ball
/// tests up to multi-millisecond sync rounds.
const std::vector<double>& LatencyBucketsNs();

/// Process- or component-scoped metric registry.
///
/// Names are hierarchical by convention — dotted, lower_snake leaf:
/// `transport.retransmissions`, `coordinator.full_syncs`,
/// `site.ball_test_ns`. Lookup/creation takes a mutex; the returned pointer
/// is stable for the registry's lifetime, so hot paths cache it once and
/// increment lock-free afterwards.
///
/// One registry per deployment (RuntimeDriver owns one per telemetry
/// context) keeps concurrent drivers — the parity stress leg runs two —
/// from conflating counts; MetricRegistry::Default() serves code without a
/// context, e.g. the serialization profiling scopes.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Re-requesting an existing histogram ignores `bounds` (layout is fixed
  /// at first creation).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = LatencyBucketsNs());

  /// Serializes every metric as one JSON object, keys sorted (deterministic
  /// modulo the recorded values):
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count": n, "sum": s,
  ///                          "p50": v, "p95": v, "p99": v,
  ///                          "buckets": [{"le": edge, "count": c}...]}}}
  void WriteJson(std::ostream& out) const;

  /// Serializes every metric in the Prometheus text exposition format
  /// (version 0.0.4): names are prefixed `sgm_` with dots mapped to
  /// underscores; counters end in `_total`, histograms expand to cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  void WritePrometheus(std::ostream& out) const;

  /// Point-in-time snapshots for time-series exporters (name → value,
  /// sorted). Counter/gauge reads are relaxed-atomic per entry; the maps
  /// themselves are consistent under the registry mutex.
  std::map<std::string, long> SnapshotCounters() const;
  std::map<std::string, double> SnapshotGauges() const;

  /// The process-wide default instance.
  static MetricRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sgm

#endif  // SGM_OBS_METRIC_REGISTRY_H_
