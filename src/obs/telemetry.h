#ifndef SGM_OBS_TELEMETRY_H_
#define SGM_OBS_TELEMETRY_H_

#include <chrono>
#include <memory>
#include <ostream>

#include "obs/anomaly.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace sgm {

/// One deployment's observability context: a metric registry plus a
/// structured trace log, handed to the runtime nodes through
/// RuntimeConfig::telemetry (and to the sim protocols via set_telemetry).
///
/// Nullable by design — every instrumentation point guards on the pointer,
/// so the faults-off hot path without telemetry is exactly the pre-telemetry
/// code, and paper-comparable accounting is untouched either way (observing
/// never mutates protocol state).
struct Telemetry {
  MetricRegistry registry;
  TraceLog trace;
  /// Optional windowed time-series exporter (null = off). When enabled,
  /// RuntimeDriver::PublishMetrics samples it once per cycle, turning the
  /// registry into a per-cycle JSONL series (see obs/export.h).
  std::unique_ptr<TimeSeriesExporter> series;
  /// Optional online anomaly detector (null = off). Subscribed to the
  /// exporter's per-cycle sample stream; raises alert.* counters,
  /// `alert_raised` trace events and (optionally) a live alerts JSONL
  /// stream. See obs/anomaly.h.
  std::unique_ptr<AnomalyDetector> anomaly;

  /// Advances the logical clock stamped on trace events; drivers call this
  /// once per update cycle.
  void SetCycle(long cycle) { trace.SetCycle(cycle); }

  void EnableTimeSeries(TimeSeriesExporterConfig config = {}) {
    series = std::make_unique<TimeSeriesExporter>(config);
  }

  /// Enables online anomaly detection over the per-cycle metric stream.
  /// Implies EnableTimeSeries (the detector consumes the exporter's delta
  /// stream); an already-enabled exporter is kept.
  void EnableAnomalyDetection(AnomalyDetectorConfig config = {}) {
    if (!series) EnableTimeSeries();
    anomaly = std::make_unique<AnomalyDetector>(std::move(config));
    anomaly->SetSinks(&registry, &trace);
    AnomalyDetector* detector = anomaly.get();
    series->set_observer(
        [detector](long cycle, const std::map<std::string, long>& delta) {
          detector->ObserveCycle(cycle, delta);
        });
  }

  void WriteMetricsJson(std::ostream& out) const { registry.WriteJson(out); }
  /// Prometheus text exposition (version 0.0.4) of the registry.
  void WritePrometheus(std::ostream& out) const {
    registry.WritePrometheus(out);
  }
};

/// RAII profiling scope: measures wall time from construction to
/// destruction and records the nanoseconds into a latency histogram.
/// Null histogram = fully disabled (no clock reads) — construct with the
/// cached Histogram* that is nullptr when telemetry is off.
///
/// Durations feed *metrics only*, never the trace: wall time is inherently
/// non-deterministic, and the trace must stay byte-identical under
/// replay-by-seed.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgm

#endif  // SGM_OBS_TELEMETRY_H_
