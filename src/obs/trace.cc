#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "core/check.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace sgm {

namespace {

void AppendArgs(const std::vector<TraceArg>& args, std::ostream& out) {
  out << "{";
  bool first = true;
  for (const TraceArg& arg : args) {
    out << (first ? "" : ",") << "\"" << JsonEscape(arg.key) << "\":";
    switch (arg.kind) {
      case TraceArg::Kind::kInt:
        out << arg.int_value;
        break;
      case TraceArg::Kind::kDouble:
        AppendJsonNumber(out, arg.double_value);
        break;
      case TraceArg::Kind::kString:
        out << "\"" << JsonEscape(arg.string_value) << "\"";
        break;
    }
    first = false;
  }
  out << "}";
}

/// How head-based sampling treats an event (docs/OBSERVABILITY.md):
///  * kAlways  — rare lifecycle/diagnostic events, never sampled out;
///  * kCascade — rides a coordinator-minted span: skipped when the span
///    carries kSpanUnsampledBit (span-less instances always record);
///  * kNoise   — span-less high-volume chatter, kept by a deterministic
///    per-(actor, cycle) coin at the configured rate.
enum class SampleClass { kAlways, kCascade, kNoise };

/// The event catalog: every name a conforming trace may contain, its
/// category, the argument keys that must be present, and its sampling
/// class. Extra args are allowed (events may carry more context than the
/// schema demands); unknown names are schema violations. Keep in sync with
/// docs/OBSERVABILITY.md.
struct EventSpec {
  const char* cat;
  std::vector<const char*> required_args;
  SampleClass sample = SampleClass::kAlways;
};

const std::map<std::string, EventSpec>& EventCatalog() {
  static const auto* catalog = new std::map<std::string, EventSpec>{
      // Protocol lifecycle (coordinator / site / sim protocols).
      {"sync_cycle_begin",
       {"protocol", {"span", "trigger"}, SampleClass::kCascade}},
      {"local_alarm", {"protocol", {}}},
      {"probe_begin", {"protocol", {"epoch"}, SampleClass::kCascade}},
      {"partial_resolution", {"protocol", {}, SampleClass::kCascade}},
      {"one_d_resolution", {"protocol", {}, SampleClass::kCascade}},
      {"full_sync_begin", {"protocol", {"epoch"}, SampleClass::kCascade}},
      {"full_sync_complete",
       {"protocol", {"epoch", "degraded"}, SampleClass::kCascade}},
      {"sync_rerequest",
       {"protocol", {"epoch", "site"}, SampleClass::kCascade}},
      {"epoch_bump", {"protocol", {"epoch"}}},
      {"anchor_applied",
       {"protocol", {"epoch", "source"}, SampleClass::kCascade}},
      {"epoch_gap", {"protocol", {"from_epoch", "to_epoch"}}},
      {"stale_epoch_drop", {"protocol", {"msg_epoch"}}},
      {"late_report", {"protocol", {"site"}}},
      // Reliability layer (acks, rejoin handshake, heartbeats).
      {"heartbeat", {"reliability", {}, SampleClass::kNoise}},
      {"rejoin_request", {"reliability", {}}},
      {"rejoin_grant", {"reliability", {"epoch"}}},
      {"retransmit",
       {"reliability", {"sender", "seq", "attempt"}, SampleClass::kCascade}},
      {"give_up", {"reliability", {"sender", "seq"}}},
      {"duplicate_suppressed",
       {"reliability", {"sender", "seq"}, SampleClass::kNoise}},
      {"queue_evict", {"reliability", {"dest", "seq"}}},
      // Failure detector transitions.
      {"heartbeat_miss", {"failure", {"misses"}, SampleClass::kNoise}},
      {"suspect", {"failure", {"misses"}}},
      {"dead", {"failure", {"deaths"}}},
      {"unreachable", {"failure", {}}},
      {"quarantined", {"failure", {"until_cycle"}}},
      {"rejoin_begin", {"failure", {}}},
      {"rejoin_complete", {"failure", {}}},
      // Lag quarantine (FailureDetector): missed barrier deadlines, the
      // lagging verdict, and the staleness-window close on catch-up.
      {"deadline_miss", {"failure", {"misses"}, SampleClass::kNoise}},
      {"lagging", {"failure", {"since_cycle"}}},
      {"lag_recovered", {"failure", {"staleness_cycles"}}},
      // Per-span transport cost attribution (ReliableTransport).
      {"msg_send", {"transport", {"type", "span", "bytes"},
                    SampleClass::kCascade}},
      // Online accuracy auditing (AccuracyAuditor).
      {"bound_violation", {"audit", {"kind", "span"}}},
      // Online anomaly detection (AnomalyDetector): a tracked signal's
      // per-cycle value left its Welford z-score band.
      {"alert_raised", {"alert", {"metric", "kind", "value", "mean", "z"}}},
      // Injected faults (SimTransport).
      {"site_crash", {"fault", {}}},
      {"site_recover", {"fault", {}}},
      {"drop", {"fault", {"type"}, SampleClass::kNoise}},
      {"duplicate", {"fault", {"type"}, SampleClass::kNoise}},
      {"delay", {"fault", {"type", "rounds"}, SampleClass::kNoise}},
      {"corrupt", {"fault", {"type"}, SampleClass::kNoise}},
      {"coordinator_crash", {"fault", {"epoch"}}},
      // Crash recovery (checkpoint writes and the recovery state machine).
      {"checkpoint_write", {"recovery", {"epoch", "bytes"}}},
      {"recovery_begin", {"recovery", {"span", "epoch", "wal_replayed"}}},
      {"recovery_complete", {"recovery", {"span", "epoch", "grants"}}},
      {"snapshot_fallback", {"recovery", {"discarded"}}},
      {"wal_torn_tail", {"recovery", {"bytes"}}},
      // Deadline-driven barriers and lag quarantine (CoordinatorServer /
      // CoordinatorNode): straggler handling, never sampled away.
      {"barrier_slow", {"degraded", {"deadline_ms"}}},
      {"barrier_deadline", {"degraded", {"missed", "quarantined"}}},
      {"degraded_cycle", {"degraded", {"missing"}}},
      {"site_quarantined", {"degraded", {}}},
      // Socket-session lifecycle (CoordinatorServer / SiteClient).
      {"site_hello", {"session", {"fd"}}},
      {"site_rehello", {"session", {"fd"}}},
      {"site_disconnect", {"session", {}}},
      {"connection_lost", {"session", {"reason"}}},
      {"reconnect", {"session", {"attempt"}}},
      // Injected network chaos (ChaosSocketTransport).
      {"chaos_reset", {"chaos", {}}},
      {"chaos_half_open", {"chaos", {}}},
      {"chaos_stall", {"chaos", {"ms"}}},
      // Run/benchmark markers emitted by the tools.
      {"run_begin", {"run", {}}},
      {"cell_begin", {"run", {}}},
  };
  return *catalog;
}

/// SplitMix64 finalizer — the same mixing the seeded RNGs use, applied to
/// sampling decisions so they are a pure function of (seed, key).
std::uint64_t MixBits(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic coin: true with probability ~`rate` as a function of the
/// mixed key alone.
bool SampledCoin(std::uint64_t key, double rate) {
  // Top 53 bits → uniform double in [0, 1).
  const double u =
      static_cast<double>(MixBits(key) >> 11) * (1.0 / 9007199254740992.0);
  return u < rate;
}

/// The audit/alert/recovery planes are diagnostic surfaces an operator must
/// be able to trust at any rate; they bypass sampling entirely (checked
/// before the span scan — bound_violation carries a possibly-tagged span).
bool ExemptCategory(const std::string& cat) {
  return cat == "audit" || cat == "alert" || cat == "recovery";
}

/// Removes kSpanUnsampledBit from span-carrying args so recorded traces
/// always show the raw minted ids (and rate-1.0 output stays identical —
/// the bit is never set there).
void StripSpanTags(std::vector<TraceArg>* args) {
  for (TraceArg& arg : *args) {
    if (arg.kind != TraceArg::Kind::kInt) continue;
    if (arg.key == "span" || arg.key == "parent") {
      arg.int_value = SpanId(arg.int_value);
    }
  }
}

}  // namespace

bool TraceSampleDecision(std::uint64_t seed, std::int64_t root_span,
                         double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  return SampledCoin(seed ^ MixBits(static_cast<std::uint64_t>(
                                SpanId(root_span))),
                     rate);
}

void AppendJsonNumber(std::ostream& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    out << static_cast<long long>(value);
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << buffer;
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceLog::SetCycle(long cycle) {
  std::lock_guard<std::mutex> lock(mu_);
  cycle_ = cycle;
}

long TraceLog::cycle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_;
}

void TraceLog::SetProcess(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  proc_ = std::move(label);
}

std::string TraceLog::process() const {
  std::lock_guard<std::mutex> lock(mu_);
  return proc_;
}

void TraceLog::SetEpoch(long epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
}

long TraceLog::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void TraceLog::ConfigureSampling(double rate, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_rate_ = rate;
  sample_seed_ = seed;
}

double TraceLog::sample_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_rate_;
}

void TraceLog::AttachFlightRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  flight_ = recorder;
}

FlightRecorder* TraceLog::flight_recorder() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flight_;
}

TraceLog::SelfCost TraceLog::self_cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return self_cost_;
}

bool TraceLog::ShouldRecordLocked(const std::string& cat,
                                  const std::string& name, int actor,
                                  std::vector<TraceArg>* args) {
  if (ExemptCategory(cat)) {
    StripSpanTags(args);
    return true;
  }
  const auto& catalog = EventCatalog();
  const auto it = catalog.find(name);
  const SampleClass cls =
      it == catalog.end() ? SampleClass::kAlways : it->second.sample;
  switch (cls) {
    case SampleClass::kAlways:
      StripSpanTags(args);
      return true;
    case SampleClass::kCascade:
      for (const TraceArg& arg : *args) {
        if (arg.kind == TraceArg::Kind::kInt && arg.key == "span" &&
            SpanUnsampled(arg.int_value)) {
          return false;
        }
      }
      // Span-less (or span-0) instances have no cascade to follow — the
      // sim protocols emit these — so they always record.
      StripSpanTags(args);
      return true;
    case SampleClass::kNoise:
      return SampledCoin(sample_seed_ ^
                             MixBits(static_cast<std::uint64_t>(actor) *
                                         0x51ed270b0f4dULL +
                                     static_cast<std::uint64_t>(cycle_)),
                         sample_rate_);
  }
  return true;
}

void TraceLog::Emit(std::string cat, std::string name, int actor,
                    std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  ++self_cost_.events_emitted;
  if (sample_rate_ < 1.0 && !ShouldRecordLocked(cat, name, actor, &args)) {
    // Sampled-out fast path: counter bumps and the sampling decision only —
    // deliberately untimed, since a pair of clock reads would cost several
    // times the path itself and the whole point of sampling is that skipped
    // events are nearly free.
    ++self_cost_.events_sampled_out;
    return;
  }
  // Self-cost timing is itself sampled (every 13th recorded event, scaled
  // back up): a clock-read pair costs as much as storing the event, so
  // timing each one would double the overhead the meter exists to expose.
  // The stride is prime so it can't alias the event vector's power-of-two
  // reallocation points (which would attribute every realloc to a timed
  // event and overstate the extrapolation).
  const bool timed = self_cost_.events_recorded % 13 == 0;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  ++self_cost_.events_recorded;
  TraceEvent& event = events_.emplace_back();
  event.ts = next_ts_++;
  event.cycle = cycle_;
  event.cat = std::move(cat);
  event.name = std::move(name);
  event.actor = actor;
  if (!proc_.empty()) event.proc = proc_;
  event.epoch = epoch_;
  event.args = std::move(args);
  if (flight_ != nullptr) {
    // Render at emit: the recorder must hold finished lines a signal
    // handler can dump without touching the heap or this lock.
    std::ostringstream line;
    AppendEventJson(event, line);
    flight_->Record(line.str());
  }
  if (timed) {
    self_cost_.telemetry_ns +=
        13 * std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  }
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceLog::AppendEventJson(const TraceEvent& event, std::ostream& out) {
  out << "{\"ts\":" << event.ts << ",\"cycle\":" << event.cycle << ",\"cat\":\""
      << JsonEscape(event.cat) << "\",\"name\":\"" << JsonEscape(event.name)
      << "\",\"actor\":" << event.actor;
  // Optional cross-process keys: omitted when unset so single-process
  // traces keep the historical byte-identical format.
  if (!event.proc.empty()) {
    out << ",\"proc\":\"" << JsonEscape(event.proc) << "\"";
  }
  if (event.epoch >= 0) {
    out << ",\"tepoch\":" << event.epoch;
  }
  out << ",\"args\":";
  AppendArgs(event.args, out);
  out << "}";
}

void TraceLog::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  long long bytes = 0;
  for (const TraceEvent& event : events_) {
    std::ostringstream line;
    AppendEventJson(event, line);
    line << "\n";
    const std::string rendered = line.str();
    bytes += static_cast<long long>(rendered.size());
    out << rendered;
  }
  self_cost_.bytes_written += bytes;
}

void TraceLog::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[\n";
  // Pseudo-thread naming: tid 0 is the coordinator, tid i+1 is site i.
  std::set<int> actors;
  for (const TraceEvent& event : events_) actors.insert(event.actor);
  bool first = true;
  for (const int actor : actors) {
    out << (first ? "" : ",\n")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << actor + 1 << ",\"args\":{\"name\":\"";
    if (actor < 0) {
      out << "coordinator";
    } else {
      out << "site " << actor;
    }
    out << "\"}}";
    first = false;
  }
  for (const TraceEvent& event : events_) {
    out << (first ? "" : ",\n")
        << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
        << JsonEscape(event.cat) << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0"
        << ",\"tid\":" << event.actor + 1 << ",\"ts\":" << event.ts
        << ",\"args\":";
    std::vector<TraceArg> args = event.args;
    args.emplace_back("cycle", event.cycle);
    AppendArgs(args, out);
    out << "}";
    first = false;
  }
  out << "\n]}\n";
}

bool ValidateTraceJsonLine(const std::string& line, std::string* error) {
  SGM_CHECK(error != nullptr);
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    *error = "not valid JSON: " + parsed.status().message();
    return false;
  }
  const JsonValue& value = parsed.ValueOrDie();
  if (!value.is_object()) {
    *error = "trace line is not a JSON object";
    return false;
  }
  for (const char* key : {"ts", "cycle", "actor"}) {
    const JsonValue* field = value.Find(key);
    if (field == nullptr || !field->is_number()) {
      *error = std::string("missing or non-numeric \"") + key + "\"";
      return false;
    }
  }
  const JsonValue* name = value.Find("name");
  const JsonValue* cat = value.Find("cat");
  if (name == nullptr || !name->is_string() || cat == nullptr ||
      !cat->is_string()) {
    *error = "missing or non-string \"name\"/\"cat\"";
    return false;
  }
  const JsonValue* args = value.Find("args");
  if (args == nullptr || !args->is_object()) {
    *error = "missing or non-object \"args\"";
    return false;
  }
  // Optional cross-process stamps: when present they must be well-typed.
  if (const JsonValue* proc = value.Find("proc")) {
    if (!proc->is_string() || proc->string_value().empty()) {
      *error = "\"proc\" must be a non-empty string when present";
      return false;
    }
  }
  if (const JsonValue* tepoch = value.Find("tepoch")) {
    if (!tepoch->is_number()) {
      *error = "\"tepoch\" must be numeric when present";
      return false;
    }
  }
  const auto& catalog = EventCatalog();
  const auto it = catalog.find(name->string_value());
  if (it == catalog.end()) {
    *error = "unknown event name \"" + name->string_value() + "\"";
    return false;
  }
  if (cat->string_value() != it->second.cat) {
    *error = "event \"" + name->string_value() + "\" expects category \"" +
             it->second.cat + "\", got \"" + cat->string_value() + "\"";
    return false;
  }
  for (const char* required : it->second.required_args) {
    if (args->Find(required) == nullptr) {
      *error = "event \"" + name->string_value() +
               "\" missing required arg \"" + required + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace sgm
