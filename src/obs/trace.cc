#include "obs/trace.h"

#include <cstdio>
#include <map>
#include <set>

#include "core/check.h"
#include "obs/json.h"

namespace sgm {

namespace {

void AppendArgs(const std::vector<TraceArg>& args, std::ostream& out) {
  out << "{";
  bool first = true;
  for (const TraceArg& arg : args) {
    out << (first ? "" : ",") << "\"" << JsonEscape(arg.key) << "\":";
    switch (arg.kind) {
      case TraceArg::Kind::kInt:
        out << arg.int_value;
        break;
      case TraceArg::Kind::kDouble:
        AppendJsonNumber(out, arg.double_value);
        break;
      case TraceArg::Kind::kString:
        out << "\"" << JsonEscape(arg.string_value) << "\"";
        break;
    }
    first = false;
  }
  out << "}";
}

/// The event catalog: every name a conforming trace may contain, its
/// category, and the argument keys that must be present. Extra args are
/// allowed (events may carry more context than the schema demands); unknown
/// names are schema violations. Keep in sync with docs/OBSERVABILITY.md.
struct EventSpec {
  const char* cat;
  std::vector<const char*> required_args;
};

const std::map<std::string, EventSpec>& EventCatalog() {
  static const auto* catalog = new std::map<std::string, EventSpec>{
      // Protocol lifecycle (coordinator / site / sim protocols).
      {"sync_cycle_begin", {"protocol", {"span", "trigger"}}},
      {"local_alarm", {"protocol", {}}},
      {"probe_begin", {"protocol", {"epoch"}}},
      {"partial_resolution", {"protocol", {}}},
      {"one_d_resolution", {"protocol", {}}},
      {"full_sync_begin", {"protocol", {"epoch"}}},
      {"full_sync_complete", {"protocol", {"epoch", "degraded"}}},
      {"sync_rerequest", {"protocol", {"epoch", "site"}}},
      {"epoch_bump", {"protocol", {"epoch"}}},
      {"anchor_applied", {"protocol", {"epoch", "source"}}},
      {"epoch_gap", {"protocol", {"from_epoch", "to_epoch"}}},
      {"stale_epoch_drop", {"protocol", {"msg_epoch"}}},
      {"late_report", {"protocol", {"site"}}},
      // Reliability layer (acks, rejoin handshake, heartbeats).
      {"heartbeat", {"reliability", {}}},
      {"rejoin_request", {"reliability", {}}},
      {"rejoin_grant", {"reliability", {"epoch"}}},
      {"retransmit", {"reliability", {"sender", "seq", "attempt"}}},
      {"give_up", {"reliability", {"sender", "seq"}}},
      {"duplicate_suppressed", {"reliability", {"sender", "seq"}}},
      {"queue_evict", {"reliability", {"dest", "seq"}}},
      // Failure detector transitions.
      {"heartbeat_miss", {"failure", {"misses"}}},
      {"suspect", {"failure", {"misses"}}},
      {"dead", {"failure", {"deaths"}}},
      {"unreachable", {"failure", {}}},
      {"quarantined", {"failure", {"until_cycle"}}},
      {"rejoin_begin", {"failure", {}}},
      {"rejoin_complete", {"failure", {}}},
      // Per-span transport cost attribution (ReliableTransport).
      {"msg_send", {"transport", {"type", "span", "bytes"}}},
      // Online accuracy auditing (AccuracyAuditor).
      {"bound_violation", {"audit", {"kind", "span"}}},
      // Online anomaly detection (AnomalyDetector): a tracked signal's
      // per-cycle value left its Welford z-score band.
      {"alert_raised", {"alert", {"metric", "kind", "value", "mean", "z"}}},
      // Injected faults (SimTransport).
      {"site_crash", {"fault", {}}},
      {"site_recover", {"fault", {}}},
      {"drop", {"fault", {"type"}}},
      {"duplicate", {"fault", {"type"}}},
      {"delay", {"fault", {"type", "rounds"}}},
      {"corrupt", {"fault", {"type"}}},
      {"coordinator_crash", {"fault", {"epoch"}}},
      // Crash recovery (checkpoint writes and the recovery state machine).
      {"checkpoint_write", {"recovery", {"epoch", "bytes"}}},
      {"recovery_begin", {"recovery", {"span", "epoch", "wal_replayed"}}},
      {"recovery_complete", {"recovery", {"span", "epoch", "grants"}}},
      {"snapshot_fallback", {"recovery", {"discarded"}}},
      {"wal_torn_tail", {"recovery", {"bytes"}}},
      // Socket-session lifecycle (CoordinatorServer / SiteClient).
      {"site_hello", {"session", {"fd"}}},
      {"site_rehello", {"session", {"fd"}}},
      {"site_disconnect", {"session", {}}},
      {"connection_lost", {"session", {"reason"}}},
      {"reconnect", {"session", {"attempt"}}},
      // Injected network chaos (ChaosSocketTransport).
      {"chaos_reset", {"chaos", {}}},
      {"chaos_half_open", {"chaos", {}}},
      {"chaos_stall", {"chaos", {"ms"}}},
      // Run/benchmark markers emitted by the tools.
      {"run_begin", {"run", {}}},
      {"cell_begin", {"run", {}}},
  };
  return *catalog;
}

}  // namespace

void AppendJsonNumber(std::ostream& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    out << static_cast<long long>(value);
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << buffer;
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceLog::SetCycle(long cycle) {
  std::lock_guard<std::mutex> lock(mu_);
  cycle_ = cycle;
}

long TraceLog::cycle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_;
}

void TraceLog::SetProcess(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  proc_ = std::move(label);
}

std::string TraceLog::process() const {
  std::lock_guard<std::mutex> lock(mu_);
  return proc_;
}

void TraceLog::SetEpoch(long epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
}

long TraceLog::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void TraceLog::Emit(std::string cat, std::string name, int actor,
                    std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.ts = next_ts_++;
  event.cycle = cycle_;
  event.cat = std::move(cat);
  event.name = std::move(name);
  event.actor = actor;
  event.proc = proc_;
  event.epoch = epoch_;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceLog::AppendEventJson(const TraceEvent& event, std::ostream& out) {
  out << "{\"ts\":" << event.ts << ",\"cycle\":" << event.cycle << ",\"cat\":\""
      << JsonEscape(event.cat) << "\",\"name\":\"" << JsonEscape(event.name)
      << "\",\"actor\":" << event.actor;
  // Optional cross-process keys: omitted when unset so single-process
  // traces keep the historical byte-identical format.
  if (!event.proc.empty()) {
    out << ",\"proc\":\"" << JsonEscape(event.proc) << "\"";
  }
  if (event.epoch >= 0) {
    out << ",\"tepoch\":" << event.epoch;
  }
  out << ",\"args\":";
  AppendArgs(event.args, out);
  out << "}";
}

void TraceLog::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& event : events_) {
    AppendEventJson(event, out);
    out << "\n";
  }
}

void TraceLog::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[\n";
  // Pseudo-thread naming: tid 0 is the coordinator, tid i+1 is site i.
  std::set<int> actors;
  for (const TraceEvent& event : events_) actors.insert(event.actor);
  bool first = true;
  for (const int actor : actors) {
    out << (first ? "" : ",\n")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << actor + 1 << ",\"args\":{\"name\":\"";
    if (actor < 0) {
      out << "coordinator";
    } else {
      out << "site " << actor;
    }
    out << "\"}}";
    first = false;
  }
  for (const TraceEvent& event : events_) {
    out << (first ? "" : ",\n")
        << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
        << JsonEscape(event.cat) << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0"
        << ",\"tid\":" << event.actor + 1 << ",\"ts\":" << event.ts
        << ",\"args\":";
    std::vector<TraceArg> args = event.args;
    args.emplace_back("cycle", event.cycle);
    AppendArgs(args, out);
    out << "}";
    first = false;
  }
  out << "\n]}\n";
}

bool ValidateTraceJsonLine(const std::string& line, std::string* error) {
  SGM_CHECK(error != nullptr);
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    *error = "not valid JSON: " + parsed.status().message();
    return false;
  }
  const JsonValue& value = parsed.ValueOrDie();
  if (!value.is_object()) {
    *error = "trace line is not a JSON object";
    return false;
  }
  for (const char* key : {"ts", "cycle", "actor"}) {
    const JsonValue* field = value.Find(key);
    if (field == nullptr || !field->is_number()) {
      *error = std::string("missing or non-numeric \"") + key + "\"";
      return false;
    }
  }
  const JsonValue* name = value.Find("name");
  const JsonValue* cat = value.Find("cat");
  if (name == nullptr || !name->is_string() || cat == nullptr ||
      !cat->is_string()) {
    *error = "missing or non-string \"name\"/\"cat\"";
    return false;
  }
  const JsonValue* args = value.Find("args");
  if (args == nullptr || !args->is_object()) {
    *error = "missing or non-object \"args\"";
    return false;
  }
  // Optional cross-process stamps: when present they must be well-typed.
  if (const JsonValue* proc = value.Find("proc")) {
    if (!proc->is_string() || proc->string_value().empty()) {
      *error = "\"proc\" must be a non-empty string when present";
      return false;
    }
  }
  if (const JsonValue* tepoch = value.Find("tepoch")) {
    if (!tepoch->is_number()) {
      *error = "\"tepoch\" must be numeric when present";
      return false;
    }
  }
  const auto& catalog = EventCatalog();
  const auto it = catalog.find(name->string_value());
  if (it == catalog.end()) {
    *error = "unknown event name \"" + name->string_value() + "\"";
    return false;
  }
  if (cat->string_value() != it->second.cat) {
    *error = "event \"" + name->string_value() + "\" expects category \"" +
             it->second.cat + "\", got \"" + cat->string_value() + "\"";
    return false;
  }
  for (const char* required : it->second.required_args) {
    if (args->Find(required) == nullptr) {
      *error = "event \"" + name->string_value() +
               "\" missing required arg \"" + required + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace sgm
