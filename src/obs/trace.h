#ifndef SGM_OBS_TRACE_H_
#define SGM_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sgm {

/// One structured argument of a trace event. Values are integers, doubles
/// or short strings; keys are lower_snake identifiers.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string k, int v)
      : TraceArg(std::move(k), static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), string_value(std::move(v)) {}
  TraceArg(std::string k, const char* v)
      : TraceArg(std::move(k), std::string(v)) {}

  std::string key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// One protocol-lifecycle event.
///
/// Timestamps are *logical*: `ts` is the event's position in the run (a
/// process-wide monotone index, incremented per emit) and `cycle` the update
/// cycle it occurred in. No wall clock enters a trace, so a replay from the
/// same seed reproduces the file byte-for-byte (the determinism contract
/// dst_stress and the CI trace job rely on).
struct TraceEvent {
  long ts = 0;       ///< monotone per-log event index (logical time)
  long cycle = 0;    ///< update cycle the event belongs to
  std::string cat;   ///< "protocol" | "reliability" | "failure" | "fault" | ...
  std::string name;  ///< event type, see docs/OBSERVABILITY.md catalog
  int actor = 0;     ///< site id, or kCoordinatorId (-1) for the coordinator
  /// Emitting process label (`"coordinator"`, `"site-3"`, ...). Empty in
  /// single-process runs; set via TraceLog::SetProcess in daemon/fork
  /// deployments so per-process files can be merged (serialized as the
  /// optional `"proc"` JSONL key).
  std::string proc;
  /// Coordinator-issued trace epoch active when the event was emitted, or
  /// -1 before the first epoch is known (serialized as the optional
  /// `"tepoch"` key). Sites stamp the epoch they last anchored to, so the
  /// merged timeline can group events by protocol incarnation.
  long epoch = -1;
  std::vector<TraceArg> args;
};

/// Append-only structured event log with JSONL and Chrome trace_event
/// output. Thread-safe (a mutex serializes emits); in the single-threaded
/// simulation drivers the emit order — and therefore the file — is fully
/// deterministic.
class TraceLog {
 public:
  TraceLog() = default;
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Sets the cycle stamped on subsequent events (drivers call this once
  /// per update cycle).
  void SetCycle(long cycle);
  long cycle() const;

  /// Sets the process label stamped on subsequent events. Call once at
  /// process start (before the run emits) so every line of this process's
  /// file carries the same `"proc"` key. Unset → key omitted, keeping
  /// single-process traces byte-identical to the pre-merge format.
  void SetProcess(std::string label);
  std::string process() const;

  /// Sets the coordinator-issued trace epoch stamped on subsequent events.
  /// The coordinator calls this when it mints an epoch (bump / recovery
  /// fence); sites call it when they anchor to one (rejoin/full-sync), so
  /// the stamp is always coordinator-issued. Negative → key omitted.
  void SetEpoch(long epoch);
  long epoch() const;

  void Emit(std::string cat, std::string name, int actor,
            std::vector<TraceArg> args = {});

  std::size_t size() const;
  /// Snapshot accessor for tests; copies under the lock.
  std::vector<TraceEvent> events() const;

  /// One `{"ts":..,"cycle":..,"cat":..,"name":..,"actor":..,"args":{..}}`
  /// object per line, in emit order.
  void WriteJsonl(std::ostream& out) const;

  /// Chrome trace_event JSON (load via chrome://tracing or Perfetto): each
  /// event becomes an instant event on the actor's pseudo-thread (tid 0 =
  /// coordinator, tid i+1 = site i), ts in logical units, plus
  /// thread_name metadata rows.
  void WriteChromeTrace(std::ostream& out) const;

  static void AppendEventJson(const TraceEvent& event, std::ostream& out);

 private:
  mutable std::mutex mu_;
  long cycle_ = 0;
  long next_ts_ = 0;
  std::string proc_;
  long epoch_ = -1;
  std::vector<TraceEvent> events_;
};

/// Validates one JSONL trace line against the event schema: structural keys
/// (ts/cycle/cat/name/actor/args), a known event name, the name's expected
/// category, and its required argument keys. Returns false and fills
/// `error` on the first problem. The catalog lives in trace.cc and is
/// documented in docs/OBSERVABILITY.md.
bool ValidateTraceJsonLine(const std::string& line, std::string* error);

/// JSON string escaping shared by the trace/metric writers.
std::string JsonEscape(const std::string& text);

/// Deterministic JSON number formatting shared by the trace/alert writers:
/// integral values print without a fraction, everything else as %.17g (the
/// shortest round-trippable form), so replaying a seed reproduces every
/// JSONL artifact byte for byte.
void AppendJsonNumber(std::ostream& out, double value);

}  // namespace sgm

#endif  // SGM_OBS_TRACE_H_
