#ifndef SGM_OBS_TRACE_H_
#define SGM_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sgm {

class FlightRecorder;

// ── Head-based trace sampling ────────────────────────────────────────────
//
// The coordinator decides, per root span (one sync cascade), whether the
// cascade is traced, and carries the decision inside the span id itself:
// an unsampled cascade's spans have kSpanUnsampledBit set. Sites echo span
// ids verbatim, so the decision propagates across processes with zero new
// wire fields and zero frame-size change. TraceLog strips the bit before
// anything is recorded, so written traces always show the raw minted ids.

/// Tag bit marking a span id as belonging to an unsampled cascade. Bit 62
/// keeps tagged ids positive (span ids are small minted counters, so the
/// payload bits never collide with the tag).
constexpr std::int64_t kSpanUnsampledBit = std::int64_t{1} << 62;

/// The raw minted span id, with any sampling tag removed.
constexpr std::int64_t SpanId(std::int64_t span) {
  return span & ~kSpanUnsampledBit;
}

/// True when the span carries the unsampled tag.
constexpr bool SpanUnsampled(std::int64_t span) {
  return (span & kSpanUnsampledBit) != 0;
}

/// The coordinator's deterministic per-cascade sampling decision: true ⇒
/// the cascade rooted at `root_span` is traced. Seeded (same seed + rate →
/// same decisions, the determinism contract), rate 1.0 ⇒ always true and
/// 0.0 ⇒ always false.
bool TraceSampleDecision(std::uint64_t seed, std::int64_t root_span,
                         double rate);

/// One structured argument of a trace event. Values are integers, doubles
/// or short strings; keys are lower_snake identifiers.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string k, int v)
      : TraceArg(std::move(k), static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), string_value(std::move(v)) {}
  TraceArg(std::string k, const char* v)
      : TraceArg(std::move(k), std::string(v)) {}

  std::string key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// One protocol-lifecycle event.
///
/// Timestamps are *logical*: `ts` is the event's position in the run (a
/// process-wide monotone index, incremented per emit) and `cycle` the update
/// cycle it occurred in. No wall clock enters a trace, so a replay from the
/// same seed reproduces the file byte-for-byte (the determinism contract
/// dst_stress and the CI trace job rely on).
struct TraceEvent {
  long ts = 0;       ///< monotone per-log event index (logical time)
  long cycle = 0;    ///< update cycle the event belongs to
  std::string cat;   ///< "protocol" | "reliability" | "failure" | "fault" | ...
  std::string name;  ///< event type, see docs/OBSERVABILITY.md catalog
  int actor = 0;     ///< site id, or kCoordinatorId (-1) for the coordinator
  /// Emitting process label (`"coordinator"`, `"site-3"`, ...). Empty in
  /// single-process runs; set via TraceLog::SetProcess in daemon/fork
  /// deployments so per-process files can be merged (serialized as the
  /// optional `"proc"` JSONL key).
  std::string proc;
  /// Coordinator-issued trace epoch active when the event was emitted, or
  /// -1 before the first epoch is known (serialized as the optional
  /// `"tepoch"` key). Sites stamp the epoch they last anchored to, so the
  /// merged timeline can group events by protocol incarnation.
  long epoch = -1;
  std::vector<TraceArg> args;
};

/// Append-only structured event log with JSONL and Chrome trace_event
/// output. Thread-safe (a mutex serializes emits); in the single-threaded
/// simulation drivers the emit order — and therefore the file — is fully
/// deterministic.
class TraceLog {
 public:
  TraceLog() = default;
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Sets the cycle stamped on subsequent events (drivers call this once
  /// per update cycle).
  void SetCycle(long cycle);
  long cycle() const;

  /// Sets the process label stamped on subsequent events. Call once at
  /// process start (before the run emits) so every line of this process's
  /// file carries the same `"proc"` key. Unset → key omitted, keeping
  /// single-process traces byte-identical to the pre-merge format.
  void SetProcess(std::string label);
  std::string process() const;

  /// Sets the coordinator-issued trace epoch stamped on subsequent events.
  /// The coordinator calls this when it mints an epoch (bump / recovery
  /// fence); sites call it when they anchor to one (rejoin/full-sync), so
  /// the stamp is always coordinator-issued. Negative → key omitted.
  void SetEpoch(long epoch);
  long epoch() const;

  void Emit(std::string cat, std::string name, int actor,
            std::vector<TraceArg> args = {});

  /// Arms head-based sampling: cascade events whose span carries
  /// kSpanUnsampledBit are skipped, and span-less high-volume "noise"
  /// events (heartbeats, injected faults, duplicate suppressions) are kept
  /// with a deterministic per-(actor, cycle) coin at the same rate. The
  /// audit/alert/recovery categories and all rare lifecycle events are
  /// never sampled out. Rate 1.0 (the default) records everything and is
  /// byte-identical to the pre-sampling format. The seed and rate must
  /// match the RuntimeConfig driving the coordinator — both come from the
  /// same config in every driver.
  void ConfigureSampling(double rate, std::uint64_t seed);
  double sample_rate() const;

  /// Mirrors every recorded event into `recorder` (rendered to its JSONL
  /// line at emit time), so a fatal signal can dump the recent window.
  /// Pass nullptr to detach. The recorder must outlive the log.
  void AttachFlightRecorder(FlightRecorder* recorder);
  FlightRecorder* flight_recorder() const;

  /// What the telemetry itself cost so far (the obs.* meter sources).
  struct SelfCost {
    long events_emitted = 0;      ///< Emit calls, sampled or not
    long events_recorded = 0;     ///< events kept in the log
    long events_sampled_out = 0;  ///< events skipped by sampling
    long long bytes_written = 0;  ///< JSONL bytes produced by WriteJsonl
    long long telemetry_ns = 0;   ///< wall ns inside Emit (metrics-only)
  };
  SelfCost self_cost() const;

  std::size_t size() const;
  /// Snapshot accessor for tests; copies under the lock.
  std::vector<TraceEvent> events() const;

  /// One `{"ts":..,"cycle":..,"cat":..,"name":..,"actor":..,"args":{..}}`
  /// object per line, in emit order.
  void WriteJsonl(std::ostream& out) const;

  /// Chrome trace_event JSON (load via chrome://tracing or Perfetto): each
  /// event becomes an instant event on the actor's pseudo-thread (tid 0 =
  /// coordinator, tid i+1 = site i), ts in logical units, plus
  /// thread_name metadata rows.
  void WriteChromeTrace(std::ostream& out) const;

  static void AppendEventJson(const TraceEvent& event, std::ostream& out);

 private:
  /// The sampling gate; caller holds mu_. Strips span tags from `args` and
  /// returns whether the event is recorded.
  bool ShouldRecordLocked(const std::string& cat, const std::string& name,
                          int actor, std::vector<TraceArg>* args);

  mutable std::mutex mu_;
  long cycle_ = 0;
  long next_ts_ = 0;
  std::string proc_;
  long epoch_ = -1;
  double sample_rate_ = 1.0;
  std::uint64_t sample_seed_ = 0;
  FlightRecorder* flight_ = nullptr;
  mutable SelfCost self_cost_;
  std::vector<TraceEvent> events_;
};

/// Validates one JSONL trace line against the event schema: structural keys
/// (ts/cycle/cat/name/actor/args), a known event name, the name's expected
/// category, and its required argument keys. Returns false and fills
/// `error` on the first problem. The catalog lives in trace.cc and is
/// documented in docs/OBSERVABILITY.md.
bool ValidateTraceJsonLine(const std::string& line, std::string* error);

/// JSON string escaping shared by the trace/metric writers.
std::string JsonEscape(const std::string& text);

/// Deterministic JSON number formatting shared by the trace/alert writers:
/// integral values print without a fraction, everything else as %.17g (the
/// shortest round-trippable form), so replaying a seed reproduces every
/// JSONL artifact byte for byte.
void AppendJsonNumber(std::ostream& out, double value);

}  // namespace sgm

#endif  // SGM_OBS_TRACE_H_
