#include "obs/trace_merge.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "obs/json.h"

namespace sgm {

namespace {

const TraceArg* FindArg(const TraceEvent& event, const char* key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) return &arg;
  }
  return nullptr;
}

std::int64_t IntArg(const TraceEvent& event, const char* key) {
  const TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != TraceArg::Kind::kInt) return 0;
  return arg->int_value;
}

std::string StringArg(const TraceEvent& event, const char* key) {
  const TraceArg* arg = FindArg(event, key);
  if (arg == nullptr || arg->kind != TraceArg::Kind::kString) return "";
  return arg->string_value;
}

struct SpanNode {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::string label;
  std::string trigger;
  long events = 0;
  long last_ts_rank = -1;  ///< merged-order rank of the last event
  std::set<std::string> procs;
  std::vector<std::int64_t> children;
};

long SubtreeEnd(const std::map<std::int64_t, SpanNode>& spans,
                std::int64_t id) {
  const SpanNode& node = spans.at(id);
  long end = node.last_ts_rank;
  for (const std::int64_t child : node.children) {
    end = std::max(end, SubtreeEnd(spans, child));
  }
  return end;
}

void CollectSubtree(const std::map<std::int64_t, SpanNode>& spans,
                    std::int64_t id, long* span_count, long* event_count,
                    std::set<std::string>* procs) {
  const SpanNode& node = spans.at(id);
  *span_count += 1;
  *event_count += node.events;
  procs->insert(node.procs.begin(), node.procs.end());
  for (const std::int64_t child : node.children) {
    CollectSubtree(spans, child, span_count, event_count, procs);
  }
}

}  // namespace

bool ParseTraceEventLine(const std::string& line, TraceEvent* event,
                         std::string* error) {
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.status().message();
    return false;
  }
  const JsonValue& value = parsed.ValueOrDie();
  if (!value.is_object()) {
    if (error != nullptr) *error = "trace line is not a JSON object";
    return false;
  }
  event->ts = static_cast<long>(value.NumberOr("ts", 0));
  event->cycle = static_cast<long>(value.NumberOr("cycle", 0));
  if (const JsonValue* cat = value.Find("cat")) {
    event->cat = cat->string_value();
  }
  if (const JsonValue* name = value.Find("name")) {
    event->name = name->string_value();
  }
  event->actor = static_cast<int>(value.NumberOr("actor", 0));
  if (const JsonValue* proc = value.Find("proc")) {
    event->proc = proc->string_value();
  }
  event->epoch = static_cast<long>(value.NumberOr("tepoch", -1));
  if (const JsonValue* args = value.Find("args")) {
    for (const auto& [key, arg] : args->object()) {
      if (arg.is_string()) {
        event->args.emplace_back(key, arg.string_value());
      } else if (arg.is_number()) {
        const double number = arg.number_value();
        const auto as_int = static_cast<std::int64_t>(number);
        if (static_cast<double>(as_int) == number) {
          event->args.emplace_back(key, as_int);
        } else {
          event->args.emplace_back(key, number);
        }
      }
    }
  }
  return true;
}

Status LoadTraceJsonl(const std::string& path,
                      const std::string& fallback_proc, bool validate,
                      std::vector<TraceEvent>* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file " + path);
  }
  std::string line;
  long line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    if (validate && !ValidateTraceJsonLine(line, &error)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": invalid event: " + error);
    }
    TraceEvent event;
    if (!ParseTraceEventLine(line, &event, &error)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": not JSON: " + error);
    }
    if (event.proc.empty()) event.proc = fallback_proc;
    out->push_back(std::move(event));
  }
  return Status::OK();
}

Status LoadTraceJsonlTolerant(const std::string& path,
                              const std::string& fallback_proc, bool validate,
                              std::vector<TraceEvent>* out,
                              std::string* warning) {
  if (warning != nullptr) warning->clear();
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file " + path);
  }
  // Two passes over the line list: a bad line is only "the torn tail" if no
  // well-formed line follows it, which a streaming loop can't know yet.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  long last_content = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].empty()) last_content = static_cast<long>(i);
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::string error;
    TraceEvent event;
    const bool bad = (validate && !ValidateTraceJsonLine(lines[i], &error)) ||
                     !ParseTraceEventLine(lines[i], &event, &error);
    if (bad) {
      const std::string where = path + ":" + std::to_string(i + 1);
      if (static_cast<long>(i) == last_content) {
        if (warning != nullptr) {
          *warning = where + ": dropped torn final line (" + error + ")";
        }
        break;
      }
      return Status::InvalidArgument(where + ": invalid event: " + error);
    }
    if (event.proc.empty()) event.proc = fallback_proc;
    out->push_back(std::move(event));
  }
  return Status::OK();
}

std::vector<TraceEvent> MergeTraceTimelines(
    std::vector<std::vector<TraceEvent>> logs) {
  struct Keyed {
    long cycle;
    std::int64_t span;
    std::size_t log_index;
    long ts;
    TraceEvent event;
  };
  std::vector<Keyed> keyed;
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  keyed.reserve(total);
  for (std::size_t log_index = 0; log_index < logs.size(); ++log_index) {
    for (TraceEvent& event : logs[log_index]) {
      // Span-less events (local alarms, heartbeats, session control) sort
      // before the cascades of the same cycle they trigger or accompany.
      const std::int64_t span = IntArg(event, "span");
      keyed.push_back(
          Keyed{event.cycle, span, log_index, event.ts, std::move(event)});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     if (a.span != b.span) return a.span < b.span;
                     if (a.log_index != b.log_index) {
                       return a.log_index < b.log_index;
                     }
                     return a.ts < b.ts;
                   });
  std::vector<TraceEvent> merged;
  merged.reserve(keyed.size());
  for (Keyed& k : keyed) merged.push_back(std::move(k.event));
  return merged;
}

SpanForestSummary SummarizeSpanForest(const std::vector<TraceEvent>& events) {
  SpanForestSummary summary;
  std::map<std::int64_t, SpanNode> spans;
  for (std::size_t rank = 0; rank < events.size(); ++rank) {
    const TraceEvent& event = events[rank];
    const std::int64_t id = IntArg(event, "span");
    if (id == 0) continue;
    ++summary.span_events;
    SpanNode& node = spans[id];
    node.id = id;
    if (node.label.empty()) {
      node.label = event.name == "msg_send"
                       ? "send:" + StringArg(event, "type")
                       : event.name;
    }
    if (event.name == "sync_cycle_begin") {
      node.label = "sync_cycle";
      node.trigger = StringArg(event, "trigger");
    }
    const std::int64_t parent = IntArg(event, "parent");
    if (parent != 0) node.parent = parent;
    node.events += 1;
    node.last_ts_rank = static_cast<long>(rank);
    if (!event.proc.empty()) node.procs.insert(event.proc);
  }

  for (auto& [id, node] : spans) {
    if (node.parent == 0) continue;
    auto parent = spans.find(node.parent);
    if (parent == spans.end()) {
      summary.orphans.push_back(
          "orphan span " + std::to_string(id) + " (" + node.label +
          "): parent " + std::to_string(node.parent) +
          " never appears as a span");
    } else {
      parent->second.children.push_back(id);
    }
  }

  summary.spans = static_cast<long>(spans.size());
  for (const auto& [id, node] : spans) {
    (void)id;
    if (node.procs.size() > 1) ++summary.cross_process_spans;
  }

  for (const auto& [id, node] : spans) {
    if (node.parent != 0) continue;
    ++summary.roots;
    SpanForestSummary::Root root;
    root.span = id;
    root.label = node.label;
    root.trigger = node.trigger;
    std::set<std::string> procs;
    CollectSubtree(spans, id, &root.spans, &root.events, &procs);
    root.procs.assign(procs.begin(), procs.end());

    // Critical path: from the root, repeatedly descend into the child
    // whose subtree ends last (in merged order); stop when the current
    // span outlives every child subtree — the same rule as
    // trace_inspect --spans, with merged-order ranks standing in for the
    // single-process logical clock.
    std::set<std::string> path_procs;
    std::int64_t at = id;
    for (;;) {
      const SpanNode& here = spans.at(at);
      path_procs.insert(here.procs.begin(), here.procs.end());
      std::int64_t next = 0;
      long next_end = here.last_ts_rank;
      for (const std::int64_t child : here.children) {
        const long end = SubtreeEnd(spans, child);
        if (end > next_end) {
          next_end = end;
          next = child;
        }
      }
      if (next == 0) break;
      at = next;
    }
    root.critical_path_procs.assign(path_procs.begin(), path_procs.end());
    summary.root_details.push_back(std::move(root));
  }
  return summary;
}

}  // namespace sgm
