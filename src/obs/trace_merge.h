#ifndef SGM_OBS_TRACE_MERGE_H_
#define SGM_OBS_TRACE_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/trace.h"

namespace sgm {

/// Rebuilds a TraceEvent from one JSONL trace line, including the optional
/// cross-process `proc` / `tepoch` stamps. Integral JSON numbers
/// round-trip as int args. Returns false and fills `error` on parse
/// failure (shared by trace_inspect and the merge loader).
bool ParseTraceEventLine(const std::string& line, TraceEvent* event,
                         std::string* error);

/// Loads one per-process JSONL trace file. Events without a `proc` stamp
/// get `fallback_proc` (typically derived from the filename), so merges of
/// pre-stamping traces still carry a process identity. When `validate` is
/// set, every line must pass ValidateTraceJsonLine — the first schema
/// violation fails the load.
Status LoadTraceJsonl(const std::string& path,
                      const std::string& fallback_proc, bool validate,
                      std::vector<TraceEvent>* out);

/// Crash-tolerant variant: a process killed mid-write (SIGKILL during a
/// chaos run, a fatal-signal flight dump racing a writer) leaves a file
/// whose *final* line may be torn. This overload drops an unparseable last
/// line and describes it in `warning` (empty = clean load) instead of
/// failing; an empty file loads as zero events. Bad lines anywhere else
/// still fail — mid-file corruption is a real error, not truncation.
Status LoadTraceJsonlTolerant(const std::string& path,
                              const std::string& fallback_proc, bool validate,
                              std::vector<TraceEvent>* out,
                              std::string* warning);

/// Merges per-process trace logs into one causally ordered timeline.
///
/// Each process's logical `ts` only orders events *within* that process,
/// so the merge orders across processes by what the protocol guarantees:
///   1. cycle — the coordinator's flush-barrier lockstep aligns cycle
///      numbers across every process;
///   2. span id (span-less events first) — the coordinator mints span ids
///      monotonically, so a parent span always sorts before its children
///      and a cascade's phases appear in mint order;
///   3. input order — pass the coordinator's log FIRST: for one span the
///      coordinator's events (minting, probe send) precede the sites'
///      echoes of the same id;
///   4. the per-process `ts` — preserving each process's own emit order.
///
/// The result is deterministic for a given set of inputs, and `ts` is NOT
/// re-stamped: the per-process logical clocks stay visible, with `proc`
/// disambiguating them.
std::vector<TraceEvent> MergeTraceTimelines(
    std::vector<std::vector<TraceEvent>> logs);

/// Span-forest reconstruction over a (merged) timeline, mirroring
/// `trace_inspect --spans`: one node per distinct span id, parent links
/// from the `parent` arg, orphan = a span whose parent id never appears as
/// a span — a broken causal chain.
struct SpanForestSummary {
  struct Root {
    std::int64_t span = 0;
    std::string label;    ///< "sync_cycle", "rejoin_grant", ...
    std::string trigger;  ///< sync_cycle_begin roots only
    long spans = 0;       ///< subtree size
    long events = 0;      ///< events across the subtree
    /// Distinct process labels on the critical path — the root-to-leaf
    /// chain whose subtree finishes last. A probe cascade served by real
    /// site processes crosses ≥2 processes here.
    std::vector<std::string> critical_path_procs;
    /// Distinct process labels across the whole subtree.
    std::vector<std::string> procs;
  };

  long spans = 0;
  long span_events = 0;
  long roots = 0;
  /// Spans whose events were emitted by more than one process — the
  /// cross-process causal edges the merge exists to expose.
  long cross_process_spans = 0;
  std::vector<Root> root_details;
  /// One description per orphan span (empty = validated forest).
  std::vector<std::string> orphans;
};

SpanForestSummary SummarizeSpanForest(const std::vector<TraceEvent>& events);

}  // namespace sgm

#endif  // SGM_OBS_TRACE_MERGE_H_
