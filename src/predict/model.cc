#include "predict/model.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace sgm {

namespace {

/// All models anchor at the sync-time value so pred(0) = v(0) exactly —
/// deviations-from-prediction start at zero after every synchronization,
/// which the prediction-based drift construction requires.
const Vector& AnchorOf(const std::vector<Vector>& history) {
  SGM_CHECK(!history.empty());
  return history.back();
}

}  // namespace

// ----------------------------------------------------------------- static --

void StaticModel::Fit(const std::vector<Vector>& history) {
  anchor_ = AnchorOf(history);
}

Vector StaticModel::Predict(long /*k*/) const { return anchor_; }

// --------------------------------------------------------------- velocity --

void VelocityModel::Fit(const std::vector<Vector>& history) {
  anchor_ = AnchorOf(history);
  velocity_ = Vector(anchor_.dim());
  const long h = static_cast<long>(history.size());
  if (h < 2) return;
  // Least squares through the anchor: minimize Σ_t ‖y_t − u·t‖² with
  // t = −(h−1)..0 and y_t = v_t − v(0):  u = Σ t·y_t / Σ t².
  double t_sq = 0.0;
  Vector t_y(anchor_.dim());
  for (long i = 0; i < h; ++i) {
    const double t = static_cast<double>(i - (h - 1));
    t_sq += t * t;
    t_y.Axpy(t, history[i] - anchor_);
  }
  if (t_sq > 0.0) velocity_ = t_y / t_sq;
}

Vector VelocityModel::Predict(long k) const {
  Vector pred = anchor_;
  pred.Axpy(static_cast<double>(k), velocity_);
  return pred;
}

// --------------------------------------------------- velocity-acceleration --

void VelocityAccelerationModel::Fit(const std::vector<Vector>& history) {
  anchor_ = AnchorOf(history);
  velocity_ = Vector(anchor_.dim());
  acceleration_ = Vector(anchor_.dim());
  const long h = static_cast<long>(history.size());
  if (h < 3) {
    // Quadratic underdetermined: fall back to the velocity fit.
    VelocityModel fallback;
    fallback.Fit(history);
    velocity_ = fallback.Predict(1) - anchor_;
    return;
  }
  // Least squares through the anchor with basis (t, ½t²):
  //   [Σt²     Σ½t³ ] [u]   [Σ t·y ]
  //   [Σ½t³   Σ¼t⁴ ] [a] = [Σ ½t²·y]   per coordinate.
  double s11 = 0.0, s12 = 0.0, s22 = 0.0;
  Vector b1(anchor_.dim()), b2(anchor_.dim());
  for (long i = 0; i < h; ++i) {
    const double t = static_cast<double>(i - (h - 1));
    const double q = 0.5 * t * t;
    s11 += t * t;
    s12 += t * q;
    s22 += q * q;
    const Vector y = history[i] - anchor_;
    b1.Axpy(t, y);
    b2.Axpy(q, y);
  }
  const double det = s11 * s22 - s12 * s12;
  if (std::abs(det) < 1e-12) {
    if (s11 > 0.0) velocity_ = b1 / s11;
    return;
  }
  for (std::size_t j = 0; j < anchor_.dim(); ++j) {
    velocity_[j] = (s22 * b1[j] - s12 * b2[j]) / det;
    acceleration_[j] = (s11 * b2[j] - s12 * b1[j]) / det;
  }
}

Vector VelocityAccelerationModel::Predict(long k) const {
  const double t = static_cast<double>(k);
  Vector pred = anchor_;
  pred.Axpy(t, velocity_);
  pred.Axpy(0.5 * t * t, acceleration_);
  return pred;
}

// --------------------------------------------------------------- adaptive --

AdaptiveModel::AdaptiveModel() {
  candidates_.push_back(std::make_unique<StaticModel>());
  candidates_.push_back(std::make_unique<VelocityModel>());
  candidates_.push_back(std::make_unique<VelocityAccelerationModel>());
}

AdaptiveModel::AdaptiveModel(
    std::vector<std::unique_ptr<PredictionModel>> candidates)
    : candidates_(std::move(candidates)) {
  SGM_CHECK(!candidates_.empty());
}

AdaptiveModel::AdaptiveModel(const AdaptiveModel& other)
    : selected_(other.selected_), selected_name_(other.selected_name_) {
  candidates_.reserve(other.candidates_.size());
  for (const auto& candidate : other.candidates_) {
    candidates_.push_back(candidate->Clone());
  }
}

void AdaptiveModel::Fit(const std::vector<Vector>& history) {
  SGM_CHECK(!history.empty());
  const long h = static_cast<long>(history.size());
  const long holdout = std::max<long>(1, h / 3);

  if (h - holdout >= 1) {
    // Back-test: fit on the prefix, score on the held-out tail.
    const std::vector<Vector> prefix(history.begin(),
                                     history.end() - holdout);
    double best_error = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < candidates_.size(); ++m) {
      candidates_[m]->Fit(prefix);
      double error = 0.0;
      for (long k = 1; k <= holdout; ++k) {
        const Vector& actual = history[h - holdout + k - 1];
        error += candidates_[m]->Predict(k).DistanceTo(actual);
      }
      if (error < best_error) {
        best_error = error;
        selected_ = static_cast<int>(m);
      }
    }
  } else {
    selected_ = 0;
  }
  candidates_[selected_]->Fit(history);
  selected_name_ = candidates_[selected_]->name();
}

Vector AdaptiveModel::Predict(long k) const {
  return candidates_[selected_]->Predict(k);
}

std::size_t AdaptiveModel::ParameterDoubles() const {
  // Selected model's parameters plus one double naming the selection.
  return candidates_[selected_]->ParameterDoubles() + 1;
}

}  // namespace sgm
