#ifndef SGM_PREDICT_MODEL_H_
#define SGM_PREDICT_MODEL_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/vector.h"

namespace sgm {

/// Per-site motion model of prediction-based geometric monitoring
/// (Giatrakos et al. [18, 19]): fitted on a site's recent measurement
/// history at synchronization time, then extrapolated identically by the
/// site and the coordinator (both know the fitted parameters, so no
/// communication is needed between syncs).
///
/// A model is fitted from the last h vectors (oldest first) and queried as
/// pred(k) — the predicted vector k cycles after the fit. Model parameters
/// ship with the sync vector; ParameterDoubles() reports that payload.
class PredictionModel {
 public:
  virtual ~PredictionModel() = default;

  virtual std::string name() const = 0;

  /// Fits on `history` (oldest → newest; at least one vector; the last
  /// entry is the value at the synchronization instant k = 0).
  virtual void Fit(const std::vector<Vector>& history) = 0;

  /// The predicted vector k ≥ 0 cycles after the fit.
  virtual Vector Predict(long k) const = 0;

  /// Parameter payload size in doubles (piggybacked on sync messages).
  virtual std::size_t ParameterDoubles() const = 0;

  virtual std::unique_ptr<PredictionModel> Clone() const = 0;
};

/// Static model: pred(k) = v(0). Degenerates PGM to plain GM; the baseline
/// every other model must beat to be worth its payload.
class StaticModel final : public PredictionModel {
 public:
  std::string name() const override { return "static"; }
  void Fit(const std::vector<Vector>& history) override;
  Vector Predict(long k) const override;
  std::size_t ParameterDoubles() const override { return 0; }
  std::unique_ptr<PredictionModel> Clone() const override {
    return std::make_unique<StaticModel>(*this);
  }

 private:
  Vector anchor_;
};

/// Linear-growth model: pred(k) = v(0) + u·k with the velocity u fitted by
/// least squares over the history window.
class VelocityModel final : public PredictionModel {
 public:
  std::string name() const override { return "velocity"; }
  void Fit(const std::vector<Vector>& history) override;
  Vector Predict(long k) const override;
  std::size_t ParameterDoubles() const override { return anchor_.dim(); }
  std::unique_ptr<PredictionModel> Clone() const override {
    return std::make_unique<VelocityModel>(*this);
  }

 private:
  Vector anchor_;
  Vector velocity_;
};

/// Velocity–acceleration model: pred(k) = v(0) + u·k + ½a·k², fitted by
/// least-squares quadratic regression per coordinate — the predictor behind
/// the paper's PGM configuration.
class VelocityAccelerationModel final : public PredictionModel {
 public:
  std::string name() const override { return "velocity_acceleration"; }
  void Fit(const std::vector<Vector>& history) override;
  Vector Predict(long k) const override;
  std::size_t ParameterDoubles() const override {
    return 2 * anchor_.dim();
  }
  std::unique_ptr<PredictionModel> Clone() const override {
    return std::make_unique<VelocityAccelerationModel>(*this);
  }

 private:
  Vector anchor_;
  Vector velocity_;
  Vector acceleration_;
};

/// CAA-style adaptive selection ([18, 19]'s "choose adapted alternative"):
/// fits every candidate model, back-tests each on the held-out tail of the
/// history, and delegates to the lowest-error one.
class AdaptiveModel final : public PredictionModel {
 public:
  /// Default candidate set: static, velocity, velocity–acceleration.
  AdaptiveModel();
  explicit AdaptiveModel(
      std::vector<std::unique_ptr<PredictionModel>> candidates);

  AdaptiveModel(const AdaptiveModel& other);
  AdaptiveModel& operator=(const AdaptiveModel&) = delete;

  std::string name() const override { return "adaptive"; }
  void Fit(const std::vector<Vector>& history) override;
  Vector Predict(long k) const override;
  std::size_t ParameterDoubles() const override;
  std::unique_ptr<PredictionModel> Clone() const override {
    return std::make_unique<AdaptiveModel>(*this);
  }

  /// Which candidate the last Fit() selected (for tests/diagnostics).
  const std::string& selected() const { return selected_name_; }

 private:
  std::vector<std::unique_ptr<PredictionModel>> candidates_;
  int selected_ = 0;
  std::string selected_name_;
};

}  // namespace sgm

#endif  // SGM_PREDICT_MODEL_H_
