#include "runtime/chaos.h"

#include <chrono>
#include <thread>

#include "core/check.h"
#include "obs/telemetry.h"

namespace sgm {

ChaosSocketTransport::ChaosSocketTransport(Transport* next,
                                           const ChaosInjectionConfig& config,
                                           Telemetry* telemetry, int actor)
    : next_(next),
      config_(config),
      telemetry_(telemetry),
      actor_(actor),
      rng_(config.seed),
      // Start past the spacing gate so early-session faults are possible.
      sends_since_fault_(config.min_sends_between_faults) {
  SGM_CHECK(next != nullptr);
  SGM_CHECK(config.min_sends_between_faults >= 1);
}

void ChaosSocketTransport::SetFaultHooks(std::function<void()> reset,
                                         std::function<void()> half_open) {
  reset_hook_ = std::move(reset);
  half_open_hook_ = std::move(half_open);
}

void ChaosSocketTransport::Send(const RuntimeMessage& message) {
  ++sends_;
  // The draws happen unconditionally so the fault schedule is a pure
  // function of (seed, send index) — the spacing gate masks fault *effects*
  // without shifting the random stream.
  const bool want_reset = rng_.NextBernoulli(config_.reset_probability);
  const bool want_stall = rng_.NextBernoulli(config_.stall_probability);
  const bool want_half_open =
      rng_.NextBernoulli(config_.half_open_probability);
  const bool gate_open =
      ++sends_since_fault_ > config_.min_sends_between_faults;

  if (gate_open && want_reset) {
    ++resets_;
    sends_since_fault_ = 0;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("chaos", "chaos_reset", actor_);
    }
    if (reset_hook_) reset_hook_();
  } else if (gate_open && want_half_open) {
    ++half_opens_;
    sends_since_fault_ = 0;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("chaos", "chaos_half_open", actor_);
    }
    if (half_open_hook_) half_open_hook_();
  } else if (gate_open && want_stall) {
    ++stalls_;
    sends_since_fault_ = 0;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("chaos", "chaos_stall", actor_,
                             {{"ms", static_cast<std::int64_t>(
                                         config_.stall_ms)}});
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
  }
  // The triggering message is forwarded into whatever the fault left
  // behind: after a reset or half-open its write fails, which is the point.
  next_->Send(message);
}

}  // namespace sgm
