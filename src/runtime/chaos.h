#ifndef SGM_RUNTIME_CHAOS_H_
#define SGM_RUNTIME_CHAOS_H_

#include <cstdint>
#include <functional>

#include "core/rng.h"
#include "runtime/transport.h"

namespace sgm {

struct Telemetry;

/// Seeded network-fault schedule for the socket runtime. All probabilities
/// are per Send() draw from one deterministic stream, so the same seed
/// reproduces the same fault sequence relative to the node's own send
/// pattern (the chaos layer sits below the reliability layer and above the
/// socket transport — exactly where a real network would misbehave).
struct ChaosInjectionConfig {
  std::uint64_t seed = 1;
  /// Full connection reset (both directions die; the peer sees EOF, the
  /// local end sees write failures) — a dropped TCP connection.
  double reset_probability = 0.0;
  /// Write stall: the send blocks for stall_ms before proceeding — a
  /// congested or scheduling-starved path.
  double stall_probability = 0.0;
  long stall_ms = 10;
  /// Half-open partition: the local write direction dies but reads keep
  /// flowing — the asymmetric failure TCP keepalive horror stories are
  /// made of. The local end discovers it only through write errors.
  double half_open_probability = 0.0;
  /// Minimum fault-free sends between two injected faults, so sessions
  /// always make some progress and the run terminates.
  int min_sends_between_faults = 8;

  bool enabled() const {
    return reset_probability > 0.0 || stall_probability > 0.0 ||
           half_open_probability > 0.0;
  }
};

/// Straggler-heavy chaos profile: frequent long write stalls, no
/// connection faults. Against a coordinator running with a barrier
/// deadline this keeps driving the lagging → quarantined → rejoined
/// machinery without ever tearing the session down — the pure-slowness
/// failure mode the deadline path exists for. `stall_ms` should exceed the
/// coordinator's barrier_deadline_ms to make misses certain rather than
/// scheduling-dependent.
inline ChaosInjectionConfig StallHeavyChaosProfile(std::uint64_t seed,
                                                   long stall_ms) {
  ChaosInjectionConfig config;
  config.seed = seed;
  config.stall_probability = 0.25;
  config.stall_ms = stall_ms;
  config.min_sends_between_faults = 4;
  return config;
}

/// Transport decorator that injects connection faults on a seeded schedule.
///
/// The decorator itself is socket-agnostic: tearing a connection down is
/// the owner's business (SiteClient knows its fd), so faults fire through
/// injected hooks. A reset/half-open hook runs *before* the triggering
/// message is forwarded — the message hits the already-broken connection,
/// its write fails, and the full detect → reconnect → rejoin path runs for
/// real. Stalls simply sleep on the sender's thread.
///
/// Counters are plain longs guarded by nothing: the decorator lives on a
/// single-threaded SiteClient send path (reads from other threads are for
/// post-run assertions only, after the loop has exited).
class ChaosSocketTransport final : public Transport {
 public:
  ChaosSocketTransport(Transport* next, const ChaosInjectionConfig& config,
                       Telemetry* telemetry = nullptr, int actor = -1);

  /// Installs the fault actions. Either may be empty (that fault class is
  /// then counted but otherwise inert).
  void SetFaultHooks(std::function<void()> reset,
                     std::function<void()> half_open);

  void Send(const RuntimeMessage& message) override;

  long resets_injected() const { return resets_; }
  long stalls_injected() const { return stalls_; }
  long half_opens_injected() const { return half_opens_; }
  long sends_seen() const { return sends_; }

 private:
  Transport* next_;
  ChaosInjectionConfig config_;
  Telemetry* telemetry_;
  int actor_;
  Rng rng_;
  std::function<void()> reset_hook_;
  std::function<void()> half_open_hook_;
  long sends_ = 0;
  long sends_since_fault_ = 0;
  long resets_ = 0;
  long stalls_ = 0;
  long half_opens_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_CHAOS_H_
