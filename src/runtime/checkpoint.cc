#include "runtime/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/check.h"
#include "core/crc32c.h"

namespace sgm {

namespace {

template <typename T>
void Append(std::vector<std::uint8_t>* out, T value) {
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool Read(const std::vector<std::uint8_t>& in, std::size_t* offset, T* out) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void AppendVector(std::vector<std::uint8_t>* out, const Vector& v) {
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(v.dim()));
  for (std::size_t i = 0; i < v.dim(); ++i) Append<double>(out, v[i]);
}

/// Sanity ceiling on any length field in a checkpoint artifact: a corrupt
/// length must fail fast, not drive a multi-gigabyte allocation.
constexpr std::uint32_t kMaxCheckpointElements = 1u << 22;

bool ReadVector(const std::vector<std::uint8_t>& in, std::size_t* offset,
                Vector* out) {
  std::uint32_t dim = 0;
  if (!Read(in, offset, &dim) || dim > kMaxCheckpointElements) return false;
  std::vector<double> coords(dim);
  for (std::uint32_t i = 0; i < dim; ++i) {
    if (!Read(in, offset, &coords[i])) return false;
  }
  *out = Vector(std::move(coords));
  return true;
}

constexpr std::uint8_t kMaxFdState =
    static_cast<std::uint8_t>(FailureDetector::State::kLagging);
constexpr std::uint8_t kMaxWalKind =
    static_cast<std::uint8_t>(WalRecord::Kind::kRejoinGrant);

void EncodeSnapshotBody(const CoordinatorCheckpoint& state,
                        std::vector<std::uint8_t>* out) {
  Append<std::int64_t>(out, state.epoch);
  Append<std::int64_t>(out, static_cast<std::int64_t>(state.cycle));
  Append<std::uint8_t>(out, state.believes_above ? 1 : 0);
  Append<double>(out, state.epsilon_t);
  Append<double>(out, state.threshold);
  Append<double>(out, state.delta);
  Append<double>(out, state.max_step_norm);
  Append<std::int64_t>(out, static_cast<std::int64_t>(state.cycles_since_sync));
  Append<std::int64_t>(out, static_cast<std::int64_t>(state.full_syncs));
  Append<std::int64_t>(out,
                       static_cast<std::int64_t>(state.partial_resolutions));
  Append<std::int64_t>(out, static_cast<std::int64_t>(state.degraded_syncs));
  Append<std::int64_t>(out, static_cast<std::int64_t>(state.retry_full_in));
  Append<std::int64_t>(out, state.next_span);
  Append<std::int64_t>(out, state.last_cycle_span);
  Append<std::int32_t>(out, state.num_sites);
  AppendVector(out, state.estimate);
  for (const SiteCheckpoint& site : state.sites) {
    AppendVector(out, site.last_known);
    Append<std::int64_t>(out, static_cast<std::int64_t>(site.last_grant_cycle));
    Append<std::uint8_t>(out, site.grant_pending ? 1 : 0);
    Append<std::uint8_t>(out, site.anchor_undelivered ? 1 : 0);
    Append<std::uint8_t>(out, static_cast<std::uint8_t>(site.fd_state));
    Append<std::int64_t>(out,
                         static_cast<std::int64_t>(site.fd_last_heard_cycle));
    Append<std::int64_t>(out, static_cast<std::int64_t>(site.fd_deaths));
    Append<std::int64_t>(out,
                         static_cast<std::int64_t>(site.fd_quarantine_until));
    Append<std::uint32_t>(out,
                          static_cast<std::uint32_t>(site.fd_death_cycles.size()));
    for (long cycle : site.fd_death_cycles) {
      Append<std::int64_t>(out, static_cast<std::int64_t>(cycle));
    }
  }
}

bool DecodeSnapshotBody(const std::vector<std::uint8_t>& in,
                        std::size_t offset, CoordinatorCheckpoint* state) {
  std::int64_t cycle = 0, cycles_since_sync = 0, full_syncs = 0;
  std::int64_t partial_resolutions = 0, degraded_syncs = 0, retry_full_in = 0;
  std::uint8_t believes = 0;
  std::int32_t num_sites = 0;
  if (!Read(in, &offset, &state->epoch) || !Read(in, &offset, &cycle) ||
      !Read(in, &offset, &believes) || !Read(in, &offset, &state->epsilon_t) ||
      !Read(in, &offset, &state->threshold) ||
      !Read(in, &offset, &state->delta) ||
      !Read(in, &offset, &state->max_step_norm) ||
      !Read(in, &offset, &cycles_since_sync) ||
      !Read(in, &offset, &full_syncs) ||
      !Read(in, &offset, &partial_resolutions) ||
      !Read(in, &offset, &degraded_syncs) ||
      !Read(in, &offset, &retry_full_in) ||
      !Read(in, &offset, &state->next_span) ||
      !Read(in, &offset, &state->last_cycle_span) ||
      !Read(in, &offset, &num_sites)) {
    return false;
  }
  if (num_sites < 0 ||
      static_cast<std::uint32_t>(num_sites) > kMaxCheckpointElements) {
    return false;
  }
  state->cycle = static_cast<long>(cycle);
  state->believes_above = believes != 0;
  state->cycles_since_sync = static_cast<long>(cycles_since_sync);
  state->full_syncs = static_cast<long>(full_syncs);
  state->partial_resolutions = static_cast<long>(partial_resolutions);
  state->degraded_syncs = static_cast<long>(degraded_syncs);
  state->retry_full_in = static_cast<long>(retry_full_in);
  state->num_sites = num_sites;
  if (!ReadVector(in, &offset, &state->estimate)) return false;
  state->sites.resize(static_cast<std::size_t>(num_sites));
  for (SiteCheckpoint& site : state->sites) {
    std::int64_t last_grant = 0, last_heard = 0, deaths = 0, quarantine = 0;
    std::uint8_t grant_pending = 0, anchor_undelivered = 0, fd_state = 0;
    std::uint32_t num_deaths = 0;
    if (!ReadVector(in, &offset, &site.last_known) ||
        !Read(in, &offset, &last_grant) ||
        !Read(in, &offset, &grant_pending) ||
        !Read(in, &offset, &anchor_undelivered) ||
        !Read(in, &offset, &fd_state) || fd_state > kMaxFdState ||
        !Read(in, &offset, &last_heard) || !Read(in, &offset, &deaths) ||
        !Read(in, &offset, &quarantine) || !Read(in, &offset, &num_deaths) ||
        num_deaths > kMaxCheckpointElements) {
      return false;
    }
    site.last_grant_cycle = static_cast<long>(last_grant);
    site.grant_pending = grant_pending != 0;
    site.anchor_undelivered = anchor_undelivered != 0;
    site.fd_state = static_cast<FailureDetector::State>(fd_state);
    site.fd_last_heard_cycle = static_cast<long>(last_heard);
    site.fd_deaths = static_cast<long>(deaths);
    site.fd_quarantine_until = static_cast<long>(quarantine);
    site.fd_death_cycles.resize(num_deaths);
    for (std::uint32_t i = 0; i < num_deaths; ++i) {
      std::int64_t death = 0;
      if (!Read(in, &offset, &death)) return false;
      site.fd_death_cycles[i] = static_cast<long>(death);
    }
  }
  return offset == in.size();
}

void EncodeWalBody(const WalRecord& record, std::vector<std::uint8_t>* out) {
  Append<std::uint8_t>(out, static_cast<std::uint8_t>(record.kind));
  Append<std::int64_t>(out, static_cast<std::int64_t>(record.cycle));
  Append<std::int64_t>(out, record.epoch);
  Append<std::int64_t>(out, record.next_span);
  switch (record.kind) {
    case WalRecord::Kind::kEpochBump:
      break;
    case WalRecord::Kind::kSyncCommit:
      Append<std::uint8_t>(out, record.degraded ? 1 : 0);
      Append<std::uint8_t>(out, record.believes_above ? 1 : 0);
      Append<double>(out, record.epsilon_t);
      Append<std::int64_t>(out, static_cast<std::int64_t>(record.full_syncs));
      Append<std::int64_t>(out,
                           static_cast<std::int64_t>(record.degraded_syncs));
      Append<std::int64_t>(out, record.last_cycle_span);
      AppendVector(out, record.estimate);
      break;
    case WalRecord::Kind::kPartialResolution:
      Append<std::int64_t>(
          out, static_cast<std::int64_t>(record.partial_resolutions));
      Append<std::int64_t>(out, record.last_cycle_span);
      break;
    case WalRecord::Kind::kRejoinGrant:
      Append<std::int32_t>(out, record.site);
      break;
  }
}

bool DecodeWalBody(const std::vector<std::uint8_t>& body, WalRecord* record) {
  std::size_t offset = 0;
  std::uint8_t kind = 0;
  std::int64_t cycle = 0;
  if (!Read(body, &offset, &kind) || kind == 0 || kind > kMaxWalKind ||
      !Read(body, &offset, &cycle) || !Read(body, &offset, &record->epoch) ||
      !Read(body, &offset, &record->next_span)) {
    return false;
  }
  record->kind = static_cast<WalRecord::Kind>(kind);
  record->cycle = static_cast<long>(cycle);
  switch (record->kind) {
    case WalRecord::Kind::kEpochBump:
      break;
    case WalRecord::Kind::kSyncCommit: {
      std::uint8_t degraded = 0, believes = 0;
      std::int64_t full_syncs = 0, degraded_syncs = 0;
      if (!Read(body, &offset, &degraded) || !Read(body, &offset, &believes) ||
          !Read(body, &offset, &record->epsilon_t) ||
          !Read(body, &offset, &full_syncs) ||
          !Read(body, &offset, &degraded_syncs) ||
          !Read(body, &offset, &record->last_cycle_span) ||
          !ReadVector(body, &offset, &record->estimate)) {
        return false;
      }
      record->degraded = degraded != 0;
      record->believes_above = believes != 0;
      record->full_syncs = static_cast<long>(full_syncs);
      record->degraded_syncs = static_cast<long>(degraded_syncs);
      break;
    }
    case WalRecord::Kind::kPartialResolution: {
      std::int64_t partials = 0;
      if (!Read(body, &offset, &partials) ||
          !Read(body, &offset, &record->last_cycle_span)) {
        return false;
      }
      record->partial_resolutions = static_cast<long>(partials);
      break;
    }
    case WalRecord::Kind::kRejoinGrant:
      if (!Read(body, &offset, &record->site)) return false;
      break;
  }
  return offset == body.size();
}

}  // namespace

// ─── Snapshot codec ────────────────────────────────────────────────────────

std::vector<std::uint8_t> EncodeSnapshot(const CoordinatorCheckpoint& state) {
  SGM_CHECK(state.sites.size() == static_cast<std::size_t>(state.num_sites));
  std::vector<std::uint8_t> out;
  Append<std::uint8_t>(&out, kCheckpointFormatVersion);
  Append<std::uint32_t>(&out, 0u);  // CRC placeholder, patched below
  EncodeSnapshotBody(state, &out);
  const std::uint32_t crc = Crc32c(out.data() + 5, out.size() - 5);
  std::memcpy(out.data() + 1, &crc, sizeof(crc));
  return out;
}

Result<CoordinatorCheckpoint> DecodeSnapshot(
    const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 5) {
    return Status::InvalidArgument("snapshot shorter than its framing");
  }
  if (buffer[0] != kCheckpointFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(buffer[0]));
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + 1, sizeof(stored_crc));
  const std::uint32_t actual_crc = Crc32c(buffer.data() + 5, buffer.size() - 5);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("snapshot checksum mismatch (torn write)");
  }
  CoordinatorCheckpoint state;
  if (!DecodeSnapshotBody(buffer, 5, &state)) {
    return Status::InvalidArgument("snapshot body malformed");
  }
  return state;
}

// ─── WAL codec ─────────────────────────────────────────────────────────────

std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<std::uint8_t> body;
  EncodeWalBody(record, &body);
  std::vector<std::uint8_t> out;
  Append<std::uint32_t>(&out, static_cast<std::uint32_t>(body.size()));
  Append<std::uint32_t>(&out, Crc32c(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

WalDecodeResult DecodeWalStream(const std::vector<std::uint8_t>& wal) {
  WalDecodeResult result;
  std::size_t offset = 0;
  while (offset < wal.size()) {
    std::size_t cursor = offset;
    std::uint32_t length = 0, crc = 0;
    if (!Read(wal, &cursor, &length) || !Read(wal, &cursor, &crc) ||
        length > kMaxCheckpointElements ||
        cursor + length > wal.size()) {
      break;  // torn tail: a record whose append was cut short
    }
    std::vector<std::uint8_t> body(wal.begin() + cursor,
                                   wal.begin() + cursor + length);
    if (Crc32c(body.data(), body.size()) != crc) break;
    WalRecord record;
    if (!DecodeWalBody(body, &record)) break;
    result.records.push_back(std::move(record));
    offset = cursor + length;
  }
  result.torn_bytes = static_cast<long>(wal.size() - offset);
  return result;
}

void ApplyWalRecord(const WalRecord& record, CoordinatorCheckpoint* state) {
  // Absolute post-mutation values: replay is idempotent and order-tolerant
  // within a segment's committed prefix.
  state->cycle = record.cycle;
  state->epoch = record.epoch;
  state->next_span = record.next_span;
  switch (record.kind) {
    case WalRecord::Kind::kEpochBump:
      break;
    case WalRecord::Kind::kSyncCommit:
      state->believes_above = record.believes_above;
      state->epsilon_t = record.epsilon_t;
      state->estimate = record.estimate;
      state->full_syncs = record.full_syncs;
      state->degraded_syncs = record.degraded_syncs;
      state->last_cycle_span = record.last_cycle_span;
      state->cycles_since_sync = 0;
      break;
    case WalRecord::Kind::kPartialResolution:
      state->partial_resolutions = record.partial_resolutions;
      state->last_cycle_span = record.last_cycle_span;
      break;
    case WalRecord::Kind::kRejoinGrant:
      if (record.site >= 0 &&
          record.site < static_cast<int>(state->sites.size())) {
        SiteCheckpoint& site = state->sites[record.site];
        site.grant_pending = true;
        site.last_grant_cycle = record.cycle;
        if (site.fd_state == FailureDetector::State::kDead ||
            site.fd_state == FailureDetector::State::kLagging) {
          site.fd_state = FailureDetector::State::kRejoining;
        }
      }
      break;
  }
}

// ─── In-memory store ───────────────────────────────────────────────────────

void InMemoryCheckpointStore::PutSnapshot(std::vector<std::uint8_t> bytes) {
  segments_.push_back({std::move(bytes), {}});
  while (segments_.size() > 2) segments_.pop_front();
}

void InMemoryCheckpointStore::AppendWal(const std::vector<std::uint8_t>& bytes) {
  // A WAL record before any snapshot gets an (invalid) empty-snapshot
  // segment; recovery rejects it, matching "nothing durable yet".
  if (segments_.empty()) segments_.push_back({});
  segments_.back().wal.insert(segments_.back().wal.end(), bytes.begin(),
                              bytes.end());
}

std::vector<CheckpointStore::Candidate> InMemoryCheckpointStore::Candidates()
    const {
  std::vector<Candidate> candidates;
  for (std::size_t i = segments_.size(); i-- > 0;) {
    Candidate candidate;
    candidate.snapshot = segments_[i].snapshot;
    for (std::size_t j = i; j < segments_.size(); ++j) {
      candidate.wal_segments.push_back(segments_[j].wal);
    }
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

void InMemoryCheckpointStore::TearSnapshotTail(std::size_t bytes) {
  if (segments_.empty()) return;
  std::vector<std::uint8_t>& snapshot = segments_.back().snapshot;
  snapshot.resize(snapshot.size() > bytes ? snapshot.size() - bytes : 0);
}

void InMemoryCheckpointStore::AppendTornWalBytes(
    const std::vector<std::uint8_t>& garbage) {
  AppendWal(garbage);
}

// ─── File-backed store ─────────────────────────────────────────────────────

FileCheckpointStore::FileCheckpointStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    long index = -1;
    if (std::sscanf(name.c_str(), "snap-%ld.ckpt", &index) == 1) {
      latest_index_ = std::max(latest_index_, index);
    }
  }
}

std::string FileCheckpointStore::SnapshotPath(long index) const {
  return directory_ + "/snap-" + std::to_string(index) + ".ckpt";
}

std::string FileCheckpointStore::WalPath(long index) const {
  return directory_ + "/wal-" + std::to_string(index) + ".log";
}

void FileCheckpointStore::PutSnapshot(std::vector<std::uint8_t> bytes) {
  const long index = latest_index_ + 1;
  const std::string tmp = SnapshotPath(index) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  // Atomic publication: readers see either no snapshot-N or a complete one.
  std::error_code ec;
  std::filesystem::rename(tmp, SnapshotPath(index), ec);
  if (ec) return;  // snapshot not published; the previous one still stands
  latest_index_ = index;
  // Open the fresh WAL segment and retire artifacts older than N-1.
  std::ofstream(WalPath(index), std::ios::binary | std::ios::trunc);
  std::filesystem::remove(SnapshotPath(index - 2), ec);
  std::filesystem::remove(WalPath(index - 2), ec);
}

void FileCheckpointStore::AppendWal(const std::vector<std::uint8_t>& bytes) {
  const long index = latest_index_ < 0 ? 0 : latest_index_;
  std::ofstream out(WalPath(index), std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
}

std::vector<CheckpointStore::Candidate> FileCheckpointStore::Candidates()
    const {
  auto load = [](const std::string& path) {
    std::vector<std::uint8_t> bytes;
    std::ifstream in(path, std::ios::binary);
    if (!in) return bytes;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return bytes;
  };
  std::vector<Candidate> candidates;
  if (latest_index_ < 0) return candidates;
  for (long index = latest_index_;
       index >= 0 && index > latest_index_ - 2; --index) {
    if (!std::filesystem::exists(SnapshotPath(index))) continue;
    Candidate candidate;
    candidate.snapshot = load(SnapshotPath(index));
    for (long wal = index; wal <= latest_index_; ++wal) {
      candidate.wal_segments.push_back(load(WalPath(wal)));
    }
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

// ─── Reconstruction ────────────────────────────────────────────────────────

Result<Reconstruction> ReconstructCoordinatorState(
    const CheckpointStore& store) {
  Reconstruction result;
  for (const CheckpointStore::Candidate& candidate : store.Candidates()) {
    Result<CoordinatorCheckpoint> snapshot = DecodeSnapshot(candidate.snapshot);
    if (!snapshot.ok()) {
      ++result.snapshots_discarded;
      continue;
    }
    result.state = std::move(snapshot).ValueOrDie();
    // Segments replay independently: a torn tail in one (the crash point of
    // a previous incarnation) never hides committed records in a later one.
    for (const std::vector<std::uint8_t>& segment : candidate.wal_segments) {
      WalDecodeResult wal = DecodeWalStream(segment);
      for (const WalRecord& record : wal.records) {
        ApplyWalRecord(record, &result.state);
        ++result.wal_records_replayed;
      }
      result.torn_wal_bytes += wal.torn_bytes;
    }
    return result;
  }
  return Status::NotFound("no decodable checkpoint snapshot");
}

}  // namespace sgm
