#ifndef SGM_RUNTIME_CHECKPOINT_H_
#define SGM_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/vector.h"
#include "runtime/failure_detector.h"

namespace sgm {

// ─── Snapshot payload ──────────────────────────────────────────────────────

/// Per-site durable state carried in a coordinator snapshot: the rejoin
/// bookkeeping plus the failure detector's full state machine, so a
/// recovered coordinator neither forgets quarantines nor re-suspects sites
/// for silence that happened while it was down.
struct SiteCheckpoint {
  Vector last_known;
  long last_grant_cycle = -1;
  bool grant_pending = false;
  bool anchor_undelivered = false;
  FailureDetector::State fd_state = FailureDetector::State::kAlive;
  long fd_last_heard_cycle = 0;
  long fd_deaths = 0;
  std::vector<long> fd_death_cycles;
  long fd_quarantine_until = -1;
};

/// Full coordinator state as serialized into a snapshot. The config echo
/// (num_sites, threshold, delta, max_step_norm) lets recovery reject a
/// checkpoint written by a differently-configured deployment instead of
/// silently resuming with incompatible safe-zone parameters.
struct CoordinatorCheckpoint {
  std::int64_t epoch = 0;
  long cycle = 0;
  bool believes_above = false;
  double epsilon_t = 0.0;
  Vector estimate;
  long full_syncs = 0;
  long partial_resolutions = 0;
  long degraded_syncs = 0;
  long cycles_since_sync = 0;
  long retry_full_in = -1;
  std::int64_t next_span = 0;
  std::int64_t last_cycle_span = 0;
  // Config echo, validated on restore.
  int num_sites = 0;
  double threshold = 0.0;
  double delta = 0.0;
  double max_step_norm = 0.0;
  std::vector<SiteCheckpoint> sites;
};

// ─── Write-ahead log ───────────────────────────────────────────────────────

/// One logical WAL record. Every record carries the ABSOLUTE post-mutation
/// epoch / span counter / cycle (not deltas), so replay from any surviving
/// snapshot — including a fallback past a torn newest snapshot — converges
/// on the same state.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kEpochBump = 1,         ///< a sync round opened (probe or full request)
    kSyncCommit = 2,        ///< a full sync completed; carries e / ε_T
    kPartialResolution = 3, ///< a probe round resolved without full sync
    kRejoinGrant = 4,       ///< a rejoin grant was issued to `site`
  };

  Kind kind = Kind::kEpochBump;
  long cycle = 0;
  std::int64_t epoch = 0;
  std::int64_t next_span = 0;
  // kSyncCommit payload.
  bool degraded = false;
  bool believes_above = false;
  double epsilon_t = 0.0;
  Vector estimate;
  long full_syncs = 0;
  long degraded_syncs = 0;
  std::int64_t last_cycle_span = 0;
  // kPartialResolution payload.
  long partial_resolutions = 0;
  // kRejoinGrant payload.
  int site = -1;
};

// ─── Codec ─────────────────────────────────────────────────────────────────

/// Snapshot frame version byte. Frames open with `version | crc32c(body) |
/// body`; an unknown version, a CRC mismatch, or a truncated body all reject
/// the snapshot (recovery then falls back to the previous one).
inline constexpr std::uint8_t kCheckpointFormatVersion = 0xC1;

std::vector<std::uint8_t> EncodeSnapshot(const CoordinatorCheckpoint& state);
Result<CoordinatorCheckpoint> DecodeSnapshot(
    const std::vector<std::uint8_t>& buffer);

/// WAL records are framed `u32 body_length | u32 crc32c(body) | body` and
/// appended back to back. A torn tail — a partially written final record,
/// from a crash mid-append — shows up as a short frame or a CRC mismatch and
/// terminates the scan; everything before it is intact by construction.
std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& record);

struct WalDecodeResult {
  std::vector<WalRecord> records;
  /// Bytes at the tail that did not parse as a complete valid record. Zero
  /// on a cleanly closed segment.
  long torn_bytes = 0;
};
WalDecodeResult DecodeWalStream(const std::vector<std::uint8_t>& wal);

/// Replays one committed record onto a restored snapshot.
void ApplyWalRecord(const WalRecord& record, CoordinatorCheckpoint* state);

// ─── Stores ────────────────────────────────────────────────────────────────

/// Durable home for snapshots and their bridging WAL segments. Writing a
/// snapshot closes the current WAL segment and opens a fresh one; recovery
/// reads candidates newest-first and replays each snapshot's own segments,
/// so a torn tail in one segment never poisons records in a later one.
class CheckpointStore {
 public:
  /// One recovery candidate: a snapshot plus the WAL segments written after
  /// it, oldest first.
  struct Candidate {
    std::vector<std::uint8_t> snapshot;
    std::vector<std::vector<std::uint8_t>> wal_segments;
  };

  virtual ~CheckpointStore() = default;

  /// Persists a snapshot and opens a fresh WAL segment for the records that
  /// follow it. Implementations retain at least the two newest snapshots so
  /// a torn newest snapshot still leaves a recovery path.
  virtual void PutSnapshot(std::vector<std::uint8_t> bytes) = 0;

  /// Appends an encoded WAL record to the current segment.
  virtual void AppendWal(const std::vector<std::uint8_t>& bytes) = 0;

  /// Recovery candidates, newest snapshot first.
  virtual std::vector<Candidate> Candidates() const = 0;
};

/// In-memory store for the DST harness and unit tests, with fault hooks
/// that model the two durable-storage failure modes: a torn snapshot write
/// and a torn WAL append. Both corrupt only the newest artifact's tail —
/// committed prefixes stay intact, matching what rename-on-write plus
/// append-only logging guarantees on a real filesystem.
class InMemoryCheckpointStore final : public CheckpointStore {
 public:
  void PutSnapshot(std::vector<std::uint8_t> bytes) override;
  void AppendWal(const std::vector<std::uint8_t>& bytes) override;
  std::vector<Candidate> Candidates() const override;

  /// Fault hook: truncates the newest snapshot by `bytes`, simulating a
  /// crash mid-write that rename-on-write failed to mask.
  void TearSnapshotTail(std::size_t bytes);
  /// Fault hook: appends raw garbage to the current WAL segment, simulating
  /// a record whose append was cut short.
  void AppendTornWalBytes(const std::vector<std::uint8_t>& garbage);

  int snapshot_count() const { return static_cast<int>(segments_.size()); }

 private:
  struct Segment {
    std::vector<std::uint8_t> snapshot;
    std::vector<std::uint8_t> wal;
  };
  std::deque<Segment> segments_;
};

/// Filesystem-backed store: snapshots are written to a temporary file and
/// atomically renamed into place (`snap-N.ckpt`), WAL segments append to
/// `wal-N.log`. Keeps the two newest snapshot/segment pairs. Flushes after
/// every append; a production deployment would fsync, which std::ofstream
/// cannot express portably — the torn-tail detection upstream is what makes
/// that gap survivable.
class FileCheckpointStore final : public CheckpointStore {
 public:
  explicit FileCheckpointStore(std::string directory);

  void PutSnapshot(std::vector<std::uint8_t> bytes) override;
  void AppendWal(const std::vector<std::uint8_t>& bytes) override;
  std::vector<Candidate> Candidates() const override;

 private:
  std::string SnapshotPath(long index) const;
  std::string WalPath(long index) const;

  std::string directory_;
  long latest_index_ = -1;  ///< highest snapshot index on disk, -1 if none
};

// ─── Reconstruction ────────────────────────────────────────────────────────

/// The oracle-reconstructed coordinator state: newest decodable snapshot
/// plus every committed WAL record after it. This is both the recovery
/// path's input and the DST invariant's independent ground truth.
struct Reconstruction {
  CoordinatorCheckpoint state;
  long wal_records_replayed = 0;
  long snapshots_discarded = 0;  ///< newer snapshots rejected (torn/corrupt)
  long torn_wal_bytes = 0;
};

Result<Reconstruction> ReconstructCoordinatorState(const CheckpointStore& store);

}  // namespace sgm

#endif  // SGM_RUNTIME_CHECKPOINT_H_
