#include "runtime/coordinator_node.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/tail_bounds.h"
#include "geometry/ball.h"
#include "obs/telemetry.h"

namespace sgm {

namespace {

/// Span-counter headroom added on recovery: spans minted after the last WAL
/// append are not durable, so a recovered coordinator skips ahead by a
/// stride no single OnMessage burst can mint through, guaranteeing it never
/// re-issues a span id the previous incarnation already put on the wire.
constexpr std::int64_t kRecoverySpanStride = 1024;

}  // namespace

CoordinatorNode::CoordinatorNode(int num_sites,
                                 const MonitoredFunction& function,
                                 const RuntimeConfig& config,
                                 Transport* transport)
    : num_sites_(num_sites),
      function_(function.Clone()),
      config_(config),
      transport_(transport),
      telemetry_(config.telemetry),
      fd_(num_sites, config.failure_detector),
      last_known_(num_sites),
      last_grant_cycle_(num_sites, -1),
      grant_pending_(num_sites, false),
      anchor_undelivered_(num_sites, false) {
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(transport != nullptr);
  SGM_CHECK(config.empty_collection_retry_cycles >= 1);
  SGM_CHECK(config.degraded_resync_cycles >= 1);
  SGM_CHECK(config.max_sync_retries >= 0);
  SGM_CHECK(config.rejoin_resync_cycles >= 1);
  SGM_CHECK(config.checkpoint_interval_cycles >= 1);
  SGM_CHECK(config.recovery_resync_cycles >= 1);
  if (telemetry_ != nullptr) {
    fd_.set_telemetry(telemetry_);
    ht_estimate_ns_ = telemetry_->registry.GetHistogram(
        "coordinator.ht_estimate_ns", LatencyBucketsNs());
    full_sync_ns_ = telemetry_->registry.GetHistogram(
        "coordinator.full_sync_ns", LatencyBucketsNs());
    restore_ns_ = telemetry_->registry.GetHistogram(
        "recovery.restore_ns", LatencyBucketsNs());
  }
}

void CoordinatorNode::AttachReliability(ReliableTransport* reliable) {
  SGM_CHECK(reliable != nullptr);
  reliable_ = reliable;
  reliable_->SetDeadLinkHandler(
      [this](int site, const RuntimeMessage& m) { OnLinkDead(site, m); });
}

double CoordinatorNode::CurrentU() const {
  const double accumulated =
      config_.max_step_norm *
      static_cast<double>(std::max<long>(1, cycles_since_sync_));
  const double threshold_scale =
      config_.u_threshold_factor *
      std::max(epsilon_t_, config_.max_step_norm);
  return std::min({accumulated, config_.drift_norm_cap, threshold_scale});
}

void CoordinatorNode::Start() {
  // Baseline snapshot before any traffic: the store is never empty once the
  // deployment runs, so recovery always has a candidate.
  WriteSnapshot();
  RequestFullState();
}

CoordinatorCheckpoint CoordinatorNode::BuildCheckpoint() const {
  CoordinatorCheckpoint state;
  state.epoch = epoch_;
  state.cycle = cycle_;
  state.believes_above = believes_above_;
  state.epsilon_t = epsilon_t_;
  state.estimate = e_;
  state.full_syncs = full_syncs_;
  state.partial_resolutions = partial_resolutions_;
  state.degraded_syncs = degraded_syncs_;
  state.cycles_since_sync = cycles_since_sync_;
  state.retry_full_in = retry_full_in_;
  state.next_span = next_span_;
  state.last_cycle_span = last_cycle_span_;
  state.num_sites = num_sites_;
  state.threshold = config_.threshold;
  state.delta = config_.delta;
  state.max_step_norm = config_.max_step_norm;
  state.sites.resize(num_sites_);
  const std::vector<FailureDetector::SiteSnapshot> fd_sites = fd_.Snapshot();
  for (int i = 0; i < num_sites_; ++i) {
    SiteCheckpoint& site = state.sites[i];
    site.last_known = last_known_[i];
    site.last_grant_cycle = last_grant_cycle_[i];
    site.grant_pending = grant_pending_[i];
    site.anchor_undelivered = anchor_undelivered_[i];
    site.fd_state = fd_sites[i].state;
    site.fd_last_heard_cycle = fd_sites[i].last_heard_cycle;
    site.fd_deaths = fd_sites[i].deaths;
    site.fd_death_cycles = fd_sites[i].death_cycles;
    site.fd_quarantine_until = fd_sites[i].quarantine_until;
  }
  return state;
}

void CoordinatorNode::WriteSnapshot() {
  if (config_.checkpoint_store == nullptr) return;
  std::vector<std::uint8_t> bytes = EncodeSnapshot(BuildCheckpoint());
  const std::int64_t size = static_cast<std::int64_t>(bytes.size());
  config_.checkpoint_store->PutSnapshot(std::move(bytes));
  ++recovery_stats_.snapshots_written;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("recovery", "checkpoint_write", kCoordinatorId,
                           {{"epoch", epoch_}, {"bytes", size}});
  }
}

void CoordinatorNode::AppendWal(WalRecord record) {
  if (config_.checkpoint_store == nullptr) return;
  record.cycle = cycle_;
  record.epoch = epoch_;
  record.next_span = next_span_;
  config_.checkpoint_store->AppendWal(EncodeWalRecord(record));
  ++recovery_stats_.wal_records;
}

bool CoordinatorNode::Recover() {
  SGM_CHECK_MSG(config_.checkpoint_store != nullptr,
                "Recover() needs a checkpoint store");
  ScopedTimer timer(restore_ns_);
  Result<Reconstruction> result =
      ReconstructCoordinatorState(*config_.checkpoint_store);
  if (!result.ok()) return false;
  const Reconstruction& rec = result.ValueOrDie();
  const CoordinatorCheckpoint& s = rec.state;
  SGM_CHECK_MSG(s.num_sites == num_sites_,
                "checkpoint from a different deployment");

  epoch_ = s.epoch;
  cycle_ = s.cycle;
  believes_above_ = s.believes_above;
  epsilon_t_ = s.epsilon_t;
  e_ = s.estimate;
  // Re-anchor the function clone exactly as the sync that produced the
  // estimate did (reference-anchored functions rebuild their safe zone).
  if (!e_.empty()) function_->OnSync(e_);
  full_syncs_ = s.full_syncs;
  partial_resolutions_ = s.partial_resolutions;
  degraded_syncs_ = s.degraded_syncs;
  cycles_since_sync_ = s.cycles_since_sync;
  retry_full_in_ = s.retry_full_in;
  last_cycle_span_ = s.last_cycle_span;
  next_span_ = s.next_span + kRecoverySpanStride;
  // In-flight rounds are not checkpointed: recovery restores to kIdle and
  // the reconciliation below re-derives anything the crash interrupted.
  phase_ = Phase::kIdle;
  cycle_span_ = 0;
  phase_span_ = 0;
  alarm_this_cycle_ = false;
  sync_retries_ = 0;

  std::vector<FailureDetector::SiteSnapshot> fd_sites(num_sites_);
  for (int i = 0; i < num_sites_; ++i) {
    const SiteCheckpoint& site = s.sites[i];
    last_known_[i] = site.last_known;
    last_grant_cycle_[i] = site.last_grant_cycle;
    grant_pending_[i] = site.grant_pending;
    anchor_undelivered_[i] = site.anchor_undelivered;
    fd_sites[i].state = site.fd_state;
    fd_sites[i].last_heard_cycle = site.fd_last_heard_cycle;
    fd_sites[i].deaths = site.fd_deaths;
    fd_sites[i].death_cycles = site.fd_death_cycles;
    fd_sites[i].quarantine_until = site.fd_quarantine_until;
  }
  fd_.Restore(fd_sites, cycle_);

  ++recovery_stats_.restores;
  recovery_stats_.wal_records_replayed += rec.wal_records_replayed;
  recovery_stats_.snapshots_discarded += rec.snapshots_discarded;
  recovery_stats_.torn_wal_bytes += rec.torn_wal_bytes;

  // Fence: one bump past the highest committed epoch. Every frame the dead
  // incarnation left in flight carries epoch ≤ the committed value (WAL
  // records are appended before their messages are sent), so the ordinary
  // epoch machinery quarantines all of it — sites drop stale data, and any
  // site that anchored on the final pre-crash broadcast re-anchors through
  // the grants below.
  ++epoch_;
  epoch_cycle_start_ = epoch_;
  const std::int64_t recovery_span = MintSpan();
  if (telemetry_ != nullptr) {
    // The coordinator issues the trace epoch: every subsequent event of
    // this incarnation carries the fenced epoch as its tepoch stamp.
    telemetry_->trace.SetEpoch(epoch_);
    telemetry_->trace.Emit("protocol", "epoch_bump", kCoordinatorId,
                           {{"epoch", epoch_}});
    telemetry_->trace.Emit(
        "recovery", "recovery_begin", kCoordinatorId,
        {{"span", recovery_span},
         {"epoch", epoch_},
         {"wal_replayed", rec.wal_records_replayed}});
    if (rec.snapshots_discarded > 0) {
      telemetry_->trace.Emit("recovery", "snapshot_fallback", kCoordinatorId,
                             {{"discarded", rec.snapshots_discarded}});
    }
    if (rec.torn_wal_bytes > 0) {
      telemetry_->trace.Emit("recovery", "wal_torn_tail", kCoordinatorId,
                             {{"bytes", rec.torn_wal_bytes}});
    }
  }
  // Durable point of no return: the fenced epoch and the strided span
  // counter land in a fresh snapshot (and a fresh WAL segment) before any
  // reconciliation traffic goes out.
  WriteSnapshot();

  if (e_.empty()) {
    // Crashed before the first sync ever completed: start from scratch.
    RequestFullState();
  } else {
    // Reconciliation: re-anchor every reachable site at the fenced epoch
    // through the ordinary rejoin-grant handshake, then fold their drift
    // back in with a scheduled full resync. Dead sites rejoin on revival;
    // quarantined sites stay deferred.
    for (int site = 0; site < num_sites_; ++site) {
      last_grant_cycle_[site] = -1;  // recovery grants bypass rate limiting
      // Dead and lagging sites rejoin on revival/catch-up contact instead:
      // a grant unicast at a silent endpoint would only be lost again.
      if (fd_.state(site) == FailureDetector::State::kDead) continue;
      if (fd_.state(site) == FailureDetector::State::kLagging) continue;
      if (fd_.IsQuarantined(site)) continue;
      MaybeGrantRejoin(site);
      ++recovery_stats_.reconcile_grants;
    }
    ScheduleResync(config_.recovery_resync_cycles);
  }
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit(
        "recovery", "recovery_complete", kCoordinatorId,
        {{"span", recovery_span},
         {"epoch", epoch_},
         {"grants", recovery_stats_.reconcile_grants}});
  }
  return true;
}

void CoordinatorNode::ScheduleResync(long cycles) {
  retry_full_in_ = retry_full_in_ > 0 ? std::min(retry_full_in_, cycles)
                                      : cycles;
}

void CoordinatorNode::BeginCycle() {
  ++cycle_;
  epoch_cycle_start_ = epoch_;
  if (config_.checkpoint_store != nullptr &&
      cycle_ % config_.checkpoint_interval_cycles == 0) {
    WriteSnapshot();
  }
  fd_.BeginCycle(cycle_);
  if (reliable_ != nullptr) {
    // Heartbeat-miss deaths and lag quarantines release the site's pending
    // acks and stop retransmissions toward it; the rejoin path marks the
    // link up again.
    for (int site = 0; site < num_sites_; ++site) {
      const FailureDetector::State state = fd_.state(site);
      if ((state == FailureDetector::State::kDead ||
           state == FailureDetector::State::kLagging) &&
          reliable_->IsLinkUp(site)) {
        reliable_->MarkLinkDown(site);
      }
    }
  }
  if (phase_ == Phase::kIdle) {
    alarm_this_cycle_ = false;
    ++cycles_since_sync_;
    if (retry_full_in_ > 0 && --retry_full_in_ == 0) {
      retry_full_in_ = -1;
      RequestFullState();
    }
  }
}

void CoordinatorNode::SendBroadcast(RuntimeMessage message) {
  message.from = kCoordinatorId;
  message.to = kBroadcastId;
  message.epoch = epoch_;
  transport_->Send(std::move(message));
}

void CoordinatorNode::BumpEpoch() {
  ++epoch_;
  if (telemetry_ != nullptr) {
    telemetry_->trace.SetEpoch(epoch_);
    telemetry_->trace.Emit("protocol", "epoch_bump", kCoordinatorId,
                           {{"epoch", epoch_}});
  }
  // Logged before the round's first message is sent (both callers bump
  // before broadcasting), so no epoch a site ever sees can outrun the WAL.
  WalRecord record;
  record.kind = WalRecord::Kind::kEpochBump;
  AppendWal(record);
}

std::int64_t CoordinatorNode::TagSpan(std::int64_t span) const {
  return cascade_sampled_ ? span : span | kSpanUnsampledBit;
}

void CoordinatorNode::EnsureCycleSpan(const char* trigger) {
  if (cycle_span_ != 0) return;  // escalation continues the existing tree
  const std::int64_t root = MintSpan();
  // The head-based sampling decision is minted with the root span and
  // carried by the tag bit on every span of the cascade; the raw root id
  // keys the seeded coin so a replay decides identically.
  cascade_sampled_ =
      TraceSampleDecision(config_.seed, root, config_.trace_sample_rate);
  cycle_span_ = TagSpan(root);
  last_cycle_span_ = cycle_span_;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("protocol", "sync_cycle_begin", kCoordinatorId,
                           {{"span", cycle_span_},
                            {"trigger", std::string(trigger)}});
  }
}

void CoordinatorNode::CloseCycleSpan() {
  cycle_span_ = 0;
  phase_span_ = 0;
  cascade_sampled_ = true;
}

void CoordinatorNode::RequestFullState() {
  BumpEpoch();  // a new sync round begins
  EnsureCycleSpan("scheduled");  // no-op when escalating from a probe
  phase_span_ = TagSpan(MintSpan());
  phase_ = Phase::kCollecting;
  sync_retries_ = 0;
  collected_.assign(num_sites_, Vector());
  received_.assign(num_sites_, false);
  received_count_ = 0;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("protocol", "full_sync_begin", kCoordinatorId,
                           {{"epoch", epoch_},
                            {"span", phase_span_},
                            {"parent", cycle_span_}});
  }
  RuntimeMessage request;
  request.type = RuntimeMessage::Type::kFullStateRequest;
  request.span = phase_span_;
  request.parent_span = cycle_span_;
  SendBroadcast(std::move(request));
}

void CoordinatorNode::FinishFullSync(bool degraded) {
  ScopedTimer timer(full_sync_ns_);
  // A degraded sync may hold no vector at all for a site that has never
  // managed to report; average over the sites we have state for.
  Vector sum;
  int have = 0;
  for (const Vector& v : collected_) {
    if (v.empty()) continue;
    if (sum.empty()) sum = Vector(v.dim());
    sum.Axpy(1.0, v);
    ++have;
  }
  SGM_CHECK(have > 0);
  sum /= static_cast<double>(have);
  e_ = sum;
  function_->OnSync(e_);
  believes_above_ = function_->Value(e_) > config_.threshold;
  epsilon_t_ = function_->DistanceToSurface(e_, config_.threshold);
  cycles_since_sync_ = 0;
  ++full_syncs_;
  phase_ = Phase::kIdle;
  const std::int64_t broadcast_span = TagSpan(MintSpan());
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("protocol", "full_sync_complete", kCoordinatorId,
                           {{"epoch", epoch_},
                            {"degraded", degraded ? 1 : 0},
                            {"span", phase_span_},
                            {"parent", cycle_span_}});
  }
  // Committed before the anchor broadcast: a site can only ever anchor on an
  // estimate the WAL already holds.
  WalRecord record;
  record.kind = WalRecord::Kind::kSyncCommit;
  record.degraded = degraded;
  record.believes_above = believes_above_;
  record.epsilon_t = epsilon_t_;
  record.estimate = e_;
  record.full_syncs = full_syncs_;
  record.degraded_syncs = degraded_syncs_;
  record.last_cycle_span = last_cycle_span_;
  AppendWal(record);

  RuntimeMessage estimate;
  estimate.type = RuntimeMessage::Type::kNewEstimate;
  estimate.payload = e_;
  estimate.scalar = epsilon_t_;
  estimate.span = broadcast_span;
  estimate.parent_span = cycle_span_;
  SendBroadcast(std::move(estimate));
  CloseCycleSpan();  // the cascade ends with the anchor broadcast
}

void CoordinatorNode::ResolvePartial(const Vector& v_hat) {
  ++partial_resolutions_;
  phase_ = Phase::kIdle;
  const std::int64_t resolve_span = TagSpan(MintSpan());
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("protocol", "partial_resolution", kCoordinatorId,
                           {{"span", resolve_span}, {"parent", cycle_span_}});
  }
  // Certified cooldown (see SgmOptions::certified_cooldown): the average
  // cannot cross for (D − ε)/max_step cycles.
  const double U = CurrentU();
  const double epsilon = std::min(BernsteinEpsilon(config_.delta, U),
                                  0.5 * epsilon_t_);
  const double room =
      function_->DistanceToSurface(v_hat, config_.threshold) - epsilon;
  const long mute = std::max<long>(
      0, static_cast<long>(std::floor(room / config_.max_step_norm)));

  WalRecord record;
  record.kind = WalRecord::Kind::kPartialResolution;
  record.partial_resolutions = partial_resolutions_;
  record.last_cycle_span = last_cycle_span_;
  AppendWal(record);

  RuntimeMessage resolved;
  resolved.type = RuntimeMessage::Type::kResolved;
  resolved.scalar = static_cast<double>(mute);
  resolved.span = resolve_span;
  resolved.parent_span = cycle_span_;
  SendBroadcast(std::move(resolved));
  CloseCycleSpan();  // the cascade ends with the dismissal broadcast
}

void CoordinatorNode::MaybeGrantRejoin(int site) {
  if (e_.empty()) return;  // pre-initialization: the first sync captures it
  if (fd_.IsQuarantined(site)) return;  // flapping: defer until it settles
  if (last_grant_cycle_[site] == cycle_) return;  // one grant per cycle
  last_grant_cycle_[site] = cycle_;
  const FailureDetector::State state = fd_.state(site);
  if (state == FailureDetector::State::kDead ||
      state == FailureDetector::State::kLagging) {
    fd_.BeginRejoin(site);
  }
  grant_pending_[site] = true;
  anchor_undelivered_[site] = false;  // this grant supersedes the lost anchor
  if (reliable_ != nullptr) reliable_->MarkLinkUp(site);
  ++audit_.rejoins_granted;
  // A rejoin grant is its own (single-node) causal tree: it re-anchors one
  // site outside any sync cascade.
  const std::int64_t grant_span = MintSpan();
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("reliability", "rejoin_grant", site,
                           {{"epoch", epoch_}, {"span", grant_span}});
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kRejoinGrant;
  record.site = site;
  AppendWal(record);

  RuntimeMessage grant;
  grant.type = RuntimeMessage::Type::kRejoinGrant;
  grant.from = kCoordinatorId;
  grant.to = site;
  grant.epoch = epoch_;
  grant.payload = e_;
  grant.scalar = epsilon_t_;
  grant.span = grant_span;
  transport_->Send(std::move(grant));
}

void CoordinatorNode::ObserveSite(int site, std::int64_t msg_epoch) {
  fd_.RecordAlive(site);
  const FailureDetector::State state = fd_.state(site);
  if (state != FailureDetector::State::kDead &&
      state != FailureDetector::State::kRejoining &&
      state != FailureDetector::State::kLagging) {
    // A live site that was already behind before this cycle began holds a
    // stale anchor it cannot detect on its own in a quiet period (gap
    // detection needs an inbound broadcast) — resync it proactively.
    // Lagging an in-cycle epoch bump is NOT staleness: retransmissions are
    // already delivering that round. A recorded anchor-delivery failure
    // overrides both: the site may be epoch-current yet un-anchored.
    if (msg_epoch < epoch_cycle_start_ || anchor_undelivered_[site]) {
      MaybeGrantRejoin(site);
    }
    return;
  }
  if (msg_epoch == epoch_ && !anchor_undelivered_[site]) {
    // The site is fully current — it missed nothing (e.g. a transport-level
    // give-up fired spuriously under heavy loss, a quarantined laggard
    // caught up within its epoch, or the rejoin handshake's fresh state
    // just arrived). Revive directly; a laggard's staleness window closes
    // inside CompleteRejoin.
    fd_.CompleteRejoin(site);
    if (reliable_ != nullptr) reliable_->MarkLinkUp(site);
  } else {
    MaybeGrantRejoin(site);
  }
}

void CoordinatorNode::OnLinkDead(int site, const RuntimeMessage& message) {
  fd_.ReportUnreachable(site);
  if (reliable_ != nullptr) reliable_->MarkLinkDown(site);
  // An anchor (estimate broadcast or rejoin grant) that never got through
  // leaves the site monitoring against a stale estimate even if it looks
  // alive and epoch-current later (it may have received the same round's
  // request but not its result). Remember, and re-grant on next contact.
  if (message.type == RuntimeMessage::Type::kNewEstimate ||
      message.type == RuntimeMessage::Type::kRejoinGrant) {
    anchor_undelivered_[site] = true;
  }
}

bool CoordinatorNode::AllLiveReported() const {
  for (int site = 0; site < num_sites_; ++site) {
    if (fd_.IsLive(site) && !received_[site]) return false;
  }
  return true;
}

void CoordinatorNode::CompleteCollection() {
  bool degraded = false;
  bool missing_live = false;
  for (int i = 0; i < num_sites_; ++i) {
    if (received_[i]) continue;
    degraded = true;
    missing_live = missing_live || fd_.IsLive(i);
    if (!last_known_[i].empty()) {
      collected_[i] = last_known_[i];
    }  // else: leave empty, FinishFullSync averages over the rest
  }
  if (degraded) {
    ++degraded_syncs_;
    // Dead sites re-enter via the rejoin path (which schedules its own
    // resync); only transient losses from live sites warrant one here.
    if (missing_live) ScheduleResync(config_.degraded_resync_cycles);
  }
  FinishFullSync(degraded);
}

void CoordinatorNode::OnMessage(const RuntimeMessage& message) {
  const int site = message.from;
  SGM_CHECK(site >= 0 && site < num_sites_);
  // The coordinator is the epoch authority; sites only ever echo epochs it
  // issued, so a message from the future is a protocol bug.
  SGM_CHECK_MSG(message.epoch <= epoch_, "message from a future epoch");
  ObserveSite(site, message.epoch);

  // ── Epoch fence ────────────────────────────────────────────────────────
  // Data from an older round is dropped, never applied. Control traffic is
  // exempt: heartbeats and rejoin requests legitimately carry the stale
  // epoch of a site that fell behind (ObserveSite above acted on them).
  const bool control = message.type == RuntimeMessage::Type::kHeartbeat ||
                       message.type == RuntimeMessage::Type::kRejoinRequest;
  if (!control && message.epoch < epoch_) {
    ++audit_.stale_epoch_drops;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("protocol", "stale_epoch_drop", kCoordinatorId,
                             {{"msg_epoch", message.epoch}});
    }
    return;
  }

  switch (message.type) {
    case RuntimeMessage::Type::kHeartbeat:
      return;  // liveness only; ObserveSite already recorded it
    case RuntimeMessage::Type::kRejoinRequest: {
      // Sites request a rejoin whenever they detect an epoch gap — also
      // after short outages the failure detector never saw.
      MaybeGrantRejoin(site);
      return;
    }
    case RuntimeMessage::Type::kLocalViolation: {
      if (phase_ != Phase::kIdle || alarm_this_cycle_) return;  // coalesce
      alarm_this_cycle_ = true;
      BumpEpoch();  // the probe round begins
      EnsureCycleSpan("local_violation");
      phase_span_ = TagSpan(MintSpan());
      phase_ = Phase::kProbing;
      probe_drift_.assign(num_sites_, Vector());
      probe_g_.assign(num_sites_, 0.0);
      probe_reports_ = 0;
      if (telemetry_ != nullptr) {
        telemetry_->trace.Emit("protocol", "probe_begin", kCoordinatorId,
                               {{"epoch", epoch_},
                                {"span", phase_span_},
                                {"parent", cycle_span_}});
      }
      RuntimeMessage probe;
      probe.type = RuntimeMessage::Type::kProbeRequest;
      probe.span = phase_span_;
      probe.parent_span = cycle_span_;
      SendBroadcast(std::move(probe));
      return;
    }
    case RuntimeMessage::Type::kDriftReport: {
      if (phase_ != Phase::kProbing) return;
      if (message.epoch != epoch_) {  // fencing audit: must be unreachable
        ++audit_.stale_epoch_applied;
        return;
      }
      SGM_CHECK_MSG(message.scalar > 0.0,
                    "drift report with non-positive inclusion probability");
      if (probe_g_[site] > 0.0) return;  // first first-trial report wins
      probe_g_[site] = message.scalar;
      probe_drift_[site] = message.payload;
      ++probe_reports_;
      return;
    }
    case RuntimeMessage::Type::kStateReport: {
      if (message.epoch != epoch_) {  // fencing audit: must be unreachable
        ++audit_.stale_epoch_applied;
        return;
      }
      last_known_[site] = message.payload;
      if (grant_pending_[site]) {
        // Rejoin handshake complete: the granted site shipped fresh state.
        // Fold its data back into the estimate via a scheduled resync.
        grant_pending_[site] = false;
        ScheduleResync(config_.rejoin_resync_cycles);
      }
      if (phase_ != Phase::kCollecting) {
        // Same-round straggler (after a degraded completion) or the rejoin
        // handshake's fresh state: last-known is refreshed, nothing else.
        ++audit_.late_reports;
        if (telemetry_ != nullptr) {
          telemetry_->trace.Emit("protocol", "late_report", kCoordinatorId,
                                 {{"site", site}});
        }
        return;
      }
      if (!received_[site]) {
        received_[site] = true;
        collected_[site] = message.payload;
        ++received_count_;
      }
      if (received_count_ == num_sites_) FinishFullSync(false);  // clean
      return;
    }
    default:
      return;  // coordinator-originated types are not addressed to us
  }
}

bool CoordinatorNode::OnBarrierDeadlineMissed(int site) {
  SGM_CHECK(site >= 0 && site < num_sites_);
  if (!fd_.RecordMissedDeadline(site)) return false;
  // Quarantined: release its pending ack expectations so neither the
  // barrier loop nor the retransmission machinery waits on it. The TCP
  // session (if any) stays up — the laggard's eventual catch-up traffic
  // drives the ordinary rejoin-grant handshake through ObserveSite.
  if (reliable_ != nullptr && reliable_->IsLinkUp(site)) {
    reliable_->MarkLinkDown(site);
  }
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("degraded", "site_quarantined", site,
                           {{"cycle", cycle_}});
  }
  return true;
}

void CoordinatorNode::OnBarrierDeadlineMet(int site) {
  SGM_CHECK(site >= 0 && site < num_sites_);
  fd_.RecordDeadlineMet(site);
}

void CoordinatorNode::RecordDegradedCycle(int missing_sites) {
  ++degraded_cycles_;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("degraded", "degraded_cycle", kCoordinatorId,
                           {{"cycle", cycle_}, {"missing", missing_sites}});
  }
}

void CoordinatorNode::OnQuiescent() {
  if (phase_ == Phase::kCollecting) {
    if (received_count_ == 0) {
      // The entire collection round was swallowed (e.g. the very first
      // request on a lossy network): go idle and retry shortly. The retry
      // opens a fresh cascade, so this tree ends here.
      phase_ = Phase::kIdle;
      CloseCycleSpan();
      ScheduleResync(config_.empty_collection_retry_cycles);
      return;
    }
    if (!AllLiveReported() && sync_retries_ < config_.max_sync_retries) {
      // Per-epoch sync deadline: re-request the live stragglers directly
      // (same epoch — this continues the round, it does not start one).
      ++sync_retries_;
      for (int site = 0; site < num_sites_; ++site) {
        if (received_[site] || !fd_.IsLive(site)) continue;
        ++audit_.sync_rerequests;
        if (telemetry_ != nullptr) {
          telemetry_->trace.Emit("protocol", "sync_rerequest", kCoordinatorId,
                                 {{"epoch", epoch_},
                                  {"site", site},
                                  {"span", phase_span_}});
        }
        RuntimeMessage request;
        request.type = RuntimeMessage::Type::kFullStateRequest;
        request.from = kCoordinatorId;
        request.to = site;
        request.epoch = epoch_;
        request.span = phase_span_;  // same round, same span
        request.parent_span = cycle_span_;
        transport_->Send(std::move(request));
      }
      return;  // still collecting; the re-requests re-arm the transport
    }
    CompleteCollection();
    return;
  }
  if (phase_ != Phase::kProbing) return;
  // All first-trial drift reports for this alarm have arrived: form the HT
  // estimate and vet the alarm (Section 2.2's partial synchronization).
  // The estimator reweights over the live population — dead sites are not
  // part of the sample frame.
  const int live = std::max(1, fd_.live_count());
  Vector v_hat = e_;
  bool estimate_switched = false;
  bool ball_crosses = false;
  {
    ScopedTimer timer(ht_estimate_ns_);
    // Fold the buffered reports in site-id order — the sum is then a pure
    // function of the report set, not of the order the network delivered it.
    Vector probe_weighted_sum(e_.dim());
    for (int site = 0; site < num_sites_; ++site) {
      if (probe_g_[site] <= 0.0) continue;
      probe_weighted_sum.Axpy(1.0 / probe_g_[site], probe_drift_[site]);
    }
    v_hat.Axpy(1.0 / static_cast<double>(live), probe_weighted_sum);
    const double U = CurrentU();
    const double epsilon = std::min(BernsteinEpsilon(config_.delta, U),
                                    0.5 * epsilon_t_);
    estimate_switched =
        (function_->Value(v_hat) > config_.threshold) != believes_above_;
    ball_crosses = function_->BallCrossesThreshold(Ball(v_hat, epsilon),
                                                   config_.threshold);
  }
  if (estimate_switched || ball_crosses) {
    RequestFullState();
  } else {
    ResolvePartial(v_hat);
  }
}

}  // namespace sgm
