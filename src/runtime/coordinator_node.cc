#include "runtime/coordinator_node.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "estimators/horvitz_thompson.h"
#include "estimators/tail_bounds.h"
#include "geometry/ball.h"

namespace sgm {

CoordinatorNode::CoordinatorNode(int num_sites,
                                 const MonitoredFunction& function,
                                 const RuntimeConfig& config,
                                 Transport* transport)
    : num_sites_(num_sites),
      function_(function.Clone()),
      config_(config),
      transport_(transport) {
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(transport != nullptr);
}

double CoordinatorNode::CurrentU() const {
  const double accumulated =
      config_.max_step_norm *
      static_cast<double>(std::max<long>(1, cycles_since_sync_));
  const double threshold_scale =
      config_.u_threshold_factor *
      std::max(epsilon_t_, config_.max_step_norm);
  return std::min({accumulated, config_.drift_norm_cap, threshold_scale});
}

void CoordinatorNode::Start() { RequestFullState(); }

void CoordinatorNode::BeginCycle() {
  if (phase_ == Phase::kIdle) {
    alarm_this_cycle_ = false;
    ++cycles_since_sync_;
    if (retry_full_in_ > 0 && --retry_full_in_ == 0) {
      retry_full_in_ = -1;
      RequestFullState();
    }
  }
}

void CoordinatorNode::RequestFullState() {
  phase_ = Phase::kCollecting;
  collected_.assign(num_sites_, Vector());
  received_.assign(num_sites_, false);
  received_count_ = 0;
  RuntimeMessage request;
  request.type = RuntimeMessage::Type::kFullStateRequest;
  request.from = kCoordinatorId;
  request.to = kBroadcastId;
  transport_->Send(request);
}

void CoordinatorNode::FinishFullSync() {
  // A degraded sync may hold no vector at all for a site that has never
  // managed to report; average over the sites we have state for.
  Vector sum;
  int have = 0;
  for (const Vector& v : collected_) {
    if (v.empty()) continue;
    if (sum.empty()) sum = Vector(v.dim());
    sum.Axpy(1.0, v);
    ++have;
  }
  SGM_CHECK(have > 0);
  sum /= static_cast<double>(have);
  e_ = sum;
  function_->OnSync(e_);
  believes_above_ = function_->Value(e_) > config_.threshold;
  epsilon_t_ = function_->DistanceToSurface(e_, config_.threshold);
  cycles_since_sync_ = 0;
  ++full_syncs_;
  phase_ = Phase::kIdle;

  RuntimeMessage estimate;
  estimate.type = RuntimeMessage::Type::kNewEstimate;
  estimate.from = kCoordinatorId;
  estimate.to = kBroadcastId;
  estimate.payload = e_;
  estimate.scalar = epsilon_t_;
  transport_->Send(estimate);
}

void CoordinatorNode::ResolvePartial(const Vector& v_hat) {
  ++partial_resolutions_;
  phase_ = Phase::kIdle;
  // Certified cooldown (see SgmOptions::certified_cooldown): the average
  // cannot cross for (D − ε)/max_step cycles.
  const double U = CurrentU();
  const double epsilon = std::min(BernsteinEpsilon(config_.delta, U),
                                  0.5 * epsilon_t_);
  const double room =
      function_->DistanceToSurface(v_hat, config_.threshold) - epsilon;
  const long mute = std::max<long>(
      0, static_cast<long>(std::floor(room / config_.max_step_norm)));

  RuntimeMessage resolved;
  resolved.type = RuntimeMessage::Type::kResolved;
  resolved.from = kCoordinatorId;
  resolved.to = kBroadcastId;
  resolved.scalar = static_cast<double>(mute);
  transport_->Send(resolved);
}

void CoordinatorNode::OnMessage(const RuntimeMessage& message) {
  switch (message.type) {
    case RuntimeMessage::Type::kLocalViolation: {
      if (phase_ != Phase::kIdle || alarm_this_cycle_) return;  // coalesce
      alarm_this_cycle_ = true;
      phase_ = Phase::kProbing;
      probe_weighted_sum_ = Vector(e_.dim());
      probe_reports_ = 0;
      RuntimeMessage probe;
      probe.type = RuntimeMessage::Type::kProbeRequest;
      probe.from = kCoordinatorId;
      probe.to = kBroadcastId;
      transport_->Send(probe);
      return;
    }
    case RuntimeMessage::Type::kDriftReport: {
      if (phase_ != Phase::kProbing) return;
      SGM_CHECK_MSG(message.scalar > 0.0,
                    "drift report with non-positive inclusion probability");
      probe_weighted_sum_.Axpy(1.0 / message.scalar, message.payload);
      ++probe_reports_;
      return;
    }
    case RuntimeMessage::Type::kStateReport: {
      if (phase_ != Phase::kCollecting) return;
      SGM_CHECK(message.from >= 0 && message.from < num_sites_);
      if (last_known_.empty()) last_known_.assign(num_sites_, Vector());
      last_known_[message.from] = message.payload;
      if (!received_[message.from]) {
        received_[message.from] = true;
        collected_[message.from] = message.payload;
        ++received_count_;
      }
      if (received_count_ == num_sites_) FinishFullSync();
      return;
    }
    default:
      return;  // coordinator-originated types are not addressed to us
  }
}

void CoordinatorNode::OnQuiescent() {
  if (phase_ == Phase::kCollecting) {
    // The transport has drained but reports are missing: lost messages or
    // dead sites. Degrade gracefully — fall back to each absent site's
    // last-known vector, or exclude a site we have never heard from, rather
    // than deadlocking the whole deployment.
    if (received_count_ == 0) {
      // The entire collection round was swallowed (e.g. the very first
      // request on a lossy network): go idle and retry next cycle.
      phase_ = Phase::kIdle;
      retry_full_in_ = 1;
      return;
    }
    bool degraded = false;
    for (int i = 0; i < num_sites_; ++i) {
      if (received_[i]) continue;
      degraded = true;
      if (!last_known_.empty() && !last_known_[i].empty()) {
        collected_[i] = last_known_[i];
      }  // else: leave empty, FinishFullSync averages over the rest
    }
    if (degraded) {
      ++degraded_syncs_;
      retry_full_in_ = 5;  // re-establish a consistent anchor soon
    }
    FinishFullSync();
    return;
  }
  if (phase_ != Phase::kProbing) return;
  // All first-trial drift reports for this alarm have arrived: form the HT
  // estimate and vet the alarm (Section 2.2's partial synchronization).
  Vector v_hat = e_;
  v_hat.Axpy(1.0 / static_cast<double>(num_sites_), probe_weighted_sum_);

  const double U = CurrentU();
  const double epsilon = std::min(BernsteinEpsilon(config_.delta, U),
                                  0.5 * epsilon_t_);
  const bool estimate_switched =
      (function_->Value(v_hat) > config_.threshold) != believes_above_;
  const bool ball_crosses = function_->BallCrossesThreshold(
      Ball(v_hat, epsilon), config_.threshold);
  if (estimate_switched || ball_crosses) {
    RequestFullState();
  } else {
    ResolvePartial(v_hat);
  }
}

}  // namespace sgm
