#ifndef SGM_RUNTIME_COORDINATOR_NODE_H_
#define SGM_RUNTIME_COORDINATOR_NODE_H_

#include <memory>
#include <vector>

#include "functions/monitored_function.h"
#include "runtime/message.h"
#include "runtime/site_node.h"  // RuntimeConfig
#include "runtime/transport.h"

namespace sgm {

/// The top-tier node of the SGM runtime: collects violations, runs the
/// partial-synchronization vetting over drift reports, escalates to full
/// synchronizations, and broadcasts fresh estimates.
///
/// Driven entirely by messages plus one BeginCycle() tick; holds no site
/// data beyond what the protocol legitimately ships.
class CoordinatorNode {
 public:
  CoordinatorNode(int num_sites, const MonitoredFunction& function,
                  const RuntimeConfig& config, Transport* transport);

  /// Kicks off the initialization synchronization (first full state
  /// collection); call once after all sites hold their first vectors.
  void Start();

  /// Marks the beginning of an update cycle (resets per-cycle alarm state).
  void BeginCycle();

  /// Handles a site message; may emit probe/state requests, resolutions or
  /// new estimates.
  void OnMessage(const RuntimeMessage& message);

  /// Called by the driver when the transport has drained: an in-flight
  /// probe is then complete (every first-trial report has arrived) and the
  /// partial-synchronization decision is taken.
  void OnQuiescent();

  /// The continuous query answer: is f(v(t)) above the threshold?
  bool BelievesAbove() const { return believes_above_; }
  const Vector& estimate() const { return e_; }
  double epsilon_T() const { return epsilon_t_; }

  long full_syncs() const { return full_syncs_; }
  long partial_resolutions() const { return partial_resolutions_; }

  /// Full synchronizations completed with one or more site reports missing
  /// (lost messages / dead sites), using each absent site's last-known
  /// vector instead. Nonzero values mean the estimate e carries staleness —
  /// surface this in deployment health metrics.
  long degraded_syncs() const { return degraded_syncs_; }

 private:
  enum class Phase { kIdle, kProbing, kCollecting };

  double CurrentU() const;
  void RequestFullState();
  void FinishFullSync();
  void ResolvePartial(const Vector& v_hat);

  int num_sites_;
  std::unique_ptr<MonitoredFunction> function_;
  RuntimeConfig config_;
  Transport* transport_;

  Phase phase_ = Phase::kIdle;
  bool alarm_this_cycle_ = false;
  Vector e_;
  bool believes_above_ = false;
  double epsilon_t_ = 0.0;
  long cycles_since_sync_ = 0;
  long full_syncs_ = 0;
  long partial_resolutions_ = 0;
  long degraded_syncs_ = 0;
  /// After a degraded sync the estimate mixes stale vectors while sites
  /// re-anchored to fresh ones — an inconsistency that could silently mask
  /// crossings. A follow-up full sync is scheduled this many cycles out and
  /// repeats until one completes cleanly.
  long retry_full_in_ = -1;

  /// Last vector each site ever reported (fallback for lost reports).
  std::vector<Vector> last_known_;

  // Partial-sync probe state: HT accumulation over first-trial reports.
  Vector probe_weighted_sum_;
  int probe_reports_ = 0;
  int probe_deadline_round_ = 0;

  // Full-sync collection state.
  std::vector<Vector> collected_;
  std::vector<bool> received_;
  int received_count_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_COORDINATOR_NODE_H_
