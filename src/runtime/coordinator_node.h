#ifndef SGM_RUNTIME_COORDINATOR_NODE_H_
#define SGM_RUNTIME_COORDINATOR_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "functions/monitored_function.h"
#include "runtime/checkpoint.h"
#include "runtime/failure_detector.h"
#include "runtime/message.h"
#include "runtime/reliable_transport.h"
#include "runtime/site_node.h"  // RuntimeConfig
#include "runtime/transport.h"

namespace sgm {

/// The top-tier node of the SGM runtime: collects violations, runs the
/// partial-synchronization vetting over drift reports, escalates to full
/// synchronizations, and broadcasts fresh estimates.
///
/// Driven entirely by messages plus one BeginCycle() tick; holds no site
/// data beyond what the protocol legitimately ships.
///
/// ── Epoch fencing ───────────────────────────────────────────────────────
/// The coordinator is the epoch authority: every sync round (probe or full
/// collection) increments a monotone epoch, stamped on all outgoing
/// messages and echoed back by the sites. Inbound data messages from an
/// older epoch are answers to a round that already completed — they are
/// dropped and counted, never applied. Control messages (heartbeats,
/// rejoin requests) are exempt: a stale epoch there is exactly the signal
/// that a site fell behind.
///
/// ── Failure handling ────────────────────────────────────────────────────
/// A FailureDetector tracks per-site liveness from the messages flowing
/// through OnMessage (plus standalone heartbeats from quiet sites) and
/// from transport-level give-ups reported via the attached
/// ReliableTransport. Dead sites leave the sample pool — the HT probe
/// estimate reweights over the live count, and full-sync completion only
/// waits on live sites. A dead site that reappears with a *current* epoch
/// is revived directly (it missed nothing); one that reappears behind goes
/// through the rejoin handshake: kRejoinGrant re-anchors it (estimate +
/// ε_T + epoch), its fresh kStateReport completes the handshake, and a
/// full resync is scheduled shortly after so its data re-enters the
/// estimate. Flapping sites are quarantined by the detector and their
/// grants deferred.
///
/// ── Crash consistency ───────────────────────────────────────────────────
/// With a CheckpointStore configured, the coordinator persists a full
/// snapshot every checkpoint_interval_cycles and write-ahead-logs every
/// externally visible state mutation between snapshots (epoch bumps, sync
/// commits, partial resolutions, rejoin grants) — each record appended
/// *before* the message that announces it hits the wire, so no epoch or
/// estimate a site has ever seen can be lost by a crash. Recover() rebuilds
/// from the newest decodable snapshot plus its committed WAL suffix, bumps
/// the epoch once more so every pre-crash in-flight frame is fenced by the
/// ordinary epoch machinery, and re-anchors all reachable sites through the
/// rejoin-grant handshake before monitoring resumes. In-flight probe or
/// collection rounds are deliberately not checkpointed: recovery restores
/// to kIdle and the scheduled-resync machinery re-derives anything lost.
class CoordinatorNode {
 public:
  CoordinatorNode(int num_sites, const MonitoredFunction& function,
                  const RuntimeConfig& config, Transport* transport);

  /// Wires the reliability layer in: transport give-ups feed the failure
  /// detector, and link up/down administration follows site liveness.
  /// Optional — without it the coordinator runs over a bare transport.
  void AttachReliability(ReliableTransport* reliable);

  /// Kicks off the initialization synchronization (first full state
  /// collection); call once after all sites hold their first vectors.
  /// Writes the baseline snapshot first when a checkpoint store is
  /// configured, so there is always a recovery candidate.
  void Start();

  /// Restores coordinator state from the configured checkpoint store after
  /// a crash: newest decodable snapshot + committed WAL records, epoch
  /// fence bump, fresh post-recovery snapshot, then a site reconciliation
  /// round over the rejoin-grant handshake. Returns false when the store
  /// holds no decodable snapshot (the caller decides whether that is
  /// fatal). Call on a freshly constructed node, in place of Start().
  bool Recover();

  /// Marks the beginning of an update cycle: advances the failure
  /// detector's clock, applies newly-detected deaths to the link state, and
  /// runs due scheduled resyncs.
  void BeginCycle();

  /// Handles a site message; may emit probe/state requests, resolutions,
  /// new estimates or rejoin grants.
  void OnMessage(const RuntimeMessage& message);

  /// Called by the driver when the transport has drained: an in-flight
  /// probe is then complete (every first-trial report has arrived) and the
  /// partial-synchronization decision is taken; an in-flight collection
  /// either re-requests stragglers (bounded by max_sync_retries) or
  /// completes, degraded if live reports are still missing.
  void OnQuiescent();

  /// Barrier-deadline feedback from a deadline-bounded barrier driver
  /// (the socket server's AwaitQuiescence, or the stress harness's stall
  /// schedule). A miss feeds the failure detector's lagging escalation; on
  /// the kLagging transition the site's pending ack expectations are
  /// released (link administratively down) so barriers and retransmissions
  /// stop waiting on it, while its TCP session — if any — stays up.
  /// Returns true exactly when this call quarantined the site.
  bool OnBarrierDeadlineMissed(int site);
  /// The site acked its barrier within the deadline: resets its
  /// consecutive-miss count.
  void OnBarrierDeadlineMet(int site);
  /// Marks the current cycle degraded: its barrier closed over the
  /// responsive quorum with `missing_sites` sites still silent. Called at
  /// most once per cycle by the barrier driver.
  void RecordDegradedCycle(int missing_sites);
  /// Cycles whose barrier closed over a responsive quorum only.
  long degraded_cycles() const { return degraded_cycles_; }

  /// Forces a snapshot write outside the periodic schedule (the graceful
  /// shutdown path's final checkpoint). No-op without a store.
  void FlushCheckpoint() { WriteSnapshot(); }

  /// The continuous query answer: is f(v(t)) above the threshold?
  bool BelievesAbove() const { return believes_above_; }
  const Vector& estimate() const { return e_; }
  double epsilon_T() const { return epsilon_t_; }

  long full_syncs() const { return full_syncs_; }
  long partial_resolutions() const { return partial_resolutions_; }

  /// Full synchronizations completed with one or more site reports missing
  /// (lost messages / dead sites), using each absent site's last-known
  /// vector instead. Nonzero values mean the estimate e carries staleness —
  /// surface this in deployment health metrics.
  long degraded_syncs() const { return degraded_syncs_; }

  /// Current epoch (== number of sync rounds started since Start()).
  std::int64_t epoch() const { return epoch_; }
  const FailureDetector& failure_detector() const { return fd_; }

  /// Root span of the most recent sync cascade (sticky: survives cascade
  /// completion so post-cycle auditors can attribute their verdicts to the
  /// cycle that produced the current belief). 0 before the first cascade.
  std::int64_t cycle_span() const { return last_cycle_span_; }

  /// Epoch-fencing and reliability audit counters (dst_stress invariants),
  /// snapshotted as one struct so invariant checks read a coherent view.
  struct AuditStats {
    long stale_epoch_drops = 0;
    /// Stale-epoch messages that reached an apply path — must stay zero
    /// (the fence increments the drop counter instead); checked by the
    /// "no stale-epoch message applied" invariant.
    long stale_epoch_applied = 0;
    /// Same-epoch state reports that arrived after their round completed
    /// (benign: they refresh last-known state only).
    long late_reports = 0;
    long rejoins_granted = 0;
    /// Unicast straggler re-requests issued under the per-epoch deadline.
    long sync_rerequests = 0;
  };
  AuditStats audit() const { return audit_; }

  /// Checkpoint/recovery activity counters for this incarnation (an
  /// incarnation performs at most one restore, at birth). The driver
  /// accumulates them across incarnations into the `recovery.*` metrics.
  struct RecoveryStats {
    long restores = 0;
    long snapshots_written = 0;
    long wal_records = 0;           ///< appended by this incarnation
    long wal_records_replayed = 0;  ///< replayed during this restore
    long snapshots_discarded = 0;   ///< torn/corrupt snapshots skipped
    long torn_wal_bytes = 0;        ///< WAL tail bytes rejected on restore
    long reconcile_grants = 0;      ///< reconciliation grants issued
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Last update cycle this node has begun (restored by Recover — a
  /// restarted deployment driver resumes its cycle numbering from here).
  long cycle() const { return cycle_; }

 private:
  enum class Phase { kIdle, kProbing, kCollecting };

  double CurrentU() const;
  void SendBroadcast(RuntimeMessage message);
  /// Next causal span id from the logical counter (never random — replaying
  /// a seed must reproduce identical spans). Minted unconditionally: spans
  /// are protocol-carried wire fields, so message content cannot depend on
  /// whether telemetry is attached.
  std::int64_t MintSpan() { return ++next_span_; }
  /// Applies the in-flight cascade's sampling decision to a freshly minted
  /// span: unsampled cascades get kSpanUnsampledBit ORed in, so every
  /// process that sees the span (sites echo it verbatim) skips its trace
  /// formatting while the wire format — a fixed-width i64 either way — and
  /// all counters stay untouched. At rate 1.0 this is the identity.
  std::int64_t TagSpan(std::int64_t span) const;
  /// Opens the root span of a sync cascade if none is active and traces the
  /// sync_cycle_begin event. `trigger` names what started the cascade.
  void EnsureCycleSpan(const char* trigger);
  /// Marks the in-flight cascade finished (spans only; phase_ is managed by
  /// the protocol logic).
  void CloseCycleSpan();
  /// Starts a new collection round (fresh epoch).
  void RequestFullState();
  /// Advances the epoch (sync-round counter) and traces the bump.
  void BumpEpoch();
  void FinishFullSync(bool degraded);
  void ResolvePartial(const Vector& v_hat);
  /// Merges a new wish into the pending resync schedule (soonest wins).
  void ScheduleResync(long cycles);
  /// Liveness bookkeeping for any inbound site message: feeds the failure
  /// detector and drives revival / rejoin of dead sites.
  void ObserveSite(int site, std::int64_t epoch);
  void MaybeGrantRejoin(int site);
  /// Transport give-up delivering `message` to `site` (reliability layer).
  void OnLinkDead(int site, const RuntimeMessage& message);
  bool AllLiveReported() const;
  /// Completes the in-flight collection with whatever arrived, folding in
  /// last-known vectors for the missing sites.
  void CompleteCollection();
  /// Captures the full durable state into a checkpoint struct.
  CoordinatorCheckpoint BuildCheckpoint() const;
  /// Persists a snapshot to the configured store (no-op without one).
  void WriteSnapshot();
  /// Stamps cycle/epoch/next_span onto `record` and appends it to the WAL
  /// (no-op without a store). Must run before the mutation's message is
  /// sent, so nothing on the wire is ever ahead of the log.
  void AppendWal(WalRecord record);

  int num_sites_;
  std::unique_ptr<MonitoredFunction> function_;
  RuntimeConfig config_;
  Transport* transport_;
  ReliableTransport* reliable_ = nullptr;
  Telemetry* telemetry_;
  /// Cached latency histograms (nullptr when telemetry is off, which
  /// disables the profiling scopes entirely — no clock reads).
  Histogram* ht_estimate_ns_ = nullptr;
  Histogram* full_sync_ns_ = nullptr;
  Histogram* restore_ns_ = nullptr;
  FailureDetector fd_;
  RecoveryStats recovery_stats_;

  Phase phase_ = Phase::kIdle;
  bool alarm_this_cycle_ = false;
  Vector e_;
  bool believes_above_ = false;
  double epsilon_t_ = 0.0;
  long cycle_ = 0;
  long cycles_since_sync_ = 0;
  long full_syncs_ = 0;
  long partial_resolutions_ = 0;
  long degraded_syncs_ = 0;
  /// Cycles closed over a responsive quorum under a barrier deadline.
  /// Observability state, like the audit counters — not checkpointed.
  long degraded_cycles_ = 0;
  /// Cycles until the next scheduled full resync (−1: none pending). Fed by
  /// the named RuntimeConfig knobs: empty_collection_retry_cycles,
  /// degraded_resync_cycles and rejoin_resync_cycles.
  long retry_full_in_ = -1;

  /// Causal-span counter (logical, coordinator-authoritative; sites never
  /// mint — they echo the span of the request they answer).
  std::int64_t next_span_ = 0;
  /// Root span of the in-flight sync cascade (0 when none active). A probe
  /// that escalates to a full sync keeps its root, so the whole
  /// local-violation → probe → full-sync chain is one tree.
  std::int64_t cycle_span_ = 0;
  /// Span of the in-flight probe/collection round (child of cycle_span_).
  std::int64_t phase_span_ = 0;
  /// Most recent root span, kept after the cascade completes.
  std::int64_t last_cycle_span_ = 0;
  /// Head-based sampling decision for the in-flight cascade, minted with
  /// its root span (TraceSampleDecision over the raw root id). True at
  /// rate 1.0 and between cascades.
  bool cascade_sampled_ = true;

  std::int64_t epoch_ = 0;
  /// Epoch at the top of the current cycle. A live site whose message
  /// carries an epoch below this was behind *before* this cycle's rounds
  /// began — genuine staleness (it may hold a stale anchor it cannot detect
  /// in a quiet period), as opposed to lagging an in-cycle epoch bump that
  /// retransmissions are already fixing.
  std::int64_t epoch_cycle_start_ = 0;
  /// Straggler re-requests issued for the in-flight collection round.
  int sync_retries_ = 0;

  /// Last vector each site ever reported (fallback for lost reports).
  std::vector<Vector> last_known_;
  /// Rate limit: at most one rejoin grant per site per cycle.
  std::vector<long> last_grant_cycle_;
  /// Sites whose pending rejoin came from a grant (as opposed to a
  /// current-epoch revival): completing it schedules a resync.
  std::vector<bool> grant_pending_;
  /// Sites for which an anchor-carrying message (kNewEstimate /
  /// kRejoinGrant) exhausted its retransmissions: re-grant on next contact
  /// even if the site looks alive and epoch-current.
  std::vector<bool> anchor_undelivered_;

  AuditStats audit_;

  // Partial-sync probe state: first-trial drift reports buffered per site
  // (first report wins) and folded in site-id order at quiescence, so the
  // HT estimate is independent of network arrival order — the socket
  // runtime, where interleaving is scheduler-dependent, produces the same
  // floating-point result as the deterministic simulation.
  std::vector<Vector> probe_drift_;
  std::vector<double> probe_g_;
  int probe_reports_ = 0;

  // Full-sync collection state.
  std::vector<Vector> collected_;
  std::vector<bool> received_;
  int received_count_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_COORDINATOR_NODE_H_
