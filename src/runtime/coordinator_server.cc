#include "runtime/coordinator_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>

#include "core/check.h"
#include "obs/telemetry.h"

namespace sgm {

CoordinatorServer::CoordinatorServer(const MonitoredFunction& function,
                                     const CoordinatorServerConfig& config)
    : config_(config),
      clock_(config.round_micros),
      registered_(config.num_sites, false) {
  SGM_CHECK(config.num_sites > 0);
  config_.runtime.reliability.round_clock = &clock_;
  reliable_ = std::make_unique<ReliableTransport>(
      &transport_, config_.num_sites, config_.runtime.reliability,
      config_.runtime.telemetry);
  coordinator_ = std::make_unique<CoordinatorNode>(
      config_.num_sites, function, config_.runtime, reliable_.get());
  coordinator_->AttachReliability(reliable_.get());
}

CoordinatorServer::~CoordinatorServer() { Shutdown(); }

bool CoordinatorServer::Listen() {
  SGM_CHECK(listen_fd_ < 0);
  listen_fd_ = ListenTcpLoopback(config_.port, &bound_port_);
  return listen_fd_ >= 0;
}

bool CoordinatorServer::WaitForSites() {
  SGM_CHECK(listen_fd_ >= 0);
  accept_thread_ = std::thread(&CoordinatorServer::AcceptLoop, this);
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(
      lock, std::chrono::milliseconds(config_.hello_timeout_ms),
      [this] { return hellos_ == config_.num_sites; });
}

void CoordinatorServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    session_fds_.push_back(fd);
    readers_.emplace_back(&CoordinatorServer::ReaderLoop, this, fd);
  }
}

void CoordinatorServer::ReaderLoop(int fd) {
  FrameReader reader;
  std::array<std::uint8_t, 65536> buffer;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;  // peer closed (or Shutdown's SHUT_RD)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
    std::vector<RuntimeMessage> frames;
    FrameStats stats;
    const bool stream_ok = DrainDecodedFrames(&reader, &frames, &stats);
    bool keep = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      corrupt_frames_ += stats.corrupt;
      for (const RuntimeMessage& message : frames) {
        keep = HandleFrame(fd, message) && keep;
      }
    }
    cv_.notify_all();
    if (!stream_ok || !keep) {
      // Poisoned stream or rejected registration: cut the connection.
      ::shutdown(fd, SHUT_RDWR);
      break;
    }
  }
}

bool CoordinatorServer::HandleFrame(int fd, const RuntimeMessage& message) {
  switch (message.type) {
    case RuntimeMessage::Type::kSiteHello: {
      const int site = message.from;
      if (site < 0 || site >= config_.num_sites || registered_[site]) {
        return false;  // bad id or a second claimant for a taken id
      }
      registered_[site] = true;
      transport_.RegisterPeer(site, fd);
      ++hellos_;
      if (config_.runtime.telemetry != nullptr) {
        config_.runtime.telemetry->trace.Emit("session", "site_hello", site,
                                              {{"fd", fd}});
      }
      return true;
    }
    case RuntimeMessage::Type::kBarrierAck:
      if (static_cast<long>(message.scalar) == barrier_token_) {
        ++barrier_acks_;
      }
      return true;
    case RuntimeMessage::Type::kCycleBegin:
    case RuntimeMessage::Type::kBarrier:
    case RuntimeMessage::Type::kShutdown:
      return true;  // coordinator-originated control echoed back: ignore
    default: {
      // Ordinary protocol traffic: through the receive-side reliability
      // layer (ack/dedup), then into the node — the sim driver's Deliver().
      if (message.counts_as_protocol_traffic()) {
        ++site_messages_received_;
        site_bytes_received_ += WireBytes(message);
      }
      std::vector<RuntimeMessage> fresh;
      reliable_->OnDeliver(kCoordinatorId, message, &fresh);
      for (const RuntimeMessage& m : fresh) coordinator_->OnMessage(m);
      return true;
    }
  }
}

void CoordinatorServer::BroadcastControl(RuntimeMessage::Type type,
                                         double scalar) {
  RuntimeMessage message;
  message.type = type;
  message.from = kCoordinatorId;
  message.to = kBroadcastId;
  message.scalar = scalar;
  transport_.Send(message);
}

bool CoordinatorServer::RunCycle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++cycle_;
    if (config_.runtime.telemetry != nullptr) {
      config_.runtime.telemetry->SetCycle(cycle_);
    }
    // kCycleBegin goes out before the protocol hook runs, so anything the
    // hook broadcasts (a scheduled resync, the initialization collection)
    // lands *after* the observe trigger on every site's stream — the sim
    // driver's "BeginCycle queues, sites observe, then delivery" ordering.
    BroadcastControl(RuntimeMessage::Type::kCycleBegin,
                     static_cast<double>(cycle_));
    if (cycle_ == 0) {
      coordinator_->Start();
    } else {
      coordinator_->BeginCycle();
    }
  }
  if (!AwaitQuiescence()) return false;
  PublishMetrics();
  return true;
}

bool CoordinatorServer::AwaitQuiescence() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.barrier_timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const long snapshot = transport_.data_frames_sent();
    const long token = ++barrier_token_;
    barrier_acks_ = 0;
    RuntimeMessage barrier;
    barrier.type = RuntimeMessage::Type::kBarrier;
    barrier.from = kCoordinatorId;
    barrier.to = kBroadcastId;
    barrier.scalar = static_cast<double>(token);
    transport_.Send(barrier);
    while (barrier_acks_ < config_.num_sites) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      cv_.wait_for(lock, std::chrono::milliseconds(10));
      // The retransmission clock keeps running while we wait: a site that
      // lost its connection mid-cycle must still hit the give-up horizon.
      reliable_->AdvanceRound();
    }
    // Every site has flushed. If we put new data frames on the wire since
    // the barrier went out (responses to late arrivals, retransmissions),
    // their induced replies may still be in flight — flush again.
    if (transport_.data_frames_sent() != snapshot) continue;
    coordinator_->OnQuiescent();
    if (transport_.data_frames_sent() != snapshot) continue;
    if (reliable_->HasUnacked()) continue;  // acks still inbound
    return true;
  }
}

void CoordinatorServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    BroadcastControl(RuntimeMessage::Type::kShutdown, 0.0);
  }
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone: session_fds_/readers_ are frozen now.
  for (const int fd : session_fds_) ::shutdown(fd, SHUT_RD);
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  for (const int fd : session_fds_) ::close(fd);
  session_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool CoordinatorServer::BelievesAbove() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->BelievesAbove();
}

Vector CoordinatorServer::Estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->estimate();
}

std::int64_t CoordinatorServer::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->epoch();
}

long CoordinatorServer::FullSyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->full_syncs();
}

long CoordinatorServer::PartialResolutions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->partial_resolutions();
}

long CoordinatorServer::DegradedSyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->degraded_syncs();
}

long CoordinatorServer::CyclesRun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_ + 1;
}

long CoordinatorServer::PaperMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_.messages_sent() + site_messages_received_;
}

long CoordinatorServer::PaperSiteMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_messages_received_;
}

double CoordinatorServer::PaperBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_.bytes_sent() + site_bytes_received_;
}

void CoordinatorServer::PublishMetrics() {
  Telemetry* telemetry = config_.runtime.telemetry;
  if (telemetry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  MetricRegistry* registry = &telemetry->registry;
  registry->GetCounter("transport.paper_messages")
      ->Set(transport_.messages_sent() + site_messages_received_);
  registry->GetCounter("transport.paper_site_messages")
      ->Set(site_messages_received_);
  registry->GetGauge("transport.paper_bytes")
      ->Set(transport_.bytes_sent() + site_bytes_received_);
  registry->GetCounter("transport.total_messages")
      ->Set(transport_.transport_messages_sent());
  registry->GetGauge("transport.total_bytes")
      ->Set(transport_.transport_bytes_sent());
  registry->GetCounter("socket.send_failures")
      ->Set(transport_.send_failures());
  registry->GetCounter("socket.corrupt_frames")->Set(corrupt_frames_);
  reliable_->PublishMetrics(registry);

  const CoordinatorNode::AuditStats coord = coordinator_->audit();
  registry->GetCounter("coordinator.full_syncs")
      ->Set(coordinator_->full_syncs());
  registry->GetCounter("coordinator.partial_resolutions")
      ->Set(coordinator_->partial_resolutions());
  registry->GetCounter("coordinator.degraded_syncs")
      ->Set(coordinator_->degraded_syncs());
  registry->GetCounter("coordinator.epoch")
      ->Set(static_cast<long>(coordinator_->epoch()));
  registry->GetCounter("coordinator.stale_epoch_drops")
      ->Set(coord.stale_epoch_drops);
  registry->GetCounter("coordinator.stale_epoch_applied")
      ->Set(coord.stale_epoch_applied);
  registry->GetCounter("coordinator.late_reports")->Set(coord.late_reports);
  registry->GetCounter("coordinator.rejoins_granted")
      ->Set(coord.rejoins_granted);
  registry->GetCounter("coordinator.sync_rerequests")
      ->Set(coord.sync_rerequests);

  const FailureDetector& fd = coordinator_->failure_detector();
  registry->GetCounter("failure.total_deaths")->Set(fd.total_deaths());
  registry->GetGauge("failure.live_count")
      ->Set(static_cast<double>(fd.live_count()));

  if (telemetry->series) telemetry->series->Sample(cycle_, *registry);
}

}  // namespace sgm
