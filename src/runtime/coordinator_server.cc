#include "runtime/coordinator_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <sstream>

#include "core/check.h"
#include "core/version.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"

namespace sgm {

CoordinatorServer::CoordinatorServer(const MonitoredFunction& function,
                                     const CoordinatorServerConfig& config)
    : config_(config),
      clock_(config.round_micros),
      registered_(config.num_sites, false),
      connected_(config.num_sites, false),
      site_fds_(config.num_sites, -1),
      barrier_acked_(config.num_sites, false) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.barrier_deadline_ms >= 0);
  config_.runtime.reliability.round_clock = &clock_;
  if (config_.runtime.telemetry != nullptr) {
    config_.runtime.telemetry->trace.ConfigureSampling(
        config_.runtime.trace_sample_rate, config_.runtime.seed);
    barrier_wait_ms_ = config_.runtime.telemetry->registry.GetHistogram(
        "barrier.wait_ms",
        {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000});
  }
  reliable_ = std::make_unique<ReliableTransport>(
      &transport_, config_.num_sites, config_.runtime.reliability,
      config_.runtime.telemetry);
  coordinator_ = std::make_unique<CoordinatorNode>(
      config_.num_sites, function, config_.runtime, reliable_.get());
  coordinator_->AttachReliability(reliable_.get());
}

CoordinatorServer::~CoordinatorServer() { Shutdown(); }

bool CoordinatorServer::Listen() {
  SGM_CHECK(listen_fd_ < 0);
  listen_fd_ = ListenTcpLoopback(config_.port, &bound_port_);
  if (listen_fd_ >= 0 && config_.send_queue_frames > 0) {
    // Non-blocking outbound path: one stalled site must never wedge the
    // threads that serve the rest of the deployment.
    transport_.EnableAsyncWriter(config_.send_queue_frames);
  }
  return listen_fd_ >= 0;
}

bool CoordinatorServer::Recover() {
  // The accept thread must not be running yet: CoordinatorNode::OnMessage
  // checks message.epoch <= epoch_, so the fence has to be in place before
  // the first site frame can reach the node.
  SGM_CHECK(!accept_thread_.joinable());
  std::lock_guard<std::mutex> lock(mu_);
  if (!coordinator_->Recover()) return false;
  // Resume cycle numbering where the restored node left off: the next
  // RunCycle() increments past it and runs BeginCycle, never Start().
  cycle_ = coordinator_->cycle();
  if (config_.runtime.telemetry != nullptr) {
    config_.runtime.telemetry->SetCycle(cycle_);
  }
  return true;
}

bool CoordinatorServer::WaitForSites() {
  SGM_CHECK(listen_fd_ >= 0);
  accept_thread_ = std::thread(&CoordinatorServer::AcceptLoop, this);
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(
      lock, std::chrono::milliseconds(config_.hello_timeout_ms),
      [this] { return hellos_ == config_.num_sites; });
}

void CoordinatorServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    session_fds_.push_back(fd);
    readers_.emplace_back(&CoordinatorServer::ReaderLoop, this, fd);
  }
}

void CoordinatorServer::ReaderLoop(int fd) {
  FrameReader reader;
  std::array<std::uint8_t, 65536> buffer;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;  // peer closed (or Shutdown's SHUT_RD)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
    std::vector<RuntimeMessage> frames;
    FrameStats stats;
    const bool stream_ok = DrainDecodedFrames(&reader, &frames, &stats);
    bool keep = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      corrupt_frames_ += stats.corrupt;
      for (const RuntimeMessage& message : frames) {
        keep = HandleFrame(fd, message) && keep;
      }
    }
    cv_.notify_all();
    if (!stream_ok || !keep) {
      // Poisoned stream or rejected registration: cut the connection.
      ::shutdown(fd, SHUT_RDWR);
      break;
    }
  }
  // Connection over. If this fd still maps to a site (it was not displaced
  // by a re-hello on a fresh connection), deregister the site: the link is
  // down until it dials back in.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = fd_site_.find(fd);
    if (it != fd_site_.end()) {
      const int site = it->second;
      fd_site_.erase(it);
      connected_[site] = false;
      site_fds_[site] = -1;
      transport_.UnregisterPeer(site);
      reliable_->MarkLinkDown(site);
      ++site_disconnects_;
      ++topology_version_;
      if (config_.runtime.telemetry != nullptr) {
        config_.runtime.telemetry->trace.Emit("session", "site_disconnect",
                                              site);
      }
    }
  }
  cv_.notify_all();
}

bool CoordinatorServer::HandleFrame(int fd, const RuntimeMessage& message) {
  switch (message.type) {
    case RuntimeMessage::Type::kSiteHello: {
      const int site = message.from;
      if (site < 0 || site >= config_.num_sites) return false;
      if (connected_[site]) {
        // The site dialed a new connection before we noticed the old one
        // die (or a half-open partition left it readable on our side).
        // The fresh hello wins: displace the stale session — its reader
        // finds its fd unmapped on exit and leaves the site alone.
        const int stale_fd = site_fds_[site];
        fd_site_.erase(stale_fd);
        ::shutdown(stale_fd, SHUT_RDWR);
        transport_.UnregisterPeer(site);
        ++topology_version_;
      }
      transport_.RegisterPeer(site, fd);
      connected_[site] = true;
      site_fds_[site] = fd;
      fd_site_[fd] = site;
      ++topology_version_;
      Telemetry* telemetry = config_.runtime.telemetry;
      if (!registered_[site]) {
        registered_[site] = true;
        ++hellos_;
        if (telemetry != nullptr) {
          telemetry->trace.Emit("session", "site_hello", site, {{"fd", fd}});
        }
      } else {
        ++site_rehellos_;
        reliable_->MarkLinkUp(site);
        if (telemetry != nullptr) {
          telemetry->trace.Emit("session", "site_rehello", site,
                                {{"fd", fd}});
        }
        // The rejoiner missed this cycle's observe trigger; a unicast
        // catch-up is safe either way (sites observe their *current*
        // local vector — re-observing the same cycle is idempotent).
        if (cycle_ >= 0) {
          RuntimeMessage begin;
          begin.type = RuntimeMessage::Type::kCycleBegin;
          begin.from = kCoordinatorId;
          begin.to = site;
          begin.scalar = static_cast<double>(cycle_);
          transport_.Send(begin);
        }
      }
      return true;
    }
    case RuntimeMessage::Type::kBarrierAck:
      if (static_cast<long>(message.scalar) == barrier_token_) {
        ++barrier_acks_;
        if (message.from >= 0 && message.from < config_.num_sites) {
          barrier_acked_[message.from] = true;
        }
      }
      return true;
    case RuntimeMessage::Type::kCycleBegin:
    case RuntimeMessage::Type::kBarrier:
    case RuntimeMessage::Type::kShutdown:
      return true;  // coordinator-originated control echoed back: ignore
    default: {
      // Ordinary protocol traffic: through the receive-side reliability
      // layer (ack/dedup), then into the node — the sim driver's Deliver().
      if (message.counts_as_protocol_traffic()) {
        ++site_messages_received_;
        site_bytes_received_ += WireBytes(message);
      }
      std::vector<RuntimeMessage> fresh;
      reliable_->OnDeliver(kCoordinatorId, message, &fresh);
      for (const RuntimeMessage& m : fresh) coordinator_->OnMessage(m);
      return true;
    }
  }
}

void CoordinatorServer::BroadcastControl(RuntimeMessage::Type type,
                                         double scalar) {
  RuntimeMessage message;
  message.type = type;
  message.from = kCoordinatorId;
  message.to = kBroadcastId;
  message.scalar = scalar;
  transport_.Send(message);
}

bool CoordinatorServer::RunCycle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++cycle_;
    if (config_.runtime.telemetry != nullptr) {
      config_.runtime.telemetry->SetCycle(cycle_);
    }
    // kCycleBegin goes out before the protocol hook runs, so anything the
    // hook broadcasts (a scheduled resync, the initialization collection)
    // lands *after* the observe trigger on every site's stream — the sim
    // driver's "BeginCycle queues, sites observe, then delivery" ordering.
    BroadcastControl(RuntimeMessage::Type::kCycleBegin,
                     static_cast<double>(cycle_));
    if (cycle_ == 0) {
      coordinator_->Start();
    } else {
      coordinator_->BeginCycle();
    }
  }
  if (!AwaitQuiescence()) return false;
  PublishMetrics();
  return true;
}

int CoordinatorServer::ConnectedCountLocked() const {
  int count = 0;
  for (const bool up : connected_) count += up ? 1 : 0;
  return count;
}

bool CoordinatorServer::BarrierAckPendingLocked() const {
  if (config_.barrier_deadline_ms <= 0) {
    return barrier_acks_ < ConnectedCountLocked();
  }
  const FailureDetector& fd = coordinator_->failure_detector();
  for (int site = 0; site < config_.num_sites; ++site) {
    if (!connected_[site]) continue;
    if (fd.state(site) == FailureDetector::State::kLagging) continue;
    if (!barrier_acked_[site]) return true;
  }
  return false;
}

int CoordinatorServer::HandleBarrierDeadlineLocked() {
  const FailureDetector& fd = coordinator_->failure_detector();
  int missed = 0;
  int quarantined = 0;
  for (int site = 0; site < config_.num_sites; ++site) {
    if (!connected_[site]) continue;
    if (fd.state(site) == FailureDetector::State::kLagging) continue;
    if (barrier_acked_[site]) {
      coordinator_->OnBarrierDeadlineMet(site);
      continue;
    }
    ++missed;
    if (coordinator_->OnBarrierDeadlineMissed(site)) ++quarantined;
  }
  if (missed > 0) coordinator_->RecordDegradedCycle(missed);
  if (config_.runtime.telemetry != nullptr) {
    config_.runtime.telemetry->trace.Emit(
        "degraded", "barrier_deadline", kCoordinatorId,
        {{"missed", missed}, {"quarantined", quarantined}});
  }
  return missed;
}

bool CoordinatorServer::AwaitQuiescence() {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(config_.barrier_timeout_ms);
  const bool soft_deadline = config_.barrier_deadline_ms > 0;
  const auto cycle_deadline =
      start + std::chrono::milliseconds(config_.barrier_deadline_ms);
  const auto slow_mark =
      start + std::chrono::milliseconds(config_.barrier_deadline_ms / 2);
  bool slow_warned = false;
  bool expired = false;  // this cycle's soft deadline has passed
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    const long snapshot = transport_.data_frames_sent();
    const long topology = topology_version_;
    const long token = ++barrier_token_;
    barrier_acks_ = 0;
    std::fill(barrier_acked_.begin(), barrier_acked_.end(), false);
    RuntimeMessage barrier;
    barrier.type = RuntimeMessage::Type::kBarrier;
    barrier.from = kCoordinatorId;
    barrier.to = kBroadcastId;
    barrier.scalar = static_cast<double>(token);
    transport_.Send(barrier);
    // The barrier targets the population that was connected when it went
    // out. If membership shifts under the wait (a disconnect, a rejoin),
    // the round is void — restart with a fresh barrier against the new
    // population rather than wait on acks that will never come.
    while (BarrierAckPendingLocked() && topology_version_ == topology) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      if (soft_deadline && !slow_warned && now >= slow_mark) {
        // Watchdog breadcrumb at half the budget: the barrier is slow but
        // not yet degraded — early warning for drifting deployments.
        slow_warned = true;
        if (config_.runtime.telemetry != nullptr) {
          config_.runtime.telemetry->trace.Emit(
              "degraded", "barrier_slow", kCoordinatorId,
              {{"deadline_ms", config_.barrier_deadline_ms}});
        }
      }
      if (soft_deadline && !expired && now >= cycle_deadline) {
        expired = true;
        HandleBarrierDeadlineLocked();
        continue;  // quarantines may have emptied the pending population
      }
      if (expired) break;  // proceed over the responsive quorum
      cv_.wait_for(lock, std::chrono::milliseconds(10));
      // The retransmission clock keeps running while we wait: a site that
      // lost its connection mid-cycle must still hit the give-up horizon.
      reliable_->AdvanceRound();
    }
    if (topology_version_ != topology) continue;
    if (expired) {
      // Degraded close: the responsive quorum has flushed; anything still
      // in flight toward the laggards stays with the reliability layer
      // (retransmission rounds keep advancing in later cycles). The
      // protocol's quiescence hook still runs so probe folds and
      // collection completions happen this cycle — over the live
      // population, which now excludes the quarantined laggards.
      coordinator_->OnQuiescent();
    } else {
      // Every connected site has flushed. If we put new data frames on the
      // wire since the barrier went out (responses to late arrivals,
      // retransmissions), their induced replies may still be in flight —
      // flush again.
      if (transport_.data_frames_sent() != snapshot) continue;
      coordinator_->OnQuiescent();
      if (transport_.data_frames_sent() != snapshot) continue;
      if (reliable_->HasUnacked()) {
        // Acks still inbound — or a disconnected site holds tracked
        // traffic. Keep the round clock moving so those entries reach the
        // give-up horizon instead of spinning here forever.
        cv_.wait_for(lock, std::chrono::milliseconds(10));
        reliable_->AdvanceRound();
        continue;
      }
      if (soft_deadline) {
        // A clean close within the deadline resets every responsive
        // site's consecutive-miss count.
        for (int site = 0; site < config_.num_sites; ++site) {
          if (connected_[site] && barrier_acked_[site]) {
            coordinator_->OnBarrierDeadlineMet(site);
          }
        }
      }
    }
    if (barrier_wait_ms_ != nullptr) {
      barrier_wait_ms_->Observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
    return true;
  }
}

void CoordinatorServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    BroadcastControl(RuntimeMessage::Type::kShutdown, 0.0);
  }
  StopThreads();
}

void CoordinatorServer::Halt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    // No kShutdown broadcast: sites see a raw connection loss, as after a
    // process kill, and reconnect to the next incarnation.
  }
  StopThreads();
}

void CoordinatorServer::StopThreads() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone: session_fds_/readers_ are frozen now.
  for (const int fd : session_fds_) ::shutdown(fd, SHUT_RD);
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();
  // Flush the async writer (bounded: a wedged peer's EAGAIN cannot hold
  // shutdown hostage) while the session fds are still open, so a queued
  // kShutdown broadcast reaches every responsive site.
  transport_.StopAsyncWriter(500);
  for (const int fd : session_fds_) ::close(fd);
  session_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool CoordinatorServer::BelievesAbove() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->BelievesAbove();
}

Vector CoordinatorServer::Estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->estimate();
}

std::int64_t CoordinatorServer::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->epoch();
}

long CoordinatorServer::FullSyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->full_syncs();
}

long CoordinatorServer::PartialResolutions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->partial_resolutions();
}

long CoordinatorServer::DegradedSyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coordinator_->degraded_syncs();
}

long CoordinatorServer::CyclesRun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_ + 1;
}

long CoordinatorServer::PaperMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_.messages_sent() + site_messages_received_;
}

long CoordinatorServer::PaperSiteMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_messages_received_;
}

double CoordinatorServer::PaperBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_.bytes_sent() + site_bytes_received_;
}

int CoordinatorServer::ConnectedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ConnectedCountLocked();
}

long CoordinatorServer::SiteDisconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_disconnects_;
}

long CoordinatorServer::SiteRehellos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_rehellos_;
}

bool CoordinatorServer::HasUnacked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reliable_->HasUnacked();
}

void CoordinatorServer::FlushCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  coordinator_->FlushCheckpoint();
}

CoordinatorServer::Health CoordinatorServer::GetHealth() const {
  std::lock_guard<std::mutex> lock(mu_);
  Health health;
  health.epoch = coordinator_->epoch();
  health.cycle = cycle_;
  health.num_sites = config_.num_sites;
  health.connected_sites = ConnectedCountLocked();
  health.site_disconnects = site_disconnects_;
  health.site_rehellos = site_rehellos_;
  health.has_unacked = reliable_->HasUnacked();
  health.believes_above = coordinator_->BelievesAbove();
  health.full_syncs = coordinator_->full_syncs();
  health.partial_resolutions = coordinator_->partial_resolutions();
  health.degraded_syncs = coordinator_->degraded_syncs();
  health.checkpoint_snapshots = coordinator_->recovery_stats().snapshots_written;
  health.checkpoint_restores = coordinator_->recovery_stats().restores;
  const FailureDetector& fd = coordinator_->failure_detector();
  health.degraded_cycles = coordinator_->degraded_cycles();
  health.lagging_sites = fd.lagging_count();
  health.lag_quarantines = fd.total_lagging_verdicts();
  health.site_states.reserve(config_.num_sites);
  for (int site = 0; site < config_.num_sites; ++site) {
    std::string state;
    switch (fd.state(site)) {
      case FailureDetector::State::kAlive: state = "alive"; break;
      case FailureDetector::State::kSuspect: state = "suspect"; break;
      case FailureDetector::State::kDead: state = "dead"; break;
      case FailureDetector::State::kRejoining: state = "rejoining"; break;
      case FailureDetector::State::kLagging: state = "lagging"; break;
    }
    if (fd.IsQuarantined(site)) state += "+quarantined";
    health.site_states.push_back(std::move(state));
    health.site_connected.push_back(connected_[site]);
  }
  return health;
}

std::string CoordinatorServer::HealthJson() const {
  const Health health = GetHealth();
  const long long uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  std::ostringstream out;
  out << "{\"role\":\"coordinator\",\"version\":\"" << kSgmVersion
      << "\",\"uptime_ms\":" << uptime_ms << ",\"epoch\":" << health.epoch
      << ",\"cycle\":" << health.cycle
      << ",\"num_sites\":" << health.num_sites
      << ",\"connected_sites\":" << health.connected_sites
      << ",\"site_disconnects\":" << health.site_disconnects
      << ",\"site_rehellos\":" << health.site_rehellos
      << ",\"has_unacked\":" << (health.has_unacked ? "true" : "false")
      << ",\"believes_above\":" << (health.believes_above ? "true" : "false")
      << ",\"full_syncs\":" << health.full_syncs
      << ",\"partial_resolutions\":" << health.partial_resolutions
      << ",\"degraded_syncs\":" << health.degraded_syncs
      << ",\"checkpoint_snapshots\":" << health.checkpoint_snapshots
      << ",\"checkpoint_restores\":" << health.checkpoint_restores
      << ",\"degraded_cycles\":" << health.degraded_cycles
      << ",\"lagging_sites\":" << health.lagging_sites
      << ",\"lag_quarantines\":" << health.lag_quarantines
      << ",\"sites\":[";
  for (int site = 0; site < health.num_sites; ++site) {
    out << (site == 0 ? "" : ",") << "{\"site\":" << site << ",\"state\":\""
        << health.site_states[site] << "\",\"connected\":"
        << (health.site_connected[site] ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

void CoordinatorServer::PublishMetrics() {
  Telemetry* telemetry = config_.runtime.telemetry;
  if (telemetry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  MetricRegistry* registry = &telemetry->registry;
  registry->GetCounter("transport.paper_messages")
      ->Set(transport_.messages_sent() + site_messages_received_);
  registry->GetCounter("transport.paper_site_messages")
      ->Set(site_messages_received_);
  registry->GetGauge("transport.paper_bytes")
      ->Set(transport_.bytes_sent() + site_bytes_received_);
  registry->GetCounter("transport.total_messages")
      ->Set(transport_.transport_messages_sent());
  registry->GetGauge("transport.total_bytes")
      ->Set(transport_.transport_bytes_sent());
  registry->GetCounter("socket.send_failures")
      ->Set(transport_.send_failures());
  registry->GetCounter("socket.short_writes")->Set(transport_.short_writes());
  registry->GetGauge("socket.send_queue_depth")
      ->Set(static_cast<double>(transport_.send_queue_depth()));
  registry->GetCounter("socket.send_queue_drops")
      ->Set(transport_.send_queue_drops());
  registry->GetCounter("socket.corrupt_frames")->Set(corrupt_frames_);
  registry->GetCounter("socket.site_disconnects")->Set(site_disconnects_);
  registry->GetCounter("socket.site_rehellos")->Set(site_rehellos_);
  registry->GetGauge("socket.connected_sites")
      ->Set(static_cast<double>(ConnectedCountLocked()));
  reliable_->PublishMetrics(registry);

  const CoordinatorNode::AuditStats coord = coordinator_->audit();
  registry->GetCounter("coordinator.full_syncs")
      ->Set(coordinator_->full_syncs());
  registry->GetCounter("coordinator.partial_resolutions")
      ->Set(coordinator_->partial_resolutions());
  registry->GetCounter("coordinator.degraded_syncs")
      ->Set(coordinator_->degraded_syncs());
  registry->GetCounter("coordinator.epoch")
      ->Set(static_cast<long>(coordinator_->epoch()));
  registry->GetCounter("coordinator.stale_epoch_drops")
      ->Set(coord.stale_epoch_drops);
  registry->GetCounter("coordinator.stale_epoch_applied")
      ->Set(coord.stale_epoch_applied);
  registry->GetCounter("coordinator.late_reports")->Set(coord.late_reports);
  registry->GetCounter("coordinator.rejoins_granted")
      ->Set(coord.rejoins_granted);
  registry->GetCounter("coordinator.sync_rerequests")
      ->Set(coord.sync_rerequests);

  const CoordinatorNode::RecoveryStats& rec = coordinator_->recovery_stats();
  registry->GetCounter("recovery.restores")->Set(rec.restores);
  registry->GetCounter("recovery.snapshots_written")
      ->Set(rec.snapshots_written);
  registry->GetCounter("recovery.wal_records")->Set(rec.wal_records);
  registry->GetCounter("recovery.wal_records_replayed")
      ->Set(rec.wal_records_replayed);
  registry->GetCounter("recovery.snapshots_discarded")
      ->Set(rec.snapshots_discarded);
  registry->GetCounter("recovery.torn_wal_bytes")->Set(rec.torn_wal_bytes);
  registry->GetCounter("recovery.reconcile_grants")
      ->Set(rec.reconcile_grants);

  const FailureDetector& fd = coordinator_->failure_detector();
  registry->GetCounter("failure.total_deaths")->Set(fd.total_deaths());
  registry->GetGauge("failure.live_count")
      ->Set(static_cast<double>(fd.live_count()));

  // Straggler / bounded-staleness accounting (see FailureDetector::kLagging
  // and CoordinatorServerConfig::barrier_deadline_ms).
  registry->GetCounter("degraded.cycles")->Set(coordinator_->degraded_cycles());
  registry->GetGauge("degraded.lagging_sites")
      ->Set(static_cast<double>(fd.lagging_count()));
  registry->GetCounter("degraded.lag_quarantines")
      ->Set(fd.total_lagging_verdicts());
  registry->GetCounter("degraded.staleness_cycles_total")
      ->Set(fd.staleness_cycles_total());
  registry->GetGauge("degraded.staleness_cycles_max")
      ->Set(static_cast<double>(fd.staleness_cycles_max()));

  // Telemetry self-cost: what observability itself spends. Emitted counts
  // include sampled-out events, so `sampled_out / events` is the live
  // sampling ratio and `telemetry_ns` bounds the instrumentation tax.
  const TraceLog::SelfCost cost = telemetry->trace.self_cost();
  registry->GetCounter("obs.trace.events")->Set(cost.events_emitted);
  registry->GetCounter("obs.trace.recorded")->Set(cost.events_recorded);
  registry->GetCounter("obs.trace.sampled_out")->Set(cost.events_sampled_out);
  registry->GetCounter("obs.trace.bytes_written")
      ->Set(static_cast<long>(cost.bytes_written));
  registry->GetCounter("obs.telemetry.ns")
      ->Set(static_cast<long>(cost.telemetry_ns));
  if (const FlightRecorder* ring = telemetry->trace.flight_recorder()) {
    registry->GetCounter("obs.ring.recorded")->Set(ring->lines_recorded());
    registry->GetCounter("obs.ring.overwrites")->Set(ring->overwrites());
    registry->GetCounter("obs.ring.dropped")->Set(ring->lines_dropped());
  }

  if (telemetry->series) telemetry->series->Sample(cycle_, *registry);
}

}  // namespace sgm
