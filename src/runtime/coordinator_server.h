#ifndef SGM_RUNTIME_COORDINATOR_SERVER_H_
#define SGM_RUNTIME_COORDINATOR_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/coordinator_node.h"
#include "runtime/reliable_transport.h"
#include "runtime/round_clock.h"
#include "runtime/site_node.h"  // RuntimeConfig
#include "runtime/socket_transport.h"

namespace sgm {

struct CoordinatorServerConfig {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable from port() after Listen().
  int port = 0;
  int num_sites = 0;
  /// Node configuration, shared verbatim with every site process (the
  /// protocol requires both tiers to agree on thresholds and bounds). The
  /// server injects its own MonotonicRoundClock into
  /// runtime.reliability.round_clock.
  RuntimeConfig runtime;
  /// Microseconds per retransmission round of the reliability layer. Sized
  /// so the full give-up horizon (≈ 15 rounds of backoff) comfortably
  /// exceeds any scheduling hiccup of a loopback peer — spurious dead-link
  /// verdicts against live-but-preempted sites would inject failures the
  /// deployment does not have.
  long round_micros = 20000;
  /// WaitForSites() gives up after this long without all hellos.
  long hello_timeout_ms = 30000;
  /// RunCycle() fails if its barrier rounds do not settle within this.
  long barrier_timeout_ms = 30000;
  /// Soft per-cycle barrier deadline in milliseconds; 0 disables (default —
  /// the barrier then behaves exactly as before this knob existed). When
  /// set, a barrier whose acks have not settled by the deadline stops
  /// waiting: every missed site is reported to the failure detector's
  /// lagging escalation (consecutive misses quarantine it as kLagging), the
  /// cycle is recorded degraded, and the cycle completes over the
  /// responsive quorum. barrier_timeout_ms stays the hard-fail backstop.
  long barrier_deadline_ms = 0;
  /// Bounded per-peer outbound queue, in frames, drained by a dedicated
  /// writer thread (see SocketTransport::EnableAsyncWriter): a stalled
  /// site's full TCP buffer backs up only its own queue, never the accept,
  /// reader or cycle threads. 0 keeps the synchronous write path.
  std::size_t send_queue_frames = 0;
};

/// The coordinator tier as a real threaded network service: an accept
/// thread plus one reader thread per site connection, all dispatching into
/// a single CoordinatorNode guarded by one mutex.
///
/// ── Lockstep cycles over TCP ───────────────────────────────────────────
/// RunCycle() reproduces RuntimeDriver::Initialize/Tick semantics over
/// sockets. It broadcasts kCycleBegin (sites observe their next vector),
/// runs the protocol node's cycle hook, then drives flush-barrier rounds
/// until global quiescence: broadcast kBarrier(token), wait for every
/// site's kBarrierAck, and check whether the coordinator put any new data
/// frame on the wire since the barrier was issued. Because each stream is
/// FIFO, a site's barrier ack is ordered after its responses to everything
/// the coordinator sent before the barrier — so a completed barrier with a
/// stable data-frame counter means no protocol message is in flight in
/// either direction. That is exactly the sim driver's quiescence point, at
/// which OnQuiescent() fires; if it emits traffic, another barrier round
/// settles it. Cascades are finite (every round's traffic is bounded), so
/// the loop terminates.
///
/// ── Threading model ────────────────────────────────────────────────────
/// One mutex (mu_) guards the CoordinatorNode, the ReliableTransport, the
/// barrier bookkeeping and the registration table; reader threads take it
/// per decoded frame, the cycle thread takes it per barrier step. The
/// SocketTransport has its own internal mutex (lock order: mu_ before the
/// transport's — reader threads and the cycle thread both follow it by
/// construction, since every Send happens under mu_). Telemetry is
/// internally thread-safe.
///
/// Session-control frames (hello, barrier acks) are consumed here and
/// never dispatched into the protocol node; everything else goes through
/// the receive side of the ReliableTransport exactly as the sim driver's
/// Deliver() does.
///
/// ── Membership churn ───────────────────────────────────────────────────
/// Connections may come and go mid-run. A reader hitting EOF/error
/// deregisters its site (link marked down, disconnect counted); a fresh
/// kSiteHello for an already-seen site is a *re-hello* — the stale
/// connection (if any) is displaced, the link marked up again, and the
/// site unicast the current kCycleBegin so it catches up its observation.
/// The barrier loop targets the *currently connected* population and
/// restarts whenever membership shifts under it (topology_version_), so
/// quiescence is always judged against a stable, fully-acked membership.
///
/// ── Restart-from-checkpoint ────────────────────────────────────────────
/// A crashed coordinator process restarts as: construct (same config,
/// checkpoint store attached) → Listen() → Recover() → WaitForSites() →
/// RunCycle() loop. Recover() restores the protocol node from the
/// snapshot+WAL, fences the epoch one past anything the dead incarnation
/// committed, queues reconciliation grants (delivered once sites
/// reconnect), and resumes the cycle counter so the remaining schedule
/// continues where the WAL left off.
class CoordinatorServer {
 public:
  CoordinatorServer(const MonitoredFunction& function,
                    const CoordinatorServerConfig& config);
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  /// Binds and listens on loopback. Starts no threads — safe to call
  /// before fork()ing site processes. Returns false on bind failure.
  bool Listen();
  int port() const { return bound_port_; }

  /// Restores the protocol node from config.runtime.checkpoint_store (see
  /// CoordinatorNode::Recover): state restored, epoch fenced one past the
  /// crashed incarnation, reconciliation grants queued for redelivery.
  /// Must run after Listen() and before WaitForSites() — no site frame may
  /// reach the node ahead of the restore. Returns false when the store
  /// holds no decodable snapshot.
  bool Recover();

  /// Starts the accept thread and blocks until all num_sites hellos have
  /// registered (or hello_timeout_ms elapsed — returns false).
  bool WaitForSites();

  /// Runs one lockstep update cycle to global quiescence. The first call
  /// is the initialization sync (sites observe their first vectors, the
  /// coordinator runs Start()); later calls are ordinary Tick cycles.
  /// Returns false on barrier timeout (a site died or wedged).
  bool RunCycle();

  /// Broadcasts kShutdown, stops the accept loop, closes every session and
  /// joins all threads. Idempotent; the destructor calls it.
  void Shutdown();

  /// Crash-stop for restart tests: Shutdown() minus the kShutdown
  /// broadcast — sites see a raw connection loss, exactly as if the
  /// process had been killed, and run their reconnect path against the
  /// next incarnation. Idempotent with Shutdown().
  void Halt();

  // Mutex-guarded snapshots of the protocol state (safe from any thread).
  bool BelievesAbove() const;
  Vector Estimate() const;
  std::int64_t Epoch() const;
  long FullSyncs() const;
  long PartialResolutions() const;
  long DegradedSyncs() const;
  long CyclesRun() const;

  /// Deployment-wide paper-comparable figures. Every protocol message
  /// either originates or terminates at the coordinator (star topology),
  /// so local sends plus inbound site data frames cover the whole
  /// deployment — the same totals the sim's single bus counts.
  long PaperMessages() const;
  long PaperSiteMessages() const;
  double PaperBytes() const;

  // Membership and reliability snapshots (mutex-guarded).
  int ConnectedCount() const;
  long SiteDisconnects() const;
  long SiteRehellos() const;
  bool HasUnacked() const;

  /// Everything the /healthz ops endpoint reports, snapshotted atomically
  /// under the server mutex: protocol position (epoch, cycle), membership,
  /// per-site failure-detector verdicts, and checkpoint generation.
  struct Health {
    std::int64_t epoch = 0;
    long cycle = 0;
    int num_sites = 0;
    int connected_sites = 0;
    long site_disconnects = 0;
    long site_rehellos = 0;
    bool has_unacked = false;
    bool believes_above = false;
    long full_syncs = 0;
    long partial_resolutions = 0;
    long degraded_syncs = 0;
    /// Snapshots written by this incarnation — the checkpoint generation
    /// a restart would resume from (0 = no checkpoint store attached).
    long checkpoint_snapshots = 0;
    long checkpoint_restores = 0;  ///< 1 iff this incarnation recovered
    /// Cycles whose barrier closed over a responsive quorum only, and the
    /// lag-quarantine picture behind them (see FailureDetector::kLagging).
    long degraded_cycles = 0;
    int lagging_sites = 0;
    long lag_quarantines = 0;
    /// Failure-detector verdict per site: "alive" | "suspect" | "dead" |
    /// "rejoining" | "lagging" (+ "+quarantined" while a flapper is
    /// deferred).
    std::vector<std::string> site_states;
    std::vector<bool> site_connected;
  };
  Health GetHealth() const;
  /// GetHealth() rendered as the /healthz JSON document.
  std::string HealthJson() const;

  const SocketTransport& transport() const { return transport_; }

  /// Writes a snapshot outside the periodic schedule — the graceful
  /// shutdown path's final checkpoint. No-op without a store.
  void FlushCheckpoint();

  /// Mirrors coordinator/transport/failure counters into the attached
  /// telemetry registry (same metric names as RuntimeDriver) and samples
  /// the time series. Called automatically at the end of every RunCycle.
  void PublishMetrics();

 private:
  void AcceptLoop();
  void ReaderLoop(int fd);
  /// Dispatches one decoded frame; caller holds mu_. Returns false when the
  /// connection must be dropped (bad or duplicate hello).
  bool HandleFrame(int fd, const RuntimeMessage& message);
  /// The barrier loop described above; returns false on timeout.
  bool AwaitQuiescence();
  void BroadcastControl(RuntimeMessage::Type type, double scalar);
  int ConnectedCountLocked() const;
  /// True while some barrier-population site has not acked the current
  /// token. Without a deadline the population is every connected site;
  /// under one, connected sites quarantined as kLagging are excluded
  /// (their late acks are welcome but never waited for). Caller holds mu_.
  bool BarrierAckPendingLocked() const;
  /// Soft-deadline expiry: acked population sites reset their miss count,
  /// silent ones accrue a miss (consecutive misses quarantine), and the
  /// cycle is recorded degraded. Returns the missed-site count. Caller
  /// holds mu_.
  int HandleBarrierDeadlineLocked();
  /// Shared teardown of Shutdown()/Halt(): stop accept, sever sessions,
  /// join every thread, close every fd.
  void StopThreads();

  CoordinatorServerConfig config_;
  MonotonicRoundClock clock_;
  /// Construction instant; /healthz reports uptime relative to this.
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  SocketTransport transport_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<CoordinatorNode> coordinator_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  /// Reader threads and their fds; appended only by the accept thread,
  /// iterated only after it is joined.
  std::vector<std::thread> readers_;
  std::vector<int> session_fds_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Sites that have *ever* registered (first hellos count toward
  /// WaitForSites; later hellos from the same site are re-hellos).
  std::vector<bool> registered_;
  /// Sites with a live connection right now.
  std::vector<bool> connected_;
  /// Current session fd per site (-1 while disconnected) and its inverse;
  /// a reader whose fd is no longer mapped was displaced by a re-hello and
  /// must not deregister the site on exit.
  std::vector<int> site_fds_;
  std::map<int, int> fd_site_;
  /// Bumped on every connect/disconnect/displacement; the barrier loop
  /// restarts when it moves mid-wait.
  long topology_version_ = 0;
  long site_disconnects_ = 0;
  long site_rehellos_ = 0;
  int hellos_ = 0;
  long barrier_token_ = 0;
  int barrier_acks_ = 0;
  /// Which sites acked the current barrier token (the deadline path judges
  /// per-site responsiveness; the count alone cannot).
  std::vector<bool> barrier_acked_;
  /// Wall time each AwaitQuiescence spent, in ms (nullptr without
  /// telemetry). Metrics only — wall time never feeds the trace.
  Histogram* barrier_wait_ms_ = nullptr;
  long cycle_ = -1;  ///< last completed cycle; first RunCycle runs cycle 0
  long corrupt_frames_ = 0;
  /// Inbound site-originated protocol data (paper accounting family).
  long site_messages_received_ = 0;
  double site_bytes_received_ = 0.0;
  bool shut_down_ = false;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_COORDINATOR_SERVER_H_
