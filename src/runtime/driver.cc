#include "runtime/driver.h"

#include "core/check.h"

namespace sgm {

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config) {
  BuildNodes(num_sites, function, config, &bus_);
}

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config,
                             const SimTransportConfig& sim_config) {
  SimTransportConfig effective = sim_config;
  effective.num_sites = num_sites;
  sim_ = std::make_unique<SimTransport>(&bus_, effective);
  BuildNodes(num_sites, function, config, sim_.get());
}

void RuntimeDriver::BuildNodes(int num_sites,
                               const MonitoredFunction& function,
                               const RuntimeConfig& config,
                               Transport* transport) {
  SGM_CHECK(num_sites > 0);
  coordinator_ = std::make_unique<CoordinatorNode>(num_sites, function,
                                                   config, transport);
  sites_.reserve(num_sites);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(
        std::make_unique<SiteNode>(i, num_sites, function, config, transport));
  }
}

void RuntimeDriver::RouteToQuiescence() {
  for (;;) {
    for (;;) {
      while (!bus_.empty()) {
        const RuntimeMessage message = bus_.Pop();
        if (message.to == kCoordinatorId) {
          coordinator_->OnMessage(message);
        } else if (message.to == kBroadcastId) {
          for (auto& site : sites_) {
            if (sim_ && sim_->IsCrashed(site->id())) continue;
            site->OnMessage(message);
          }
        } else {
          SGM_CHECK(message.to >= 0 &&
                    message.to < static_cast<int>(sites_.size()));
          if (sim_ && sim_->IsCrashed(message.to)) continue;
          sites_[message.to]->OnMessage(message);
        }
      }
      // Bus drained: release any delay-held messages before declaring the
      // network quiescent — delays are bounded, not losses.
      if (sim_ && sim_->HasPending()) {
        sim_->AdvanceRound();
        continue;
      }
      break;
    }
    // Transport quiescent: give the coordinator its quiescence callback; if
    // that produced new traffic, keep routing.
    coordinator_->OnQuiescent();
    if (bus_.empty() && !(sim_ && sim_->HasPending())) return;
  }
}

void RuntimeDriver::Initialize(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  for (int i = 0; i < num_sites(); ++i) {
    sites_[i]->Observe(local_vectors[i]);
  }
  coordinator_->Start();
  RouteToQuiescence();
}

void RuntimeDriver::Tick(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  coordinator_->BeginCycle();
  for (int i = 0; i < num_sites(); ++i) {
    if (sim_ && sim_->IsCrashed(i)) continue;  // crashed: observes nothing
    sites_[i]->Observe(local_vectors[i]);
  }
  RouteToQuiescence();
}

}  // namespace sgm
