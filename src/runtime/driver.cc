#include "runtime/driver.h"

#include "core/check.h"
#include "obs/telemetry.h"

namespace sgm {

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config) {
  BuildNodes(num_sites, function, config, &bus_);
}

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config,
                             const SimTransportConfig& sim_config) {
  SimTransportConfig effective = sim_config;
  effective.num_sites = num_sites;
  sim_ = std::make_unique<SimTransport>(&bus_, effective);
  BuildNodes(num_sites, function, config, sim_.get());
}

void RuntimeDriver::BuildNodes(int num_sites,
                               const MonitoredFunction& function,
                               const RuntimeConfig& config, Transport* lower) {
  SGM_CHECK(num_sites > 0);
  telemetry_ = config.telemetry;
  if (sim_ && telemetry_ != nullptr) sim_->set_telemetry(telemetry_);
  reliable_ = std::make_unique<ReliableTransport>(
      lower, num_sites, config.reliability, telemetry_);
  coordinator_ = std::make_unique<CoordinatorNode>(num_sites, function,
                                                   config, reliable_.get());
  coordinator_->AttachReliability(reliable_.get());
  sites_.reserve(num_sites);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<SiteNode>(i, num_sites, function,
                                                config, reliable_.get()));
  }
}

void RuntimeDriver::Deliver(int receiver, const RuntimeMessage& message) {
  // The receive-side reliability layer consumes acks, dedups and acks data;
  // at most one message survives to the node.
  std::vector<RuntimeMessage> fresh;
  reliable_->OnDeliver(receiver, message, &fresh);
  for (const RuntimeMessage& m : fresh) {
    if (receiver == kCoordinatorId) {
      coordinator_->OnMessage(m);
    } else {
      sites_[receiver]->OnMessage(m);
    }
  }
}

void RuntimeDriver::RouteToQuiescence() {
  for (;;) {
    for (;;) {
      while (!bus_.empty()) {
        const RuntimeMessage message = bus_.Pop();
        if (message.to == kCoordinatorId) {
          Deliver(kCoordinatorId, message);
        } else if (message.to == kBroadcastId) {
          // A broadcast is one wire message but N receiver-side stacks:
          // each live site dedups and acks independently.
          for (auto& site : sites_) {
            if (sim_ && sim_->IsCrashed(site->id())) continue;
            Deliver(site->id(), message);
          }
        } else {
          SGM_CHECK(message.to >= 0 &&
                    message.to < static_cast<int>(sites_.size()));
          if (sim_ && sim_->IsCrashed(message.to)) continue;
          Deliver(message.to, message);
        }
      }
      // Bus drained: one transport round elapses. Release any delay-held
      // messages (delays are bounded, not losses) and let the reliability
      // layer retransmit whatever came due. Termination is guaranteed:
      // delays are bounded and every in-flight entry has a bounded
      // retransmission budget.
      const bool sim_pending = sim_ && sim_->HasPending();
      if (!sim_pending && !reliable_->HasUnacked()) break;
      if (sim_pending) sim_->AdvanceRound();
      reliable_->AdvanceRound();
    }
    // Transport quiescent: give the coordinator its quiescence callback; if
    // that produced new traffic, keep routing.
    coordinator_->OnQuiescent();
    if (bus_.empty() && !(sim_ && sim_->HasPending()) &&
        !reliable_->HasUnacked()) {
      return;
    }
  }
}

void RuntimeDriver::Initialize(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  if (telemetry_ != nullptr) telemetry_->SetCycle(cycle_);
  for (int i = 0; i < num_sites(); ++i) {
    sites_[i]->Observe(local_vectors[i]);
  }
  coordinator_->Start();
  RouteToQuiescence();
  PublishMetrics();
}

void RuntimeDriver::Tick(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  if (telemetry_ != nullptr) telemetry_->SetCycle(++cycle_);
  coordinator_->BeginCycle();
  for (int i = 0; i < num_sites(); ++i) {
    if (sim_ && sim_->IsCrashed(i)) continue;  // crashed: observes nothing
    sites_[i]->Observe(local_vectors[i]);
  }
  RouteToQuiescence();
  PublishMetrics();
}

void RuntimeDriver::PublishMetrics() {
  if (telemetry_ == nullptr) return;
  MetricRegistry* registry = &telemetry_->registry;
  if (sim_) {
    sim_->PublishMetrics(registry);
  } else {
    // Faultless wiring: the bus carries the sender-side accounting.
    registry->GetCounter("transport.paper_messages")
        ->Set(bus_.messages_sent());
    registry->GetCounter("transport.paper_site_messages")
        ->Set(bus_.site_messages_sent());
    registry->GetGauge("transport.paper_bytes")->Set(bus_.bytes_sent());
    registry->GetCounter("transport.total_messages")
        ->Set(bus_.transport_messages_sent());
    registry->GetGauge("transport.total_bytes")
        ->Set(bus_.transport_bytes_sent());
  }
  reliable_->PublishMetrics(registry);

  const CoordinatorNode::AuditStats coord = coordinator_->audit();
  registry->GetCounter("coordinator.full_syncs")
      ->Set(coordinator_->full_syncs());
  registry->GetCounter("coordinator.partial_resolutions")
      ->Set(coordinator_->partial_resolutions());
  registry->GetCounter("coordinator.degraded_syncs")
      ->Set(coordinator_->degraded_syncs());
  registry->GetCounter("coordinator.epoch")
      ->Set(static_cast<long>(coordinator_->epoch()));
  registry->GetCounter("coordinator.stale_epoch_drops")
      ->Set(coord.stale_epoch_drops);
  registry->GetCounter("coordinator.stale_epoch_applied")
      ->Set(coord.stale_epoch_applied);
  registry->GetCounter("coordinator.late_reports")->Set(coord.late_reports);
  registry->GetCounter("coordinator.rejoins_granted")
      ->Set(coord.rejoins_granted);
  registry->GetCounter("coordinator.sync_rerequests")
      ->Set(coord.sync_rerequests);

  SiteNode::AuditStats sites_total;
  for (const auto& site : sites_) {
    const SiteNode::AuditStats audit = site->audit();
    sites_total.stale_epoch_drops += audit.stale_epoch_drops;
    sites_total.stale_epoch_applied += audit.stale_epoch_applied;
    sites_total.heartbeats_sent += audit.heartbeats_sent;
    sites_total.rejoin_requests_sent += audit.rejoin_requests_sent;
  }
  registry->GetCounter("site.stale_epoch_drops")
      ->Set(sites_total.stale_epoch_drops);
  registry->GetCounter("site.stale_epoch_applied")
      ->Set(sites_total.stale_epoch_applied);
  registry->GetCounter("site.heartbeats_sent")
      ->Set(sites_total.heartbeats_sent);
  registry->GetCounter("site.rejoin_requests_sent")
      ->Set(sites_total.rejoin_requests_sent);

  const FailureDetector& fd = coordinator_->failure_detector();
  registry->GetCounter("failure.total_deaths")->Set(fd.total_deaths());
  registry->GetGauge("failure.live_count")
      ->Set(static_cast<double>(fd.live_count()));

  // Windowed time-series export: one sample per cycle (idempotent — an
  // on-demand PublishMetrics within the same cycle does not duplicate).
  if (telemetry_->series) telemetry_->series->Sample(cycle_, *registry);
}

}  // namespace sgm
