#include "runtime/driver.h"

#include "core/check.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"

namespace sgm {

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config) {
  BuildNodes(num_sites, function, config, &bus_);
}

RuntimeDriver::RuntimeDriver(int num_sites, const MonitoredFunction& function,
                             const RuntimeConfig& config,
                             const SimTransportConfig& sim_config) {
  SimTransportConfig effective = sim_config;
  effective.num_sites = num_sites;
  sim_ = std::make_unique<SimTransport>(&bus_, effective);
  BuildNodes(num_sites, function, config, sim_.get());
}

void RuntimeDriver::BuildNodes(int num_sites,
                               const MonitoredFunction& function,
                               const RuntimeConfig& config, Transport* lower) {
  SGM_CHECK(num_sites > 0);
  telemetry_ = config.telemetry;
  config_ = config;
  function_clone_ = function.Clone();
  if (telemetry_ != nullptr) {
    // The log gets the same seed+rate the coordinator mints decisions from,
    // so its noise-event coin replays with the run.
    telemetry_->trace.ConfigureSampling(config.trace_sample_rate,
                                        config.seed);
  }
  if (sim_ && telemetry_ != nullptr) sim_->set_telemetry(telemetry_);
  reliable_ = std::make_unique<ReliableTransport>(
      lower, num_sites, config.reliability, telemetry_);
  coordinator_ = std::make_unique<CoordinatorNode>(num_sites, function,
                                                   config, reliable_.get());
  coordinator_->AttachReliability(reliable_.get());
  sites_.reserve(num_sites);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<SiteNode>(i, num_sites, function,
                                                config, reliable_.get()));
  }
}

void RuntimeDriver::Deliver(int receiver, const RuntimeMessage& message) {
  if (receiver == kCoordinatorId && coordinator_ == nullptr) {
    // A dead coordinator acks nothing and processes nothing: the frame is
    // lost unacked (before the receive-side reliability layer, which would
    // ack it), exactly as a crashed host loses it. Senders retransmit and
    // eventually give up; recovery re-anchors them.
    ++coordinator_down_drops_;
    return;
  }
  // The receive-side reliability layer consumes acks, dedups and acks data;
  // at most one message survives to the node.
  std::vector<RuntimeMessage> fresh;
  reliable_->OnDeliver(receiver, message, &fresh);
  for (const RuntimeMessage& m : fresh) {
    if (receiver == kCoordinatorId) {
      coordinator_->OnMessage(m);
      if (crash_after_messages_ > 0 && --crash_after_messages_ == 0) {
        // Armed mid-cascade crash: fires between two message handlers of
        // one delivery burst. Anything already acked but not yet dispatched
        // dies with the process (ack-then-crash is a real failure mode the
        // WAL ordering must survive).
        CrashCoordinator();
        break;
      }
    } else {
      sites_[receiver]->OnMessage(m);
    }
  }
}

void RuntimeDriver::ReportBarrierLag(const std::vector<int>& laggards) {
  if (coordinator_ == nullptr) return;
  std::vector<bool> lagging(sites_.size(), false);
  for (const int site : laggards) {
    SGM_CHECK(site >= 0 && site < num_sites());
    lagging[site] = true;
  }
  int missed = 0;
  for (int site = 0; site < num_sites(); ++site) {
    if (lagging[site]) {
      ++missed;
      coordinator_->OnBarrierDeadlineMissed(site);
    } else {
      coordinator_->OnBarrierDeadlineMet(site);
    }
  }
  if (missed > 0) coordinator_->RecordDegradedCycle(missed);
}

void RuntimeDriver::CrashCoordinator() {
  SGM_CHECK(coordinator_ != nullptr);
  SGM_CHECK_MSG(config_.checkpoint_store != nullptr,
                "coordinator crash without a checkpoint store is fatal");
  last_crash_epoch_ = coordinator_->epoch();
  AccumulateRecovery(coordinator_->recovery_stats());
  ++coordinator_crashes_;
  crash_after_messages_ = 0;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("fault", "coordinator_crash", kCoordinatorId,
                           {{"epoch", last_crash_epoch_}});
  }
  coordinator_.reset();
  // The dead-link handler captured the dead coordinator; clear it before
  // voiding the coordinator's unacked outbound traffic (which must not be
  // read as evidence of dead *receivers*).
  reliable_->SetDeadLinkHandler({});
  reliable_->AbandonSender(kCoordinatorId);
}

void RuntimeDriver::ArmCoordinatorCrash(long count) {
  SGM_CHECK(count >= 1);
  SGM_CHECK(coordinator_ != nullptr);
  crash_after_messages_ = count;
}

void RuntimeDriver::RecoverCoordinator() {
  SGM_CHECK(coordinator_ == nullptr);
  coordinator_ = std::make_unique<CoordinatorNode>(
      num_sites(), *function_clone_, config_, reliable_.get());
  coordinator_->AttachReliability(reliable_.get());
  SGM_CHECK_MSG(coordinator_->Recover(),
                "coordinator recovery found no decodable checkpoint");
  RouteToQuiescence();
  PublishMetrics();
}

void RuntimeDriver::AccumulateRecovery(
    const CoordinatorNode::RecoveryStats& stats) {
  recovery_totals_.restores += stats.restores;
  recovery_totals_.snapshots_written += stats.snapshots_written;
  recovery_totals_.wal_records += stats.wal_records;
  recovery_totals_.wal_records_replayed += stats.wal_records_replayed;
  recovery_totals_.snapshots_discarded += stats.snapshots_discarded;
  recovery_totals_.torn_wal_bytes += stats.torn_wal_bytes;
  recovery_totals_.reconcile_grants += stats.reconcile_grants;
}

CoordinatorNode::RecoveryStats RuntimeDriver::recovery_totals() const {
  CoordinatorNode::RecoveryStats total = recovery_totals_;
  if (coordinator_ != nullptr) {
    const CoordinatorNode::RecoveryStats& live = coordinator_->recovery_stats();
    total.restores += live.restores;
    total.snapshots_written += live.snapshots_written;
    total.wal_records += live.wal_records;
    total.wal_records_replayed += live.wal_records_replayed;
    total.snapshots_discarded += live.snapshots_discarded;
    total.torn_wal_bytes += live.torn_wal_bytes;
    total.reconcile_grants += live.reconcile_grants;
  }
  return total;
}

void RuntimeDriver::RouteToQuiescence() {
  for (;;) {
    for (;;) {
      while (!bus_.empty()) {
        const RuntimeMessage message = bus_.Pop();
        if (message.to == kCoordinatorId) {
          Deliver(kCoordinatorId, message);
        } else if (message.to == kBroadcastId) {
          // A broadcast is one wire message but N receiver-side stacks:
          // each live site dedups and acks independently.
          for (auto& site : sites_) {
            if (sim_ && sim_->IsCrashed(site->id())) continue;
            Deliver(site->id(), message);
          }
        } else {
          SGM_CHECK(message.to >= 0 &&
                    message.to < static_cast<int>(sites_.size()));
          if (sim_ && sim_->IsCrashed(message.to)) continue;
          Deliver(message.to, message);
        }
      }
      // Bus drained: one transport round elapses. Release any delay-held
      // messages (delays are bounded, not losses) and let the reliability
      // layer retransmit whatever came due. Termination is guaranteed:
      // delays are bounded and every in-flight entry has a bounded
      // retransmission budget.
      const bool sim_pending = sim_ && sim_->HasPending();
      if (!sim_pending && !reliable_->HasUnacked()) break;
      if (sim_pending) sim_->AdvanceRound();
      reliable_->AdvanceRound();
    }
    // Transport quiescent: give the coordinator its quiescence callback; if
    // that produced new traffic, keep routing. While the coordinator is
    // down there is no callback — the loop above still terminates because
    // delays and retransmission budgets are bounded.
    if (coordinator_ != nullptr) coordinator_->OnQuiescent();
    if (bus_.empty() && !(sim_ && sim_->HasPending()) &&
        !reliable_->HasUnacked()) {
      return;
    }
  }
}

void RuntimeDriver::Initialize(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  if (telemetry_ != nullptr) telemetry_->SetCycle(cycle_);
  for (int i = 0; i < num_sites(); ++i) {
    sites_[i]->Observe(local_vectors[i]);
  }
  coordinator_->Start();
  RouteToQuiescence();
  PublishMetrics();
}

void RuntimeDriver::Tick(const std::vector<Vector>& local_vectors) {
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites());
  if (telemetry_ != nullptr) telemetry_->SetCycle(++cycle_);
  if (coordinator_ != nullptr) coordinator_->BeginCycle();
  for (int i = 0; i < num_sites(); ++i) {
    if (sim_ && sim_->IsCrashed(i)) continue;  // crashed: observes nothing
    sites_[i]->Observe(local_vectors[i]);
  }
  RouteToQuiescence();
  PublishMetrics();
}

void RuntimeDriver::PublishMetrics() {
  if (telemetry_ == nullptr) return;
  MetricRegistry* registry = &telemetry_->registry;
  if (sim_) {
    sim_->PublishMetrics(registry);
  } else {
    // Faultless wiring: the bus carries the sender-side accounting.
    registry->GetCounter("transport.paper_messages")
        ->Set(bus_.messages_sent());
    registry->GetCounter("transport.paper_site_messages")
        ->Set(bus_.site_messages_sent());
    registry->GetGauge("transport.paper_bytes")->Set(bus_.bytes_sent());
    registry->GetCounter("transport.total_messages")
        ->Set(bus_.transport_messages_sent());
    registry->GetGauge("transport.total_bytes")
        ->Set(bus_.transport_bytes_sent());
  }
  reliable_->PublishMetrics(registry);

  if (coordinator_ != nullptr) {
    const CoordinatorNode::AuditStats coord = coordinator_->audit();
    registry->GetCounter("coordinator.full_syncs")
        ->Set(coordinator_->full_syncs());
    registry->GetCounter("coordinator.partial_resolutions")
        ->Set(coordinator_->partial_resolutions());
    registry->GetCounter("coordinator.degraded_syncs")
        ->Set(coordinator_->degraded_syncs());
    registry->GetCounter("coordinator.epoch")
        ->Set(static_cast<long>(coordinator_->epoch()));
    registry->GetCounter("coordinator.stale_epoch_drops")
        ->Set(coord.stale_epoch_drops);
    registry->GetCounter("coordinator.stale_epoch_applied")
        ->Set(coord.stale_epoch_applied);
    registry->GetCounter("coordinator.late_reports")->Set(coord.late_reports);
    registry->GetCounter("coordinator.rejoins_granted")
        ->Set(coord.rejoins_granted);
    registry->GetCounter("coordinator.sync_rerequests")
        ->Set(coord.sync_rerequests);
  }

  if (config_.checkpoint_store != nullptr) {
    const CoordinatorNode::RecoveryStats rec = recovery_totals();
    registry->GetCounter("recovery.restores")->Set(rec.restores);
    registry->GetCounter("recovery.snapshots_written")
        ->Set(rec.snapshots_written);
    registry->GetCounter("recovery.wal_records")->Set(rec.wal_records);
    registry->GetCounter("recovery.wal_records_replayed")
        ->Set(rec.wal_records_replayed);
    registry->GetCounter("recovery.snapshots_discarded")
        ->Set(rec.snapshots_discarded);
    registry->GetCounter("recovery.torn_wal_bytes")->Set(rec.torn_wal_bytes);
    registry->GetCounter("recovery.reconcile_grants")
        ->Set(rec.reconcile_grants);
    registry->GetCounter("recovery.coordinator_crashes")
        ->Set(coordinator_crashes_);
    registry->GetCounter("recovery.down_drops")->Set(coordinator_down_drops_);
  }

  SiteNode::AuditStats sites_total;
  for (const auto& site : sites_) {
    const SiteNode::AuditStats audit = site->audit();
    sites_total.stale_epoch_drops += audit.stale_epoch_drops;
    sites_total.stale_epoch_applied += audit.stale_epoch_applied;
    sites_total.heartbeats_sent += audit.heartbeats_sent;
    sites_total.rejoin_requests_sent += audit.rejoin_requests_sent;
  }
  registry->GetCounter("site.stale_epoch_drops")
      ->Set(sites_total.stale_epoch_drops);
  registry->GetCounter("site.stale_epoch_applied")
      ->Set(sites_total.stale_epoch_applied);
  registry->GetCounter("site.heartbeats_sent")
      ->Set(sites_total.heartbeats_sent);
  registry->GetCounter("site.rejoin_requests_sent")
      ->Set(sites_total.rejoin_requests_sent);

  if (coordinator_ != nullptr) {
    const FailureDetector& fd = coordinator_->failure_detector();
    registry->GetCounter("failure.total_deaths")->Set(fd.total_deaths());
    registry->GetGauge("failure.live_count")
        ->Set(static_cast<double>(fd.live_count()));

    // Straggler / bounded-staleness accounting (deadline-driven barriers).
    registry->GetCounter("degraded.cycles")
        ->Set(coordinator_->degraded_cycles());
    registry->GetGauge("degraded.lagging_sites")
        ->Set(static_cast<double>(fd.lagging_count()));
    registry->GetCounter("degraded.lag_quarantines")
        ->Set(fd.total_lagging_verdicts());
    registry->GetCounter("degraded.staleness_cycles_total")
        ->Set(fd.staleness_cycles_total());
    registry->GetGauge("degraded.staleness_cycles_max")
        ->Set(static_cast<double>(fd.staleness_cycles_max()));
  }

  // Telemetry self-cost: what observability itself spends. Emitted counts
  // include sampled-out events, so `sampled_out / events` is the live
  // sampling ratio and `telemetry_ns` bounds the instrumentation tax.
  const TraceLog::SelfCost cost = telemetry_->trace.self_cost();
  registry->GetCounter("obs.trace.events")->Set(cost.events_emitted);
  registry->GetCounter("obs.trace.recorded")->Set(cost.events_recorded);
  registry->GetCounter("obs.trace.sampled_out")->Set(cost.events_sampled_out);
  registry->GetCounter("obs.trace.bytes_written")
      ->Set(static_cast<long>(cost.bytes_written));
  registry->GetCounter("obs.telemetry.ns")
      ->Set(static_cast<long>(cost.telemetry_ns));
  if (const FlightRecorder* ring = telemetry_->trace.flight_recorder()) {
    registry->GetCounter("obs.ring.recorded")->Set(ring->lines_recorded());
    registry->GetCounter("obs.ring.overwrites")->Set(ring->overwrites());
    registry->GetCounter("obs.ring.dropped")->Set(ring->lines_dropped());
  }

  // Windowed time-series export: one sample per cycle (idempotent — an
  // on-demand PublishMetrics within the same cycle does not duplicate).
  if (telemetry_->series) telemetry_->series->Sample(cycle_, *registry);
}

}  // namespace sgm
