#ifndef SGM_RUNTIME_DRIVER_H_
#define SGM_RUNTIME_DRIVER_H_

#include <memory>
#include <vector>

#include "runtime/coordinator_node.h"
#include "runtime/reliable_transport.h"
#include "runtime/sim_transport.h"
#include "runtime/site_node.h"
#include "runtime/transport.h"

namespace sgm {

/// Synchronous single-process driver wiring N SiteNodes and one
/// CoordinatorNode over an InMemoryBus — the reference deployment and the
/// harness the runtime tests/examples use. Real deployments replace this
/// with their own event loop and transport; the nodes are loop-agnostic.
///
/// The transport stack, top to bottom:
///
///   nodes → ReliableTransport → [SimTransport] → InMemoryBus
///
/// The ReliableTransport is always present: it stamps sequence numbers,
/// acks every delivery, retransmits unacked messages with bounded backoff
/// and dedups the receive side. On the faultless wiring it is pure
/// pass-through overhead-wise — every ack arrives in the same drain, so no
/// retransmission ever fires and paper-comparable accounting is unchanged.
///
/// The four-argument constructor layers a seeded SimTransport between the
/// reliability layer and the bus, turning the driver into the
/// deterministic-simulation harness: drops, duplicates, bounded delays
/// (delivered by advancing transport rounds whenever the bus drains) and
/// site crash/recovery, all replayable from the SimTransportConfig seed.
class RuntimeDriver {
 public:
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config);

  /// Fault-injecting variant: nodes send through the reliability layer into
  /// a SimTransport that drains into the internal bus.
  /// `sim_config.num_sites` is overridden to `num_sites`.
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config,
                const SimTransportConfig& sim_config);

  /// Runs the initialization synchronization from the sites' first vectors.
  void Initialize(const std::vector<Vector>& local_vectors);

  /// Executes one full update cycle: every site observes its new vector,
  /// then messages are routed to quiescence. Crashed sites neither observe
  /// nor receive until recovered.
  void Tick(const std::vector<Vector>& local_vectors);

  /// Mirrors every component's counters into the attached telemetry's
  /// metric registry (`transport.*`, `coordinator.*`, `site.*`,
  /// `failure.*`). No-op without a RuntimeConfig::telemetry. Called
  /// automatically after every Tick; also callable on demand before a
  /// metrics snapshot is written out.
  void PublishMetrics();

  const CoordinatorNode& coordinator() const { return *coordinator_; }
  const InMemoryBus& bus() const { return bus_; }
  /// The fault layer, or nullptr for the faultless wiring. Crash/recovery
  /// and fault statistics live here; with a fault layer active, sender-side
  /// accounting should be read from it rather than from bus().
  SimTransport* sim_transport() { return sim_.get(); }
  const SimTransport* sim_transport() const { return sim_.get(); }
  /// The ack/retransmit layer (always wired).
  const ReliableTransport& reliable_transport() const { return *reliable_; }
  SiteNode& site(int id) { return *sites_[id]; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

 private:
  void BuildNodes(int num_sites, const MonitoredFunction& function,
                  const RuntimeConfig& config, Transport* lower);
  /// Runs one bus message through the receive-side reliability layer for
  /// `receiver` and dispatches whatever survives dedup.
  void Deliver(int receiver, const RuntimeMessage& message);
  /// Delivers queued messages (and quiescence callbacks) to a fixed point,
  /// advancing the fault layer's delay rounds and the reliability layer's
  /// retransmission clock whenever the bus drains.
  void RouteToQuiescence();

  InMemoryBus bus_;
  std::unique_ptr<SimTransport> sim_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
  Telemetry* telemetry_ = nullptr;
  long cycle_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_DRIVER_H_
