#ifndef SGM_RUNTIME_DRIVER_H_
#define SGM_RUNTIME_DRIVER_H_

#include <memory>
#include <vector>

#include "runtime/coordinator_node.h"
#include "runtime/reliable_transport.h"
#include "runtime/sim_transport.h"
#include "runtime/site_node.h"
#include "runtime/transport.h"

namespace sgm {

/// Synchronous single-process driver wiring N SiteNodes and one
/// CoordinatorNode over an InMemoryBus — the reference deployment and the
/// harness the runtime tests/examples use. Real deployments replace this
/// with their own event loop and transport; the nodes are loop-agnostic.
///
/// The transport stack, top to bottom:
///
///   nodes → ReliableTransport → [SimTransport] → InMemoryBus
///
/// The ReliableTransport is always present: it stamps sequence numbers,
/// acks every delivery, retransmits unacked messages with bounded backoff
/// and dedups the receive side. On the faultless wiring it is pure
/// pass-through overhead-wise — every ack arrives in the same drain, so no
/// retransmission ever fires and paper-comparable accounting is unchanged.
///
/// The four-argument constructor layers a seeded SimTransport between the
/// reliability layer and the bus, turning the driver into the
/// deterministic-simulation harness: drops, duplicates, bounded delays
/// (delivered by advancing transport rounds whenever the bus drains) and
/// site crash/recovery, all replayable from the SimTransportConfig seed.
class RuntimeDriver {
 public:
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config);

  /// Fault-injecting variant: nodes send through the reliability layer into
  /// a SimTransport that drains into the internal bus.
  /// `sim_config.num_sites` is overridden to `num_sites`.
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config,
                const SimTransportConfig& sim_config);

  /// Runs the initialization synchronization from the sites' first vectors.
  void Initialize(const std::vector<Vector>& local_vectors);

  /// Executes one full update cycle: every site observes its new vector,
  /// then messages are routed to quiescence. Crashed sites neither observe
  /// nor receive until recovered.
  void Tick(const std::vector<Vector>& local_vectors);

  /// Mirrors every component's counters into the attached telemetry's
  /// metric registry (`transport.*`, `coordinator.*`, `site.*`,
  /// `failure.*`, `recovery.*`). No-op without a RuntimeConfig::telemetry.
  /// Called automatically after every Tick; also callable on demand before
  /// a metrics snapshot is written out.
  void PublishMetrics();

  /// Deterministic stall-fault hook (DST): the harness's stall schedule
  /// reports which sites missed this cycle's barrier deadline. Every
  /// laggard accrues a deadline miss (consecutive misses quarantine it as
  /// kLagging — see CoordinatorNode::OnBarrierDeadlineMissed), every other
  /// site resets its miss count, and a nonempty set records the cycle
  /// degraded. No-op while the coordinator is down. Call once per Tick,
  /// after it, mirroring when the socket server's deadline would fire.
  void ReportBarrierLag(const std::vector<int>& laggards);

  // ── Coordinator crash injection (DST) ──────────────────────────────────

  /// Kills the coordinator process model immediately: its in-memory state
  /// is destroyed, its unacked outbound traffic is voided (no dead-link
  /// verdicts — the sender is gone, not the receivers), and until
  /// RecoverCoordinator() every coordinator-bound frame is dropped on the
  /// floor unacked, exactly as a dead host drops it. Requires a
  /// RuntimeConfig::checkpoint_store, since recovery needs one.
  void CrashCoordinator();

  /// Arms a crash that fires after the coordinator processes `count` more
  /// messages — landing *inside* a sync cascade's message burst rather than
  /// at a cycle boundary. Any value larger than the remaining traffic
  /// simply never fires (disarmed by the next explicit crash).
  void ArmCoordinatorCrash(long count);

  /// Rebuilds the coordinator and runs CoordinatorNode::Recover() — CHECKs
  /// that a recoverable checkpoint exists — then routes the reconciliation
  /// traffic to quiescence.
  void RecoverCoordinator();

  bool coordinator_down() const { return coordinator_ == nullptr; }
  bool crash_armed() const { return crash_after_messages_ > 0; }
  /// Committed epoch at the moment of the last crash (the recovery fence
  /// invariant: the recovered epoch must be exactly this + 1).
  std::int64_t last_crash_epoch() const { return last_crash_epoch_; }
  long coordinator_crashes() const { return coordinator_crashes_; }
  /// Coordinator-bound frames dropped while the coordinator was down.
  long coordinator_down_drops() const { return coordinator_down_drops_; }
  /// Checkpoint/recovery counters accumulated across every coordinator
  /// incarnation, the live one included.
  CoordinatorNode::RecoveryStats recovery_totals() const;

  /// Valid only while !coordinator_down().
  const CoordinatorNode& coordinator() const { return *coordinator_; }
  const InMemoryBus& bus() const { return bus_; }
  /// The fault layer, or nullptr for the faultless wiring. Crash/recovery
  /// and fault statistics live here; with a fault layer active, sender-side
  /// accounting should be read from it rather than from bus().
  SimTransport* sim_transport() { return sim_.get(); }
  const SimTransport* sim_transport() const { return sim_.get(); }
  /// The ack/retransmit layer (always wired).
  const ReliableTransport& reliable_transport() const { return *reliable_; }
  SiteNode& site(int id) { return *sites_[id]; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

 private:
  void BuildNodes(int num_sites, const MonitoredFunction& function,
                  const RuntimeConfig& config, Transport* lower);
  /// Runs one bus message through the receive-side reliability layer for
  /// `receiver` and dispatches whatever survives dedup.
  void Deliver(int receiver, const RuntimeMessage& message);
  /// Delivers queued messages (and quiescence callbacks) to a fixed point,
  /// advancing the fault layer's delay rounds and the reliability layer's
  /// retransmission clock whenever the bus drains.
  void RouteToQuiescence();
  /// Folds a dead incarnation's recovery counters into the totals.
  void AccumulateRecovery(const CoordinatorNode::RecoveryStats& stats);

  InMemoryBus bus_;
  std::unique_ptr<SimTransport> sim_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
  Telemetry* telemetry_ = nullptr;
  long cycle_ = 0;

  /// Kept for rebuilding the coordinator after a crash.
  RuntimeConfig config_;
  std::unique_ptr<MonitoredFunction> function_clone_;

  long crash_after_messages_ = 0;  ///< 0 = disarmed
  std::int64_t last_crash_epoch_ = 0;
  long coordinator_crashes_ = 0;
  long coordinator_down_drops_ = 0;
  /// Totals from dead incarnations; the live one's stats add on top.
  CoordinatorNode::RecoveryStats recovery_totals_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_DRIVER_H_
