#ifndef SGM_RUNTIME_DRIVER_H_
#define SGM_RUNTIME_DRIVER_H_

#include <memory>
#include <vector>

#include "runtime/coordinator_node.h"
#include "runtime/sim_transport.h"
#include "runtime/site_node.h"
#include "runtime/transport.h"

namespace sgm {

/// Synchronous single-process driver wiring N SiteNodes and one
/// CoordinatorNode over an InMemoryBus — the reference deployment and the
/// harness the runtime tests/examples use. Real deployments replace this
/// with their own event loop and transport; the nodes are loop-agnostic.
///
/// The three-argument constructor gives the faultless reference wiring. The
/// four-argument constructor layers a seeded SimTransport between the nodes
/// and the bus, turning the driver into the deterministic-simulation harness:
/// drops, duplicates, bounded delays (delivered by advancing transport
/// rounds whenever the bus drains) and site crash/recovery, all replayable
/// from the SimTransportConfig seed.
class RuntimeDriver {
 public:
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config);

  /// Fault-injecting variant: nodes send through a SimTransport that drains
  /// into the internal bus. `sim_config.num_sites` is overridden to
  /// `num_sites`.
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config,
                const SimTransportConfig& sim_config);

  /// Runs the initialization synchronization from the sites' first vectors.
  void Initialize(const std::vector<Vector>& local_vectors);

  /// Executes one full update cycle: every site observes its new vector,
  /// then messages are routed to quiescence. Crashed sites neither observe
  /// nor receive until recovered.
  void Tick(const std::vector<Vector>& local_vectors);

  const CoordinatorNode& coordinator() const { return *coordinator_; }
  const InMemoryBus& bus() const { return bus_; }
  /// The fault layer, or nullptr for the faultless wiring. Crash/recovery
  /// and fault statistics live here; with a fault layer active, sender-side
  /// accounting should be read from it rather than from bus().
  SimTransport* sim_transport() { return sim_.get(); }
  const SimTransport* sim_transport() const { return sim_.get(); }
  SiteNode& site(int id) { return *sites_[id]; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

 private:
  void BuildNodes(int num_sites, const MonitoredFunction& function,
                  const RuntimeConfig& config, Transport* transport);
  /// Delivers queued messages (and quiescence callbacks) to a fixed point,
  /// advancing the fault layer's delay rounds whenever the bus drains.
  void RouteToQuiescence();

  InMemoryBus bus_;
  std::unique_ptr<SimTransport> sim_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_DRIVER_H_
