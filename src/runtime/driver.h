#ifndef SGM_RUNTIME_DRIVER_H_
#define SGM_RUNTIME_DRIVER_H_

#include <memory>
#include <vector>

#include "runtime/coordinator_node.h"
#include "runtime/site_node.h"
#include "runtime/transport.h"

namespace sgm {

/// Synchronous single-process driver wiring N SiteNodes and one
/// CoordinatorNode over an InMemoryBus — the reference deployment and the
/// harness the runtime tests/examples use. Real deployments replace this
/// with their own event loop and transport; the nodes are loop-agnostic.
class RuntimeDriver {
 public:
  RuntimeDriver(int num_sites, const MonitoredFunction& function,
                const RuntimeConfig& config);

  /// Runs the initialization synchronization from the sites' first vectors.
  void Initialize(const std::vector<Vector>& local_vectors);

  /// Executes one full update cycle: every site observes its new vector,
  /// then messages are routed to quiescence.
  void Tick(const std::vector<Vector>& local_vectors);

  const CoordinatorNode& coordinator() const { return *coordinator_; }
  const InMemoryBus& bus() const { return bus_; }
  SiteNode& site(int id) { return *sites_[id]; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

 private:
  /// Delivers queued messages (and quiescence callbacks) to a fixed point.
  void RouteToQuiescence();

  InMemoryBus bus_;
  std::unique_ptr<CoordinatorNode> coordinator_;
  std::vector<std::unique_ptr<SiteNode>> sites_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_DRIVER_H_
