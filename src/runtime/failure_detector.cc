#include "runtime/failure_detector.h"

#include <algorithm>

#include "core/check.h"

namespace sgm {

FailureDetector::FailureDetector(int num_sites,
                                 const FailureDetectorConfig& config)
    : config_(config), sites_(num_sites) {
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(config.suspect_after_misses >= 1);
  SGM_CHECK(config.dead_after_misses > config.suspect_after_misses);
  SGM_CHECK(config.flap_death_threshold >= 2);
  SGM_CHECK(config.flap_window_cycles >= 1 && config.quarantine_cycles >= 0);
}

void FailureDetector::Escalate(int site) {
  SiteState& s = sites_[site];
  if (s.state != State::kAlive && s.state != State::kSuspect) return;
  const long misses = cycle_ - s.last_heard_cycle;
  if (misses > config_.dead_after_misses) {
    s.state = State::kDead;
    ++s.deaths;
    s.death_cycles.push_back(cycle_);
    // Flap detection over the recent window.
    const long horizon = cycle_ - config_.flap_window_cycles;
    s.death_cycles.erase(
        std::remove_if(s.death_cycles.begin(), s.death_cycles.end(),
                       [horizon](long c) { return c < horizon; }),
        s.death_cycles.end());
    if (static_cast<int>(s.death_cycles.size()) >=
        config_.flap_death_threshold) {
      s.quarantine_until = cycle_ + config_.quarantine_cycles;
    }
  } else if (misses > config_.suspect_after_misses) {
    s.state = State::kSuspect;
  }
}

void FailureDetector::BeginCycle(long cycle) {
  cycle_ = cycle;
  for (int site = 0; site < static_cast<int>(sites_.size()); ++site) {
    Escalate(site);
  }
}

void FailureDetector::RecordAlive(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  s.last_heard_cycle = cycle_;
  if (s.state == State::kSuspect) s.state = State::kAlive;
  // kDead / kRejoining: liveness alone does not revive — the rejoin
  // handshake must resync the site's estimate and Δv baseline first.
}

void FailureDetector::ReportUnreachable(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  if (s.state == State::kDead || s.state == State::kRejoining) return;
  s.state = State::kDead;
  ++s.deaths;
  s.death_cycles.push_back(cycle_);
  const long horizon = cycle_ - config_.flap_window_cycles;
  s.death_cycles.erase(
      std::remove_if(s.death_cycles.begin(), s.death_cycles.end(),
                     [horizon](long c) { return c < horizon; }),
      s.death_cycles.end());
  if (static_cast<int>(s.death_cycles.size()) >=
      config_.flap_death_threshold) {
    s.quarantine_until = cycle_ + config_.quarantine_cycles;
  }
}

void FailureDetector::BeginRejoin(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  if (sites_[site].state == State::kDead) {
    sites_[site].state = State::kRejoining;
  }
}

void FailureDetector::CompleteRejoin(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  if (s.state != State::kRejoining && s.state != State::kDead) return;
  s.state = State::kAlive;
  s.last_heard_cycle = cycle_;
}

bool FailureDetector::IsQuarantined(int site) const {
  return sites_[site].quarantine_until >= cycle_;
}

int FailureDetector::live_count() const {
  int live = 0;
  for (int site = 0; site < static_cast<int>(sites_.size()); ++site) {
    if (IsLive(site)) ++live;
  }
  return live;
}

long FailureDetector::total_deaths() const {
  long total = 0;
  for (const SiteState& s : sites_) total += s.deaths;
  return total;
}

const char* ToString(FailureDetector::State state) {
  switch (state) {
    case FailureDetector::State::kAlive: return "alive";
    case FailureDetector::State::kSuspect: return "suspect";
    case FailureDetector::State::kDead: return "dead";
    case FailureDetector::State::kRejoining: return "rejoining";
  }
  return "?";
}

}  // namespace sgm
