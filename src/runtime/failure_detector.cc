#include "runtime/failure_detector.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"
#include "obs/telemetry.h"

namespace sgm {

FailureDetector::FailureDetector(int num_sites,
                                 const FailureDetectorConfig& config)
    : config_(config), sites_(num_sites) {
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(config.suspect_after_misses >= 1);
  SGM_CHECK(config.dead_after_misses > config.suspect_after_misses);
  SGM_CHECK(config.flap_death_threshold >= 2);
  SGM_CHECK(config.flap_window_cycles >= 1 && config.quarantine_cycles >= 0);
  SGM_CHECK(config.lagging_after_deadline_misses >= 1);
  SGM_CHECK(config.threshold_jitter >= 0.0 && config.threshold_jitter < 1.0);
  for (int site = 0; site < num_sites; ++site) {
    SiteState& s = sites_[site];
    if (config.threshold_jitter > 0.0) {
      Rng rng(DeriveSeed(config.jitter_seed, static_cast<std::uint64_t>(site)));
      const auto factor = [&rng, &config] {
        return 1.0 + config.threshold_jitter * (2.0 * rng.NextDouble() - 1.0);
      };
      s.suspect_after = std::max(
          1, static_cast<int>(std::lround(config.suspect_after_misses *
                                          factor())));
      s.dead_after = std::max(
          s.suspect_after + 1,
          static_cast<int>(std::lround(config.dead_after_misses * factor())));
      s.quarantine = std::max<long>(
          0, std::lround(config.quarantine_cycles * factor()));
      s.lagging_after = std::max(
          1, static_cast<int>(std::lround(
                 config.lagging_after_deadline_misses * factor())));
    } else {
      s.suspect_after = config.suspect_after_misses;
      s.dead_after = config.dead_after_misses;
      s.quarantine = config.quarantine_cycles;
      s.lagging_after = config.lagging_after_deadline_misses;
    }
  }
}

/// Shared death bookkeeping (miss escalation and transport unreachability
/// reports converge here): death counters, flap detection over the recent
/// window, and the dead/quarantined trace events.
void FailureDetector::RecordDeath(int site) {
  SiteState& s = sites_[site];
  s.state = State::kDead;
  ++s.deaths;
  s.death_cycles.push_back(cycle_);
  const long horizon = cycle_ - config_.flap_window_cycles;
  s.death_cycles.erase(
      std::remove_if(s.death_cycles.begin(), s.death_cycles.end(),
                     [horizon](long c) { return c < horizon; }),
      s.death_cycles.end());
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("failure", "dead", site, {{"deaths", s.deaths}});
  }
  if (static_cast<int>(s.death_cycles.size()) >=
      config_.flap_death_threshold) {
    s.quarantine_until = cycle_ + s.quarantine;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("failure", "quarantined", site,
                             {{"until_cycle", s.quarantine_until}});
    }
  }
}

void FailureDetector::Escalate(int site) {
  SiteState& s = sites_[site];
  if (s.state != State::kAlive && s.state != State::kSuspect) return;
  const long misses = cycle_ - s.last_heard_cycle;
  if (misses > s.dead_after) {
    RecordDeath(site);
  } else if (misses > s.suspect_after) {
    if (telemetry_ != nullptr && s.state != State::kSuspect) {
      telemetry_->trace.Emit("failure", "suspect", site,
                             {{"misses", misses}});
    }
    s.state = State::kSuspect;
  } else if (misses >= 2 && telemetry_ != nullptr) {
    // One silent cycle is routine scheduling noise; two or more is a
    // trend worth a breadcrumb before the suspect threshold trips.
    telemetry_->trace.Emit("failure", "heartbeat_miss", site,
                           {{"misses", misses}});
  }
}

void FailureDetector::BeginCycle(long cycle) {
  cycle_ = cycle;
  for (int site = 0; site < static_cast<int>(sites_.size()); ++site) {
    Escalate(site);
  }
}

void FailureDetector::RecordAlive(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  s.last_heard_cycle = cycle_;
  if (s.state == State::kSuspect) s.state = State::kAlive;
  // kDead / kRejoining: liveness alone does not revive — the rejoin
  // handshake must resync the site's estimate and Δv baseline first.
}

void FailureDetector::ReportUnreachable(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  if (s.state == State::kDead || s.state == State::kRejoining) return;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("failure", "unreachable", site);
  }
  RecordDeath(site);
}

bool FailureDetector::RecordMissedDeadline(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  // Dead/rejoining sites are already out of the barrier population, and a
  // lagging one keeps its existing verdict; only live sites accrue misses.
  if (s.state != State::kAlive && s.state != State::kSuspect) return false;
  ++s.deadline_misses;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("failure", "deadline_miss", site,
                           {{"misses", s.deadline_misses}});
  }
  if (s.deadline_misses < s.lagging_after) return false;
  s.state = State::kLagging;
  s.lagging_since = cycle_;
  s.deadline_misses = 0;
  ++total_lagging_verdicts_;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("failure", "lagging", site,
                           {{"since_cycle", s.lagging_since}});
  }
  return true;
}

void FailureDetector::RecordDeadlineMet(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  sites_[site].deadline_misses = 0;
}

void FailureDetector::BeginRejoin(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  if (sites_[site].state == State::kDead ||
      sites_[site].state == State::kLagging) {
    sites_[site].state = State::kRejoining;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("failure", "rejoin_begin", site);
    }
  }
}

void FailureDetector::CompleteRejoin(int site) {
  SGM_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  SiteState& s = sites_[site];
  if (s.state != State::kRejoining && s.state != State::kDead &&
      s.state != State::kLagging) {
    return;
  }
  if (s.lagging_since >= 0) {
    // The laggard caught up: close its staleness window. Everything it
    // served between the lagging verdict and now was up to this many
    // cycles behind the deployment.
    const long staleness = cycle_ - s.lagging_since;
    staleness_cycles_total_ += staleness;
    staleness_cycles_max_ = std::max(staleness_cycles_max_, staleness);
    s.lagging_since = -1;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("failure", "lag_recovered", site,
                             {{"staleness_cycles", staleness}});
    }
  }
  s.state = State::kAlive;
  s.last_heard_cycle = cycle_;
  s.deadline_misses = 0;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("failure", "rejoin_complete", site);
  }
}

bool FailureDetector::IsQuarantined(int site) const {
  return sites_[site].quarantine_until >= cycle_;
}

int FailureDetector::live_count() const {
  int live = 0;
  for (int site = 0; site < static_cast<int>(sites_.size()); ++site) {
    if (IsLive(site)) ++live;
  }
  return live;
}

int FailureDetector::lagging_count() const {
  int lagging = 0;
  for (const SiteState& s : sites_) {
    if (s.state == State::kLagging) ++lagging;
  }
  return lagging;
}

std::vector<FailureDetector::SiteSnapshot> FailureDetector::Snapshot() const {
  std::vector<SiteSnapshot> out(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const SiteState& s = sites_[i];
    out[i] = {s.state, s.last_heard_cycle, s.deaths, s.death_cycles,
              s.quarantine_until};
  }
  return out;
}

void FailureDetector::Restore(const std::vector<SiteSnapshot>& sites,
                              long cycle) {
  SGM_CHECK(sites.size() == sites_.size());
  cycle_ = cycle;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    SiteState& s = sites_[i];
    s.state = sites[i].state;
    s.last_heard_cycle = sites[i].last_heard_cycle;
    s.deaths = sites[i].deaths;
    s.death_cycles = sites[i].death_cycles;
    s.quarantine_until = sites[i].quarantine_until;
    s.deadline_misses = 0;
    // A site checkpointed mid-lag restarts its staleness clock here: the
    // pre-crash window is not durable, so it is under- rather than
    // over-counted.
    s.lagging_since = s.state == State::kLagging ? cycle : -1;
  }
}

long FailureDetector::total_deaths() const {
  long total = 0;
  for (const SiteState& s : sites_) total += s.deaths;
  return total;
}

const char* ToString(FailureDetector::State state) {
  switch (state) {
    case FailureDetector::State::kAlive: return "alive";
    case FailureDetector::State::kSuspect: return "suspect";
    case FailureDetector::State::kDead: return "dead";
    case FailureDetector::State::kRejoining: return "rejoining";
    case FailureDetector::State::kLagging: return "lagging";
  }
  return "?";
}

}  // namespace sgm
