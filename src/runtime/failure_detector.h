#ifndef SGM_RUNTIME_FAILURE_DETECTOR_H_
#define SGM_RUNTIME_FAILURE_DETECTOR_H_

#include <cstdint>
#include <vector>

namespace sgm {

struct Telemetry;

/// Tuning knobs of the coordinator-side failure detector.
struct FailureDetectorConfig {
  /// Consecutive silent cycles before a site is suspected.
  int suspect_after_misses = 3;
  /// Consecutive silent cycles before a suspected site is declared dead
  /// (removed from the sample pool and the ack-expectation set).
  int dead_after_misses = 6;
  /// A site declared dead this many times within flap_window_cycles is
  /// quarantined: its rejoin is deferred until the quarantine expires, so a
  /// flapping link cannot thrash the estimate with partial resyncs.
  int flap_death_threshold = 3;
  long flap_window_cycles = 60;
  long quarantine_cycles = 30;
  /// Consecutive barrier-deadline misses before a slow-but-alive site is
  /// declared kLagging and quarantined out of the barrier population. Only
  /// meaningful when the coordinator runs with a barrier deadline; the
  /// counter resets whenever the site makes a deadline.
  int lagging_after_deadline_misses = 2;
  /// Deterministic per-site jitter on the suspect/dead/lagging thresholds
  /// and the quarantine duration: each site scales them by independent
  /// factors drawn once from Rng(DeriveSeed(jitter_seed, site)), uniform in
  /// [1 − threshold_jitter, 1 + threshold_jitter]. With the fixed constants
  /// every site in a partitioned fleet crossed suspect → dead (and left
  /// quarantine) in the same cycle, synchronizing death storms and rejoin
  /// stampedes; jitter desynchronizes them without giving up seeded replay.
  /// 0 disables (the exact configured values apply to every site).
  double threshold_jitter = 0.0;
  std::uint64_t jitter_seed = 11;
};

/// Heartbeat-miss failure detector for the coordinator: one state machine
/// per site.
///
///   kAlive ──misses > suspect──▶ kSuspect ──misses > dead──▶ kDead
///     ▲                             │ heard from                │ heard
///     └──────────(heard from)───────┘                           ▼
///   kAlive ◀──rejoin handshake (grant + fresh state)──── kRejoining
///
/// Liveness is piggybacked on ordinary protocol traffic — any message from
/// a site (drift report, state report, violation, heartbeat) counts. A site
/// that crossed into kDead must complete the rejoin handshake before it is
/// alive again; sites that die repeatedly within the flap window are
/// quarantined (rejoin deferred) until the quarantine expires.
///
/// A third verdict covers slow-but-alive sites: consecutive barrier-deadline
/// misses (reported by the coordinator's deadline-bounded barrier) move a
/// site kAlive/kSuspect → kLagging. Lagging is like dead for membership
/// purposes — out of the sample pool and the ack-expectation set — but the
/// site's TCP session stays up and its eventual catch-up traffic drives the
/// same rejoin handshake a revived dead site would (kLagging → kRejoining →
/// kAlive), re-anchoring it with a bounded, accounted staleness window.
class FailureDetector {
 public:
  enum class State { kAlive, kSuspect, kDead, kRejoining, kLagging };

  FailureDetector(int num_sites, const FailureDetectorConfig& config);

  /// Optional observability sink (nullable, not owned): state transitions
  /// are traced as `failure` category events when set.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Advances the cycle clock and escalates miss counts. Call once per
  /// update cycle, before processing the cycle's messages.
  void BeginCycle(long cycle);

  /// A message from `site` arrived (any kind — liveness is transport-level).
  /// kDead/kRejoining sites stay in their state: only the rejoin handshake
  /// revives them.
  void RecordAlive(int site);

  /// Transport-level evidence of unreachability (retransmissions exhausted).
  /// Escalates straight to kDead, which releases the site's pending acks
  /// and removes it from the sample pool until it rejoins.
  void ReportUnreachable(int site);

  /// The site missed a barrier deadline (reported once per degraded cycle
  /// by the coordinator). Consecutive misses beyond the (jittered) lagging
  /// threshold move kAlive/kSuspect → kLagging. Returns true exactly when
  /// this call performed that transition, so the caller can release the
  /// site's pending acks and start the staleness clock.
  bool RecordMissedDeadline(int site);
  /// The site acked within the deadline: resets its consecutive-miss count.
  void RecordDeadlineMet(int site);

  /// The rejoin handshake started (grant issued): kDead/kLagging →
  /// kRejoining.
  void BeginRejoin(int site);
  /// The rejoin handshake completed (fresh state received): → kAlive.
  void CompleteRejoin(int site);

  State state(int site) const { return sites_[site].state; }
  bool IsLive(int site) const {
    return sites_[site].state == State::kAlive ||
           sites_[site].state == State::kSuspect;
  }
  bool IsQuarantined(int site) const;

  /// Sites currently in the sample pool (kAlive or kSuspect): the population
  /// the Horvitz–Thompson estimator reweights over.
  int live_count() const;

  long deaths(int site) const { return sites_[site].deaths; }
  long total_deaths() const;

  /// Sites currently under the kLagging verdict.
  int lagging_count() const;
  /// Lagging verdicts issued over the detector's lifetime (quarantines).
  long total_lagging_verdicts() const { return total_lagging_verdicts_; }
  /// Cycle the site's current lag quarantine started, or -1 when not
  /// lagging. The staleness window of a recovered laggard is
  /// rejoin_cycle − lagging_since.
  long lagging_since(int site) const { return sites_[site].lagging_since; }
  /// Staleness (cycles between the lagging verdict and the completed
  /// rejoin) accumulated across every recovered laggard.
  long staleness_cycles_total() const { return staleness_cycles_total_; }
  long staleness_cycles_max() const { return staleness_cycles_max_; }

  /// Effective (post-jitter) thresholds for one site, exposed for tests.
  int suspect_after(int site) const { return sites_[site].suspect_after; }
  int dead_after(int site) const { return sites_[site].dead_after; }
  long quarantine_cycles(int site) const { return sites_[site].quarantine; }
  int lagging_after(int site) const { return sites_[site].lagging_after; }

  /// Durable per-site detector state, as captured into (and restored from)
  /// a coordinator checkpoint. Jittered thresholds are NOT part of it —
  /// they are a pure function of the config and recompute identically.
  /// Deadline-miss counters are transient barrier state and restart at
  /// zero; a restored kLagging site's staleness clock restarts at the
  /// recovery cycle (the pre-crash window is unknowable, so it is
  /// under-counted rather than guessed).
  struct SiteSnapshot {
    State state = State::kAlive;
    long last_heard_cycle = 0;
    long deaths = 0;
    std::vector<long> death_cycles;
    long quarantine_until = -1;
  };
  std::vector<SiteSnapshot> Snapshot() const;
  /// Restores per-site state and resets the cycle clock to the checkpoint's
  /// cycle, so downtime is not charged to the sites as heartbeat misses.
  void Restore(const std::vector<SiteSnapshot>& sites, long cycle);

 private:
  struct SiteState {
    State state = State::kAlive;
    long last_heard_cycle = 0;
    long deaths = 0;
    /// Cycles of the site's recent death transitions (flap detection).
    std::vector<long> death_cycles;
    long quarantine_until = -1;
    /// Consecutive barrier-deadline misses; reset by RecordDeadlineMet.
    int deadline_misses = 0;
    /// Cycle the current lagging verdict was issued, -1 when not lagging.
    long lagging_since = -1;
    /// Per-site effective thresholds (config values, jittered when enabled).
    int suspect_after = 0;
    int dead_after = 0;
    long quarantine = 0;
    int lagging_after = 0;
  };

  void Escalate(int site);
  void RecordDeath(int site);

  FailureDetectorConfig config_;
  std::vector<SiteState> sites_;
  Telemetry* telemetry_ = nullptr;
  long cycle_ = 0;
  long total_lagging_verdicts_ = 0;
  long staleness_cycles_total_ = 0;
  long staleness_cycles_max_ = 0;
};

const char* ToString(FailureDetector::State state);

}  // namespace sgm

#endif  // SGM_RUNTIME_FAILURE_DETECTOR_H_
