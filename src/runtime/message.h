#ifndef SGM_RUNTIME_MESSAGE_H_
#define SGM_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <string>

#include "core/vector.h"

namespace sgm {

/// Sender/receiver id of the coordinator (sites are numbered 0..N-1).
inline constexpr int kCoordinatorId = -1;
/// Receiver id meaning "broadcast to every site".
inline constexpr int kBroadcastId = -2;

/// Wire-level message kinds of the SGM runtime protocol.
///
/// The protocol per update cycle (Section 2.2's algorithmic sketch, made
/// explicit):
///   site → coordinator   kLocalViolation    (a sampled ball crossed)
///   coord → broadcast    kProbeRequest      (partial sync: first-trial
///                                            members, report your drift)
///   site → coordinator   kDriftReport       (Δv_i and its g_i)
///   coord → broadcast    kResolved          (FP dismissed; optional
///                                            certified-mute length rides in
///                                            `scalar`)
///   coord → broadcast    kFullStateRequest  (full sync: everyone reports)
///   site → coordinator   kStateReport       (v_i)
///   coord → broadcast    kNewEstimate       (the fresh e(t); re-anchor)
///
/// Reliability-layer kinds (epoch fencing, failure detection, rejoin):
///   either direction     kAck               (transport-level cumulative ack
///                                            of `seq`; never itself acked)
///   site → coordinator   kHeartbeat         (liveness beacon from an
///                                            otherwise-quiet site; carries
///                                            the site's current epoch)
///   site → coordinator   kRejoinRequest     (site detected an epoch gap —
///                                            it missed at least one whole
///                                            sync round — and asks to be
///                                            resynchronized)
///   coord → site         kRejoinGrant       (estimate + ε_T + epoch in one
///                                            unicast; the site re-anchors
///                                            and re-enters the sample pool)
///
/// Session control plane (socket runtime only; handled by the coordinator
/// server / site client *around* the protocol nodes, never delivered to
/// them — see src/runtime/coordinator_server.h):
///   site → coordinator   kSiteHello         (session registration: `from`
///                                            carries the site id claiming
///                                            this connection)
///   coord → broadcast    kCycleBegin        (lockstep: observe the next
///                                            local vector; `scalar` is the
///                                            cycle number)
///   coord → broadcast    kBarrier           (flush barrier: `scalar` is
///                                            the barrier token)
///   site → coordinator   kBarrierAck        (barrier echo; FIFO streams
///                                            order it after every message
///                                            the site sent before it)
///   coord → broadcast    kShutdown          (session end; sites close)
struct RuntimeMessage {
  enum class Type {
    kLocalViolation,
    kProbeRequest,
    kDriftReport,
    kResolved,
    kFullStateRequest,
    kStateReport,
    kNewEstimate,
    kAck,
    kHeartbeat,
    kRejoinRequest,
    kRejoinGrant,
    kSiteHello,
    kCycleBegin,
    kBarrier,
    kBarrierAck,
    kShutdown,
  };

  Type type;
  int from = kCoordinatorId;
  int to = kCoordinatorId;
  /// Sync-round epoch (monotone, stamped by the coordinator; sites echo the
  /// epoch of the request they answer). 0 = pre-initialization.
  std::int64_t epoch = 0;
  /// Per-sender transport sequence number, assigned by ReliableTransport
  /// (0 = unsequenced). On kAck, the acknowledged sender seq.
  std::int64_t seq = 0;
  /// True when this transmission is a reliability-layer retransmission of an
  /// already-counted message: excluded from the paper-comparable
  /// communication figures, included in transport totals.
  bool retransmit = false;
  /// Causal span this message belongs to (0 = none). Spans are minted by
  /// the coordinator from a logical counter — one root span per sync
  /// cascade plus one child span per phase (probe, collection, resolution,
  /// estimate broadcast) — and sites echo the span of the request they
  /// answer, so a trace reconstructs the local-violation → probe →
  /// partial/full-sync causality of each cycle (wire format v3).
  std::int64_t span = 0;
  /// Parent of `span` in the cycle's span tree (0 = root or none).
  std::int64_t parent_span = 0;
  /// Vector payload (drift, state, estimate); empty when not applicable.
  Vector payload;
  /// Scalar payload: inclusion probability g_i on kDriftReport, mute length
  /// on kResolved, ε_T on kNewEstimate/kRejoinGrant.
  double scalar = 0.0;

  /// Payload size in doubles for communication accounting.
  std::size_t PayloadDoubles() const {
    switch (type) {
      case Type::kDriftReport:
        return payload.dim() + 1;  // drift + g_i
      case Type::kStateReport:
      case Type::kNewEstimate:
      case Type::kRejoinGrant:
        return payload.dim();
      case Type::kResolved:
        return 1;
      case Type::kLocalViolation:
      case Type::kProbeRequest:
      case Type::kFullStateRequest:
      case Type::kAck:
      case Type::kHeartbeat:
      case Type::kRejoinRequest:
      case Type::kSiteHello:
      case Type::kCycleBegin:
      case Type::kBarrier:
      case Type::kBarrierAck:
      case Type::kShutdown:
        return 0;
    }
    return 0;
  }

  /// Reliability-layer control traffic: acks, heartbeats and the rejoin
  /// handshake. Counted in transport totals but excluded from the
  /// paper-comparable communication-cost figures (the paper's protocol has
  /// no such messages; adding them must not skew the reproduced numbers).
  static bool IsReliabilityControl(Type type) {
    switch (type) {
      case Type::kAck:
      case Type::kHeartbeat:
      case Type::kRejoinRequest:
      case Type::kRejoinGrant:
        return true;
      default:
        return false;
    }
  }
  bool is_reliability_control() const { return IsReliabilityControl(type); }

  /// Socket-runtime session control plane: registration, lockstep cycle
  /// announcements, flush barriers and shutdown. Handled by the coordinator
  /// server / site client around the protocol nodes (never dispatched into
  /// them), carried fire-and-forget over the stream transport (TCP already
  /// guarantees delivery and order), and excluded from the paper-comparable
  /// figures like all other non-protocol traffic.
  static bool IsSessionControl(Type type) {
    switch (type) {
      case Type::kSiteHello:
      case Type::kCycleBegin:
      case Type::kBarrier:
      case Type::kBarrierAck:
      case Type::kShutdown:
        return true;
      default:
        return false;
    }
  }
  bool is_session_control() const { return IsSessionControl(type); }

  /// True when this transmission counts toward the paper-comparable
  /// communication figures (original protocol data, first transmission).
  bool counts_as_protocol_traffic() const {
    return !retransmit && !is_reliability_control() && !is_session_control();
  }

  static const char* TypeName(Type type);
};

}  // namespace sgm

#endif  // SGM_RUNTIME_MESSAGE_H_
