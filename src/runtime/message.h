#ifndef SGM_RUNTIME_MESSAGE_H_
#define SGM_RUNTIME_MESSAGE_H_

#include <string>

#include "core/vector.h"

namespace sgm {

/// Sender/receiver id of the coordinator (sites are numbered 0..N-1).
inline constexpr int kCoordinatorId = -1;
/// Receiver id meaning "broadcast to every site".
inline constexpr int kBroadcastId = -2;

/// Wire-level message kinds of the SGM runtime protocol.
///
/// The protocol per update cycle (Section 2.2's algorithmic sketch, made
/// explicit):
///   site → coordinator   kLocalViolation    (a sampled ball crossed)
///   coord → broadcast    kProbeRequest      (partial sync: first-trial
///                                            members, report your drift)
///   site → coordinator   kDriftReport       (Δv_i and its g_i)
///   coord → broadcast    kResolved          (FP dismissed; optional
///                                            certified-mute length rides in
///                                            `scalar`)
///   coord → broadcast    kFullStateRequest  (full sync: everyone reports)
///   site → coordinator   kStateReport       (v_i)
///   coord → broadcast    kNewEstimate       (the fresh e(t); re-anchor)
struct RuntimeMessage {
  enum class Type {
    kLocalViolation,
    kProbeRequest,
    kDriftReport,
    kResolved,
    kFullStateRequest,
    kStateReport,
    kNewEstimate,
  };

  Type type;
  int from = kCoordinatorId;
  int to = kCoordinatorId;
  /// Vector payload (drift, state, estimate); empty when not applicable.
  Vector payload;
  /// Scalar payload: inclusion probability g_i on kDriftReport, mute length
  /// on kResolved.
  double scalar = 0.0;

  /// Payload size in doubles for communication accounting.
  std::size_t PayloadDoubles() const {
    switch (type) {
      case Type::kDriftReport:
        return payload.dim() + 1;  // drift + g_i
      case Type::kStateReport:
      case Type::kNewEstimate:
        return payload.dim();
      case Type::kResolved:
        return 1;
      case Type::kLocalViolation:
      case Type::kProbeRequest:
      case Type::kFullStateRequest:
        return 0;
    }
    return 0;
  }

  static const char* TypeName(Type type);
};

}  // namespace sgm

#endif  // SGM_RUNTIME_MESSAGE_H_
