#include "runtime/reliable_transport.h"

#include <algorithm>

#include "core/check.h"
#include "obs/telemetry.h"
#include "runtime/round_clock.h"

namespace sgm {

ReliableTransport::ReliableTransport(Transport* lower, int num_sites,
                                     const ReliableTransportConfig& config,
                                     Telemetry* telemetry)
    : lower_(lower),
      num_sites_(num_sites),
      config_(config),
      telemetry_(telemetry),
      rng_(config.seed),
      link_up_(num_sites, true) {
  SGM_CHECK(lower != nullptr);
  SGM_CHECK(num_sites > 0);
  SGM_CHECK(config.max_retransmits >= 0);
  SGM_CHECK(config.base_backoff_rounds >= 1);
  SGM_CHECK(config.max_backoff_rounds >= config.base_backoff_rounds);
  SGM_CHECK(config.max_in_flight_per_peer >= 1);
  SGM_CHECK(config.dedup_window >= 8);
}

bool ReliableTransport::Tracked(const RuntimeMessage& message) {
  // Session-control traffic (hello, lockstep cycle/barrier frames,
  // shutdown) is fire-and-forget: the socket runtime carries it over a
  // stream that already guarantees delivery and order, and the sim never
  // emits it. Tracking it would only add ack noise.
  if (message.is_session_control()) return false;
  switch (message.type) {
    case RuntimeMessage::Type::kAck:
    case RuntimeMessage::Type::kHeartbeat:
    case RuntimeMessage::Type::kRejoinRequest:
      return false;
    default:
      return true;
  }
}

long ReliableTransport::NextBackoff(int attempts) {
  long backoff = config_.base_backoff_rounds;
  for (int i = 0; i < attempts && backoff < config_.max_backoff_rounds; ++i) {
    backoff *= 2;
  }
  backoff = std::min<long>(backoff, config_.max_backoff_rounds);
  // Deterministic jitter: desynchronizes retransmission bursts without
  // breaking seed replay.
  return backoff + static_cast<long>(rng_.NextBounded(2));
}

bool ReliableTransport::ReleaseAwait(InFlight* entry, int dest) {
  if (entry->awaiting.erase(dest) > 0) --pending_per_dest_[dest];
  return entry->awaiting.empty();
}

void ReliableTransport::EvictOldestFor(int dest) {
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->second.awaiting.count(dest) == 0) continue;
    ++stats_.queue_evictions;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("reliability", "queue_evict",
                             it->second.message.from,
                             {{"dest", dest}, {"seq", it->second.message.seq}});
    }
    if (ReleaseAwait(&it->second, dest)) in_flight_.erase(it);
    return;
  }
}

void ReliableTransport::MarkLinkDown(int site) {
  if (site < 0 || site >= num_sites_) return;
  link_up_[site] = false;
  // Release every pending expectation on the dead link; entries whose last
  // awaited destination this was complete immediately.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    it = ReleaseAwait(&it->second, site) ? in_flight_.erase(it)
                                         : std::next(it);
  }
}

void ReliableTransport::AbandonSender(int sender) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->first.first != sender) {
      ++it;
      continue;
    }
    for (int dest : it->second.awaiting) --pending_per_dest_[dest];
    it = in_flight_.erase(it);
  }
}

void ReliableTransport::MarkLinkUp(int site) {
  if (site >= 0 && site < num_sites_) link_up_[site] = true;
}

bool ReliableTransport::IsLinkUp(int site) const {
  return site >= 0 && site < num_sites_ && link_up_[site];
}

void ReliableTransport::Send(const RuntimeMessage& message) {
  if (!Tracked(message)) {
    lower_->Send(message);
    return;
  }
  RuntimeMessage stamped = message;
  stamped.seq = ++next_seq_[message.from];
  stamped.retransmit = false;

  InFlight entry;
  entry.message = stamped;
  if (stamped.to == kBroadcastId) {
    for (int site = 0; site < num_sites_; ++site) {
      if (link_up_[site]) entry.awaiting.insert(site);
    }
  } else if (stamped.to >= 0 && !link_up_[stamped.to]) {
    // Administratively-down destination: best-effort, no tracking (the
    // rejoin machinery owns resynchronization).
  } else {
    entry.awaiting.insert(stamped.to);
  }
  if (!entry.awaiting.empty()) {
    ++stats_.tracked_sends;
    entry.due_round = round_ + NextBackoff(0);
    for (int dest : entry.awaiting) {
      // Per-peer queue cap: free a slot before claiming one, so the newest
      // message (the one the protocol currently cares about) always tracks.
      if (pending_per_dest_[dest] >= config_.max_in_flight_per_peer) {
        EvictOldestFor(dest);
      }
      ++pending_per_dest_[dest];
    }
    in_flight_.emplace(std::make_pair(stamped.from, stamped.seq),
                       std::move(entry));
  }
  if (telemetry_ != nullptr && stamped.span != 0 &&
      !SpanUnsampled(stamped.span)) {
    // Per-span cost attribution: one msg_send per span-carrying original
    // transmission, so trace_inspect --spans can charge message/byte cost
    // to the cycle phase that caused it. Span-less traffic (heartbeats,
    // acks, rejoin requests) stays out of the span trees, and an unsampled
    // cascade skips the whole formatting call, not just the recording.
    telemetry_->trace.Emit(
        "transport", "msg_send", stamped.from,
        {{"type", RuntimeMessage::TypeName(stamped.type)},
         {"span", stamped.span},
         {"parent", stamped.parent_span},
         {"bytes", static_cast<std::int64_t>(WireBytes(stamped))}});
  }
  lower_->Send(stamped);
}

void ReliableTransport::Ack(int receiver, const RuntimeMessage& message) {
  RuntimeMessage ack;
  ack.type = RuntimeMessage::Type::kAck;
  ack.from = receiver;
  ack.to = message.from;
  ack.epoch = message.epoch;
  ack.seq = message.seq;
  ++stats_.acks_sent;
  lower_->Send(ack);
}

void ReliableTransport::Resolve(std::int64_t sender, std::int64_t seq,
                                int receiver) {
  const auto it = in_flight_.find({static_cast<int>(sender), seq});
  if (it == in_flight_.end()) return;
  if (ReleaseAwait(&it->second, receiver)) in_flight_.erase(it);
}

void ReliableTransport::OnDeliver(int receiver, const RuntimeMessage& message,
                                  std::vector<RuntimeMessage>* deliver) {
  SGM_CHECK(deliver != nullptr);
  if (message.type == RuntimeMessage::Type::kAck) {
    // message.to is the original sender whose seq is being acknowledged.
    Resolve(message.to, message.seq, message.from);
    return;
  }
  if (message.seq == 0) {  // unsequenced control (heartbeat, rejoin request)
    deliver->push_back(message);
    return;
  }

  SeenWindow& window = seen_[{receiver, message.from}];
  const bool duplicate =
      message.seq <= window.floor || window.above.count(message.seq) > 0;
  if (duplicate) {
    ++stats_.duplicates_suppressed;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("reliability", "duplicate_suppressed", receiver,
                             {{"sender", message.from}, {"seq", message.seq}});
    }
    Ack(receiver, message);  // the previous ack may have been lost
    return;
  }
  window.above.insert(message.seq);
  while (window.above.size() >
         static_cast<std::size_t>(config_.dedup_window)) {
    // Compact: promote the lowest retained seq into the floor. Anything
    // older than the window is long past its retransmission horizon.
    window.floor = *window.above.begin();
    window.above.erase(window.above.begin());
    ++stats_.dedup_evictions;
  }
  Ack(receiver, message);
  deliver->push_back(message);
}

void ReliableTransport::AdvanceRound() {
  // Built-in logical counter by default (byte-identical seed replay); an
  // injected clock supplies the round instead, clamped so the counter never
  // moves backwards even if the clock misbehaves.
  round_ = config_.round_clock != nullptr
               ? std::max(round_, config_.round_clock->AdvanceRound())
               : round_ + 1;
  // Handlers can re-enter (MarkLinkDown mutates in_flight_), so collect the
  // exhausted links during the sweep and report them after it.
  std::vector<std::pair<int, RuntimeMessage>> exhausted_links;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    InFlight& entry = it->second;
    if (entry.due_round > round_) {
      ++it;
      continue;
    }
    if (entry.attempts >= config_.max_retransmits) {
      // Exhausted: report still-awaited site links as dead and abandon.
      ++stats_.give_ups;
      if (telemetry_ != nullptr) {
        telemetry_->trace.Emit(
            "reliability", "give_up", entry.message.from,
            {{"sender", entry.message.from}, {"seq", entry.message.seq}});
      }
      for (int site : entry.awaiting) {
        --pending_per_dest_[site];
        if (site >= 0) exhausted_links.emplace_back(site, entry.message);
      }
      it = in_flight_.erase(it);
      continue;
    }
    ++entry.attempts;
    entry.due_round = round_ + NextBackoff(entry.attempts);
    for (int dest : entry.awaiting) {
      RuntimeMessage copy = entry.message;
      copy.retransmit = true;
      // A broadcast retransmits as unicast copies to the missing sites
      // only; dedup on the receiver keys by (sender, seq), so overlap with
      // the original broadcast is suppressed.
      copy.to = dest;
      ++stats_.retransmissions;
      if (telemetry_ != nullptr && !SpanUnsampled(copy.span)) {
        telemetry_->trace.Emit(
            "reliability", "retransmit", copy.from,
            {{"sender", copy.from},
             {"seq", copy.seq},
             {"attempt", entry.attempts},
             {"span", copy.span},
             {"bytes", static_cast<std::int64_t>(WireBytes(copy))}});
      }
      lower_->Send(copy);
    }
    ++it;
  }
  if (dead_link_handler_) {
    for (const auto& [site, message] : exhausted_links) {
      dead_link_handler_(site, message);
    }
  }
}

void ReliableTransport::PublishMetrics(MetricRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetCounter("transport.tracked_sends")->Set(stats_.tracked_sends);
  registry->GetCounter("transport.retransmissions")
      ->Set(stats_.retransmissions);
  registry->GetCounter("transport.acks_sent")->Set(stats_.acks_sent);
  registry->GetCounter("transport.duplicates_suppressed")
      ->Set(stats_.duplicates_suppressed);
  registry->GetCounter("transport.give_ups")->Set(stats_.give_ups);
  registry->GetCounter("transport.queue_evictions")
      ->Set(stats_.queue_evictions);
  registry->GetCounter("transport.dedup_evictions")
      ->Set(stats_.dedup_evictions);
}

}  // namespace sgm
