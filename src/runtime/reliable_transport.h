#ifndef SGM_RUNTIME_RELIABLE_TRANSPORT_H_
#define SGM_RUNTIME_RELIABLE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/rng.h"
#include "runtime/transport.h"

namespace sgm {

struct Telemetry;
class MetricRegistry;
class RoundClock;

/// Tuning knobs of the ack/retransmit layer. Every stochastic choice (the
/// retransmission jitter) draws from the single `seed`, so dst_stress
/// replays stay bit-for-bit identical.
struct ReliableTransportConfig {
  std::uint64_t seed = 7;
  /// Retransmission attempts per message per destination before the link is
  /// reported dead to the failure-detector hook. Bounds the quiescence loop:
  /// a message is in flight for at most max_retransmits backoff periods.
  int max_retransmits = 4;
  /// First retransmission fires this many transport rounds after the
  /// original send.
  int base_backoff_rounds = 1;
  /// Exponential backoff ceiling (rounds), before jitter.
  int max_backoff_rounds = 8;
  /// Cap on tracked in-flight messages awaiting any single destination.
  /// When a new tracked send would exceed it, the oldest entry still
  /// awaiting that destination releases its expectation (best-effort from
  /// then on, counted in queue_evictions), so a long-unresponsive peer —
  /// a dead link the failure detector has not yet condemned, or a crashed
  /// coordinator — cannot grow the retransmit queue without bound.
  int max_in_flight_per_peer = 256;
  /// Receive-side dedup window per (receiver, sender) pair: seqs retained
  /// above the compaction floor. Duplicates arrive within
  /// max_delay + max_backoff * max_retransmits rounds of the original — a
  /// handful of messages — so the default is orders of magnitude above the
  /// correctness requirement while keeping memory bounded.
  int dedup_window = 1024;
  /// Time source for the retransmission round counter (not owned, nullable).
  /// Null keeps the built-in logical counter — one round per AdvanceRound()
  /// call, the deterministic-simulation behaviour. The socket runtime
  /// injects a MonotonicRoundClock so backoff deadlines track real elapsed
  /// time instead of driver drains (see runtime/round_clock.h).
  RoundClock* round_clock = nullptr;
};

/// Reliability decorator over any Transport: per-sender sequence numbers,
/// per-destination acks, retransmission with exponential backoff plus
/// deterministic seeded jitter, and receive-side duplicate suppression.
///
/// Sits between the protocol nodes and the (possibly fault-injecting) lower
/// transport. The runtime driver is the event loop: it forwards every
/// delivered message through OnDeliver() (which consumes acks, suppresses
/// duplicates and emits acks for fresh data) and calls AdvanceRound()
/// whenever the network drains, which is when due retransmissions fire.
///
/// What is sequenced and tracked: the seven protocol data kinds plus
/// kRejoinGrant. kAck is never tracked (no ack-of-ack), and kHeartbeat /
/// kRejoinRequest are fire-and-forget — the protocol re-emits them
/// periodically, so transport-level retries would only add traffic.
///
/// Accounting: original sends pass through with `retransmit == false` and
/// count toward the paper-comparable figures in the layer below;
/// retransmitted copies are flagged `retransmit = true` and acks are
/// control messages, so both land only in the transport totals. With a
/// fault-free network nothing is ever retransmitted and the
/// paper-comparable counters are byte-identical to a wiring without this
/// layer (the transport-parity stress leg enforces this).
class ReliableTransport final : public Transport {
 public:
  /// Point-in-time view of the layer's activity counters: one struct
  /// instead of loose per-counter accessors, so call sites snapshot all of
  /// them coherently and new counters ride along without API churn. Served
  /// into a MetricRegistry as `transport.*` by PublishMetrics.
  struct Stats {
    /// Sequenced original sends that entered retransmission tracking.
    long tracked_sends = 0;
    /// Ack-timeout retransmission copies placed on the wire.
    long retransmissions = 0;
    /// Transport-level acks emitted (one per fresh or re-seen delivery).
    long acks_sent = 0;
    /// Receive-side duplicates dropped (fault-injected or retransmit
    /// overlap), each re-acked in case the first ack was lost.
    long duplicates_suppressed = 0;
    /// Messages abandoned after max_retransmits (dead-link reports fired).
    long give_ups = 0;
    /// Per-peer queue-cap evictions: tracked expectations released because
    /// max_in_flight_per_peer was reached for their destination.
    long queue_evictions = 0;
    /// Dedup-window compactions: seen-seqs promoted into the floor once the
    /// window exceeded dedup_window entries.
    long dedup_evictions = 0;
  };

  /// `lower` is not owned and must outlive this object. `telemetry` is
  /// optional (nullable): when present, retransmissions/give-ups/duplicate
  /// suppressions are traced as reliability events.
  ReliableTransport(Transport* lower, int num_sites,
                    const ReliableTransportConfig& config,
                    Telemetry* telemetry = nullptr);

  /// Sender side: stamps a sequence number on trackable messages, records
  /// them for retransmission, and forwards to the lower transport.
  void Send(const RuntimeMessage& message) override;

  /// Receive side, called by the driver for each message popped off the
  /// network, once per destination (`receiver` is a site id or
  /// kCoordinatorId; broadcast fan-out calls this once per site). Consumes
  /// acks, drops duplicates (re-acking them, in case the first ack was
  /// lost), acks fresh sequenced data, and appends to `deliver` the
  /// messages the node should actually process.
  void OnDeliver(int receiver, const RuntimeMessage& message,
                 std::vector<RuntimeMessage>* deliver);

  /// Advances the retransmission clock — one round with the built-in
  /// logical counter, or to the injected RoundClock's current round — and
  /// resends every unacked tracked message whose backoff deadline has
  /// expired. Messages that exhaust max_retransmits are abandoned and their
  /// unreachable site destinations reported through the dead-link handler.
  void AdvanceRound();

  /// True while any tracked message still awaits an ack — the driver must
  /// keep advancing rounds before declaring the network quiescent.
  bool HasUnacked() const { return !in_flight_.empty(); }

  /// Marks a site link administratively down (failure detector verdict):
  /// pending expectations on it are released, and it is excluded from
  /// broadcast ack-expectation until marked up again. Unicasts to a down
  /// link are forwarded best-effort without tracking.
  void MarkLinkDown(int site);
  void MarkLinkUp(int site);
  bool IsLinkUp(int site) const;

  /// Drops every tracked in-flight entry originated by `sender` without
  /// firing the dead-link handler: the sending endpoint itself is gone (a
  /// coordinator crash), so its unacked traffic is void — not evidence of
  /// dead receivers. Sequence counters and dedup windows are untouched; a
  /// recovered endpoint keeps numbering from where it left off.
  void AbandonSender(int sender);

  /// Handler invoked when retransmissions of `message` to `site` were
  /// exhausted (a liveness signal for the failure detector; the message
  /// tells the coordinator *what* was lost — an undelivered anchor warrants
  /// a re-grant on next contact). Coordinator-side give-ups (site →
  /// coordinator traffic that was never acked) do not fire it — the
  /// coordinator is assumed reachable.
  void SetDeadLinkHandler(
      std::function<void(int site, const RuntimeMessage& message)> handler) {
    dead_link_handler_ = std::move(handler);
  }

  Stats stats() const { return stats_; }
  /// Mirrors the Stats counters into `registry` under `transport.*`
  /// (transport.retransmissions, transport.acks_sent, ...).
  void PublishMetrics(MetricRegistry* registry) const;

 private:
  struct InFlight {
    RuntimeMessage message;       ///< original, retransmit flag unset
    std::set<int> awaiting;       ///< destinations yet to ack
    int attempts = 0;             ///< retransmissions performed so far
    long due_round = 0;           ///< next retransmission round
  };

  static bool Tracked(const RuntimeMessage& message);
  long NextBackoff(int attempts);
  void Ack(int receiver, const RuntimeMessage& message);
  void Resolve(std::int64_t key_sender, std::int64_t seq, int receiver);
  /// Releases `dest` from an entry's awaiting set, maintaining the per-peer
  /// pending count. Returns true if the set is now empty.
  bool ReleaseAwait(InFlight* entry, int dest);
  /// Frees one queue slot for `dest` by evicting the oldest in-flight
  /// expectation on it (oldest in (sender, seq) key order — per sender that
  /// is send order, which is what matters: entries piling up on one peer
  /// come from the one endpoint still talking to it).
  void EvictOldestFor(int dest);

  Transport* lower_;
  int num_sites_;
  ReliableTransportConfig config_;
  Telemetry* telemetry_;
  Rng rng_;
  std::function<void(int, const RuntimeMessage&)> dead_link_handler_;

  std::vector<bool> link_up_;
  /// Next sequence number per sender endpoint (site id, or kCoordinatorId).
  std::map<int, std::int64_t> next_seq_;
  /// Tracked unacked messages, keyed (sender, seq).
  std::map<std::pair<int, std::int64_t>, InFlight> in_flight_;
  /// In-flight expectations per destination (site id or kCoordinatorId),
  /// bounded by max_in_flight_per_peer via eviction.
  std::map<int, long> pending_per_dest_;

  /// Receive-side dedup, keyed (receiver, sender): seqs already delivered.
  /// Compacted to a floor + sliding window (duplicates arrive within a
  /// bounded number of rounds, so the window never misjudges).
  struct SeenWindow {
    std::int64_t floor = 0;       ///< seqs <= floor are all seen
    std::set<std::int64_t> above; ///< seen seqs > floor
  };
  std::map<std::pair<int, int>, SeenWindow> seen_;

  long round_ = 0;
  Stats stats_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_RELIABLE_TRANSPORT_H_
