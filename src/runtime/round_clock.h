#ifndef SGM_RUNTIME_ROUND_CLOCK_H_
#define SGM_RUNTIME_ROUND_CLOCK_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace sgm {

/// Time source behind the reliability layer's retransmission timers.
///
/// ReliableTransport thinks in *rounds*: a tracked message retransmits when
/// the current round passes its backoff deadline. What a round *is* depends
/// on the deployment:
///
///  * In the deterministic simulation the driver advances one round per
///    transport drain — a pure logical clock, so replaying a seed is
///    byte-identical (LogicalRoundClock, and the built-in default when no
///    clock is injected).
///  * Over real sockets there is no global drain; rounds must come from the
///    wall clock so an unacked frame retransmits after real elapsed time
///    (MonotonicRoundClock, mapping std::chrono::steady_clock onto rounds
///    of a configurable duration).
///
/// The interface is deliberately tiny: AdvanceRound() is called by whatever
/// event loop drives the transport and returns the round the layer should
/// advance to. Implementations must be monotone non-decreasing;
/// ReliableTransport additionally clamps so its round counter never moves
/// backwards.
class RoundClock {
 public:
  virtual ~RoundClock() = default;

  /// Returns the current round. Called once per event-loop pass; a logical
  /// clock increments here, a wall clock derives the round from real time.
  virtual std::int64_t AdvanceRound() = 0;

  /// Returns the most recently reported round without advancing.
  virtual std::int64_t CurrentRound() const = 0;
};

/// Driver-advanced logical clock: one round per AdvanceRound() call.
/// Injecting an instance is behaviourally identical to ReliableTransport's
/// built-in counter — the round_clock_test regression pins that replaying a
/// seed through either path yields byte-identical traces.
class LogicalRoundClock final : public RoundClock {
 public:
  std::int64_t AdvanceRound() override { return ++round_; }
  std::int64_t CurrentRound() const override { return round_; }

 private:
  std::int64_t round_ = 0;
};

/// Wall-clock rounds for the socket runtime: round = elapsed time since
/// construction divided by round_micros. Monotone by construction
/// (steady_clock never goes backwards); consecutive AdvanceRound() calls
/// within one round duration return the same value, which simply means no
/// retransmission deadline has come due yet.
class MonotonicRoundClock final : public RoundClock {
 public:
  explicit MonotonicRoundClock(long round_micros)
      : round_micros_(std::max<long>(1, round_micros)),
        origin_(std::chrono::steady_clock::now()) {}

  std::int64_t AdvanceRound() override {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - origin_);
    last_ = std::max<std::int64_t>(
        last_, static_cast<std::int64_t>(elapsed.count() / round_micros_));
    return last_;
  }
  std::int64_t CurrentRound() const override { return last_; }

 private:
  long round_micros_;
  std::chrono::steady_clock::time_point origin_;
  std::int64_t last_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_ROUND_CLOCK_H_
