#include "runtime/serialization.h"

#include <cstring>

#include "core/crc32c.h"
#include "obs/telemetry.h"

namespace sgm {

namespace {

template <typename T>
void Append(std::vector<std::uint8_t>* out, T value) {
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool Read(const std::vector<std::uint8_t>& in, std::size_t* offset, T* out) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

constexpr std::uint8_t kMaxTypeValue =
    static_cast<std::uint8_t>(RuntimeMessage::Type::kShutdown);

constexpr std::uint8_t kFlagRetransmit = 0x01;
constexpr std::uint8_t kKnownFlagsMask = kFlagRetransmit;

}  // namespace

std::vector<std::uint8_t> EncodeMessage(const RuntimeMessage& message) {
  // Codec latency lands in the process-wide default registry: the free
  // functions have no deployment context, and wire codec cost is a
  // per-process property anyway.
  static Histogram* encode_ns = MetricRegistry::Default().GetHistogram(
      "serialization.encode_ns", LatencyBucketsNs());
  ScopedTimer timer(encode_ns);
  std::vector<std::uint8_t> out;
  out.reserve(3 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 8 * message.payload.dim());
  Append<std::uint8_t>(&out, kWireFormatVersion);
  Append<std::uint8_t>(&out, static_cast<std::uint8_t>(message.type));
  Append<std::uint8_t>(&out, message.retransmit ? kFlagRetransmit : 0);
  Append<std::int32_t>(&out, message.from);
  Append<std::int32_t>(&out, message.to);
  Append<std::int64_t>(&out, message.epoch);
  Append<std::int64_t>(&out, message.seq);
  Append<std::int64_t>(&out, message.span);
  Append<std::int64_t>(&out, message.parent_span);
  Append<double>(&out, message.scalar);
  Append<std::uint32_t>(&out,
                        static_cast<std::uint32_t>(message.payload.dim()));
  for (std::size_t j = 0; j < message.payload.dim(); ++j) {
    Append<double>(&out, message.payload[j]);
  }
  Append<std::uint32_t>(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<RuntimeMessage> DecodeMessage(
    const std::vector<std::uint8_t>& buffer) {
  static Histogram* decode_ns = MetricRegistry::Default().GetHistogram(
      "serialization.decode_ns", LatencyBucketsNs());
  ScopedTimer timer(decode_ns);
  std::size_t offset = 0;
  std::uint8_t version = 0, type = 0, flags = 0;
  std::int32_t from = 0, to = 0;
  std::int64_t epoch = 0, seq = 0, span = 0, parent_span = 0;
  double scalar = 0.0;
  std::uint32_t dim = 0;

  if (!Read(buffer, &offset, &version)) {
    return Status::InvalidArgument("truncated message: missing version");
  }
  if (version != kWireFormatVersion && version != kWireFormatVersionV3 &&
      version != kWireFormatVersionV2) {
    // Version-1 frames led with the type byte (0..6), which lands here.
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (want " +
                                   std::to_string(kWireFormatVersion) + ")");
  }
  // v4: the trailing CRC32C covers every preceding byte and is verified
  // before any field parsing, so a corrupted frame is rejected whole rather
  // than half-interpreted. (A flipped version byte escapes this check only
  // by landing on an unknown version — 0xA4's single-bit neighbours never
  // hit 0xA2/0xA3 — which the check above already rejected.)
  std::size_t frame_end = buffer.size();
  if (version == kWireFormatVersion) {
    static Counter* corrupt_frames =
        MetricRegistry::Default().GetCounter("serialization.corrupt_frames");
    std::uint32_t stored_crc = 0;
    if (buffer.size() < offset + sizeof(stored_crc)) {
      corrupt_frames->Increment();
      return Status::InvalidArgument("truncated message: missing checksum");
    }
    frame_end = buffer.size() - sizeof(stored_crc);
    std::memcpy(&stored_crc, buffer.data() + frame_end, sizeof(stored_crc));
    if (Crc32c(buffer.data(), frame_end) != stored_crc) {
      corrupt_frames->Increment();
      return Status::InvalidArgument("frame checksum mismatch");
    }
  }
  if (!Read(buffer, &offset, &type)) {
    return Status::InvalidArgument("truncated message: missing type");
  }
  if (type > kMaxTypeValue) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  if (!Read(buffer, &offset, &flags)) {
    return Status::InvalidArgument("truncated message: missing flags");
  }
  if ((flags & ~kKnownFlagsMask) != 0) {
    return Status::InvalidArgument("unknown message flags " +
                                   std::to_string(flags));
  }
  if (!Read(buffer, &offset, &from) || !Read(buffer, &offset, &to) ||
      !Read(buffer, &offset, &epoch) || !Read(buffer, &offset, &seq)) {
    return Status::InvalidArgument("truncated message header");
  }
  if (version != kWireFormatVersionV2) {
    // Span fields arrived in v3; a v2 frame decodes with span 0 ("none").
    if (!Read(buffer, &offset, &span) ||
        !Read(buffer, &offset, &parent_span)) {
      return Status::InvalidArgument("truncated message header");
    }
  }
  if (!Read(buffer, &offset, &scalar) || !Read(buffer, &offset, &dim)) {
    return Status::InvalidArgument("truncated message header");
  }
  if (dim > kMaxWireDimension) {
    return Status::OutOfRange("payload dimension " + std::to_string(dim) +
                              " exceeds the wire limit");
  }
  if (offset + static_cast<std::size_t>(dim) * sizeof(double) != frame_end) {
    return Status::InvalidArgument(
        "payload length mismatch: header says " + std::to_string(dim) +
        " doubles");
  }

  RuntimeMessage message;
  message.type = static_cast<RuntimeMessage::Type>(type);
  message.retransmit = (flags & kFlagRetransmit) != 0;
  message.from = from;
  message.to = to;
  message.epoch = epoch;
  message.seq = seq;
  message.span = span;
  message.parent_span = parent_span;
  message.scalar = scalar;
  Vector payload(dim);
  for (std::uint32_t j = 0; j < dim; ++j) {
    double value = 0.0;
    Read(buffer, &offset, &value);
    payload[j] = value;
  }
  message.payload = std::move(payload);
  return message;
}

}  // namespace sgm
