#ifndef SGM_RUNTIME_SERIALIZATION_H_
#define SGM_RUNTIME_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "runtime/message.h"

namespace sgm {

/// Binary wire format for RuntimeMessages, for transports that cross
/// process/machine boundaries. Little-endian, fixed layout:
///
///   u8   type
///   i32  from
///   i32  to
///   f64  scalar
///   u32  payload dimension d
///   f64  payload[0..d)
///
/// Encode never fails; Decode validates length, type range and dimension
/// bounds and returns precise errors (a transport must never crash the
/// coordinator with a truncated datagram).
std::vector<std::uint8_t> EncodeMessage(const RuntimeMessage& message);

/// Parses a buffer produced by EncodeMessage (or a hostile imitation).
Result<RuntimeMessage> DecodeMessage(const std::vector<std::uint8_t>& buffer);

/// Upper bound on accepted payload dimensionality (sanity guard against
/// corrupted length fields allocating gigabytes).
inline constexpr std::uint32_t kMaxWireDimension = 1u << 20;

}  // namespace sgm

#endif  // SGM_RUNTIME_SERIALIZATION_H_
