#ifndef SGM_RUNTIME_SERIALIZATION_H_
#define SGM_RUNTIME_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "runtime/message.h"

namespace sgm {

/// Binary wire format for RuntimeMessages, for transports that cross
/// process/machine boundaries. Little-endian, fixed layout (version 4,
/// which added the trailing CRC32C frame checksum; version 3 added the
/// causal span fields; version 2 added the reliability layer's
/// epoch/seq/flags fields; the socket runtime's session-control types —
/// kSiteHello through kShutdown — extend the valid type range within v4
/// without changing the layout):
///
///   u8   version (= kWireFormatVersion)
///   u8   type
///   u8   flags (bit 0: retransmit)
///   i32  from
///   i32  to
///   i64  epoch
///   i64  seq
///   i64  span          (v3+)
///   i64  parent_span   (v3+)
///   f64  scalar
///   u32  payload dimension d
///   f64  payload[0..d)
///   u32  crc32c over all preceding bytes (v4 only)
///
/// Encode always emits v4; Decode accepts v4, v3 and v2 frames (a v3/v2
/// frame simply has no checksum; a v2 frame additionally has no span
/// fields — they decode to 0, "no span"), so a rolling upgrade never
/// partitions the deployment on wire version. Decode validates the
/// checksum first (any bit flip anywhere in a v4 frame — including the
/// version byte, whose flips land on unknown versions — is rejected before
/// field parsing), then length, version, type range and dimension bounds,
/// and returns precise errors (a transport must never crash the
/// coordinator with a truncated or corrupted datagram). Rejected-checksum
/// frames increment the `serialization.corrupt_frames` audit counter in
/// the default metric registry.
///
/// Version-1 frames (no version byte — they led with the type) are rejected
/// deterministically: their first byte is a protocol type in [0, 6], which
/// can never equal any 0xA0-tagged version byte, so DecodeMessage fails
/// with an "unsupported wire version" error instead of misreading stale
/// fields.
std::vector<std::uint8_t> EncodeMessage(const RuntimeMessage& message);

/// Parses a buffer produced by EncodeMessage (or a hostile imitation).
Result<RuntimeMessage> DecodeMessage(const std::vector<std::uint8_t>& buffer);

/// Current wire-format version byte: 0xA0 | 4 (format v4, with the frame
/// checksum). The 0xA0 tag keeps the byte outside every v1 leading type
/// value (0..6) so old-format frames fail the version check, never a
/// silent misparse.
inline constexpr std::uint8_t kWireFormatVersion = 0xA4;

/// Previous wire-format versions (v3: span fields but no checksum; v2:
/// neither), still accepted by DecodeMessage for backward compatibility.
inline constexpr std::uint8_t kWireFormatVersionV3 = 0xA3;
inline constexpr std::uint8_t kWireFormatVersionV2 = 0xA2;

/// Upper bound on accepted payload dimensionality (sanity guard against
/// corrupted length fields allocating gigabytes).
inline constexpr std::uint32_t kMaxWireDimension = 1u << 20;

}  // namespace sgm

#endif  // SGM_RUNTIME_SERIALIZATION_H_
