#include "runtime/sim_transport.h"

#include <algorithm>

#include "core/check.h"
#include "obs/telemetry.h"
#include "runtime/serialization.h"

namespace sgm {

namespace {

bool AnyFaultConfigured(const SimTransportConfig& config) {
  return config.drop_probability > 0.0 || config.duplicate_probability > 0.0 ||
         config.max_delay_rounds > 0 || config.corrupt_probability > 0.0;
}

}  // namespace

SimTransport::SimTransport(Transport* inner, const SimTransportConfig& config)
    : inner_(inner), config_(config) {
  SGM_CHECK(inner != nullptr);
  SGM_CHECK(config.drop_probability >= 0.0 && config.drop_probability < 1.0);
  SGM_CHECK(config.duplicate_probability >= 0.0 &&
            config.duplicate_probability <= 1.0);
  SGM_CHECK(config.max_delay_rounds >= 0);
  SGM_CHECK(config.corrupt_probability >= 0.0 &&
            config.corrupt_probability < 1.0);
  if (config.fault_coordinator_links && AnyFaultConfigured(config)) {
    SGM_CHECK_MSG(config.num_sites > 0,
                  "broadcast faulting needs num_sites to expand per link");
  }
}

bool SimTransport::FaultsApplyTo(const RuntimeMessage& message) const {
  if (!AnyFaultConfigured(config_)) return false;  // pure pass-through
  if (message.from == kCoordinatorId) return config_.fault_coordinator_links;
  return true;
}

Rng& SimTransport::LinkRng(int site) {
  auto it = link_rngs_.find(site);
  if (it == link_rngs_.end()) {
    it = link_rngs_
             .emplace(site, Rng(DeriveSeed(config_.seed,
                                           static_cast<std::uint64_t>(site))))
             .first;
  }
  return it->second;
}

void SimTransport::CrashSite(int site) {
  SGM_CHECK(site >= 0);
  if (static_cast<std::size_t>(site) >= crashed_.size()) {
    crashed_.resize(site + 1, false);
  }
  crashed_[site] = true;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("fault", "site_crash", site);
  }
}

void SimTransport::RecoverSite(int site) {
  if (site >= 0 && static_cast<std::size_t>(site) < crashed_.size()) {
    crashed_[site] = false;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("fault", "site_recover", site);
    }
  }
}

bool SimTransport::IsCrashed(int site) const {
  return site >= 0 && static_cast<std::size_t>(site) < crashed_.size() &&
         crashed_[site];
}

void SimTransport::Forward(const RuntimeMessage& message, int delay_rounds) {
  if (delay_rounds <= 0) {
    inner_->Send(message);
    return;
  }
  ++delayed_messages_;
  pending_.push_back(Pending{round_ + delay_rounds, message});
}

void SimTransport::Admit(const RuntimeMessage& message, int link) {
  Rng& rng = LinkRng(link);
  // Fixed draw order (drop, delay, duplicate) keeps replays stable.
  if (rng.NextBernoulli(config_.drop_probability)) {
    ++dropped_messages_;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit(
          "fault", "drop", link,
          {{"type", RuntimeMessage::TypeName(message.type)}});
    }
    return;
  }
  // The corrupt draw is guarded on the probability so that configurations
  // without corruption consume the exact historical per-link draw sequence
  // (seeded replays of old fault schedules stay byte-identical).
  if (config_.corrupt_probability > 0.0 &&
      rng.NextBernoulli(config_.corrupt_probability)) {
    std::vector<std::uint8_t> wire = EncodeMessage(message);
    const std::uint64_t bit = rng.NextBounded(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++corrupted_messages_;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit(
          "fault", "corrupt", link,
          {{"type", RuntimeMessage::TypeName(message.type)}});
    }
    Result<RuntimeMessage> decoded = DecodeMessage(wire);
    if (!decoded.ok()) return;  // CRC caught the flip: a detected loss
    // Undetected corruption (unreachable under v4's frame CRC, kept for
    // checksum-less formats): the mangled frame is what arrives.
    Forward(std::move(decoded).ValueOrDie(), 0);
    return;
  }
  const int delay =
      config_.max_delay_rounds > 0
          ? static_cast<int>(rng.NextBounded(
                static_cast<std::uint64_t>(config_.max_delay_rounds) + 1))
          : 0;
  const bool duplicated = rng.NextBernoulli(config_.duplicate_probability);
  if (delay > 0 && telemetry_ != nullptr) {
    telemetry_->trace.Emit(
        "fault", "delay", link,
        {{"type", RuntimeMessage::TypeName(message.type)},
         {"rounds", delay}});
  }
  Forward(message, delay);
  if (duplicated) {
    // A network duplicate hits the wire again: it appears in the transport
    // totals but not in the paper-comparable figures (the protocol only
    // transmitted once).
    ++duplicated_messages_;
    ++transport_messages_sent_;
    transport_bytes_sent_ += WireBytes(message);
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit(
          "fault", "duplicate", link,
          {{"type", RuntimeMessage::TypeName(message.type)}});
    }
    Forward(message, delay);
  }
}

void SimTransport::Send(const RuntimeMessage& message) {
  if (IsCrashed(message.from)) return;  // a crashed site never transmits

  const double bytes = WireBytes(message);
  ++transport_messages_sent_;
  transport_bytes_sent_ += bytes;
  if (message.counts_as_protocol_traffic()) {
    ++messages_sent_;
    if (message.from != kCoordinatorId) ++site_messages_sent_;
    bytes_sent_ += bytes;
  }

  if (!FaultsApplyTo(message)) {
    // Unicasts to a crashed site still vanish; broadcasts pass through
    // unexpanded and the driver skips crashed destinations on fan-out.
    if (message.to >= 0 && IsCrashed(message.to)) {
      ++dropped_messages_;
      return;
    }
    inner_->Send(message);
    return;
  }

  if (message.to == kBroadcastId) {
    // Per-link broadcast faulting: one transmission (accounted above), but
    // each destination link runs its own lottery over its own copy.
    for (int site = 0; site < config_.num_sites; ++site) {
      if (IsCrashed(site)) continue;
      RuntimeMessage copy = message;
      copy.to = site;
      Admit(copy, site);
    }
    return;
  }

  if (message.to >= 0 && IsCrashed(message.to)) {
    ++dropped_messages_;
    return;
  }
  const int link = message.from == kCoordinatorId ? message.to : message.from;
  SGM_CHECK(link >= 0);
  Admit(message, link);
}

void SimTransport::PublishMetrics(MetricRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetCounter("transport.paper_messages")->Set(messages_sent_);
  registry->GetCounter("transport.paper_site_messages")
      ->Set(site_messages_sent_);
  registry->GetGauge("transport.paper_bytes")->Set(bytes_sent_);
  registry->GetCounter("transport.total_messages")
      ->Set(transport_messages_sent_);
  registry->GetGauge("transport.total_bytes")->Set(transport_bytes_sent_);
  registry->GetCounter("transport.faults_dropped")->Set(dropped_messages_);
  registry->GetCounter("transport.faults_duplicated")
      ->Set(duplicated_messages_);
  registry->GetCounter("transport.faults_delayed")->Set(delayed_messages_);
  registry->GetCounter("transport.faults_corrupted")
      ->Set(corrupted_messages_);
}

void SimTransport::AdvanceRound() {
  ++round_;
  // Stable partition preserves send order among messages due the same round.
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (Pending& p : pending_) {
    if (p.due_round <= round_) {
      inner_->Send(p.message);
    } else {
      still_pending.push_back(std::move(p));
    }
  }
  pending_ = std::move(still_pending);
}

}  // namespace sgm
