#ifndef SGM_RUNTIME_SIM_TRANSPORT_H_
#define SGM_RUNTIME_SIM_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/rng.h"
#include "runtime/transport.h"

namespace sgm {

struct Telemetry;
class MetricRegistry;

/// Fault model of a SimTransport. All probabilities are per message per
/// link; every stochastic decision draws from a per-link stream derived from
/// the single `seed`, so one seed replays the exact fault schedule and
/// faulting one link never perturbs another link's randomness.
struct SimTransportConfig {
  std::uint64_t seed = 1;

  /// Probability that a message is silently lost on its link.
  double drop_probability = 0.0;

  /// Probability that a message is delivered twice (the duplicate follows
  /// the original immediately; real networks duplicate on retransmission).
  double duplicate_probability = 0.0;

  /// Maximum delivery delay in *rounds* (the driver advances one round each
  /// time its queue drains). Each message draws a uniform delay in
  /// [0, max_delay_rounds]; unequal delays reorder messages on the wire.
  int max_delay_rounds = 0;

  /// Probability that a message's encoded frame suffers a single bit flip
  /// on the link. The flip goes through the real wire codec: the frame is
  /// encoded, mangled, and re-decoded — with the v4 CRC32C trailer every
  /// single-bit flip is detected, so a corrupted frame becomes a *detected*
  /// loss (counted separately from drops, plus the decoder's
  /// `serialization.corrupt_frames` audit counter). If a flip ever did
  /// decode, the mangled message would be delivered, modeling undetected
  /// corruption on a checksum-less format.
  double corrupt_probability = 0.0;

  /// When false, only site-originated traffic is subject to faults —
  /// coordinator broadcasts/unicasts pass through untouched. This models
  /// the common deployment where the downlink is reliable (and matches the
  /// legacy FaultyHarness the stress tests grew out of).
  bool fault_coordinator_links = true;

  /// Number of sites; required (> 0) whenever fault_coordinator_links is
  /// set, so broadcast faults can be decided per destination link.
  int num_sites = 0;
};

/// Deterministic fault-injecting decorator over any Transport.
///
/// SimTransport sits between the protocol nodes and an inner delivery
/// transport (typically the InMemoryBus a driver drains). Every Send() is
/// subjected to seeded per-link faults — drop, duplication, bounded delay
/// (which reorders), and site crashes — and the survivors are forwarded to
/// the inner transport, immediately or after the drawn number of rounds.
///
/// Determinism contract: given the same config (seed included) and the same
/// sequence of Send/AdvanceRound/CrashSite/RecoverSite calls, the inner
/// transport observes the identical message sequence. Per-link Rng streams
/// are derived via DeriveSeed(seed, link), keyed by the site-side endpoint
/// of the link (site i ↔ coordinator traffic shares stream i).
///
/// Accounting mirrors InMemoryBus at the *sender* side: a message is counted
/// when transmitted (even if later dropped — the sender paid for it), a
/// broadcast counts once, and duplicates count as the extra transmissions
/// they are. With faults off the counters match an InMemoryBus handling the
/// same traffic exactly; the stress harness asserts this parity.
class SimTransport final : public Transport {
 public:
  /// `inner` is not owned and must outlive the SimTransport.
  SimTransport(Transport* inner, const SimTransportConfig& config);

  /// Optional observability sink (nullable, not owned): injected faults and
  /// crash/recover transitions are traced as `fault` category events. The
  /// fault lottery itself never consults telemetry, so traced and untraced
  /// runs of one seed inject the identical schedule.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  void Send(const RuntimeMessage& message) override;

  /// Advances the delivery clock one round and forwards every held message
  /// whose delay has expired (in send order within a round).
  void AdvanceRound();

  /// True while any delayed message is still held (the driver must keep
  /// advancing rounds before declaring the network quiescent — delays are
  /// bounded, not losses).
  bool HasPending() const { return !pending_.empty(); }

  /// Crashes a site: traffic from it is dropped at send, unicasts to it are
  /// dropped, and its copies of faulted broadcasts are suppressed. Drivers
  /// should also stop feeding observations to a crashed site.
  void CrashSite(int site);
  /// Recovers a crashed site (its state is whatever it held at crash time;
  /// the protocol's degraded-sync machinery re-converges it).
  void RecoverSite(int site);
  bool IsCrashed(int site) const;

  // Sender-side accounting (InMemoryBus-compatible when faults are off).
  // Paper-comparable family: original protocol data only — reliability
  // control messages, retransmissions and fault-injected duplicates are
  // excluded (they land in the transport totals below).
  long messages_sent() const { return messages_sent_; }
  long site_messages_sent() const { return site_messages_sent_; }
  double bytes_sent() const { return bytes_sent_; }

  // Transport totals: every transmission that hit the wire, duplicates and
  // control traffic included.
  long transport_messages_sent() const { return transport_messages_sent_; }
  double transport_bytes_sent() const { return transport_bytes_sent_; }

  // Fault statistics.
  long dropped_messages() const { return dropped_messages_; }
  long duplicated_messages() const { return duplicated_messages_; }
  long delayed_messages() const { return delayed_messages_; }
  long corrupted_messages() const { return corrupted_messages_; }

  /// Mirrors both accounting families and the fault statistics into
  /// `registry`: paper-comparable under `transport.paper_*`, wire totals
  /// under `transport.total_*`, faults under `transport.faults_*`.
  void PublishMetrics(MetricRegistry* registry) const;

 private:
  struct Pending {
    long due_round;
    RuntimeMessage message;
  };

  bool FaultsApplyTo(const RuntimeMessage& message) const;
  Rng& LinkRng(int site);
  /// Runs the drop/duplicate/delay lottery for one message on one link and
  /// either forwards it (now or later) or drops it.
  void Admit(const RuntimeMessage& message, int link);
  void Forward(const RuntimeMessage& message, int delay_rounds);

  Transport* inner_;
  SimTransportConfig config_;
  Telemetry* telemetry_ = nullptr;
  std::map<int, Rng> link_rngs_;
  std::vector<bool> crashed_;

  std::vector<Pending> pending_;  ///< held messages, send order preserved
  long round_ = 0;

  long messages_sent_ = 0;
  long site_messages_sent_ = 0;
  double bytes_sent_ = 0.0;
  long transport_messages_sent_ = 0;
  double transport_bytes_sent_ = 0.0;
  long dropped_messages_ = 0;
  long duplicated_messages_ = 0;
  long delayed_messages_ = 0;
  long corrupted_messages_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SIM_TRANSPORT_H_
