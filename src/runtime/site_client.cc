#include "runtime/site_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <thread>

#include "core/check.h"
#include "core/version.h"
#include "obs/telemetry.h"

namespace sgm {

const char* SiteExitReasonName(SiteExitReason reason) {
  switch (reason) {
    case SiteExitReason::kShutdown: return "shutdown";
    case SiteExitReason::kConnectGiveUp: return "connect-give-up";
    case SiteExitReason::kCoordinatorEof: return "coordinator-eof";
    case SiteExitReason::kRecvError: return "recv-error";
    case SiteExitReason::kStreamPoisoned: return "stream-poisoned";
    case SiteExitReason::kSendFailed: return "send-failed";
    case SiteExitReason::kPollError: return "poll-error";
  }
  return "unknown";
}

SiteClient::SiteClient(const MonitoredFunction& function,
                       const SiteClientConfig& config)
    : config_(config), clock_(config.round_micros) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.site_id >= 0 && config.site_id < config.num_sites);
  SGM_CHECK(config.max_reconnects >= 0);
  config_.runtime.reliability.round_clock = &clock_;
  if (config_.runtime.telemetry != nullptr) {
    config_.runtime.telemetry->trace.ConfigureSampling(
        config_.runtime.trace_sample_rate, config_.runtime.seed);
  }
  // Decorrelate the per-site retry jitter streams without a shared clock.
  retry_jitter_state_ = config_.runtime.socket_retry.jitter_seed +
                        0x5bd1e995ULL *
                            static_cast<std::uint64_t>(config.site_id + 1);
  Transport* below_reliability = &transport_;
  if (config_.chaos.enabled()) {
    chaos_ = std::make_unique<ChaosSocketTransport>(
        &transport_, config_.chaos, config_.runtime.telemetry,
        config_.site_id);
    // The faults act on this client's own connection: a reset kills both
    // directions (the coordinator sees EOF, we see write failures); a
    // half-open partition kills only our write direction. Either way the
    // real detect → reconnect → rejoin machinery has to dig us out.
    chaos_->SetFaultHooks(
        [this] {
          std::lock_guard<std::mutex> lock(fd_mu_);
          if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
        },
        [this] {
          std::lock_guard<std::mutex> lock(fd_mu_);
          if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
        });
    below_reliability = chaos_.get();
  }
  reliable_ = std::make_unique<ReliableTransport>(
      below_reliability, config_.num_sites, config_.runtime.reliability,
      config_.runtime.telemetry);
  node_ = std::make_unique<SiteNode>(config_.site_id, config_.num_sites,
                                     function, config_.runtime,
                                     reliable_.get());
}

SiteClient::~SiteClient() { TearDownSession(); }

bool SiteClient::EstablishSession() {
  const int fd = ConnectTcpLoopbackWithRetry(
      config_.port, config_.runtime.socket_retry, &retry_jitter_state_);
  if (fd < 0) return false;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    fd_ = fd;
  }
  transport_.RegisterPeer(kCoordinatorId, fd);
  // Session control goes straight to the socket (below the chaos layer):
  // the registration handshake is the harness, not the traffic under test.
  RuntimeMessage hello;
  hello.type = RuntimeMessage::Type::kSiteHello;
  hello.from = config_.site_id;
  hello.to = kCoordinatorId;
  transport_.Send(hello);
  return true;
}

void SiteClient::TearDownSession() {
  transport_.UnregisterPeer(kCoordinatorId);
  std::lock_guard<std::mutex> lock(fd_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SiteClient::InjectConnectionReset() {
  std::lock_guard<std::mutex> lock(fd_mu_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::string SiteClient::HealthJson() const {
  bool connected = false;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    connected = fd_ >= 0;
  }
  long trace_epoch = -1;
  if (config_.runtime.telemetry != nullptr) {
    trace_epoch = config_.runtime.telemetry->trace.epoch();
  }
  const long long uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  std::ostringstream out;
  out << "{\"role\":\"site\",\"version\":\"" << kSgmVersion
      << "\",\"uptime_ms\":" << uptime_ms
      << ",\"site\":" << config_.site_id
      << ",\"num_sites\":" << config_.num_sites
      << ",\"connected\":" << (connected ? "true" : "false")
      << ",\"cycles_observed\":" << cycles_observed_.load()
      << ",\"reconnects\":" << reconnects_.load()
      << ",\"max_reconnects\":" << config_.max_reconnects
      << ",\"epoch\":" << trace_epoch << "}";
  return out.str();
}

bool SiteClient::Connect() {
  SGM_CHECK(fd_ < 0);
  return EstablishSession();
}

bool SiteClient::Run(const std::function<Vector(long)>& next_vector) {
  SGM_CHECK(fd_ >= 0);
  Telemetry* telemetry = config_.runtime.telemetry;
  FrameReader reader;
  for (;;) {
    const SiteExitReason reason = RunSession(next_vector, &reader);
    exit_reason_ = reason;
    if (reason == SiteExitReason::kShutdown) return true;
    if (reason == SiteExitReason::kPollError) return false;
    // Connection-level failure: discard the dead session — including any
    // partial frame the peer died in the middle of — and redial.
    TearDownSession();
    reader.Reset();
    if (telemetry != nullptr) {
      telemetry->trace.Emit("session", "connection_lost", config_.site_id,
                            {{"reason", SiteExitReasonName(reason)}});
    }
    if (reconnects_ >= config_.max_reconnects) return false;
    if (!EstablishSession()) {
      exit_reason_ = SiteExitReason::kConnectGiveUp;
      return false;
    }
    ++reconnects_;
    if (telemetry != nullptr) {
      telemetry->trace.Emit("session", "reconnect", config_.site_id,
                            {{"attempt", reconnects_.load()}});
    }
    // The hello above re-registered the connection; now drive the rejoin
    // handshake so the coordinator re-anchors us and resyncs our drift.
    node_->OnTransportReconnect();
  }
}

SiteExitReason SiteClient::RunSession(
    const std::function<Vector(long)>& next_vector, FrameReader* reader) {
  std::array<std::uint8_t, 65536> buffer;
  for (;;) {
    if (stop_requested_.load()) return SiteExitReason::kShutdown;
    // Consume a pending injected stall (in-process SIGSTOP stand-in): the
    // session stays up while the loop goes unresponsive.
    const long stall = stall_ms_.exchange(0);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    // A write failure anywhere (dispatch responses, retransmissions,
    // barrier acks) drops the peer mapping — that is this session's end.
    if (!transport_.HasPeer(kCoordinatorId)) {
      return SiteExitReason::kSendFailed;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(config_.poll_interval_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return SiteExitReason::kPollError;
    }
    if (ready == 0) {
      reliable_->AdvanceRound();
      continue;
    }
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0) return SiteExitReason::kCoordinatorEof;  // no kShutdown seen
    if (n < 0) {
      if (errno == EINTR) continue;
      return SiteExitReason::kRecvError;
    }
    reader->Append(buffer.data(), static_cast<std::size_t>(n));
    std::vector<RuntimeMessage> frames;
    FrameStats stats;
    if (!DrainDecodedFrames(reader, &frames, &stats)) {
      return SiteExitReason::kStreamPoisoned;
    }
    for (const RuntimeMessage& message : frames) {
      switch (message.type) {
        case RuntimeMessage::Type::kCycleBegin: {
          const long cycle = static_cast<long>(message.scalar);
          if (config_.runtime.telemetry != nullptr) {
            config_.runtime.telemetry->SetCycle(cycle);
          }
          node_->Observe(next_vector(cycle));
          ++cycles_observed_;
          break;
        }
        case RuntimeMessage::Type::kBarrier: {
          // Everything this node emitted in response to earlier frames is
          // already on the wire (sends are synchronous), so the FIFO
          // stream orders this ack after all of it.
          RuntimeMessage ack;
          ack.type = RuntimeMessage::Type::kBarrierAck;
          ack.from = config_.site_id;
          ack.to = kCoordinatorId;
          ack.scalar = message.scalar;
          transport_.Send(ack);
          break;
        }
        case RuntimeMessage::Type::kShutdown:
          return SiteExitReason::kShutdown;
        case RuntimeMessage::Type::kSiteHello:
        case RuntimeMessage::Type::kBarrierAck:
          break;  // site-originated control echoed back: ignore
        default: {
          std::vector<RuntimeMessage> fresh;
          reliable_->OnDeliver(config_.site_id, message, &fresh);
          for (const RuntimeMessage& m : fresh) node_->OnMessage(m);
          break;
        }
      }
    }
  }
}

}  // namespace sgm
