#include "runtime/site_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "core/check.h"
#include "obs/telemetry.h"

namespace sgm {

SiteClient::SiteClient(const MonitoredFunction& function,
                       const SiteClientConfig& config)
    : config_(config), clock_(config.round_micros) {
  SGM_CHECK(config.num_sites > 0);
  SGM_CHECK(config.site_id >= 0 && config.site_id < config.num_sites);
  config_.runtime.reliability.round_clock = &clock_;
  reliable_ = std::make_unique<ReliableTransport>(
      &transport_, config_.num_sites, config_.runtime.reliability,
      config_.runtime.telemetry);
  node_ = std::make_unique<SiteNode>(config_.site_id, config_.num_sites,
                                     function, config_.runtime,
                                     reliable_.get());
}

SiteClient::~SiteClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool SiteClient::Connect() {
  SGM_CHECK(fd_ < 0);
  fd_ = ConnectTcpLoopback(config_.port, config_.connect_timeout_ms);
  if (fd_ < 0) return false;
  transport_.RegisterPeer(kCoordinatorId, fd_);
  RuntimeMessage hello;
  hello.type = RuntimeMessage::Type::kSiteHello;
  hello.from = config_.site_id;
  hello.to = kCoordinatorId;
  transport_.Send(hello);
  return true;
}

bool SiteClient::Run(const std::function<Vector(long)>& next_vector) {
  SGM_CHECK(fd_ >= 0);
  FrameReader reader;
  std::array<std::uint8_t, 65536> buffer;
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(config_.poll_interval_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) {
      reliable_->AdvanceRound();
      continue;
    }
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0) return false;  // coordinator vanished without kShutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader.Append(buffer.data(), static_cast<std::size_t>(n));
    std::vector<RuntimeMessage> frames;
    FrameStats stats;
    if (!DrainDecodedFrames(&reader, &frames, &stats)) return false;
    for (const RuntimeMessage& message : frames) {
      switch (message.type) {
        case RuntimeMessage::Type::kCycleBegin: {
          const long cycle = static_cast<long>(message.scalar);
          if (config_.runtime.telemetry != nullptr) {
            config_.runtime.telemetry->SetCycle(cycle);
          }
          node_->Observe(next_vector(cycle));
          ++cycles_observed_;
          break;
        }
        case RuntimeMessage::Type::kBarrier: {
          // Everything this node emitted in response to earlier frames is
          // already on the wire (sends are synchronous), so the FIFO
          // stream orders this ack after all of it.
          RuntimeMessage ack;
          ack.type = RuntimeMessage::Type::kBarrierAck;
          ack.from = config_.site_id;
          ack.to = kCoordinatorId;
          ack.scalar = message.scalar;
          transport_.Send(ack);
          break;
        }
        case RuntimeMessage::Type::kShutdown:
          return true;
        case RuntimeMessage::Type::kSiteHello:
        case RuntimeMessage::Type::kBarrierAck:
          break;  // site-originated control echoed back: ignore
        default: {
          std::vector<RuntimeMessage> fresh;
          reliable_->OnDeliver(config_.site_id, message, &fresh);
          for (const RuntimeMessage& m : fresh) node_->OnMessage(m);
          break;
        }
      }
    }
  }
}

}  // namespace sgm
