#ifndef SGM_RUNTIME_SITE_CLIENT_H_
#define SGM_RUNTIME_SITE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/chaos.h"
#include "runtime/reliable_transport.h"
#include "runtime/round_clock.h"
#include "runtime/site_node.h"
#include "runtime/socket_transport.h"

namespace sgm {

struct SiteClientConfig {
  int site_id = 0;
  int num_sites = 0;
  /// Coordinator's loopback port.
  int port = 0;
  /// Node configuration — must match the coordinator's RuntimeConfig
  /// field-for-field (thresholds, bounds, seeds), or the two tiers monitor
  /// different queries. The client injects its own MonotonicRoundClock
  /// into runtime.reliability.round_clock, and draws its connection retry
  /// policy from runtime.socket_retry (jitter salted by site_id).
  RuntimeConfig runtime;
  /// Microseconds per retransmission round (see CoordinatorServerConfig).
  long round_micros = 20000;
  /// Idle poll slice of the event loop; each timeout advances the
  /// retransmission clock.
  long poll_interval_ms = 10;
  /// Sessions the client may re-establish after losing the coordinator
  /// connection mid-run (each reconnect burns the full socket_retry
  /// budget). 0 disables reconnection — any peer loss ends the run.
  int max_reconnects = 8;
  /// Optional seeded network-fault injection on the send path (tests and
  /// chaos harnesses only; enabled() is false by default).
  ChaosInjectionConfig chaos;
};

/// Why the event loop returned — the structured exit story of a site
/// process (docs/RUNTIME.md, failure-handling runbook). Every value except
/// kShutdown is an abnormal end and maps to a distinct nonzero exit code in
/// `sgm_monitor --site`.
enum class SiteExitReason {
  kShutdown = 0,     ///< coordinator said kShutdown: clean end of run
  kConnectGiveUp,    ///< connection attempts exhausted (first or re-connect)
  kCoordinatorEof,   ///< peer closed without kShutdown, reconnects exhausted
  kRecvError,        ///< terminal recv() error, reconnects exhausted
  kStreamPoisoned,   ///< oversized-prefix poison, reconnects exhausted
  kSendFailed,       ///< write failure dropped the peer, reconnects exhausted
  kPollError,        ///< terminal poll() error (not recoverable by reconnect)
};

/// Human-readable tag for logs and trace events ("shutdown", "connect-give-up", ...).
const char* SiteExitReasonName(SiteExitReason reason);

/// One site process: a SiteNode over a SocketTransport connection to the
/// coordinator, driven by a single-threaded poll loop (no locking — the
/// site tier is naturally sequential: observe, respond, flush).
///
/// The loop obeys the coordinator's session control plane:
///  * kCycleBegin → Observe(next_vector(cycle)) — the data is generated
///    locally (each process reconstructs its deterministic stream), only
///    protocol messages cross the wire, as in the real deployment shape.
///  * kBarrier → echo kBarrierAck. The node's responses to everything that
///    preceded the barrier were written synchronously during dispatch, so
///    the FIFO stream orders them before the ack — the flush guarantee the
///    coordinator's quiescence detection builds on.
///  * kShutdown → clean exit.
/// Everything else goes through the receive-side reliability layer into
/// SiteNode::OnMessage, exactly as the sim driver delivers it.
///
/// ── Reconnect-with-rejoin ──────────────────────────────────────────────
/// A lost connection (EOF, recv error, write failure, poisoned stream)
/// does not end the run: the client discards the partial frame state,
/// redials under the seeded-backoff policy, re-registers with a fresh
/// kSiteHello and lets SiteNode::OnTransportReconnect drive the rejoin
/// handshake, so the coordinator re-anchors the site (e, ε_T) and resyncs
/// its drift. In-flight reliable sends survive in the retransmission queue
/// and drain over the new connection; the receive side dedups anything the
/// coordinator retransmits. Bounded by max_reconnects and the per-attempt
/// socket_retry budget — exhaustion ends the run with the underlying
/// failure's reason.
class SiteClient {
 public:
  SiteClient(const MonitoredFunction& function,
             const SiteClientConfig& config);
  ~SiteClient();

  SiteClient(const SiteClient&) = delete;
  SiteClient& operator=(const SiteClient&) = delete;

  /// Connects to the coordinator under the socket_retry policy and
  /// registers with kSiteHello. Returns false when the budget ran out
  /// before the coordinator became reachable.
  bool Connect();

  /// Runs the event loop until the coordinator says kShutdown (returns
  /// true) or the connection is lost beyond recovery (returns false; see
  /// exit_reason() for which failure ended it). `next_vector(cycle)`
  /// supplies the local measurements vector observed at each kCycleBegin.
  bool Run(const std::function<Vector(long cycle)>& next_vector);

  /// Why the last Run() returned.
  SiteExitReason exit_reason() const { return exit_reason_; }
  /// Sessions re-established after a mid-run peer loss.
  long reconnects() const { return reconnects_.load(); }

  /// The site-side /healthz document: identity, session state and loop
  /// progress. Built from atomics plus the fd mutex, so the HTTP ops
  /// thread may call it while the poll loop runs.
  std::string HealthJson() const;

  /// Severs the current connection from any thread (test/chaos harness
  /// hook): the site sees a genuine TCP failure and runs the full
  /// reconnect-with-rejoin path. A no-op while disconnected.
  void InjectConnectionReset();

  /// Asks the event loop to exit cleanly at its next iteration (as if the
  /// coordinator had said kShutdown). Async-signal-safe: a SIGTERM/SIGINT
  /// handler may call it directly.
  void RequestStop() { stop_requested_.store(true); }

  /// Makes the event loop sleep `ms` before processing its next inbound
  /// frame batch (test/chaos harness hook, callable from any thread): the
  /// site keeps its TCP session but goes unresponsive — an in-process
  /// stand-in for SIGSTOP, driving the coordinator's barrier-deadline and
  /// lag-quarantine path. One-shot: the stall is consumed by the next loop
  /// iteration; call repeatedly for a sustained straggler.
  void InjectProcessingStall(long ms) { stall_ms_.store(ms); }

  const SiteNode& node() const { return *node_; }
  long cycles_observed() const { return cycles_observed_.load(); }

 private:
  /// Dials and registers one session; updates fd_. Returns false when the
  /// retry budget is exhausted.
  bool EstablishSession();
  /// Closes the current fd (if any) and unregisters the peer.
  void TearDownSession();
  /// Polls one session until shutdown or a connection failure.
  SiteExitReason RunSession(const std::function<Vector(long)>& next_vector,
                            FrameReader* reader);

  SiteClientConfig config_;
  MonotonicRoundClock clock_;
  /// Construction instant; /healthz reports uptime relative to this.
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  SocketTransport transport_;
  std::unique_ptr<ChaosSocketTransport> chaos_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<SiteNode> node_;
  /// Guards fd_ swaps against InjectConnectionReset from other threads.
  mutable std::mutex fd_mu_;
  int fd_ = -1;
  std::uint64_t retry_jitter_state_ = 0;
  /// Atomic: read by the HTTP ops thread while the poll loop advances them.
  std::atomic<long> cycles_observed_{0};
  std::atomic<long> reconnects_{0};
  /// Set by RequestStop (possibly from a signal handler); polled by the
  /// event loop.
  std::atomic<bool> stop_requested_{false};
  /// Pending one-shot processing stall in ms (see InjectProcessingStall).
  std::atomic<long> stall_ms_{0};
  SiteExitReason exit_reason_ = SiteExitReason::kShutdown;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SITE_CLIENT_H_
