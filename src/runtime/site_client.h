#ifndef SGM_RUNTIME_SITE_CLIENT_H_
#define SGM_RUNTIME_SITE_CLIENT_H_

#include <functional>
#include <memory>

#include "runtime/reliable_transport.h"
#include "runtime/round_clock.h"
#include "runtime/site_node.h"
#include "runtime/socket_transport.h"

namespace sgm {

struct SiteClientConfig {
  int site_id = 0;
  int num_sites = 0;
  /// Coordinator's loopback port.
  int port = 0;
  /// Node configuration — must match the coordinator's RuntimeConfig
  /// field-for-field (thresholds, bounds, seeds), or the two tiers monitor
  /// different queries. The client injects its own MonotonicRoundClock
  /// into runtime.reliability.round_clock.
  RuntimeConfig runtime;
  /// Microseconds per retransmission round (see CoordinatorServerConfig).
  long round_micros = 20000;
  /// Connect() retries against a not-yet-listening coordinator this long.
  long connect_timeout_ms = 10000;
  /// Idle poll slice of the event loop; each timeout advances the
  /// retransmission clock.
  long poll_interval_ms = 10;
};

/// One site process: a SiteNode over a SocketTransport connection to the
/// coordinator, driven by a single-threaded poll loop (no locking — the
/// site tier is naturally sequential: observe, respond, flush).
///
/// The loop obeys the coordinator's session control plane:
///  * kCycleBegin → Observe(next_vector(cycle)) — the data is generated
///    locally (each process reconstructs its deterministic stream), only
///    protocol messages cross the wire, as in the real deployment shape.
///  * kBarrier → echo kBarrierAck. The node's responses to everything that
///    preceded the barrier were written synchronously during dispatch, so
///    the FIFO stream orders them before the ack — the flush guarantee the
///    coordinator's quiescence detection builds on.
///  * kShutdown → clean exit.
/// Everything else goes through the receive-side reliability layer into
/// SiteNode::OnMessage, exactly as the sim driver delivers it.
class SiteClient {
 public:
  SiteClient(const MonitoredFunction& function,
             const SiteClientConfig& config);
  ~SiteClient();

  SiteClient(const SiteClient&) = delete;
  SiteClient& operator=(const SiteClient&) = delete;

  /// Connects to the coordinator (retrying until connect_timeout_ms) and
  /// registers with kSiteHello. Returns false when the coordinator never
  /// became reachable.
  bool Connect();

  /// Runs the event loop until the coordinator says kShutdown (returns
  /// true) or the connection drops without one (returns false).
  /// `next_vector(cycle)` supplies the local measurements vector observed
  /// at each kCycleBegin.
  bool Run(const std::function<Vector(long cycle)>& next_vector);

  const SiteNode& node() const { return *node_; }
  long cycles_observed() const { return cycles_observed_; }

 private:
  SiteClientConfig config_;
  MonotonicRoundClock clock_;
  SocketTransport transport_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::unique_ptr<SiteNode> node_;
  int fd_ = -1;
  long cycles_observed_ = 0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SITE_CLIENT_H_
