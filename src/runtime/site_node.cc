#include "runtime/site_node.h"

#include <algorithm>

#include "core/check.h"
#include "estimators/sampling.h"
#include "geometry/ball.h"

namespace sgm {

SiteNode::SiteNode(int id, int num_sites, const MonitoredFunction& function,
                   const RuntimeConfig& config, Transport* transport)
    : id_(id),
      num_sites_(num_sites),
      function_(function.Clone()),
      config_(config),
      transport_(transport),
      rng_(config.seed + 0x9e37u * static_cast<std::uint64_t>(id + 1)) {
  SGM_CHECK(id >= 0 && id < num_sites);
  SGM_CHECK(transport != nullptr);
  SGM_CHECK(config.num_trials >= 1);
  SGM_CHECK(config.max_step_norm > 0.0);
}

Vector SiteNode::Drift() const { return local_ - synced_local_; }

double SiteNode::CurrentU() const {
  const double accumulated =
      config_.max_step_norm *
      static_cast<double>(std::max<long>(1, cycles_since_sync_));
  const double threshold_scale =
      config_.u_threshold_factor *
      std::max(epsilon_t_, config_.max_step_norm);
  return std::min({accumulated, config_.drift_norm_cap, threshold_scale});
}

void SiteNode::Observe(const Vector& local_vector) {
  local_ = local_vector;
  in_first_trial_ = false;
  if (!initialized_) return;  // waiting for the first kNewEstimate
  ++cycles_since_sync_;
  if (mute_remaining_ > 0) {
    --mute_remaining_;
    return;
  }

  // Monitoring phase: M independent self-sampling trials; any hit arms the
  // un-scaled GM ball test (Lemma 2).
  const Vector drift = Drift();
  inclusion_probability_ = SamplingProbability(config_.delta, CurrentU(),
                                               num_sites_, drift.Norm());
  bool sampled_any = false;
  for (int trial = 0; trial < config_.num_trials; ++trial) {
    const bool sampled = rng_.NextBernoulli(inclusion_probability_);
    if (trial == 0) in_first_trial_ = sampled;
    sampled_any = sampled_any || sampled;
  }
  if (!sampled_any) return;

  const Ball constraint = Ball::LocalConstraint(e_, drift);
  if (function_->BallCrossesThreshold(constraint, config_.threshold)) {
    RuntimeMessage alarm;
    alarm.type = RuntimeMessage::Type::kLocalViolation;
    alarm.from = id_;
    alarm.to = kCoordinatorId;
    transport_->Send(alarm);
  }
}

void SiteNode::OnMessage(const RuntimeMessage& message) {
  switch (message.type) {
    case RuntimeMessage::Type::kProbeRequest: {
      if (!in_first_trial_) return;  // the coordinator probes trial 1 only
      RuntimeMessage report;
      report.type = RuntimeMessage::Type::kDriftReport;
      report.from = id_;
      report.to = kCoordinatorId;
      report.payload = Drift();
      report.scalar = inclusion_probability_;
      transport_->Send(report);
      return;
    }
    case RuntimeMessage::Type::kFullStateRequest: {
      RuntimeMessage report;
      report.type = RuntimeMessage::Type::kStateReport;
      report.from = id_;
      report.to = kCoordinatorId;
      report.payload = local_;
      transport_->Send(report);
      return;
    }
    case RuntimeMessage::Type::kNewEstimate: {
      e_ = message.payload;
      epsilon_t_ = message.scalar;
      synced_local_ = local_;
      function_->OnSync(e_);
      cycles_since_sync_ = 0;
      mute_remaining_ = 0;
      initialized_ = true;
      return;
    }
    case RuntimeMessage::Type::kResolved: {
      mute_remaining_ = static_cast<long>(message.scalar);
      return;
    }
    default:
      // Site-originated types are never addressed to sites.
      return;
  }
}

}  // namespace sgm
