#include "runtime/site_node.h"

#include <algorithm>

#include "core/check.h"
#include "estimators/sampling.h"
#include "geometry/ball.h"
#include "obs/telemetry.h"

namespace sgm {

SiteNode::SiteNode(int id, int num_sites, const MonitoredFunction& function,
                   const RuntimeConfig& config, Transport* transport)
    : id_(id),
      num_sites_(num_sites),
      function_(function.Clone()),
      config_(config),
      transport_(transport),
      telemetry_(config.telemetry),
      rng_(config.seed + 0x9e37u * static_cast<std::uint64_t>(id + 1)) {
  SGM_CHECK(id >= 0 && id < num_sites);
  SGM_CHECK(transport != nullptr);
  SGM_CHECK(config.num_trials >= 1);
  SGM_CHECK(config.max_step_norm > 0.0);
  SGM_CHECK(config.heartbeat_interval_cycles >= 1);
  if (telemetry_ != nullptr) {
    ball_test_ns_ = telemetry_->registry.GetHistogram("site.ball_test_ns",
                                                      LatencyBucketsNs());
  }
}

Vector SiteNode::Drift() const { return local_ - synced_local_; }

double SiteNode::CurrentU() const {
  const double accumulated =
      config_.max_step_norm *
      static_cast<double>(std::max<long>(1, cycles_since_sync_));
  const double threshold_scale =
      config_.u_threshold_factor *
      std::max(epsilon_t_, config_.max_step_norm);
  return std::min({accumulated, config_.drift_norm_cap, threshold_scale});
}

void SiteNode::SendToCoordinator(RuntimeMessage message) {
  message.from = id_;
  message.to = kCoordinatorId;
  message.epoch = epoch_;
  cycles_since_sent_ = 0;
  transport_->Send(message);
}

void SiteNode::SendHeartbeatIfDue() {
  if (cycles_since_sent_ < config_.heartbeat_interval_cycles) return;
  RuntimeMessage heartbeat;
  heartbeat.type = RuntimeMessage::Type::kHeartbeat;
  ++audit_.heartbeats_sent;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("reliability", "heartbeat", id_);
  }
  SendToCoordinator(std::move(heartbeat));
}

void SiteNode::RequestRejoin() {
  if (rejoin_requested_) return;
  rejoin_requested_ = true;
  RuntimeMessage request;
  request.type = RuntimeMessage::Type::kRejoinRequest;
  ++audit_.rejoin_requests_sent;
  if (telemetry_ != nullptr) {
    telemetry_->trace.Emit("reliability", "rejoin_request", id_);
  }
  SendToCoordinator(std::move(request));
}

void SiteNode::OnTransportReconnect() {
  if (epoch_ == 0 && !initialized_) return;  // never heard from the
                                             // coordinator: hello suffices
  // The previous request (if any) may have died with the old connection;
  // force a fresh one. kRejoinRequest is fencing-exempt control traffic, so
  // the coordinator reads the echoed epoch even when the site is behind.
  rejoin_requested_ = false;
  RequestRejoin();
}

void SiteNode::Observe(const Vector& local_vector) {
  local_ = local_vector;
  in_first_trial_ = false;
  ++cycles_since_sent_;
  if (!initialized_ || !anchored_) {
    // No current anchor: monitoring against a stale (or absent) estimate
    // would be meaningless. If a sync round demonstrably exists (epoch_ >
    // 0) the anchor was lost in flight — keep asking to be resynced, every
    // cycle, since the previous request may itself have been lost. Before
    // any coordinator contact, a plain heartbeat is all there is to say.
    if (epoch_ > 0) {
      rejoin_requested_ = false;
      RequestRejoin();
    } else {
      SendHeartbeatIfDue();
    }
    return;
  }
  ++cycles_since_sync_;
  if (mute_remaining_ > 0) {
    --mute_remaining_;
    SendHeartbeatIfDue();
    return;
  }

  // Monitoring phase: M independent self-sampling trials; any hit arms the
  // un-scaled GM ball test (Lemma 2).
  const Vector drift = Drift();
  inclusion_probability_ = SamplingProbability(config_.delta, CurrentU(),
                                               num_sites_, drift.Norm());
  bool sampled_any = false;
  for (int trial = 0; trial < config_.num_trials; ++trial) {
    const bool sampled = rng_.NextBernoulli(inclusion_probability_);
    if (trial == 0) in_first_trial_ = sampled;
    sampled_any = sampled_any || sampled;
  }
  if (sampled_any) {
    bool crossed = false;
    {
      ScopedTimer timer(ball_test_ns_);
      const Ball constraint = Ball::LocalConstraint(e_, drift);
      crossed = function_->BallCrossesThreshold(constraint, config_.threshold);
    }
    if (crossed) {
      if (telemetry_ != nullptr) {
        telemetry_->trace.Emit("protocol", "local_alarm", id_);
      }
      RuntimeMessage alarm;
      alarm.type = RuntimeMessage::Type::kLocalViolation;
      SendToCoordinator(std::move(alarm));
      return;
    }
  }
  SendHeartbeatIfDue();
}

void SiteNode::ApplyAnchor(const RuntimeMessage& message, const char* source) {
  if (message.epoch != epoch_) {  // fencing audit: must be unreachable
    ++audit_.stale_epoch_applied;
  }
  if (telemetry_ != nullptr) {
    // Sites stamp the coordinator-issued epoch they anchor to; in a
    // per-site process this labels the site's trace file with the same
    // tepoch stream the coordinator's file carries, letting the merge
    // group events by protocol incarnation.
    telemetry_->trace.SetEpoch(message.epoch);
    telemetry_->trace.Emit("protocol", "anchor_applied", id_,
                           {{"epoch", message.epoch},
                            {"source", source},
                            {"span", message.span}});
  }
  e_ = message.payload;
  epsilon_t_ = message.scalar;
  synced_local_ = local_;
  function_->OnSync(e_);
  cycles_since_sync_ = 0;
  mute_remaining_ = 0;
  initialized_ = true;
  anchored_ = true;
  rejoin_requested_ = false;
}

void SiteNode::OnMessage(const RuntimeMessage& message) {
  // ── Epoch fence ────────────────────────────────────────────────────────
  // Stale rounds are dropped outright; a forward jump past the next round
  // means this site missed a sync and must not monitor against its stale
  // anchor until resynchronized.
  if (message.epoch < epoch_) {
    ++audit_.stale_epoch_drops;
    if (telemetry_ != nullptr) {
      telemetry_->trace.Emit("protocol", "stale_epoch_drop", id_,
                             {{"msg_epoch", message.epoch}});
    }
    return;
  }
  if (message.epoch > epoch_) {
    const bool gap = message.epoch > epoch_ + 1;
    if (gap && telemetry_ != nullptr) {
      telemetry_->trace.Emit(
          "protocol", "epoch_gap", id_,
          {{"from_epoch", epoch_}, {"to_epoch", message.epoch}});
    }
    epoch_ = message.epoch;
    const bool self_anchoring =
        message.type == RuntimeMessage::Type::kNewEstimate ||
        message.type == RuntimeMessage::Type::kRejoinGrant;
    if (gap && initialized_ && !self_anchoring) {
      anchored_ = false;
      rejoin_requested_ = false;
      RequestRejoin();
    }
  }

  switch (message.type) {
    case RuntimeMessage::Type::kProbeRequest: {
      // The coordinator probes trial 1 only; an un-anchored site's drift is
      // relative to a stale estimate and must not enter the HT sample.
      if (!in_first_trial_ || !anchored_) return;
      RuntimeMessage report;
      report.type = RuntimeMessage::Type::kDriftReport;
      report.payload = Drift();
      report.scalar = inclusion_probability_;
      // Sites never mint spans: the response belongs to the request's span,
      // so the answer lands in the same phase of the cycle's span tree.
      report.span = message.span;
      report.parent_span = message.parent_span;
      SendToCoordinator(std::move(report));
      return;
    }
    case RuntimeMessage::Type::kFullStateRequest: {
      // Always answered — the raw v_i is valid regardless of anchoring.
      RuntimeMessage report;
      report.type = RuntimeMessage::Type::kStateReport;
      report.payload = local_;
      report.span = message.span;
      report.parent_span = message.parent_span;
      SendToCoordinator(std::move(report));
      return;
    }
    case RuntimeMessage::Type::kNewEstimate: {
      ApplyAnchor(message, "new_estimate");
      return;
    }
    case RuntimeMessage::Type::kRejoinGrant: {
      ApplyAnchor(message, "rejoin_grant");
      // Complete the handshake: ship fresh state so the coordinator can
      // update its last-known vector and mark this site alive.
      RuntimeMessage report;
      report.type = RuntimeMessage::Type::kStateReport;
      report.payload = local_;
      report.span = message.span;  // the handshake reply joins the grant span
      report.parent_span = message.parent_span;
      SendToCoordinator(std::move(report));
      return;
    }
    case RuntimeMessage::Type::kResolved: {
      if (!anchored_) return;
      if (message.epoch != epoch_) ++audit_.stale_epoch_applied;  // audit
      mute_remaining_ = static_cast<long>(message.scalar);
      return;
    }
    default:
      // Site-originated types (and transport-level acks, which the
      // reliability layer consumes before dispatch) are never applied here.
      return;
  }
}

}  // namespace sgm
