#ifndef SGM_RUNTIME_SITE_NODE_H_
#define SGM_RUNTIME_SITE_NODE_H_

#include <memory>

#include "core/rng.h"
#include "functions/monitored_function.h"
#include "runtime/message.h"
#include "runtime/transport.h"

namespace sgm {

/// Configuration shared by all nodes of one monitoring deployment.
struct RuntimeConfig {
  double threshold = 0.0;
  double delta = 0.1;
  /// Sampling trials per cycle (M of Lemma 2); ≥ 1 here (no auto mode —
  /// deployments pick M from estimators/sampling.h's NumTrials()).
  int num_trials = 1;
  /// Per-cycle drift-step bound (feeds the U policy, Example 3's pattern).
  double max_step_norm = 1.0;
  /// A-priori ‖Δv_i‖ cap (√2·window for sliding windows; +inf if unknown).
  double drift_norm_cap = 1e18;
  /// β of the U ≤ β·ε_T ceiling (see sim/protocol.h's CurrentU).
  double u_threshold_factor = 6.0;
  std::uint64_t seed = 99;
};

/// The bottom-tier participant of the SGM runtime: owns one local
/// measurements vector, performs its own sampling coin-flips and ball
/// tests, and speaks the RuntimeMessage protocol.
///
/// Unlike the simulator protocols (which hold all N vectors in one object
/// for experimentation), a SiteNode sees *only its own data* plus the
/// coordinator's broadcasts — this is the embeddable deployment shape.
///
/// Usage per update cycle:
///   site.Observe(new_local_vector);   // after the local window slid
///   ... transport delivers; site.OnMessage(...) for each inbound ...
class SiteNode {
 public:
  /// `id` ∈ [0, N); the function is cloned (reference-anchored functions
  /// re-anchor on every kNewEstimate).
  SiteNode(int id, int num_sites, const MonitoredFunction& function,
           const RuntimeConfig& config, Transport* transport);

  /// Feeds this cycle's local measurements vector and runs the monitoring
  /// phase (sampling + local ball test); may emit kLocalViolation.
  void Observe(const Vector& local_vector);

  /// Handles a coordinator message (probe/state requests, new estimates,
  /// resolutions); may emit reports.
  void OnMessage(const RuntimeMessage& message);

  int id() const { return id_; }
  /// True when this site was included in the first trial this cycle.
  bool in_first_trial() const { return in_first_trial_; }
  long cycles_since_sync() const { return cycles_since_sync_; }

 private:
  double CurrentU() const;
  Vector Drift() const;

  int id_;
  int num_sites_;
  std::unique_ptr<MonitoredFunction> function_;
  RuntimeConfig config_;
  Transport* transport_;
  Rng rng_;

  Vector local_;         ///< v_i(t)
  Vector synced_local_;  ///< v_i(t_s)
  Vector e_;             ///< coordinator's last broadcast estimate
  double epsilon_t_ = 0.0;
  double inclusion_probability_ = 0.0;
  bool in_first_trial_ = false;
  long cycles_since_sync_ = 0;
  long mute_remaining_ = 0;
  bool initialized_ = false;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SITE_NODE_H_
