#ifndef SGM_RUNTIME_SITE_NODE_H_
#define SGM_RUNTIME_SITE_NODE_H_

#include <cstdint>
#include <memory>

#include "core/rng.h"
#include "functions/monitored_function.h"
#include "runtime/failure_detector.h"
#include "runtime/message.h"
#include "runtime/reliable_transport.h"
#include "runtime/socket_retry.h"
#include "runtime/transport.h"

namespace sgm {

struct Telemetry;
class Histogram;
class CheckpointStore;

/// Configuration shared by all nodes of one monitoring deployment.
struct RuntimeConfig {
  double threshold = 0.0;
  double delta = 0.1;
  /// Sampling trials per cycle (M of Lemma 2); ≥ 1 here (no auto mode —
  /// deployments pick M from estimators/sampling.h's NumTrials()).
  int num_trials = 1;
  /// Per-cycle drift-step bound (feeds the U policy, Example 3's pattern).
  double max_step_norm = 1.0;
  /// A-priori ‖Δv_i‖ cap (√2·window for sliding windows; +inf if unknown).
  double drift_norm_cap = 1e18;
  /// β of the U ≤ β·ε_T ceiling (see sim/protocol.h's CurrentU).
  double u_threshold_factor = 6.0;
  std::uint64_t seed = 99;

  // ── Reliability layer ──────────────────────────────────────────────────

  /// After a collection round in which *no* report survived (e.g. the very
  /// first request on a lossy network), the coordinator goes idle and
  /// retries the full sync this many cycles later.
  int empty_collection_retry_cycles = 1;
  /// After a degraded sync (stale last-known vectors folded in), a
  /// follow-up full sync re-establishes a consistent anchor this many
  /// cycles out, repeating until one completes cleanly.
  int degraded_resync_cycles = 5;
  /// Per-epoch collection deadline: when the transport goes quiescent with
  /// live-site reports still missing, the coordinator re-requests the
  /// stragglers (unicast, same epoch) at most this many times before
  /// completing the sync degraded.
  int max_sync_retries = 2;
  /// A quiet site transmits a standalone heartbeat after this many cycles
  /// without sending anything; liveness piggybacks on ordinary protocol
  /// traffic otherwise.
  int heartbeat_interval_cycles = 1;
  /// A rejoined site's fresh state re-enters the estimate via a scheduled
  /// full resync this many cycles after its rejoin handshake completes.
  int rejoin_resync_cycles = 2;

  /// Failure-detector thresholds (suspicion, death, flap quarantine).
  FailureDetectorConfig failure_detector;
  /// Ack/retransmit layer tuning (backoff, retry budget, jitter seed).
  ReliableTransportConfig reliability;
  /// Socket-runtime connection policy: bounded retry with seeded-jitter
  /// exponential backoff, shared by a site's first connect and every
  /// reconnect after a peer loss (see SiteClient). Irrelevant to the
  /// simulated transport.
  SocketRetryConfig socket_retry;

  // ── Crash consistency ──────────────────────────────────────────────────

  /// Optional checkpoint store (nullable, not owned): when set, the
  /// coordinator snapshots its full state every checkpoint_interval_cycles
  /// and write-ahead-logs every durable mutation in between, enabling
  /// CoordinatorNode::Recover() after a coordinator crash. Null disables
  /// checkpointing entirely (no serialization cost on any path).
  CheckpointStore* checkpoint_store = nullptr;
  /// Cycles between full snapshots; bounds WAL replay length on recovery.
  int checkpoint_interval_cycles = 25;
  /// After recovery reconciliation (re-anchoring grants), a full resync is
  /// scheduled this many cycles out so drift accumulated during the outage
  /// re-enters the estimate promptly.
  int recovery_resync_cycles = 2;

  // ── Observability ──────────────────────────────────────────────────────

  /// Optional telemetry context (nullable, not owned): metric registry plus
  /// structured trace, shared by every node of the deployment. Null keeps
  /// the hot paths free of any instrumentation cost, and telemetry never
  /// feeds back into protocol decisions either way.
  Telemetry* telemetry = nullptr;
  /// Head-based trace sampling rate in [0, 1]: the coordinator keeps each
  /// sync cascade's trace with this probability (seeded by `seed`, so the
  /// decisions replay), tagging unsampled cascades' span ids with
  /// kSpanUnsampledBit; span-less noise events sample per (actor, cycle) at
  /// the same rate. 1.0 records everything, byte-identical to the
  /// pre-sampling traces. Counters always count everything; the audit,
  /// alert and recovery planes are never sampled out.
  double trace_sample_rate = 1.0;
};

/// The bottom-tier participant of the SGM runtime: owns one local
/// measurements vector, performs its own sampling coin-flips and ball
/// tests, and speaks the RuntimeMessage protocol.
///
/// Unlike the simulator protocols (which hold all N vectors in one object
/// for experimentation), a SiteNode sees *only its own data* plus the
/// coordinator's broadcasts — this is the embeddable deployment shape.
///
/// Epoch fencing: the site tracks the highest coordinator epoch it has
/// seen. Messages from older epochs are dropped (counted, never applied).
/// A forward jump of more than one epoch means the site missed a whole
/// sync round — it un-anchors (suppresses monitoring, which would test
/// balls against a stale estimate), keeps answering full-state requests
/// (its raw v_i is always valid), and requests a rejoin; a kNewEstimate or
/// kRejoinGrant re-anchors it.
///
/// Usage per update cycle:
///   site.Observe(new_local_vector);   // after the local window slid
///   ... transport delivers; site.OnMessage(...) for each inbound ...
class SiteNode {
 public:
  /// `id` ∈ [0, N); the function is cloned (reference-anchored functions
  /// re-anchor on every kNewEstimate).
  SiteNode(int id, int num_sites, const MonitoredFunction& function,
           const RuntimeConfig& config, Transport* transport);

  /// Feeds this cycle's local measurements vector and runs the monitoring
  /// phase (sampling + local ball test); may emit kLocalViolation, or a
  /// kHeartbeat when the site has been quiet past the heartbeat interval.
  void Observe(const Vector& local_vector);

  /// Handles a coordinator message (probe/state requests, new estimates,
  /// resolutions, rejoin grants); may emit reports.
  void OnMessage(const RuntimeMessage& message);

  /// Notifies the node that its transport connection was torn down and
  /// re-established (socket runtime reconnect). While disconnected the
  /// coordinator may have advanced the epoch — or even restarted — without
  /// the site being able to observe the gap, so the node proactively drives
  /// the rejoin handshake: the coordinator checks the echoed epoch and
  /// re-anchors the site (estimate + ε_T + scheduled Δv resync) through the
  /// ordinary kRejoinGrant path. A no-op before first coordinator contact
  /// (the fresh kSiteHello covers that case).
  void OnTransportReconnect();

  int id() const { return id_; }
  /// True when this site was included in the first trial this cycle.
  bool in_first_trial() const { return in_first_trial_; }
  long cycles_since_sync() const { return cycles_since_sync_; }

  /// Highest coordinator epoch this site has observed.
  std::int64_t epoch() const { return epoch_; }
  /// True when the site holds a current anchor (estimate + baseline) and is
  /// participating in monitoring; false while it awaits a rejoin/resync.
  bool anchored() const { return anchored_ && initialized_; }
  const Vector& estimate() const { return e_; }

  /// Epoch-fencing audit counters (dst_stress invariants), snapshotted as
  /// one struct so invariant checks read a coherent view.
  struct AuditStats {
    long stale_epoch_drops = 0;
    /// Number of stale-epoch messages that reached an apply path — must
    /// stay zero; the fence increments the drop counter instead. A nonzero
    /// value is a protocol bug surfaced by the "no stale-epoch message
    /// applied" invariant.
    long stale_epoch_applied = 0;
    long heartbeats_sent = 0;
    long rejoin_requests_sent = 0;
  };
  AuditStats audit() const { return audit_; }

 private:
  double CurrentU() const;
  Vector Drift() const;
  void SendToCoordinator(RuntimeMessage message);
  void SendHeartbeatIfDue();
  void RequestRejoin();
  /// Applies a full anchor (estimate + ε_T + epoch): kNewEstimate and
  /// kRejoinGrant share this path; `source` labels the anchor_applied
  /// trace event with which one it was.
  void ApplyAnchor(const RuntimeMessage& message, const char* source);

  int id_;
  int num_sites_;
  std::unique_ptr<MonitoredFunction> function_;
  RuntimeConfig config_;
  Transport* transport_;
  Telemetry* telemetry_;
  /// Cached `site.ball_test_ns` histogram; nullptr when telemetry is off,
  /// which disables the profiling scope entirely (no clock reads).
  Histogram* ball_test_ns_ = nullptr;
  Rng rng_;

  Vector local_;         ///< v_i(t)
  Vector synced_local_;  ///< v_i(t_s)
  Vector e_;             ///< coordinator's last broadcast estimate
  double epsilon_t_ = 0.0;
  double inclusion_probability_ = 0.0;
  bool in_first_trial_ = false;
  long cycles_since_sync_ = 0;
  long mute_remaining_ = 0;
  bool initialized_ = false;

  std::int64_t epoch_ = 0;
  bool anchored_ = false;
  long cycles_since_sent_ = 0;
  bool rejoin_requested_ = false;  ///< one outstanding request at a time

  AuditStats audit_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SITE_NODE_H_
