#ifndef SGM_RUNTIME_SOCKET_RETRY_H_
#define SGM_RUNTIME_SOCKET_RETRY_H_

#include <algorithm>
#include <cstdint>

namespace sgm {

/// Bounded-retry / jittered-backoff policy for TCP connection establishment.
///
/// One policy serves both the first connect (the coordinator may not be
/// listening yet — start order must not matter) and every reconnect after a
/// peer loss (the coordinator may be mid-restart). The jitter is seeded and
/// deterministic per site, so a fleet of reconnecting site processes does
/// not stampede the freshly restarted coordinator in lockstep, yet a replay
/// of the same deployment seeds reproduces the same retry schedule.
struct SocketRetryConfig {
  /// Connection attempts before giving up (≥ 1). The overall give-up
  /// horizon is the sum of the backoff series, ≈ attempts · max_backoff_ms
  /// once the exponential curve saturates.
  int max_attempts = 60;
  /// Delay after the first failed attempt; doubles per attempt.
  long base_backoff_ms = 5;
  /// Exponential ceiling. With the defaults the budget is a little over
  /// 20 s — enough for a coordinator restart-from-checkpoint.
  long max_backoff_ms = 500;
  /// Seed of the jitter stream (salted with the site id by the caller so
  /// sites decorrelate). Jitter draws uniformly from [delay/2, delay].
  std::uint64_t jitter_seed = 17;
};

/// The deterministic jitter stream: a splitmix64 step over `state`. Kept as
/// a tiny free function (rather than core/rng.h's Rng) so the header stays
/// dependency-free for both socket_transport.h and site_node.h.
inline std::uint64_t SocketRetryNextRandom(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Backoff before retry number `attempt` (1-based: the delay after the
/// attempt-th failure): exponential in the attempt, capped, then jittered
/// into [delay/2, delay]. Pure given (config, attempt, *state).
inline long SocketRetryDelayMs(const SocketRetryConfig& config, int attempt,
                               std::uint64_t* state) {
  long delay = config.base_backoff_ms;
  for (int i = 1; i < attempt && delay < config.max_backoff_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config.max_backoff_ms);
  if (delay <= 1) return delay;
  const long half = delay / 2;
  return half + static_cast<long>(SocketRetryNextRandom(state) %
                                  static_cast<std::uint64_t>(delay - half + 1));
}

}  // namespace sgm

#endif  // SGM_RUNTIME_SOCKET_RETRY_H_
