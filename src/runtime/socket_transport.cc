#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sgm {

void FrameReader::Append(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) return;
  // Compact lazily: once the consumed prefix dominates the buffer, slide
  // the live suffix down instead of growing without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameReader::Reset() {
  buffer_.clear();
  pos_ = 0;
  poisoned_ = false;
}

FrameReader::Result FrameReader::NextFrame(std::vector<std::uint8_t>* frame) {
  if (poisoned_) return Result::kOversized;
  const std::size_t available = buffer_.size() - pos_;
  if (available < sizeof(std::uint32_t)) return Result::kNeedMore;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + pos_, sizeof(length));
  if (length > kMaxFrameBytes) {
    poisoned_ = true;
    return Result::kOversized;
  }
  if (available < sizeof(length) + length) return Result::kNeedMore;
  const std::uint8_t* begin = buffer_.data() + pos_ + sizeof(length);
  frame->assign(begin, begin + length);
  pos_ += sizeof(length) + length;
  return Result::kFrame;
}

bool DrainDecodedFrames(FrameReader* reader, std::vector<RuntimeMessage>* out,
                        FrameStats* stats) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    switch (reader->NextFrame(&frame)) {
      case FrameReader::Result::kNeedMore:
        return true;
      case FrameReader::Result::kOversized:
        ++stats->oversized;
        return false;
      case FrameReader::Result::kFrame: {
        Result<RuntimeMessage> decoded = DecodeMessage(frame);
        if (decoded.ok()) {
          ++stats->frames;
          out->push_back(std::move(decoded).ValueOrDie());
        } else {
          ++stats->corrupt;
        }
        break;
      }
    }
  }
}

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// One non-blocking-in-spirit connection attempt (connect() on loopback
/// either succeeds or fails immediately). Returns the fd or -1.
int TryConnectOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    SetNoDelay(fd);
    return fd;
  }
  ::close(fd);
  return -1;
}

}  // namespace

int ListenTcpLoopback(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int ConnectTcpLoopback(int port, long timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = TryConnectOnce(port);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    // The server may still be between bind() and accept(); back off briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int ConnectTcpLoopbackWithRetry(int port, const SocketRetryConfig& retry,
                                std::uint64_t* jitter_state) {
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    const int fd = TryConnectOnce(port);
    if (fd >= 0) return fd;
    if (attempt == retry.max_attempts) break;
    const long delay = SocketRetryDelayMs(retry, attempt, jitter_state);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return -1;
}

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              long* short_writes) {
  std::size_t written = 0;
  int send_calls = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    ++send_calls;
    written += static_cast<std::size_t>(n);
  }
  if (short_writes != nullptr && send_calls > 1) ++*short_writes;
  return true;
}

SocketTransport::~SocketTransport() { StopAsyncWriter(0); }

void SocketTransport::RegisterPeer(int peer, int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_fds_[peer] = fd;
  // A re-registered peer (reconnect) must not inherit the dead session's
  // backlog: those bytes belong to a stream the receiver has abandoned.
  queues_.erase(peer);
}

void SocketTransport::UnregisterPeer(int peer) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_fds_.erase(peer);
  queues_.erase(peer);
}

bool SocketTransport::HasPeer(int peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peer_fds_.count(peer) > 0;
}

void SocketTransport::WriteFrame(int peer, int fd,
                                 const std::vector<std::uint8_t>& frame) {
  if (WriteAll(fd, frame.data(), frame.size(), &short_writes_)) {
    ++transport_messages_sent_;
    transport_bytes_sent_ += static_cast<double>(frame.size());
  } else {
    // A write error on loopback TCP means the peer is gone, not that bytes
    // were lost in transit. Drop the mapping; the reliability layer's
    // give-up machinery turns the silence into a dead-link verdict.
    ++send_failures_;
    peer_fds_.erase(peer);
  }
}

void SocketTransport::DropPeerLocked(int peer) {
  peer_fds_.erase(peer);
  queues_.erase(peer);
}

void SocketTransport::EnqueueFrame(int peer,
                                   const std::vector<std::uint8_t>& frame) {
  PeerQueue& queue = queues_[peer];
  if (queue.frames.size() >= max_queue_frames_) {
    // The peer has not drained a full queue's worth of frames: it is
    // stalled. Dropping it (not blocking) is the whole point of this path —
    // the reliability layer's give-up horizon turns the silence into the
    // same dead-link verdict a write error yields.
    ++send_queue_drops_;
    ++send_failures_;
    DropPeerLocked(peer);
    return;
  }
  queue.frames.push_back(frame);
  writer_cv_.notify_one();
}

long SocketTransport::QueueDepthLocked() const {
  long depth = 0;
  for (const auto& [peer, queue] : queues_) {
    depth += static_cast<long>(queue.frames.size());
  }
  return depth;
}

void SocketTransport::EnableAsyncWriter(std::size_t max_queue_frames) {
  std::lock_guard<std::mutex> lock(mu_);
  if (async_) return;
  async_ = true;
  writer_stop_ = false;
  max_queue_frames_ = max_queue_frames > 0 ? max_queue_frames : 1;
  writer_ = std::thread([this] { WriterLoop(); });
}

void SocketTransport::StopAsyncWriter(long flush_deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!async_) return;
  }
  // Bounded flush: give the writer a window to put the tail (kShutdown
  // broadcasts, final acks) on the wire, but never let one stalled peer's
  // EAGAIN hold process exit hostage.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(flush_deadline_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (QueueDepthLocked() == 0) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_stop_ = true;
    async_ = false;
    writer_cv_.notify_one();
  }
  if (writer_.joinable()) writer_.join();
  std::lock_guard<std::mutex> lock(mu_);
  queues_.clear();
}

void SocketTransport::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (writer_stop_) return;
    bool progressed = false;
    bool backlog = false;
    for (auto it = queues_.begin(); it != queues_.end();) {
      PeerQueue& queue = it->second;
      if (queue.frames.empty()) {
        ++it;
        continue;
      }
      const auto fd_it = peer_fds_.find(it->first);
      if (fd_it == peer_fds_.end()) {
        // The peer was dropped elsewhere (reader EOF); its backlog is dead.
        it = queues_.erase(it);
        continue;
      }
      const int peer = it->first;
      const int fd = fd_it->second;
      bool drop = false;
      // Drain this peer until its queue empties or its buffer fills.
      // MSG_DONTWAIT never blocks, so holding mu_ through the send is safe.
      while (!queue.frames.empty()) {
        const std::vector<std::uint8_t>& head = queue.frames.front();
        const ssize_t n = ::send(fd, head.data() + queue.head_offset,
                                 head.size() - queue.head_offset,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // peer full
          drop = true;
          break;
        }
        queue.head_offset += static_cast<std::size_t>(n);
        progressed = true;
        if (queue.head_offset < head.size()) {
          // Partial write: the kernel buffer filled mid-frame. Resume at
          // the offset on the next pass and count the completion as short.
          ++short_writes_;
          break;
        }
        ++transport_messages_sent_;
        transport_bytes_sent_ += static_cast<double>(head.size());
        queue.frames.pop_front();
        queue.head_offset = 0;
      }
      if (drop) {
        ++send_failures_;
        DropPeerLocked(peer);
        it = queues_.begin();  // DropPeerLocked invalidated the iterator
        continue;
      }
      if (!queue.frames.empty()) backlog = true;
      ++it;
    }
    if (backlog && !progressed) {
      // Every pending peer is EAGAIN-blocked: yield briefly instead of
      // spinning, re-checking soon in case a buffer drained.
      writer_cv_.wait_for(lock, std::chrono::milliseconds(1));
    } else if (!backlog) {
      writer_cv_.wait(lock, [this] {
        return writer_stop_ || QueueDepthLocked() > 0;
      });
    }
  }
}

void SocketTransport::Send(const RuntimeMessage& message) {
  std::vector<std::uint8_t> encoded = EncodeMessage(message);
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof(std::uint32_t) + encoded.size());
  const std::uint32_t length = static_cast<std::uint32_t>(encoded.size());
  frame.resize(sizeof(length));
  std::memcpy(frame.data(), &length, sizeof(length));
  frame.insert(frame.end(), encoded.begin(), encoded.end());

  std::lock_guard<std::mutex> lock(mu_);
  if (message.counts_as_protocol_traffic()) {
    ++messages_sent_;
    if (message.from != kCoordinatorId) ++site_messages_sent_;
    bytes_sent_ += WireBytes(message);
  }
  if (!message.is_session_control() &&
      message.type != RuntimeMessage::Type::kAck) {
    // Anything the receiver might answer (requests, reports, grants, even
    // retransmissions of them) — the barrier loop watches this counter.
    ++data_frames_sent_;
  }
  if (message.to == kBroadcastId) {
    for (auto it = peer_fds_.begin(); it != peer_fds_.end();) {
      // WriteFrame/EnqueueFrame may erase the peer on failure; advance
      // first.
      const auto current = it++;
      if (current->first == kCoordinatorId) continue;  // sites only
      if (async_) {
        EnqueueFrame(current->first, frame);
      } else {
        WriteFrame(current->first, current->second, frame);
      }
    }
    return;
  }
  const auto it = peer_fds_.find(message.to);
  if (it == peer_fds_.end()) {
    ++send_failures_;
    return;
  }
  if (async_) {
    EnqueueFrame(it->first, frame);
  } else {
    WriteFrame(it->first, it->second, frame);
  }
}

long SocketTransport::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_sent_;
}

long SocketTransport::site_messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_messages_sent_;
}

double SocketTransport::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

long SocketTransport::transport_messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_messages_sent_;
}

double SocketTransport::transport_bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_bytes_sent_;
}

long SocketTransport::data_frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_frames_sent_;
}

long SocketTransport::send_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_failures_;
}

long SocketTransport::short_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_writes_;
}

long SocketTransport::send_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return QueueDepthLocked();
}

long SocketTransport::send_queue_drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_queue_drops_;
}

}  // namespace sgm
