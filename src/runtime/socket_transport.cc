#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sgm {

void FrameReader::Append(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) return;
  // Compact lazily: once the consumed prefix dominates the buffer, slide
  // the live suffix down instead of growing without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameReader::Reset() {
  buffer_.clear();
  pos_ = 0;
  poisoned_ = false;
}

FrameReader::Result FrameReader::NextFrame(std::vector<std::uint8_t>* frame) {
  if (poisoned_) return Result::kOversized;
  const std::size_t available = buffer_.size() - pos_;
  if (available < sizeof(std::uint32_t)) return Result::kNeedMore;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + pos_, sizeof(length));
  if (length > kMaxFrameBytes) {
    poisoned_ = true;
    return Result::kOversized;
  }
  if (available < sizeof(length) + length) return Result::kNeedMore;
  const std::uint8_t* begin = buffer_.data() + pos_ + sizeof(length);
  frame->assign(begin, begin + length);
  pos_ += sizeof(length) + length;
  return Result::kFrame;
}

bool DrainDecodedFrames(FrameReader* reader, std::vector<RuntimeMessage>* out,
                        FrameStats* stats) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    switch (reader->NextFrame(&frame)) {
      case FrameReader::Result::kNeedMore:
        return true;
      case FrameReader::Result::kOversized:
        ++stats->oversized;
        return false;
      case FrameReader::Result::kFrame: {
        Result<RuntimeMessage> decoded = DecodeMessage(frame);
        if (decoded.ok()) {
          ++stats->frames;
          out->push_back(std::move(decoded).ValueOrDie());
        } else {
          ++stats->corrupt;
        }
        break;
      }
    }
  }
}

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// One non-blocking-in-spirit connection attempt (connect() on loopback
/// either succeeds or fails immediately). Returns the fd or -1.
int TryConnectOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    SetNoDelay(fd);
    return fd;
  }
  ::close(fd);
  return -1;
}

}  // namespace

int ListenTcpLoopback(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int ConnectTcpLoopback(int port, long timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = TryConnectOnce(port);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    // The server may still be between bind() and accept(); back off briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int ConnectTcpLoopbackWithRetry(int port, const SocketRetryConfig& retry,
                                std::uint64_t* jitter_state) {
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    const int fd = TryConnectOnce(port);
    if (fd >= 0) return fd;
    if (attempt == retry.max_attempts) break;
    const long delay = SocketRetryDelayMs(retry, attempt, jitter_state);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return -1;
}

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void SocketTransport::RegisterPeer(int peer, int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_fds_[peer] = fd;
}

void SocketTransport::UnregisterPeer(int peer) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_fds_.erase(peer);
}

bool SocketTransport::HasPeer(int peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peer_fds_.count(peer) > 0;
}

void SocketTransport::WriteFrame(int peer, int fd,
                                 const std::vector<std::uint8_t>& frame) {
  if (WriteAll(fd, frame.data(), frame.size())) {
    ++transport_messages_sent_;
    transport_bytes_sent_ += static_cast<double>(frame.size());
  } else {
    // A write error on loopback TCP means the peer is gone, not that bytes
    // were lost in transit. Drop the mapping; the reliability layer's
    // give-up machinery turns the silence into a dead-link verdict.
    ++send_failures_;
    peer_fds_.erase(peer);
  }
}

void SocketTransport::Send(const RuntimeMessage& message) {
  std::vector<std::uint8_t> encoded = EncodeMessage(message);
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof(std::uint32_t) + encoded.size());
  const std::uint32_t length = static_cast<std::uint32_t>(encoded.size());
  frame.resize(sizeof(length));
  std::memcpy(frame.data(), &length, sizeof(length));
  frame.insert(frame.end(), encoded.begin(), encoded.end());

  std::lock_guard<std::mutex> lock(mu_);
  if (message.counts_as_protocol_traffic()) {
    ++messages_sent_;
    if (message.from != kCoordinatorId) ++site_messages_sent_;
    bytes_sent_ += WireBytes(message);
  }
  if (!message.is_session_control() &&
      message.type != RuntimeMessage::Type::kAck) {
    // Anything the receiver might answer (requests, reports, grants, even
    // retransmissions of them) — the barrier loop watches this counter.
    ++data_frames_sent_;
  }
  if (message.to == kBroadcastId) {
    for (auto it = peer_fds_.begin(); it != peer_fds_.end();) {
      // WriteFrame may erase the peer on failure; advance first.
      const auto current = it++;
      if (current->first == kCoordinatorId) continue;  // sites only
      WriteFrame(current->first, current->second, frame);
    }
    return;
  }
  const auto it = peer_fds_.find(message.to);
  if (it == peer_fds_.end()) {
    ++send_failures_;
    return;
  }
  WriteFrame(it->first, it->second, frame);
}

long SocketTransport::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_sent_;
}

long SocketTransport::site_messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_messages_sent_;
}

double SocketTransport::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

long SocketTransport::transport_messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_messages_sent_;
}

double SocketTransport::transport_bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_bytes_sent_;
}

long SocketTransport::data_frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_frames_sent_;
}

long SocketTransport::send_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_failures_;
}

}  // namespace sgm
