#ifndef SGM_RUNTIME_SOCKET_TRANSPORT_H_
#define SGM_RUNTIME_SOCKET_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/serialization.h"
#include "runtime/socket_retry.h"
#include "runtime/transport.h"

namespace sgm {

/// Hard cap on one length-prefixed frame: the fixed v4 header (59 bytes,
/// rounded up) plus the largest payload the wire format itself accepts.
/// Anything above this in a length prefix is a corrupted or hostile stream,
/// not a big message — the reader poisons the connection instead of
/// allocating gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes =
    64 + 8 * kMaxWireDimension;

/// Incremental splitter of a TCP byte stream into length-prefixed frames.
///
/// The socket runtime sends each EncodeMessage() frame preceded by a u32
/// little-endian byte count. TCP delivers an arbitrary re-segmentation of
/// that stream; Append() takes whatever recv() produced and NextFrame()
/// yields complete frames as they close, holding partial bytes across
/// calls. A length prefix above kMaxFrameBytes poisons the reader
/// permanently (resynchronizing an untrusted stream is hopeless — the
/// connection must be dropped).
class FrameReader {
 public:
  enum class Result {
    kFrame,      ///< *frame holds one complete encoded message
    kNeedMore,   ///< the buffered bytes end mid-prefix or mid-frame
    kOversized,  ///< poisoned: a prefix exceeded kMaxFrameBytes
  };

  void Append(const std::uint8_t* data, std::size_t size);
  Result NextFrame(std::vector<std::uint8_t>* frame);

  /// Discards all buffered bytes and clears the poison flag. Call when the
  /// underlying connection is replaced: the tail of the old byte stream
  /// (possibly a partial frame the peer died in the middle of) must never
  /// be spliced onto the first bytes of the new one.
  void Reset();

  bool poisoned() const { return poisoned_; }
  std::size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool poisoned_ = false;
};

/// Per-connection framing/decoding counters.
struct FrameStats {
  long frames = 0;     ///< complete frames that decoded cleanly
  long corrupt = 0;    ///< frames rejected by DecodeMessage (CRC, bounds)
  long oversized = 0;  ///< oversized-prefix events (0 or 1; poisons)
};

/// Pulls every complete frame out of `reader`, decodes it, and appends the
/// survivors to `out`. A frame DecodeMessage rejects (checksum mismatch,
/// bad type, truncation) is counted and skipped — the length prefix keeps
/// the stream in sync, so one corrupt frame never takes the connection
/// down. Returns false when the reader is poisoned by an oversized prefix,
/// after which the caller must drop the connection.
bool DrainDecodedFrames(FrameReader* reader, std::vector<RuntimeMessage>* out,
                        FrameStats* stats);

// ── POSIX loopback helpers ─────────────────────────────────────────────────

/// Creates a listening TCP socket bound to 127.0.0.1:`port` (0 picks an
/// ephemeral port). Returns the fd, or -1 on failure; *bound_port receives
/// the actual port.
int ListenTcpLoopback(int port, int* bound_port);

/// Connects to 127.0.0.1:`port`, retrying with short sleeps until
/// `timeout_ms` elapses (the server may not have reached accept() yet).
/// Returns the connected fd with TCP_NODELAY set, or -1.
int ConnectTcpLoopback(int port, long timeout_ms);

/// Connects to 127.0.0.1:`port` under a bounded-retry policy: up to
/// `retry.max_attempts` attempts separated by seeded-jitter exponential
/// backoff (see SocketRetryConfig). The same policy serves the first
/// connect and every reconnect, replacing one-shot fixed timeouts that
/// failed spuriously in CI under load. `jitter_state` carries the jitter
/// stream across calls (seed it from retry.jitter_seed salted per caller).
/// Returns the connected fd with TCP_NODELAY set, or -1 after the budget
/// is exhausted.
int ConnectTcpLoopbackWithRetry(int port, const SocketRetryConfig& retry,
                                std::uint64_t* jitter_state);

/// Writes the whole buffer, looping over short writes and EINTR. Uses
/// send(MSG_NOSIGNAL) so a vanished peer yields EPIPE instead of SIGPIPE.
/// Returns false on any terminal error. When `short_writes` is non-null it
/// is incremented once per call that needed more than one send() to
/// complete (a short-write completion — the kernel buffer was momentarily
/// full but the peer kept draining).
bool WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              long* short_writes = nullptr);

/// Transport implementation over connected TCP sockets: Send() encodes the
/// message (wire format v4), prepends the u32 length prefix, and writes it
/// to the destination's fd — synchronously, on the caller's thread, so a
/// node's responses are on the wire before it processes its next inbound
/// frame (the FIFO ordering the coordinator's flush barrier relies on).
///
/// EnableAsyncWriter() switches the instance into the coordinator's
/// non-blocking outbound mode: Send() enqueues the framed bytes onto a
/// bounded per-peer queue and a single writer thread drains the queues with
/// MSG_DONTWAIT, so one stalled peer (full TCP buffer) backs up only its
/// own queue — never the accept, reader or cycle threads. Per-fd FIFO is
/// preserved (one writer, one deque per peer); a queue overflow drops the
/// peer exactly like a write error would, handing the silence to the
/// reliability layer's give-up machinery. The site tier stays synchronous:
/// its barrier-ack FIFO contract depends on inline sends.
///
/// Topology is a peer map filled by the session layer: the coordinator
/// registers every site's accepted connection under its hello'd site id;
/// a site registers its single connection under kCoordinatorId. Broadcast
/// writes the same frame to every registered site fd but is accounted once,
/// matching the paper's broadcast cost model and InMemoryBus.
///
/// Thread-safe: one internal mutex guards the peer map, the counters and
/// the write path (frames from concurrent senders never interleave
/// mid-frame on one fd). A failed write counts in send_failures and drops
/// the peer — TCP cannot lose bytes on a healthy connection, so a write
/// error means the peer is gone; the reliability layer above owns retries
/// and the failure verdict.
///
/// Accounting families mirror InMemoryBus:
///  * paper-comparable (messages_sent / site_messages_sent / bytes_sent):
///    original protocol data only, WireBytes() cost model, broadcast = 1.
///  * transport totals (transport_messages_sent / transport_bytes_sent):
///    frames actually written per fd, actual encoded bytes + 4-byte prefix.
///  * data_frames_sent: logical sends that can make the *receiver* talk
///    back — everything except transport acks and session control. The
///    coordinator's barrier loop snapshots this to detect induced traffic.
class SocketTransport final : public Transport {
 public:
  ~SocketTransport() override;

  /// Maps `peer` (site id, or kCoordinatorId) to a connected fd. The fd is
  /// not owned — the session layer closes it.
  void RegisterPeer(int peer, int fd);
  void UnregisterPeer(int peer);
  bool HasPeer(int peer) const;

  void Send(const RuntimeMessage& message) override;

  /// Switches to the non-blocking outbound path: spawns the writer thread
  /// and bounds every peer's queue at `max_queue_frames` frames (≥ 1). Call
  /// once, before any concurrent Send(). Paper/data-frame accounting moves
  /// to enqueue time (the logical send); transport totals stay at write
  /// time (bytes actually on the wire).
  void EnableAsyncWriter(std::size_t max_queue_frames);

  /// Drains the queues for up to `flush_deadline_ms` (a stalled peer's
  /// EAGAIN cannot hold shutdown hostage), then stops and joins the writer
  /// thread. Undrained frames are discarded. No-op when the writer was
  /// never enabled; called by the destructor as a backstop.
  void StopAsyncWriter(long flush_deadline_ms);

  long messages_sent() const;
  long site_messages_sent() const;
  double bytes_sent() const;
  long transport_messages_sent() const;
  double transport_bytes_sent() const;
  long data_frames_sent() const;
  long send_failures() const;
  /// Frames whose write needed more than one send() call (short-write
  /// completions; counted on both the sync and async paths).
  long short_writes() const;
  /// Frames currently queued across all peers (0 on the sync path).
  long send_queue_depth() const;
  /// Peers dropped because their bounded queue overflowed.
  long send_queue_drops() const;

 private:
  /// One peer's outbound backlog. `head_offset` is the already-written
  /// prefix of the head frame (a partial MSG_DONTWAIT write resumes there).
  struct PeerQueue {
    std::deque<std::vector<std::uint8_t>> frames;
    std::size_t head_offset = 0;
  };

  /// Writes one framed message to `fd`; on failure drops `peer`. Caller
  /// holds mu_.
  void WriteFrame(int peer, int fd, const std::vector<std::uint8_t>& frame);
  /// Enqueues onto `peer`'s bounded queue; overflow drops the peer. Caller
  /// holds mu_.
  void EnqueueFrame(int peer, const std::vector<std::uint8_t>& frame);
  /// Drops `peer` and purges its queue. Caller holds mu_.
  void DropPeerLocked(int peer);
  /// The writer thread: drains queues with MSG_DONTWAIT until stopped.
  void WriterLoop();
  long QueueDepthLocked() const;

  mutable std::mutex mu_;
  std::map<int, int> peer_fds_;
  long messages_sent_ = 0;
  long site_messages_sent_ = 0;
  double bytes_sent_ = 0.0;
  long transport_messages_sent_ = 0;
  double transport_bytes_sent_ = 0.0;
  long data_frames_sent_ = 0;
  long send_failures_ = 0;
  long short_writes_ = 0;
  long send_queue_drops_ = 0;

  // Async-writer state (inert until EnableAsyncWriter).
  bool async_ = false;
  std::size_t max_queue_frames_ = 0;
  std::map<int, PeerQueue> queues_;
  std::condition_variable writer_cv_;
  bool writer_stop_ = false;
  std::thread writer_;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_SOCKET_TRANSPORT_H_
