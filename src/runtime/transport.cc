#include "runtime/transport.h"

#include "core/check.h"

namespace sgm {

const char* RuntimeMessage::TypeName(Type type) {
  switch (type) {
    case Type::kLocalViolation:
      return "LocalViolation";
    case Type::kProbeRequest:
      return "ProbeRequest";
    case Type::kDriftReport:
      return "DriftReport";
    case Type::kResolved:
      return "Resolved";
    case Type::kFullStateRequest:
      return "FullStateRequest";
    case Type::kStateReport:
      return "StateReport";
    case Type::kNewEstimate:
      return "NewEstimate";
  }
  return "Unknown";
}

void InMemoryBus::Send(const RuntimeMessage& message) {
  queue_.push_back(message);
  ++messages_sent_;
  if (message.from != kCoordinatorId) ++site_messages_sent_;
  bytes_sent_ += 16.0 + 8.0 * static_cast<double>(message.PayloadDoubles());
}

RuntimeMessage InMemoryBus::Pop() {
  SGM_CHECK(!queue_.empty());
  RuntimeMessage message = queue_.front();
  queue_.pop_front();
  return message;
}

}  // namespace sgm
