#include "runtime/transport.h"

#include "core/check.h"

namespace sgm {

const char* RuntimeMessage::TypeName(Type type) {
  switch (type) {
    case Type::kLocalViolation:
      return "LocalViolation";
    case Type::kProbeRequest:
      return "ProbeRequest";
    case Type::kDriftReport:
      return "DriftReport";
    case Type::kResolved:
      return "Resolved";
    case Type::kFullStateRequest:
      return "FullStateRequest";
    case Type::kStateReport:
      return "StateReport";
    case Type::kNewEstimate:
      return "NewEstimate";
    case Type::kAck:
      return "Ack";
    case Type::kHeartbeat:
      return "Heartbeat";
    case Type::kRejoinRequest:
      return "RejoinRequest";
    case Type::kRejoinGrant:
      return "RejoinGrant";
    case Type::kSiteHello:
      return "SiteHello";
    case Type::kCycleBegin:
      return "CycleBegin";
    case Type::kBarrier:
      return "Barrier";
    case Type::kBarrierAck:
      return "BarrierAck";
    case Type::kShutdown:
      return "Shutdown";
  }
  return "Unknown";
}

void InMemoryBus::Send(const RuntimeMessage& message) {
  queue_.push_back(message);
  const double bytes = WireBytes(message);
  ++transport_messages_sent_;
  transport_bytes_sent_ += bytes;
  if (message.counts_as_protocol_traffic()) {
    ++messages_sent_;
    if (message.from != kCoordinatorId) ++site_messages_sent_;
    bytes_sent_ += bytes;
  }
}

RuntimeMessage InMemoryBus::Pop() {
  SGM_CHECK(!queue_.empty());
  RuntimeMessage message = queue_.front();
  queue_.pop_front();
  return message;
}

}  // namespace sgm
