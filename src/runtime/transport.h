#ifndef SGM_RUNTIME_TRANSPORT_H_
#define SGM_RUNTIME_TRANSPORT_H_

#include <deque>
#include <functional>

#include "runtime/message.h"

namespace sgm {

/// Message-delivery abstraction of the runtime: implementations route
/// RuntimeMessages between the coordinator and sites. The library ships an
/// in-memory bus; deployments substitute sockets/RPC.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues a message for delivery. `to == kBroadcastId` fans out to all
  /// sites but is accounted as a single transmission (the broadcast cost
  /// model of the paper).
  virtual void Send(const RuntimeMessage& message) = 0;
};

/// Wire cost of one message: 16-byte header + 8 bytes per payload double
/// (the accounting convention shared with sim::Metrics).
inline double WireBytes(const RuntimeMessage& message) {
  return 16.0 + 8.0 * static_cast<double>(message.PayloadDoubles());
}

/// Deterministic in-memory bus: FIFO queue drained by the runtime driver.
///
/// Two accounting families, both cumulative and sender-side:
///  * paper-comparable (`messages_sent` / `site_messages_sent` /
///    `bytes_sent`) — original protocol data messages only, matching the
///    cost model of sim::Metrics. Retransmissions and reliability-layer
///    control traffic (acks, heartbeats, rejoin handshake) are excluded so
///    the reproduced figures stay comparable to the paper's.
///  * transport totals (`transport_messages_sent` / `transport_bytes_sent`)
///    — every transmission that hit the wire, retransmissions and control
///    messages included. This is what a deployment's NIC would see.
class InMemoryBus final : public Transport {
 public:
  void Send(const RuntimeMessage& message) override;

  bool empty() const { return queue_.empty(); }
  /// Pops the oldest undelivered message.
  RuntimeMessage Pop();

  long messages_sent() const { return messages_sent_; }
  long site_messages_sent() const { return site_messages_sent_; }
  double bytes_sent() const { return bytes_sent_; }

  long transport_messages_sent() const { return transport_messages_sent_; }
  double transport_bytes_sent() const { return transport_bytes_sent_; }

 private:
  std::deque<RuntimeMessage> queue_;
  long messages_sent_ = 0;
  long site_messages_sent_ = 0;
  double bytes_sent_ = 0.0;
  long transport_messages_sent_ = 0;
  double transport_bytes_sent_ = 0.0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_TRANSPORT_H_
