#ifndef SGM_RUNTIME_TRANSPORT_H_
#define SGM_RUNTIME_TRANSPORT_H_

#include <deque>
#include <functional>

#include "runtime/message.h"

namespace sgm {

/// Message-delivery abstraction of the runtime: implementations route
/// RuntimeMessages between the coordinator and sites. The library ships an
/// in-memory bus; deployments substitute sockets/RPC.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues a message for delivery. `to == kBroadcastId` fans out to all
  /// sites but is accounted as a single transmission (the broadcast cost
  /// model of the paper).
  virtual void Send(const RuntimeMessage& message) = 0;
};

/// Deterministic in-memory bus: FIFO queue drained by the runtime driver.
/// Tracks the same message/byte accounting conventions as sim::Metrics.
class InMemoryBus final : public Transport {
 public:
  void Send(const RuntimeMessage& message) override;

  bool empty() const { return queue_.empty(); }
  /// Pops the oldest undelivered message.
  RuntimeMessage Pop();

  long messages_sent() const { return messages_sent_; }
  long site_messages_sent() const { return site_messages_sent_; }
  double bytes_sent() const { return bytes_sent_; }

 private:
  std::deque<RuntimeMessage> queue_;
  long messages_sent_ = 0;
  long site_messages_sent_ = 0;
  double bytes_sent_ = 0.0;
};

}  // namespace sgm

#endif  // SGM_RUNTIME_TRANSPORT_H_
