#include "sim/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/check.h"

namespace sgm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SGM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SGM_CHECK_MSG(cells.size() == headers_.size(),
                "row has %zu cells, table has %zu columns", cells.size(),
                headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string TablePrinter::Int(long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", value);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ", static_cast<int>(widths[c]),
                  cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

double BenchScale() {
  const char* env = std::getenv("SGM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

long ScaledCycles(long base) {
  return std::max<long>(1, std::lround(static_cast<double>(base) *
                                       BenchScale()));
}

void PrintBanner(const std::string& title, const std::string& detail) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!detail.empty()) std::printf("%s\n", detail.c_str());
}

}  // namespace sgm
