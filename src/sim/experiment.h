#ifndef SGM_SIM_EXPERIMENT_H_
#define SGM_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

namespace sgm {

/// Fixed-width console table used by all bench binaries so the reproduced
/// figures/tables print as aligned, diff-friendly rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Formats helpers for uniform numeric rendering.
  static std::string Num(double value, int precision = 3);
  static std::string Int(long value);

  /// Prints the table (headers, separator, rows) to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Global scale factor for experiment sizes, read from the SGM_BENCH_SCALE
/// environment variable (default 1.0). Benches multiply their cycle counts
/// by this, so `SGM_BENCH_SCALE=4` runs paper-scale streams while the
/// default keeps the full suite fast on one core.
double BenchScale();

/// max(1, round(base * BenchScale())) convenience.
long ScaledCycles(long base);

/// Prints a figure/table banner ("== Figure 10(a) ... ==").
void PrintBanner(const std::string& title, const std::string& detail);

}  // namespace sgm

#endif  // SGM_SIM_EXPERIMENT_H_
