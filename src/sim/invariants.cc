#include "sim/invariants.h"

#include <cmath>
#include <sstream>

#include "core/check.h"

namespace sgm {

InvariantChecker::InvariantChecker(const InvariantOptions& options)
    : options_(options) {
  SGM_CHECK(options.zone_epsilon >= 0.0);
  SGM_CHECK(options.max_out_of_zone_run >= 0);
}

void InvariantChecker::Add(const std::string& invariant, long cycle,
                           std::string details) {
  violations_.push_back(InvariantViolation{invariant, cycle,
                                           std::move(details)});
}

void InvariantChecker::CheckBelief(long cycle, bool believes_above,
                                   bool truth_above,
                                   double truth_surface_distance) {
  const bool disagrees = believes_above != truth_above;
  const bool out_of_zone =
      disagrees && truth_surface_distance > options_.zone_epsilon;
  if (!out_of_zone) {
    out_of_zone_run_ = 0;
    return;
  }
  ++out_of_zone_run_;
  if (out_of_zone_run_ > max_observed_run_) {
    max_observed_run_ = out_of_zone_run_;
  }
  // Flag once, at the cycle the run first exceeds the bound (the run keeps
  // counting so max_observed_run() still reports its full length).
  if (out_of_zone_run_ == options_.max_out_of_zone_run + 1) {
    std::ostringstream details;
    details << "belief " << (believes_above ? "above" : "below")
            << " vs truth " << (truth_above ? "above" : "below")
            << " for " << out_of_zone_run_
            << " consecutive cycles with truth " << truth_surface_distance
            << " from the surface (zone " << options_.zone_epsilon
            << ", max run " << options_.max_out_of_zone_run << ")";
    Add("out-of-zone-run", cycle, details.str());
  }
}

void InvariantChecker::CheckPostSyncExact(long cycle, bool believes_above,
                                          bool truth_above) {
  if (believes_above == truth_above) return;
  std::ostringstream details;
  details << "full synchronization completed but belief "
          << (believes_above ? "above" : "below") << " contradicts truth "
          << (truth_above ? "above" : "below");
  Add("post-sync-belief", cycle, details.str());
}

void InvariantChecker::CheckAccounting(long cycle, long site_messages,
                                       long coordinator_messages,
                                       long total_messages,
                                       double total_bytes) {
  if (site_messages < 0 || coordinator_messages < 0 || total_bytes < 0.0) {
    Add("accounting-negative", cycle, "negative message/byte counter");
  }
  if (site_messages + coordinator_messages != total_messages) {
    std::ostringstream details;
    details << "total " << total_messages << " != site " << site_messages
            << " + coordinator " << coordinator_messages;
    Add("accounting-decomposition", cycle, details.str());
  }
  if (total_bytes + 1e-9 < 16.0 * static_cast<double>(total_messages)) {
    std::ostringstream details;
    details << total_bytes << " bytes cannot cover " << total_messages
            << " 16-byte headers";
    Add("accounting-bytes-floor", cycle, details.str());
  }
  if (has_previous_accounting_ &&
      (total_messages < prev_total_messages_ ||
       total_bytes + 1e-9 < prev_total_bytes_)) {
    Add("accounting-monotonicity", cycle,
        "cumulative counters decreased between cycles");
  }
  has_previous_accounting_ = true;
  prev_total_messages_ = total_messages;
  prev_total_bytes_ = total_bytes;
}

void InvariantChecker::CheckTransportParity(
    long cycle, const std::string& label, long messages_a, long messages_b,
    long site_messages_a, long site_messages_b, double bytes_a,
    double bytes_b) {
  if (messages_a == messages_b && site_messages_a == site_messages_b &&
      std::abs(bytes_a - bytes_b) < 1e-9) {
    return;
  }
  std::ostringstream details;
  details << label << ": messages " << messages_a << " vs " << messages_b
          << ", site messages " << site_messages_a << " vs "
          << site_messages_b << ", bytes " << bytes_a << " vs " << bytes_b;
  Add("transport-parity", cycle, details.str());
}

void InvariantChecker::CheckEpochFencing(long cycle,
                                         long stale_epoch_applied) {
  if (stale_epoch_applied == 0) return;
  std::ostringstream details;
  details << stale_epoch_applied
          << " stale-epoch message(s) reached an apply path; the epoch "
             "fence must drop them before application";
  Add("stale-epoch-applied", cycle, details.str());
}

void InvariantChecker::CheckRejoinConvergence(long cycle, int site,
                                              long recovered_cycle,
                                              bool converged) {
  if (converged) return;
  std::ostringstream details;
  details << "site " << site << " recovered at cycle " << recovered_cycle
          << " but still lacks a current anchor";
  Add("rejoin-convergence", cycle, details.str());
}

void InvariantChecker::CheckRecoveryEpoch(long cycle,
                                          std::int64_t crash_epoch,
                                          std::int64_t recovered_epoch) {
  if (recovered_epoch == crash_epoch + 1) return;
  std::ostringstream details;
  details << "recovered epoch " << recovered_epoch << " != crash epoch "
          << crash_epoch << " + 1 ("
          << (recovered_epoch <= crash_epoch
                  ? "epoch regressed: stale in-flight frames could apply"
                  : "committed epoch bumps were lost by the WAL")
          << ")";
  Add("recovery-epoch-fence", cycle, details.str());
}

void InvariantChecker::CheckRecoveryState(long cycle, bool matches,
                                          const std::string& details) {
  if (matches) return;
  Add("recovery-state-mismatch", cycle, details);
}

void InvariantChecker::CheckRecoveryReconvergence(long cycle,
                                                  long recovered_cycle,
                                                  bool converged) {
  if (converged) return;
  std::ostringstream details;
  details << "coordinator recovered at cycle " << recovered_cycle
          << " but no full sync completed by the reconvergence deadline";
  Add("recovery-reconvergence", cycle, details.str());
}

std::string InvariantChecker::Summary() const {
  std::ostringstream out;
  for (const InvariantViolation& v : violations_) {
    out << "[" << v.invariant << "] cycle " << v.cycle << ": " << v.details
        << "\n";
  }
  return out.str();
}

}  // namespace sgm
