#ifndef SGM_SIM_INVARIANTS_H_
#define SGM_SIM_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgm {

/// One broken protocol invariant, with enough context to locate the exact
/// cycle of the exact run that broke it.
struct InvariantViolation {
  std::string invariant;  ///< short id, e.g. "out-of-zone-run"
  long cycle = 0;         ///< update cycle (0 = initialization)
  std::string details;    ///< human-readable evidence
};

/// Tolerances of the continuous protocol invariants. The defaults are the
/// *exact*-protocol contract (GM/BGM/CVGM): belief must match the oracle on
/// every cycle. Approximate protocols (SGM/CVSGM) widen both knobs to their
/// (ε, δ) guarantee class.
struct InvariantOptions {
  /// Belief may disagree with the oracle while the true global value sits
  /// within this distance of the threshold surface (the ε / ε_C zone).
  double zone_epsilon = 0.0;

  /// Maximum tolerated *consecutive* cycles of belief disagreement while
  /// the truth is outside the zone — the paper's self-correction bound. 0
  /// means any out-of-zone disagreement is an immediate violation.
  long max_out_of_zone_run = 0;
};

/// Lock-step invariant checker: the stress harness feeds it one observation
/// per update cycle (coordinator belief vs ground-truth oracle, plus
/// accounting snapshots) and it accumulates violations instead of aborting,
/// so a stress run reports *every* broken invariant of a seed, each tagged
/// with the cycle it first broke.
///
/// Checked invariants:
///  (a) zone: on a disagreement cycle the truth lies within zone_epsilon of
///      the threshold surface, OR
///  (b) self-correction: an out-of-zone disagreement run never exceeds
///      max_out_of_zone_run cycles;
///  (c) post-sync exactness: a cycle that completed a clean full
///      synchronization ends with belief equal to the oracle;
///  (d) accounting sanity: totals decompose (total = site + coordinator),
///      never decrease cycle-over-cycle, and bytes cover at least one
///      16-byte header per message.
class InvariantChecker {
 public:
  explicit InvariantChecker(const InvariantOptions& options);

  /// Invariants (a)+(b). `truth_surface_distance` is the oracle's exact
  /// distance of the true global vector from the threshold surface.
  void CheckBelief(long cycle, bool believes_above, bool truth_above,
                   double truth_surface_distance);

  /// Invariant (c); call only on cycles that completed a full sync with
  /// every site reporting fresh state (degraded syncs are exempt).
  void CheckPostSyncExact(long cycle, bool believes_above, bool truth_above);

  /// Invariant (d) over a cumulative accounting snapshot.
  void CheckAccounting(long cycle, long site_messages,
                       long coordinator_messages, long total_messages,
                       double total_bytes);

  /// Conservation across transport layers: two runs (or two layers of one
  /// run) that must have transmitted identical traffic. Any mismatch is a
  /// violation tagged `label`.
  void CheckTransportParity(long cycle, const std::string& label,
                            long messages_a, long messages_b,
                            long site_messages_a, long site_messages_b,
                            double bytes_a, double bytes_b);

  /// Epoch-fencing invariant: `stale_epoch_applied` is the deployment-wide
  /// cumulative count of stale-epoch messages that reached an apply path
  /// (coordinator + every site). It must be zero on every cycle — the fence
  /// drops stale messages before application.
  void CheckEpochFencing(long cycle, long stale_epoch_applied);

  /// Rejoin-convergence invariant: a site that recovered from a crash at
  /// `recovered_cycle` must be re-anchored with a current-or-newer epoch by
  /// its deadline. Call at the deadline cycle with the convergence verdict.
  void CheckRejoinConvergence(long cycle, int site, long recovered_cycle,
                              bool converged);

  /// Recovery epoch-fence invariant: a recovered coordinator's epoch must be
  /// exactly the crash-time committed epoch + 1 — less would regress (stale
  /// in-flight frames could apply), more would mean the WAL lost a committed
  /// bump. The exact-match form is the crash-consistency contract: epoch
  /// bumps are logged before their messages are sent, so the committed epoch
  /// at ANY crash point equals the in-memory epoch.
  void CheckRecoveryEpoch(long cycle, std::int64_t crash_epoch,
                          std::int64_t recovered_epoch);

  /// Recovery state invariant: the recovered coordinator's durable state
  /// must equal the oracle reconstruction (newest decodable snapshot + its
  /// committed WAL suffix) computed independently before recovery ran.
  /// `matches` is the comparison verdict; `details` names the first
  /// mismatching field when it is false.
  void CheckRecoveryState(long cycle, bool matches,
                          const std::string& details);

  /// Recovery reconvergence invariant: monitoring must resume — a full sync
  /// must complete within a bounded number of cycles after recovery. Call at
  /// the deadline with the verdict.
  void CheckRecoveryReconvergence(long cycle, long recovered_cycle,
                                  bool converged);

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

  /// Longest out-of-zone disagreement run seen so far (for calibrating
  /// max_out_of_zone_run against real workloads).
  long max_observed_run() const { return max_observed_run_; }

  /// One line per violation, for logs/CI output.
  std::string Summary() const;

 private:
  void Add(const std::string& invariant, long cycle, std::string details);

  InvariantOptions options_;
  std::vector<InvariantViolation> violations_;
  long out_of_zone_run_ = 0;
  long max_observed_run_ = 0;

  bool has_previous_accounting_ = false;
  long prev_total_messages_ = 0;
  double prev_total_bytes_ = 0.0;
};

}  // namespace sgm

#endif  // SGM_SIM_INVARIANTS_H_
