#include "sim/metrics.h"

#include <algorithm>
#include <map>

#include "core/check.h"
#include "obs/metric_registry.h"

namespace sgm {

void Metrics::AddSiteMessages(long count, std::size_t doubles_each) {
  SGM_CHECK(count >= 0);
  site_messages_ += count;
  bytes_ += static_cast<double>(count) *
            (kHeaderBytes + kBytesPerDouble * static_cast<double>(doubles_each));
}

void Metrics::AddBroadcast(std::size_t doubles) {
  coordinator_messages_ += 1;
  bytes_ += kHeaderBytes + kBytesPerDouble * static_cast<double>(doubles);
}

void Metrics::AddCoordinatorUnicast(std::size_t doubles) {
  coordinator_messages_ += 1;
  bytes_ += kHeaderBytes + kBytesPerDouble * static_cast<double>(doubles);
}

void Metrics::AddPiggybackPayload(long count, std::size_t doubles_each) {
  SGM_CHECK(count >= 0);
  bytes_ += static_cast<double>(count) * kBytesPerDouble *
            static_cast<double>(doubles_each);
}

void Metrics::OnFullSync(bool was_true_crossing) {
  ++full_syncs_;
  if (!was_true_crossing) ++false_positives_;
}

void Metrics::OnPartialResolution() { ++partial_resolutions_; }

void Metrics::OnOneDResolution() {
  ++one_d_resolutions_;
  ++false_positives_;
}

void Metrics::OnLocalAlarm() { ++local_alarm_cycles_; }

void Metrics::OnCycle(bool undetected_crossing) {
  ++cycles_;
  if (undetected_crossing) {
    ++fn_cycles_;
    ++current_fn_run_;
  } else if (current_fn_run_ > 0) {
    fn_run_lengths_.push_back(current_fn_run_);
    current_fn_run_ = 0;
  }
}

void Metrics::Finalize() {
  if (current_fn_run_ > 0) {
    fn_run_lengths_.push_back(current_fn_run_);
    current_fn_run_ = 0;
  }
}

long Metrics::FnDurationMode() const {
  if (fn_run_lengths_.empty()) return 0;
  std::map<long, long> counts;
  for (long run : fn_run_lengths_) ++counts[run];
  long best_run = 0;
  long best_count = 0;
  for (const auto& [run, count] : counts) {
    if (count > best_count) {  // map order breaks ties toward smaller runs
      best_count = count;
      best_run = run;
    }
  }
  return best_run;
}

double Metrics::FnDurationMedian() const {
  if (fn_run_lengths_.empty()) return 0.0;
  std::vector<long> sorted = fn_run_lengths_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return static_cast<double>(sorted[n / 2]);
  return 0.5 * static_cast<double>(sorted[n / 2 - 1] + sorted[n / 2]);
}

double Metrics::SiteMessagesPerUpdate(int num_sites) const {
  SGM_CHECK(num_sites > 0);
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(site_messages_) /
         (static_cast<double>(num_sites) * static_cast<double>(cycles_));
}

void Metrics::PublishTo(MetricRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetCounter("paper.site_messages")->Set(site_messages_);
  registry->GetCounter("paper.coordinator_messages")
      ->Set(coordinator_messages_);
  registry->GetGauge("paper.total_bytes")->Set(bytes_);
  registry->GetCounter("paper.full_syncs")->Set(full_syncs_);
  registry->GetCounter("paper.false_positives")->Set(false_positives_);
  registry->GetCounter("paper.one_d_resolutions")->Set(one_d_resolutions_);
  registry->GetCounter("paper.partial_resolutions")
      ->Set(partial_resolutions_);
  registry->GetCounter("paper.local_alarm_cycles")->Set(local_alarm_cycles_);
  registry->GetCounter("paper.cycles")->Set(cycles_);
  registry->GetCounter("paper.false_negative_cycles")->Set(fn_cycles_);
  registry->GetCounter("paper.false_negative_runs")
      ->Set(static_cast<long>(fn_run_lengths_.size()));
}

}  // namespace sgm
