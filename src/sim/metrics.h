#ifndef SGM_SIM_METRICS_H_
#define SGM_SIM_METRICS_H_

#include <cstddef>
#include <vector>

namespace sgm {

class MetricRegistry;

/// Communication- and accuracy-accounting for one protocol run.
///
/// Conventions (matching Section 1.2's cost model):
///  * a site→coordinator message and a coordinator→site unicast each count 1;
///  * a coordinator broadcast counts 1 message total (the paper's
///    "N + 1 messages per FP, assuming broadcast capability");
///  * bytes = 16-byte header + 8 bytes per double of payload;
///  * per-site cost (Figure 13) divides site-originated messages only by
///    N · cycles — broadcasts cost the coordinator, not the battery-powered
///    sites.
///
/// False positives/negatives are classified against the ground-truth oracle:
/// a *false positive* is a central decision (full synchronization, or
/// CVSGM's 1-d preliminary resolution) triggered while f(v(t)) had not
/// actually switched sides; a *false-negative cycle* is an update cycle in
/// which the true function value sits on the opposite side of the threshold
/// from the coordinator's belief with no synchronization correcting it.
/// Consecutive FN cycles form an FN *run*, whose Mode/Median lengths Tables
/// 3–4 report.
class Metrics {
 public:
  static constexpr double kHeaderBytes = 16.0;
  static constexpr double kBytesPerDouble = 8.0;

  /// Records `count` site→coordinator messages of `doubles_each` payload.
  void AddSiteMessages(long count, std::size_t doubles_each);

  /// Records a coordinator broadcast with `doubles` payload.
  void AddBroadcast(std::size_t doubles);

  /// Records a coordinator→site unicast with `doubles` payload.
  void AddCoordinatorUnicast(std::size_t doubles);

  /// Records payload piggybacked on already-counted messages (e.g. PGM's
  /// prediction-model coefficients riding along sync vectors): bytes only,
  /// no message count.
  void AddPiggybackPayload(long count, std::size_t doubles_each);

  /// A full synchronization completed (new e computed & shipped).
  void OnFullSync(bool was_true_crossing);

  /// An alarm resolved by the partial (sample-only) probe — no full sync.
  void OnPartialResolution();

  /// A CVSGM alarm resolved by the all-sites 1-d signed-distance check
  /// (Lemma 4): a false positive whose resolution shipped scalars only.
  void OnOneDResolution();

  /// A cycle in which at least one monitored site raised a local alarm.
  void OnLocalAlarm();

  /// Per-cycle ground-truth bookkeeping (see class comment).
  void OnCycle(bool undetected_crossing);

  /// Flushes a trailing FN run; call once after the simulation loop.
  void Finalize();

  long site_messages() const { return site_messages_; }
  long coordinator_messages() const { return coordinator_messages_; }
  long total_messages() const { return site_messages_ + coordinator_messages_; }
  double total_bytes() const { return bytes_; }

  long full_syncs() const { return full_syncs_; }
  long false_positives() const { return false_positives_; }
  long one_d_resolutions() const { return one_d_resolutions_; }
  long partial_resolutions() const { return partial_resolutions_; }
  long local_alarm_cycles() const { return local_alarm_cycles_; }

  long cycles() const { return cycles_; }
  long false_negative_cycles() const { return fn_cycles_; }
  long false_negative_runs() const {
    return static_cast<long>(fn_run_lengths_.size());
  }
  const std::vector<long>& fn_run_lengths() const { return fn_run_lengths_; }

  /// Most frequent FN run length (0 when no FN occurred; smallest wins ties).
  long FnDurationMode() const;
  /// Median FN run length (0 when no FN occurred).
  double FnDurationMedian() const;

  /// Average messages transmitted *by each site per data update* (Fig. 13).
  double SiteMessagesPerUpdate(int num_sites) const;

  /// Mirrors the paper-comparable accounting into `registry` under
  /// `paper.*` — read-only publication, never feeding back: the figures
  /// above remain the sole source of truth and stay byte-identical whether
  /// or not telemetry is attached.
  void PublishTo(MetricRegistry* registry) const;

 private:
  long site_messages_ = 0;
  long coordinator_messages_ = 0;
  double bytes_ = 0.0;

  long full_syncs_ = 0;
  long false_positives_ = 0;
  long one_d_resolutions_ = 0;
  long partial_resolutions_ = 0;
  long local_alarm_cycles_ = 0;

  long cycles_ = 0;
  long fn_cycles_ = 0;
  long current_fn_run_ = 0;
  std::vector<long> fn_run_lengths_;
};

}  // namespace sgm

#endif  // SGM_SIM_METRICS_H_
