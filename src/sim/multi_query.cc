#include "sim/multi_query.h"

#include <algorithm>

#include "core/check.h"

namespace sgm {

MultiQueryRunner::MultiQueryRunner(StreamSource* source) : source_(source) {
  SGM_CHECK(source != nullptr);
}

void MultiQueryRunner::AddQuery(std::string label,
                                std::unique_ptr<Protocol> protocol) {
  SGM_CHECK(protocol != nullptr);
  QueryResult result;
  result.label = std::move(label);
  results_.push_back(std::move(result));
  protocols_.push_back(std::move(protocol));
}

const std::vector<MultiQueryRunner::QueryResult>& MultiQueryRunner::Run(
    long cycles) {
  SGM_CHECK_MSG(!protocols_.empty(), "no queries registered");
  SGM_CHECK(cycles > 0);

  std::vector<Vector> locals;
  source_->Advance(&locals);
  for (std::size_t q = 0; q < protocols_.size(); ++q) {
    protocols_[q]->Initialize(locals, &results_[q].run.metrics);
  }
  // Initialization batches perfectly: one collection serves all queries.
  long previous_total = 0;
  {
    long heaviest = 0;
    for (const auto& result : results_) {
      heaviest = std::max(heaviest, result.run.metrics.total_messages());
      previous_total += result.run.metrics.total_messages();
    }
    batched_messages_ = heaviest;
  }

  std::vector<long> last_totals(protocols_.size());
  for (std::size_t q = 0; q < protocols_.size(); ++q) {
    last_totals[q] = results_[q].run.metrics.total_messages();
  }

  Vector mean(locals.front().dim());
  for (long t = 0; t < cycles; ++t) {
    source_->Advance(&locals);
    mean.SetZero();
    for (const Vector& v : locals) mean += v;
    mean /= static_cast<double>(locals.size());

    long heaviest_delta = 0;
    for (std::size_t q = 0; q < protocols_.size(); ++q) {
      Protocol* protocol = protocols_[q].get();
      Metrics* metrics = &results_[q].run.metrics;
      protocol->OnCycle(locals, metrics);

      const bool true_above =
          protocol->function().Value(mean) > protocol->threshold();
      if (true_above) ++results_[q].run.true_crossing_cycles;
      metrics->OnCycle(true_above != protocol->BelievesAbove());

      const long delta = metrics->total_messages() - last_totals[q];
      last_totals[q] = metrics->total_messages();
      heaviest_delta = std::max(heaviest_delta, delta);
    }
    batched_messages_ += heaviest_delta;
  }
  for (std::size_t q = 0; q < protocols_.size(); ++q) {
    results_[q].run.metrics.Finalize();
    results_[q].run.cycles = cycles;
  }
  return results_;
}

long MultiQueryRunner::TotalMessages() const {
  long total = 0;
  for (const auto& result : results_) {
    total += result.run.metrics.total_messages();
  }
  return total;
}

}  // namespace sgm
