#ifndef SGM_SIM_MULTI_QUERY_H_
#define SGM_SIM_MULTI_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "data/stream.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/protocol.h"

namespace sgm {

/// Simultaneous tracking of several threshold queries over one distributed
/// stream — the standing-alert workload of real monitoring deployments
/// (e.g. the same histograms watched under L∞ drift, divergence and
/// self-join thresholds at once).
///
/// Each query runs its own protocol instance with its own metrics and
/// ground-truth oracle; the stream advances once per cycle and is shared.
/// AggregateMessages() additionally reports the batched cost: messages from
/// the same site in the same cycle across queries share one envelope
/// (payloads add, headers don't) — the standard multi-query saving.
class MultiQueryRunner {
 public:
  /// Not owned; must outlive the runner.
  explicit MultiQueryRunner(StreamSource* source);

  /// Registers a query; `label` names it in the results.
  void AddQuery(std::string label, std::unique_ptr<Protocol> protocol);

  /// Per-query outcome after Run().
  struct QueryResult {
    std::string label;
    RunResult run;
  };

  /// Runs `cycles` update cycles across all registered queries.
  const std::vector<QueryResult>& Run(long cycles);

  const std::vector<QueryResult>& results() const { return results_; }

  /// Sum of per-query message counts (unbatched deployments).
  long TotalMessages() const;

  /// Optimistic batching bound: per cycle, messages for all queries ride
  /// the heaviest query's envelopes (perfect piggybacking), so the batched
  /// cost is Σ_cycles max_q(messages_q in that cycle). A real batching
  /// transport lands between this and TotalMessages().
  long BatchedMessages() const { return batched_messages_; }

 private:
  StreamSource* source_;
  std::vector<QueryResult> results_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  long batched_messages_ = 0;
};

}  // namespace sgm

#endif  // SGM_SIM_MULTI_QUERY_H_
