#include "sim/network.h"

#include "core/check.h"

namespace sgm {

Network::Network(StreamSource* source, Protocol* protocol)
    : source_(source), protocol_(protocol) {
  SGM_CHECK(source != nullptr);
  SGM_CHECK(protocol != nullptr);
}

RunResult Network::Run(long cycles) {
  SGM_CHECK(cycles > 0);
  RunResult result;

  std::vector<Vector> locals;
  source_->Advance(&locals);
  protocol_->Initialize(locals, &result.metrics);

  Vector mean(locals.front().dim());
  for (long t = 0; t < cycles; ++t) {
    source_->Advance(&locals);
    protocol_->OnCycle(locals, &result.metrics);

    // Ground truth on the exact global average, through the protocol's own
    // (possibly re-anchored) function instance.
    mean.SetZero();
    for (const Vector& v : locals) mean += v;
    mean /= static_cast<double>(locals.size());
    const bool true_above =
        protocol_->function().Value(mean) > protocol_->threshold();
    if (true_above) ++result.true_crossing_cycles;

    const bool undetected = (true_above != protocol_->BelievesAbove());
    result.metrics.OnCycle(undetected);
  }
  result.metrics.Finalize();
  result.cycles = cycles;
  return result;
}

RunResult Simulate(StreamSource* source, Protocol* protocol, long cycles) {
  return Network(source, protocol).Run(cycles);
}

}  // namespace sgm
