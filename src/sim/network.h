#ifndef SGM_SIM_NETWORK_H_
#define SGM_SIM_NETWORK_H_

#include <memory>

#include "data/stream.h"
#include "sim/metrics.h"
#include "sim/protocol.h"

namespace sgm {

/// Outcome of a simulated monitoring run.
struct RunResult {
  Metrics metrics;
  long cycles = 0;
  long true_crossing_cycles = 0;  ///< cycles with f(v(t)) above T (oracle)
};

/// Two-tier star-topology simulator: drives a StreamSource through update
/// cycles, hands every cycle to the protocol, and classifies the protocol's
/// belief against the exact ground truth.
///
/// The oracle evaluates the protocol's *own* function instance (so
/// reference-anchored queries are judged against the reference that protocol
/// actually shipped) on the exact mean of all N local vectors — protocol
/// approximations never contaminate FP/FN classification.
class Network {
 public:
  /// Neither pointer is owned; both must outlive the Network.
  Network(StreamSource* source, Protocol* protocol);

  /// Runs `cycles` update cycles (after the initialization sync) and returns
  /// the finalized metrics.
  RunResult Run(long cycles);

 private:
  StreamSource* source_;
  Protocol* protocol_;
};

/// Convenience: builds the network, runs, returns the result.
RunResult Simulate(StreamSource* source, Protocol* protocol, long cycles);

}  // namespace sgm

#endif  // SGM_SIM_NETWORK_H_
