#include "sim/protocol.h"

#include <algorithm>
#include <limits>

#include "core/check.h"
#include "obs/telemetry.h"

namespace sgm {

ProtocolBase::ProtocolBase(const MonitoredFunction& function, double threshold,
                           double max_step_norm)
    : function_(function.Clone()),
      threshold_(threshold),
      max_step_norm_(max_step_norm),
      drift_norm_cap_(std::numeric_limits<double>::infinity()) {
  SGM_CHECK_MSG(max_step_norm > 0.0, "max_step_norm must be positive");
}

void ProtocolBase::set_drift_norm_cap(double cap) {
  SGM_CHECK_MSG(cap > 0.0, "drift norm cap must be positive");
  drift_norm_cap_ = cap;
}

void ProtocolBase::set_u_threshold_factor(double factor) {
  SGM_CHECK_MSG(factor > 0.0, "U threshold factor must be positive");
  u_threshold_factor_ = factor;
}

void ProtocolBase::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ != nullptr) {
    monitor_cycle_ns_ = telemetry_->registry.GetHistogram(
        "protocol.monitor_cycle_ns", LatencyBucketsNs());
    full_sync_ns_ = telemetry_->registry.GetHistogram("protocol.full_sync_ns",
                                                      LatencyBucketsNs());
  } else {
    monitor_cycle_ns_ = nullptr;
    full_sync_ns_ = nullptr;
  }
}

void ProtocolBase::Initialize(const std::vector<Vector>& local_vectors,
                              Metrics* metrics) {
  SGM_CHECK(!local_vectors.empty());
  SGM_CHECK(metrics != nullptr);
  num_sites_ = static_cast<int>(local_vectors.size());
  dim_ = local_vectors.front().dim();

  // All sites ship their vectors; the coordinator broadcasts e back.
  metrics->AddSiteMessages(num_sites_, dim_);
  e_ = Mean(local_vectors);
  metrics->AddBroadcast(dim_);

  synced_locals_ = local_vectors;
  function_->OnSync(e_);
  believes_above_ = function_->Value(e_) > threshold_;
  epsilon_t_ = function_->DistanceToSurface(e_, threshold_);
  cycles_since_sync_ = 0;
  initialized_ = true;
  AfterSync(local_vectors, metrics);
}

CycleOutcome ProtocolBase::OnCycle(const std::vector<Vector>& local_vectors,
                                   Metrics* metrics) {
  SGM_CHECK_MSG(initialized_, "Initialize() must run before OnCycle()");
  SGM_CHECK(static_cast<int>(local_vectors.size()) == num_sites_);
  ++cycles_since_sync_;
  if (telemetry_ != nullptr) telemetry_->SetCycle(++absolute_cycle_);
  CycleOutcome outcome;
  {
    ScopedTimer timer(monitor_cycle_ns_);
    outcome = MonitorCycle(local_vectors, metrics);
  }
  if (outcome.local_alarm) metrics->OnLocalAlarm();
  if (telemetry_ != nullptr) {
    // The simulator plays both tiers in one object, so outcome events carry
    // the coordinator actor (-1); full_sync_complete is traced by FullSync.
    if (outcome.local_alarm) {
      telemetry_->trace.Emit("protocol", "local_alarm", -1);
    }
    if (outcome.partial_resolved) {
      telemetry_->trace.Emit("protocol", "partial_resolution", -1);
    }
    if (outcome.resolved_1d) {
      telemetry_->trace.Emit("protocol", "one_d_resolution", -1);
    }
  }
  return outcome;
}

void ProtocolBase::AfterSync(const std::vector<Vector>& /*local_vectors*/,
                             Metrics* /*metrics*/) {}

Vector ProtocolBase::Drift(int site,
                           const std::vector<Vector>& local_vectors) const {
  return local_vectors[site] - synced_locals_[site];
}

double ProtocolBase::CurrentU() const {
  const double accumulated = max_step_norm_ * static_cast<double>(
                                 std::max<long>(1, cycles_since_sync_));
  const double threshold_scale =
      u_threshold_factor_ * std::max(epsilon_t_, max_step_norm_);
  return std::min({accumulated, drift_norm_cap_, threshold_scale});
}

bool ProtocolBase::FullSync(const std::vector<Vector>& local_vectors,
                            Metrics* metrics, int already_collected) {
  SGM_CHECK(already_collected >= 0 && already_collected <= num_sites_);
  ScopedTimer timer(full_sync_ns_);
  metrics->AddSiteMessages(num_sites_ - already_collected, dim_);

  const Vector mean = Mean(local_vectors);
  // Classified against the pre-sync belief: the synchronization was
  // justified iff the true value had switched sides.
  // BelievesAbove() is virtual: prediction-based protocols hold a
  // time-varying belief f(e_pred(t)) rather than the static f(e).
  const bool true_above = function_->Value(mean) > threshold_;
  const bool was_true_crossing = (true_above != BelievesAbove());
  metrics->OnFullSync(was_true_crossing);

  e_ = mean;
  metrics->AddBroadcast(dim_);
  synced_locals_ = local_vectors;
  function_->OnSync(e_);
  believes_above_ = function_->Value(e_) > threshold_;
  epsilon_t_ = function_->DistanceToSurface(e_, threshold_);
  cycles_since_sync_ = 0;
  if (telemetry_ != nullptr) {
    // The sim has no transport epochs; the sync ordinal plays that role.
    telemetry_->trace.Emit(
        "protocol", "full_sync_complete", -1,
        {{"epoch", metrics->full_syncs()}, {"degraded", 0}});
  }
  AfterSync(local_vectors, metrics);
  return was_true_crossing;
}

}  // namespace sgm
