#ifndef SGM_SIM_PROTOCOL_H_
#define SGM_SIM_PROTOCOL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/vector.h"
#include "functions/monitored_function.h"
#include "sim/metrics.h"

namespace sgm {

struct Telemetry;
class Histogram;

/// What happened during one execution of a protocol's monitoring (and
/// possibly synchronization) phase.
struct CycleOutcome {
  bool local_alarm = false;        ///< some monitored site raised a violation
  bool full_sync = false;          ///< a full synchronization took place
  bool partial_resolved = false;   ///< alarm resolved via the sampled probe
  bool resolved_1d = false;        ///< alarm resolved via 1-d distances only
};

/// A distributed threshold-tracking protocol under simulation.
///
/// The simulator is single-process: each cycle the protocol object receives
/// every site's true local vector and *plays both tiers honestly* — it may
/// only act on information a real coordinator/site would have, and it must
/// account every message it would have sent through the Metrics object.
/// (E.g. SGM reads only the sampled sites' drifts when forming its estimate,
/// even though all vectors are in memory.)
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// The initialization phase: a first full synchronization triggered by the
  /// query itself (not by a violation).
  virtual void Initialize(const std::vector<Vector>& local_vectors,
                          Metrics* metrics) = 0;

  /// One monitoring phase after an update cycle.
  virtual CycleOutcome OnCycle(const std::vector<Vector>& local_vectors,
                               Metrics* metrics) = 0;

  /// The coordinator's current answer to "is f(v(t)) above T?".
  virtual bool BelievesAbove() const = 0;

  /// The protocol's private function instance (reference-based functions
  /// re-anchor at this protocol's own synchronizations); the ground-truth
  /// oracle evaluates through it.
  virtual const MonitoredFunction& function() const = 0;

  virtual double threshold() const = 0;
};

/// Shared two-tier machinery: the coordinator-side estimate vector e(t), the
/// per-site snapshots v_i(t_s), the drift computation, the adaptive drift cap
/// U(t), and the full-synchronization procedure with honest accounting and
/// oracle-side FP classification.
class ProtocolBase : public Protocol {
 public:
  /// `function` is cloned; `max_step_norm` feeds the U(t) policy
  /// (U = max_step_norm · cycles-since-sync, the Example-3 pattern).
  ProtocolBase(const MonitoredFunction& function, double threshold,
               double max_step_norm);

  void Initialize(const std::vector<Vector>& local_vectors,
                  Metrics* metrics) override;
  CycleOutcome OnCycle(const std::vector<Vector>& local_vectors,
                       Metrics* metrics) final;

  bool BelievesAbove() const override { return believes_above_; }
  const MonitoredFunction& function() const override { return *function_; }
  double threshold() const override { return threshold_; }

  int num_sites() const { return num_sites_; }
  std::size_t dim() const { return dim_; }
  const Vector& estimate() const { return e_; }
  long cycles_since_sync() const { return cycles_since_sync_; }

  /// Caps U(t) at an a-priori bound on ‖Δv_i‖ (e.g. windowed streams can
  /// never drift beyond √2·window, Section 3's "Guidance for setting U").
  /// Default: no cap (pure per-cycle accumulation).
  void set_drift_norm_cap(double cap);

  /// Minimum distance of e from the threshold surface, recomputed at every
  /// synchronization (the ε_T of Figure 5 / Lemma 3).
  double epsilon_T() const { return epsilon_t_; }

  /// Factor β in U(t) ≤ β·ε_T (see CurrentU). Larger β → smaller sampling
  /// probabilities (cheaper probes, slower single-site FN detection);
  /// Lemma 3's P_FN bound becomes δ^(|Z|M·ε_T/(U√N)) = δ^(|Z|M/(β√N)).
  void set_u_threshold_factor(double factor);

  /// Optional observability sink (nullable, not owned): cycle outcomes are
  /// traced as protocol events (the simulator plays both tiers, so events
  /// carry the coordinator actor), and the monitoring/sync phases feed
  /// latency histograms. Paper-comparable Metrics accounting is untouched.
  void set_telemetry(Telemetry* telemetry);

 protected:
  /// Protocol-specific monitoring phase; the base increments the sync clock
  /// before dispatching here.
  virtual CycleOutcome MonitorCycle(const std::vector<Vector>& local_vectors,
                                    Metrics* metrics) = 0;

  /// Hook invoked at the end of every full synchronization (including the
  /// initializing one) so subclasses can refresh derived state (safe zones,
  /// predictors, ε_T ...).
  virtual void AfterSync(const std::vector<Vector>& local_vectors,
                         Metrics* metrics);

  /// Δv_i(t) = v_i(t) − v_i(t_s).
  Vector Drift(int site, const std::vector<Vector>& local_vectors) const;

  /// U(t): the drift-norm scale of Section 3, known to every node without
  /// communication. Three ingredients, combined as their minimum:
  ///  1. per-cycle accumulation max_step_norm · (cycles since sync) — drifts
  ///     cannot have grown faster (Example 3's pattern);
  ///  2. the a-priori drift cap (windowed streams, set_drift_norm_cap);
  ///  3. β·ε_T — the paper's third U guidance ("set U according to the
  ///     minimum distance of e from the threshold surface"), which Lemma 3's
  ///     final P_FN = O(δ^{|Z|M/√N}) bound instantiates (U ∝ ε_T). Tying U
  ///     to the threshold distance keeps sampling probabilities — and hence
  ///     probe sizes — scaled to how *dangerous* a drift actually is, rather
  ///     than to elapsed time.
  /// Floored at one step so U never degenerates to zero on the surface.
  double CurrentU() const;

  /// Executes a full synchronization: collects the `num_sites −
  /// already_collected` outstanding local vectors, classifies the decision
  /// as true-crossing or FP against the oracle, recomputes and broadcasts e,
  /// and re-anchors the function. Returns true when the sync corresponded to
  /// a true threshold crossing.
  bool FullSync(const std::vector<Vector>& local_vectors, Metrics* metrics,
                int already_collected);

  MonitoredFunction* mutable_function() { return function_.get(); }

  std::unique_ptr<MonitoredFunction> function_;
  double threshold_;
  double max_step_norm_;
  double drift_norm_cap_;
  double epsilon_t_ = 0.0;
  double u_threshold_factor_ = 6.0;

  int num_sites_ = 0;
  std::size_t dim_ = 0;
  Vector e_;
  std::vector<Vector> synced_locals_;
  bool believes_above_ = false;
  long cycles_since_sync_ = 0;
  bool initialized_ = false;

  Telemetry* telemetry_ = nullptr;
  /// Cached latency histograms; nullptr when telemetry is off, which
  /// disables the profiling scopes entirely (no clock reads).
  Histogram* monitor_cycle_ns_ = nullptr;
  Histogram* full_sync_ns_ = nullptr;
  /// Absolute update-cycle counter (never reset by syncs) — the logical
  /// clock stamped on this protocol's trace events.
  long absolute_cycle_ = 0;
};

}  // namespace sgm

#endif  // SGM_SIM_PROTOCOL_H_
