#include "sim/stress.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "core/check.h"
#include "core/rng.h"
#include "data/jester_like.h"
#include "runtime/checkpoint.h"
#include "functions/l2_norm.h"
#include "functions/linf_distance.h"
#include "gm/bgm.h"
#include "gm/cvsgm.h"
#include "gm/gm.h"
#include "gm/sgm.h"
#include "obs/telemetry.h"
#include "runtime/driver.h"
#include "sim/metrics.h"

namespace sgm {

namespace {

constexpr std::size_t kNumBuckets = 8;
constexpr std::size_t kWindow = 50;

// Sub-seed streams of one StressConfig seed (see DeriveSeed): the workload,
// the protocol's coins, the transport's fault lottery and the crash
// schedule never share a stream.
constexpr std::uint64_t kWorkloadStream = 101;
constexpr std::uint64_t kProtocolStream = 202;
constexpr std::uint64_t kTransportStream = 303;
constexpr std::uint64_t kCrashStream = 404;
constexpr std::uint64_t kCoordCrashStream = 505;
constexpr std::uint64_t kFdJitterStream = 606;
constexpr std::uint64_t kStallStream = 707;

JesterLikeConfig WorkloadConfig(const StressConfig& config) {
  JesterLikeConfig workload;
  workload.num_sites = config.num_sites;
  workload.window = kWindow;
  workload.num_buckets = kNumBuckets;
  workload.seed = DeriveSeed(config.seed, kWorkloadStream);
  return workload;
}

std::unique_ptr<MonitoredFunction> MakeFunction(StressFunction function) {
  switch (function) {
    case StressFunction::kL2Norm:
      return std::make_unique<L2Norm>(false);
    case StressFunction::kLinfDistance:
      return std::make_unique<LInfDistance>(Vector(kNumBuckets));
  }
  return nullptr;
}

/// The monitored threshold. The L∞ query re-anchors its reference at every
/// sync, so its natural scale is inter-sync histogram migration — the
/// proven value of the protocol-matrix tests. The plain L2 query is
/// absolute, so the threshold is placed at the median oracle value of a
/// deterministic pre-pass over the same workload seed: both sides of the
/// surface are then guaranteed to be visited.
double PickThreshold(const StressConfig& config) {
  if (config.function == StressFunction::kLinfDistance) return 5.0;
  JesterLikeGenerator source(WorkloadConfig(config));
  const auto function = MakeFunction(config.function);
  std::vector<Vector> locals;
  std::vector<double> values;
  values.reserve(config.cycles + 1);
  for (long t = 0; t <= config.cycles; ++t) {
    source.Advance(&locals);
    values.push_back(function->Value(Mean(locals)));
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  return values[values.size() / 2];
}

bool IsExact(StressProtocol protocol) {
  return protocol == StressProtocol::kGm || protocol == StressProtocol::kBgm;
}

/// Resolves the invariant tolerances: explicit values win; otherwise exact
/// protocols tolerate nothing, approximate ones get their guarantee-class
/// zone (a few drift steps around the surface — the scale of the Bernstein
/// / McDiarmid ε at the operating point) and a self-correction horizon that
/// widens with message-loss severity (detection is retried every cycle, so
/// loss stretches it geometrically, not unboundedly).
InvariantOptions ResolveTolerances(const StressConfig& config,
                                   double max_step_norm) {
  InvariantOptions options;
  if (config.sabotage_tolerance) return options;  // zero/zero: trip on FN
  if (IsExact(config.protocol) && config.drop_probability == 0.0 &&
      config.crash_probability == 0.0 && config.corrupt_probability == 0.0) {
    return options;
  }
  options.zone_epsilon = config.zone_epsilon >= 0.0
                             ? config.zone_epsilon
                             : 3.0 * max_step_norm;
  if (config.max_out_of_zone_run >= 0) {
    options.max_out_of_zone_run = config.max_out_of_zone_run;
  } else {
    long run = 50;
    if (config.drop_probability > 0.0 || config.crash_probability > 0.0 ||
        config.corrupt_probability > 0.0 || config.max_delay_rounds > 0 ||
        config.stall_probability > 0.0) {
      run = 150;  // faults delay detection but never disable it
    }
    if (config.coord_crash_probability > 0.0) {
      run = 200;  // coordinator downtime stalls detection entirely
    }
    options.max_out_of_zone_run = run;
  }
  return options;
}

std::unique_ptr<ProtocolBase> MakeProtocol(const StressConfig& config,
                                           const MonitoredFunction& function,
                                           double threshold,
                                           double max_step_norm) {
  switch (config.protocol) {
    case StressProtocol::kGm:
      return std::make_unique<GeometricMonitor>(function, threshold,
                                                max_step_norm);
    case StressProtocol::kBgm:
      return std::make_unique<BalancedGeometricMonitor>(function, threshold,
                                                        max_step_norm);
    case StressProtocol::kSgm: {
      SgmOptions options;
      options.seed = DeriveSeed(config.seed, kProtocolStream);
      return std::make_unique<SamplingGeometricMonitor>(function, threshold,
                                                        max_step_norm,
                                                        options);
    }
    case StressProtocol::kCvsgm: {
      CvsgmOptions options;
      options.seed = DeriveSeed(config.seed, kProtocolStream);
      return std::make_unique<CvSamplingMonitor>(function, threshold,
                                                 max_step_norm, options);
    }
  }
  return nullptr;
}

/// Builds the optional accuracy auditor for a leg: inherits the invariant
/// checker's resolved tolerances unless the config overrides them (the
/// override path is the negative test — epsilon 0 / run 0 must fire).
std::unique_ptr<AccuracyAuditor> MakeAuditor(
    const StressConfig& config, const InvariantOptions& tolerances) {
  if (!config.audit) return nullptr;
  AccuracyAuditorConfig auditor;
  auditor.epsilon = config.audit_epsilon >= 0.0 ? config.audit_epsilon
                                                : tolerances.zone_epsilon;
  auditor.max_out_of_zone_run = config.audit_max_run >= 0
                                    ? config.audit_max_run
                                    : tolerances.max_out_of_zone_run;
  auditor.telemetry = config.telemetry;
  return std::make_unique<AccuracyAuditor>(auditor);
}

void FillReport(const InvariantChecker& checker, const StressConfig& config,
                const std::string& leg, StressReport* report) {
  report->config = config;
  report->leg = leg;
  report->violations = checker.violations();
  report->max_observed_run = checker.max_observed_run();
  if (!report->ok()) {
    report->replay_command = FormatReplayCommand(config, leg);
  }
}

}  // namespace

const char* ToString(StressProtocol protocol) {
  switch (protocol) {
    case StressProtocol::kGm: return "GM";
    case StressProtocol::kBgm: return "BGM";
    case StressProtocol::kSgm: return "SGM";
    case StressProtocol::kCvsgm: return "CVSGM";
  }
  return "?";
}

const char* ToString(StressFunction function) {
  switch (function) {
    case StressFunction::kL2Norm: return "l2";
    case StressFunction::kLinfDistance: return "linf";
  }
  return "?";
}

bool ParseStressProtocol(const std::string& text, StressProtocol* out) {
  for (StressProtocol p : {StressProtocol::kGm, StressProtocol::kBgm,
                           StressProtocol::kSgm, StressProtocol::kCvsgm}) {
    if (text == ToString(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool ParseStressFunction(const std::string& text, StressFunction* out) {
  for (StressFunction f :
       {StressFunction::kL2Norm, StressFunction::kLinfDistance}) {
    if (text == ToString(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

std::string FormatReplayCommand(const StressConfig& config,
                                const std::string& leg) {
  std::ostringstream out;
  out << "dst_stress --leg=" << leg << " --protocol="
      << ToString(config.protocol) << " --function="
      << ToString(config.function) << " --seed=" << config.seed
      << " --sites=" << config.num_sites << " --cycles=" << config.cycles;
  if (config.drop_probability > 0.0) {
    out << " --drop=" << config.drop_probability;
  }
  if (config.duplicate_probability > 0.0) {
    out << " --dup=" << config.duplicate_probability;
  }
  if (config.max_delay_rounds > 0) {
    out << " --delay=" << config.max_delay_rounds;
  }
  if (config.corrupt_probability > 0.0) {
    out << " --corrupt=" << config.corrupt_probability;
  }
  if (config.crash_probability > 0.0) {
    out << " --crash=" << config.crash_probability;
  }
  if (config.coord_crash_probability > 0.0) {
    out << " --coord-crash=" << config.coord_crash_probability
        << " --coord-down=" << config.max_coord_crash_cycles;
  }
  if (config.stall_probability > 0.0) {
    out << " --stall=" << config.stall_probability
        << " --stall-cycles=" << config.max_stall_cycles;
  }
  if (config.sabotage_tolerance) out << " --sabotage";
  if (config.audit) out << " --audit";
  return out.str();
}

std::string StressReport::Summary() const {
  std::ostringstream out;
  out << leg << " " << ToString(config.protocol) << "/"
      << ToString(config.function) << " seed=" << config.seed << ": ";
  if (ok()) {
    out << "OK (" << cycles << " cycles, " << fn_cycles << " FN cycles, "
        << full_syncs << " full syncs, " << degraded_syncs
        << " degraded, max disagreement run " << max_observed_run;
    if (leg == "runtime") {
      out << ", " << retransmissions << " retransmits, " << rejoins_granted
          << " rejoins, " << stale_epoch_drops << " stale drops";
      if (config.coord_crash_probability > 0.0) {
        out << ", " << coordinator_crashes << " coord crashes ("
            << wal_records_replayed << " WAL replays, "
            << snapshots_discarded << " snapshot fallbacks)";
      }
      if (config.stall_probability > 0.0) {
        out << ", " << degraded_cycles << " degraded cycles, "
            << lag_quarantines << " lag quarantines";
      }
    }
    if (config.audit) {
      out << "; audit TP=" << audit.true_positives
          << " FP=" << audit.false_positives
          << " FN=" << audit.false_negatives
          << " TN=" << audit.true_negatives
          << " oz-FN-rate=" << audit.fn_rate()
          << " max|err|=" << audit.max_abs_error
          << " bound-violations=" << audit.bound_violations;
      if (audit.degraded_cycles > 0) {
        out << " degraded-oz-FN="
            << audit.degraded_out_of_zone_false_negatives << "/"
            << audit.degraded_cycles;
      }
    }
    out << ")\n";
    return out.str();
  }
  out << violations.size() << " invariant violation(s)\n";
  for (const InvariantViolation& v : violations) {
    out << "  [" << v.invariant << "] cycle " << v.cycle << ": " << v.details
        << "\n";
  }
  out << "  replay: " << replay_command << "\n";
  return out.str();
}

StressReport RunSimStress(const StressConfig& config) {
  SGM_CHECK(config.cycles > 0 && config.num_sites > 0);
  StressReport report;
  const double threshold = PickThreshold(config);
  JesterLikeGenerator source(WorkloadConfig(config));
  const auto function = MakeFunction(config.function);
  auto protocol =
      MakeProtocol(config, *function, threshold, source.max_step_norm());
  protocol->set_drift_norm_cap(source.max_drift_norm());
  protocol->set_telemetry(config.telemetry);
  if (config.telemetry != nullptr) {
    // Sim protocols are transportless and spanless, so only the noise-class
    // sampling applies here; the rate is plumbed for parity with the
    // runtime leg.
    config.telemetry->trace.ConfigureSampling(
        config.trace_sample_rate, DeriveSeed(config.seed, kProtocolStream));
    config.telemetry->trace.Emit("run", "run_begin", -1);
  }

  const InvariantOptions tolerances =
      ResolveTolerances(config, source.max_step_norm());
  InvariantChecker checker(tolerances);
  std::unique_ptr<AccuracyAuditor> auditor = MakeAuditor(config, tolerances);
  Metrics metrics;
  std::vector<Vector> locals;
  source.Advance(&locals);
  protocol->Initialize(locals, &metrics);

  Vector mean(locals.front().dim());
  for (long t = 1; t <= config.cycles; ++t) {
    source.Advance(&locals);
    const CycleOutcome outcome = protocol->OnCycle(locals, &metrics);

    // Lock-step oracle: the exact global average, evaluated through the
    // protocol's own (possibly re-anchored) function instance.
    mean.SetZero();
    for (const Vector& v : locals) mean += v;
    mean /= static_cast<double>(locals.size());
    const double truth_value = protocol->function().Value(mean);
    const bool truth_above = truth_value > protocol->threshold();
    const double surface_distance =
        protocol->function().DistanceToSurface(mean, protocol->threshold());

    checker.CheckBelief(t, protocol->BelievesAbove(), truth_above,
                        surface_distance);
    if (outcome.full_sync) {
      checker.CheckPostSyncExact(t, protocol->BelievesAbove(), truth_above);
    }
    checker.CheckAccounting(t, metrics.site_messages(),
                            metrics.coordinator_messages(),
                            metrics.total_messages(), metrics.total_bytes());
    if (truth_above != protocol->BelievesAbove()) ++report.fn_cycles;

    if (auditor != nullptr) {
      AccuracyAuditor::CycleSample sample;
      sample.cycle = t;
      sample.believed_above = protocol->BelievesAbove();
      sample.truth_above = truth_above;
      sample.estimate_value = protocol->function().Value(protocol->estimate());
      sample.truth_value = truth_value;
      sample.surface_distance = surface_distance;
      // Sim protocols are transportless — no span to attribute.
      auditor->ObserveCycle(sample);
    }

    // Windowed time-series export (the runtime legs sample from the driver;
    // transportless sim legs sample here, after the audit observed t).
    if (config.telemetry != nullptr && config.telemetry->series) {
      metrics.PublishTo(&config.telemetry->registry);
      config.telemetry->series->Sample(t, config.telemetry->registry);
    }
  }

  report.cycles = config.cycles;
  report.full_syncs = metrics.full_syncs();
  if (auditor != nullptr) report.audit = auditor->report();
  if (config.telemetry != nullptr) {
    metrics.PublishTo(&config.telemetry->registry);
  }
  FillReport(checker, config, "sim", &report);
  return report;
}

namespace {

/// Shared scaffolding of the runtime legs: drives a RuntimeDriver over the
/// seeded workload with an optional fault schedule, feeding the checker
/// each cycle. The oracle freezes crashed sites' vectors.
struct RuntimeLeg {
  explicit RuntimeLeg(const StressConfig& config)
      : config_(config),
        threshold_(PickThreshold(config)),
        source_(WorkloadConfig(config)),
        function_(MakeFunction(config.function)),
        crash_rng_(DeriveSeed(config.seed, kCrashStream)),
        coord_rng_(DeriveSeed(config.seed, kCoordCrashStream)),
        stall_rng_(DeriveSeed(config.seed, kStallStream)),
        recovery_cycle_(config.num_sites, -1),
        stall_until_(config.num_sites, -1) {}

  RuntimeConfig NodeConfig() const {
    RuntimeConfig node;
    node.threshold = threshold_;
    node.max_step_norm = source_.max_step_norm();
    node.drift_norm_cap = source_.max_drift_norm();
    node.seed = DeriveSeed(config_.seed, kProtocolStream);
    node.telemetry = config_.telemetry;
    node.trace_sample_rate = config_.trace_sample_rate;
    if (config_.coord_crash_probability > 0.0) {
      node.checkpoint_store = &checkpoint_store_;
      node.checkpoint_interval_cycles = 20;
      // Desynchronized failure-detector thresholds: the crash legs are where
      // whole-fleet silence (a dead coordinator) would otherwise march every
      // site through suspect → dead in lock step.
      node.failure_detector.threshold_jitter = 0.2;
      node.failure_detector.jitter_seed =
          DeriveSeed(config_.seed, kFdJitterStream);
    }
    return node;
  }

  SimTransportConfig TransportConfig() const {
    SimTransportConfig transport;
    transport.seed = DeriveSeed(config_.seed, kTransportStream);
    transport.drop_probability = config_.drop_probability;
    transport.duplicate_probability = config_.duplicate_probability;
    transport.max_delay_rounds = config_.max_delay_rounds;
    transport.corrupt_probability = config_.corrupt_probability;
    return transport;
  }

  /// Crash/recovery schedule for one cycle; deterministic in the seed and
  /// bounded: at most a quarter of the fleet down, every crash expires.
  void StepCrashSchedule(RuntimeDriver* driver, long cycle) {
    SimTransport* sim = driver->sim_transport();
    if (sim == nullptr || config_.crash_probability <= 0.0) return;
    int crashed = 0;
    for (int i = 0; i < config_.num_sites; ++i) {
      if (!sim->IsCrashed(i)) continue;
      if (stall_until_[i] >= 0) continue;  // the stall schedule owns it
      if (recovery_cycle_[i] <= cycle) {
        sim->RecoverSite(i);
      } else {
        ++crashed;
      }
    }
    if (crash_rng_.NextBernoulli(config_.crash_probability) &&
        crashed < std::max(1, config_.num_sites / 4)) {
      const int victim = static_cast<int>(
          crash_rng_.NextBounded(static_cast<std::uint64_t>(
              config_.num_sites)));
      if (!sim->IsCrashed(victim)) {
        sim->CrashSite(victim);
        recovery_cycle_[victim] =
            cycle + 1 +
            static_cast<long>(crash_rng_.NextBounded(
                static_cast<std::uint64_t>(config_.max_crash_cycles)));
      }
    }
  }

  /// Stall schedule for one cycle, pre-tick: a stalled site is silenced
  /// through the sim's crash switch (state kept, messages dropped — exactly
  /// what a SIGSTOP'd process looks like from the outside) and listed in
  /// `stalled` so the post-tick ReportBarrierLag call feeds the
  /// deadline-miss path. Bounded like the crash schedule: at most a quarter
  /// of the fleet stalled, every stall expires.
  void StepStallSchedule(RuntimeDriver* driver, long cycle,
                         std::vector<int>* stalled) {
    SimTransport* sim = driver->sim_transport();
    if (sim == nullptr || config_.stall_probability <= 0.0) return;
    int stalled_now = 0;
    for (int i = 0; i < config_.num_sites; ++i) {
      if (stall_until_[i] < 0) continue;
      if (stall_until_[i] < cycle) {
        sim->RecoverSite(i);
        stall_until_[i] = -1;
      } else {
        ++stalled_now;
      }
    }
    if (stall_rng_.NextBernoulli(config_.stall_probability) &&
        stalled_now < std::max(1, config_.num_sites / 4)) {
      const int victim = static_cast<int>(stall_rng_.NextBounded(
          static_cast<std::uint64_t>(config_.num_sites)));
      if (!sim->IsCrashed(victim)) {
        sim->CrashSite(victim);
        stall_until_[victim] =
            cycle + static_cast<long>(stall_rng_.NextBounded(
                        static_cast<std::uint64_t>(config_.max_stall_cycles)));
      }
    }
    for (int i = 0; i < config_.num_sites; ++i) {
      if (stall_until_[i] >= 0) stalled->push_back(i);
    }
  }

  /// Coordinator crash/recovery schedule for one cycle, pre-tick. Crashes
  /// are 50/50 immediate (cycle boundary) vs armed (fires inside the next
  /// delivery burst, i.e. mid-cascade); downtime is bounded. Recovery first
  /// injects seeded storage faults — a torn WAL tail, and (when an older
  /// snapshot still exists) a torn newest snapshot — then computes the
  /// oracle reconstruction BEFORE recovering, and hands both to
  /// `coord_recovery_hook_` for invariant verification.
  void StepCoordCrashSchedule(RuntimeDriver* driver, long cycle) {
    if (config_.coord_crash_probability <= 0.0) return;
    if (driver->coordinator_down()) {
      if (coord_recover_cycle_ < 0) {
        // An armed crash fired inside the previous tick: start the outage
        // clock now.
        coord_recover_cycle_ = cycle + armed_downtime_;
        return;
      }
      if (cycle < coord_recover_cycle_) return;
      if (coord_rng_.NextBernoulli(0.3)) {
        std::vector<std::uint8_t> garbage(
            1 + static_cast<std::size_t>(coord_rng_.NextBounded(24)));
        for (auto& byte : garbage) {
          byte = static_cast<std::uint8_t>(coord_rng_.NextBounded(256));
        }
        checkpoint_store_.AppendTornWalBytes(garbage);
      }
      if (coord_rng_.NextBernoulli(0.25)) {
        // Rename-on-write means at most the NEWEST snapshot can ever be
        // incomplete; tear it only when an older intact one exists to fall
        // back on (the previous newest may itself still be torn from an
        // earlier injection until checkpoint GC evicts it).
        const auto candidates = checkpoint_store_.Candidates();
        if (candidates.size() >= 2 &&
            DecodeSnapshot(candidates[1].snapshot).ok()) {
          checkpoint_store_.TearSnapshotTail(
              1 + static_cast<std::size_t>(coord_rng_.NextBounded(32)));
        }
      }
      Result<Reconstruction> expected =
          ReconstructCoordinatorState(checkpoint_store_);
      driver->RecoverCoordinator();
      coord_recover_cycle_ = -1;
      if (coord_recovery_hook_) coord_recovery_hook_(cycle, expected);
      return;
    }
    if (driver->crash_armed()) return;  // one pending crash at a time
    if (!coord_rng_.NextBernoulli(config_.coord_crash_probability)) return;
    const long downtime =
        1 + static_cast<long>(coord_rng_.NextBounded(
                static_cast<std::uint64_t>(config_.max_coord_crash_cycles)));
    if (coord_rng_.NextBernoulli(0.5)) {
      driver->CrashCoordinator();
      coord_recover_cycle_ = cycle + downtime;
    } else {
      driver->ArmCoordinatorCrash(
          1 + static_cast<long>(coord_rng_.NextBounded(8)));
      armed_downtime_ = downtime;
      coord_recover_cycle_ = -1;  // set when (and if) the armed crash fires
    }
  }

  /// Runs the leg, reporting each cycle through `per_cycle(cycle, driver)`
  /// after the tick has routed to quiescence.
  template <typename PerCycle>
  void Drive(RuntimeDriver* driver, PerCycle&& per_cycle) {
    std::vector<Vector> locals;
    source_.Advance(&locals);
    observed_ = locals;
    driver->Initialize(locals);
    std::vector<int> stalled;
    for (long t = 1; t <= config_.cycles; ++t) {
      StepCoordCrashSchedule(driver, t);
      StepCrashSchedule(driver, t);
      stalled.clear();
      StepStallSchedule(driver, t, &stalled);
      source_.Advance(&locals);
      SimTransport* sim = driver->sim_transport();
      for (int i = 0; i < config_.num_sites; ++i) {
        if (sim != nullptr && sim->IsCrashed(i)) continue;  // frozen
        observed_[i] = locals[i];
      }
      driver->Tick(observed_);
      // Mirror the socket server's barrier deadline: the cycle is over and
      // the stalled sites never acked. Gated on the stall profile so every
      // other leg stays byte-identical to the pre-deadline harness.
      if (config_.stall_probability > 0.0) {
        driver->ReportBarrierLag(stalled);
      }
      per_cycle(t, *driver);
    }
  }

  struct Oracle {
    bool above = false;
    double value = 0.0;  ///< f(v), the exact function value
    double surface_distance = 0.0;
  };

  /// The lock-step oracle: exact mean of what the sites currently hold,
  /// evaluated through `function_` — which RunRuntimeStress re-anchors in
  /// step with the coordinator, mirroring every node's own clone.
  Oracle Truth() const {
    Vector mean(observed_.front().dim());
    for (const Vector& v : observed_) mean += v;
    mean /= static_cast<double>(observed_.size());
    Oracle oracle;
    oracle.value = function_->Value(mean);
    oracle.above = oracle.value > threshold_;
    oracle.surface_distance = function_->DistanceToSurface(mean, threshold_);
    return oracle;
  }

  const StressConfig config_;
  const double threshold_;
  JesterLikeGenerator source_;
  std::unique_ptr<MonitoredFunction> function_;
  Rng crash_rng_;
  Rng coord_rng_;
  Rng stall_rng_;
  std::vector<long> recovery_cycle_;
  /// Last cycle (inclusive) each site stays stalled; -1 = not stalled.
  std::vector<long> stall_until_;
  std::vector<Vector> observed_;

  /// Coordinator-crash machinery (active iff coord_crash_probability > 0).
  /// NodeConfig() wires the store into the driver's coordinator; mutable
  /// because the leg object stays const-shaped for the parity leg.
  mutable InMemoryCheckpointStore checkpoint_store_;
  long coord_recover_cycle_ = -1;
  long armed_downtime_ = 1;
  /// Invoked right after a recovery with the pre-recovery oracle
  /// reconstruction; RunRuntimeStress verifies the recovery invariants here.
  std::function<void(long cycle, const Result<Reconstruction>& expected)>
      coord_recovery_hook_;
};

}  // namespace

StressReport RunRuntimeStress(const StressConfig& config) {
  SGM_CHECK(config.protocol == StressProtocol::kSgm);
  StressReport report;
  RuntimeLeg leg(config);
  if (config.telemetry != nullptr) {
    config.telemetry->trace.Emit("run", "run_begin", -1);
  }

  RuntimeDriver driver(config.num_sites, *leg.function_, leg.NodeConfig(),
                       leg.TransportConfig());
  // The runtime anchors its own clones; mirror the anchoring on the oracle's
  // instance by re-anchoring whenever the coordinator's sync count moves.
  long seen_full_syncs = 0;

  const InvariantOptions tolerances =
      ResolveTolerances(config, leg.source_.max_step_norm());
  InvariantChecker checker(tolerances);
  std::unique_ptr<AccuracyAuditor> auditor = MakeAuditor(config, tolerances);
  long prev_full = 0, prev_degraded = 0;
  // Deadline-degraded barrier cycles (CoordinatorNode::degraded_cycles is
  // observability state, not checkpointed — the hook below re-bases it).
  long prev_degraded_cycles = 0;

  // Rejoin-convergence tracking: a crashed-and-recovered site must hold an
  // anchor at least as fresh as its recovery epoch within this horizon
  // (covers the grant handshake plus retries under 30% loss; a quarantined
  // flapper gets its deadline extended by the quarantine length).
  constexpr long kRejoinHorizon = 40;
  std::vector<bool> prev_crashed(config.num_sites, false);
  std::vector<long> rejoin_deadline(config.num_sites, -1);
  std::vector<long> recovered_at(config.num_sites, -1);
  std::vector<std::int64_t> epoch_needed(config.num_sites, 0);

  // Coordinator-recovery invariants. The hook fires right after each
  // recovery with the oracle reconstruction computed from the same store
  // BEFORE the coordinator recovered; the reconvergence deadline then
  // requires a completed full sync within the horizon (generous: covers the
  // scheduled resync plus retries under the hostile fault profiles).
  constexpr long kRecoveryHorizon = 60;
  long recovery_deadline = -1;
  long recovery_recovered_at = -1;
  long full_at_recovery = 0;
  leg.coord_recovery_hook_ = [&](long t,
                                 const Result<Reconstruction>& expected) {
    const CoordinatorNode& coord = driver.coordinator();
    checker.CheckRecoveryEpoch(t, driver.last_crash_epoch(), coord.epoch());
    if (!expected.ok()) {
      checker.CheckRecoveryState(
          t, false,
          "oracle reconstruction failed but recovery succeeded: " +
              expected.status().message());
    } else {
      const CoordinatorCheckpoint& s = expected.ValueOrDie().state;
      std::string mismatch;
      if (coord.epoch() != s.epoch + 1) {
        mismatch = "epoch";
      } else if (!(coord.estimate() == s.estimate)) {
        mismatch = "estimate";
      } else if (coord.BelievesAbove() != s.believes_above) {
        mismatch = "believes_above";
      } else if (coord.epsilon_T() != s.epsilon_t) {
        mismatch = "epsilon_t";
      } else if (coord.full_syncs() != s.full_syncs) {
        mismatch = "full_syncs";
      } else if (coord.partial_resolutions() != s.partial_resolutions) {
        mismatch = "partial_resolutions";
      } else if (coord.degraded_syncs() != s.degraded_syncs) {
        mismatch = "degraded_syncs";
      }
      checker.CheckRecoveryState(
          t, mismatch.empty(),
          mismatch.empty()
              ? ""
              : "recovered coordinator diverges from the oracle "
                "reconstruction at field " +
                    mismatch);
    }
    recovery_recovered_at = t;
    recovery_deadline = t + kRecoveryHorizon;
    full_at_recovery = coord.full_syncs();
    prev_degraded_cycles = coord.degraded_cycles();  // fresh incarnation: 0
  };

  leg.Drive(&driver, [&](long t, RuntimeDriver& d) {
    if (d.coordinator_down()) {
      // Accounting stays cumulative and checkable; everything that reads
      // the coordinator pauses. Deadlines stretch by the downtime (no
      // handshake can progress), and a site recovering while the
      // coordinator is down gets its epoch requirement resolved at the
      // first up cycle (sentinel -1). Cumulative epoch-fencing counters are
      // re-checked on the next up cycle, so nothing is lost by skipping.
      const SimTransport* sim = d.sim_transport();
      checker.CheckAccounting(
          t, sim->site_messages_sent(),
          sim->messages_sent() - sim->site_messages_sent(),
          sim->messages_sent(), sim->bytes_sent());
      for (int i = 0; i < config.num_sites; ++i) {
        const bool crashed = sim->IsCrashed(i);
        if (crashed) {
          rejoin_deadline[i] = -1;
        } else if (prev_crashed[i]) {
          rejoin_deadline[i] = t + kRejoinHorizon;
          recovered_at[i] = t;
          epoch_needed[i] = -1;
        } else if (rejoin_deadline[i] >= 0) {
          ++rejoin_deadline[i];
        }
        prev_crashed[i] = crashed;
      }
      if (recovery_deadline >= 0) ++recovery_deadline;
      return;
    }
    // Re-anchor the oracle's function to the coordinator's fresh estimate
    // before evaluating truth, exactly as every node re-anchored.
    if (d.coordinator().full_syncs() > seen_full_syncs) {
      seen_full_syncs = d.coordinator().full_syncs();
      leg.function_->OnSync(d.coordinator().estimate());
    }
    const RuntimeLeg::Oracle oracle = leg.Truth();

    checker.CheckBelief(t, d.coordinator().BelievesAbove(), oracle.above,
                        oracle.surface_distance);
    const long full = d.coordinator().full_syncs();
    const long degraded = d.coordinator().degraded_syncs();
    // The initialization sync (full == 1 at t == 1) completed inside
    // Initialize() with the pre-loop vectors, one observation behind this
    // cycle's oracle — comparing it against t == 1 truth would falsely fire
    // whenever the mean crosses the threshold on the very first step.
    if (full == prev_full + 1 && degraded == prev_degraded &&
        !(t == 1 && full == 1)) {
      checker.CheckPostSyncExact(t, d.coordinator().BelievesAbove(),
                                 oracle.above);
    }
    prev_full = full;
    prev_degraded = degraded;

    const SimTransport* sim = d.sim_transport();
    checker.CheckAccounting(
        t, sim->site_messages_sent(),
        sim->messages_sent() - sim->site_messages_sent(),
        sim->messages_sent(), sim->bytes_sent());
    if (oracle.above != d.coordinator().BelievesAbove()) ++report.fn_cycles;

    if (auditor != nullptr) {
      AccuracyAuditor::CycleSample sample;
      sample.cycle = t;
      sample.believed_above = d.coordinator().BelievesAbove();
      sample.truth_above = oracle.above;
      sample.estimate_value = leg.function_->Value(d.coordinator().estimate());
      sample.truth_value = oracle.value;
      sample.surface_distance = oracle.surface_distance;
      sample.span = d.coordinator().cycle_span();
      sample.degraded =
          d.coordinator().degraded_cycles() != prev_degraded_cycles;
      auditor->ObserveCycle(sample);
    }
    prev_degraded_cycles = d.coordinator().degraded_cycles();

    // Epoch-fencing invariant: no stale-epoch message ever reaches an
    // apply path, anywhere in the deployment.
    long stale_applied = d.coordinator().audit().stale_epoch_applied;
    for (int i = 0; i < config.num_sites; ++i) {
      stale_applied += d.site(i).audit().stale_epoch_applied;
    }
    checker.CheckEpochFencing(t, stale_applied);

    // Rejoin-convergence invariant.
    for (int i = 0; i < config.num_sites; ++i) {
      const bool crashed = sim->IsCrashed(i);
      if (crashed) {
        rejoin_deadline[i] = -1;  // re-crashed: re-armed at next recovery
      } else if (prev_crashed[i]) {
        rejoin_deadline[i] = t + kRejoinHorizon;
        recovered_at[i] = t;
        epoch_needed[i] = d.coordinator().epoch();
      }
      prev_crashed[i] = crashed;
      if (rejoin_deadline[i] < 0) continue;
      if (epoch_needed[i] < 0) epoch_needed[i] = d.coordinator().epoch();
      if (d.site(i).anchored() && d.site(i).epoch() >= epoch_needed[i]) {
        rejoin_deadline[i] = -1;  // converged
      } else if (t >= rejoin_deadline[i]) {
        if (d.coordinator().failure_detector().IsQuarantined(i)) {
          // A flapper's rejoin is legitimately deferred; re-arm past the
          // quarantine rather than reporting a false violation.
          rejoin_deadline[i] = t + kRejoinHorizon;
        } else {
          checker.CheckRejoinConvergence(t, i, recovered_at[i], false);
          rejoin_deadline[i] = -1;
        }
      }
    }

    // Recovery reconvergence: a completed full sync clears the deadline.
    if (recovery_deadline >= 0) {
      if (d.coordinator().full_syncs() > full_at_recovery) {
        recovery_deadline = -1;
      } else if (t >= recovery_deadline) {
        checker.CheckRecoveryReconvergence(t, recovery_recovered_at, false);
        recovery_deadline = -1;
      }
    }
  });

  // A crash landing in the final cycles can leave the coordinator down at
  // the end of the run; recover so the end-of-run state reads below are
  // valid (and the last incarnation's recovery stats fold into the totals).
  if (driver.coordinator_down()) driver.RecoverCoordinator();

  report.cycles = config.cycles;
  report.full_syncs = driver.coordinator().full_syncs();
  report.degraded_syncs = driver.coordinator().degraded_syncs();
  report.retransmissions = driver.reliable_transport().stats().retransmissions;
  report.rejoins_granted = driver.coordinator().audit().rejoins_granted;
  report.stale_epoch_drops = driver.coordinator().audit().stale_epoch_drops;
  for (int i = 0; i < config.num_sites; ++i) {
    report.stale_epoch_drops += driver.site(i).audit().stale_epoch_drops;
  }
  report.coordinator_crashes = driver.coordinator_crashes();
  const CoordinatorNode::RecoveryStats recovery = driver.recovery_totals();
  report.wal_records_replayed = recovery.wal_records_replayed;
  report.snapshots_discarded = recovery.snapshots_discarded;
  report.degraded_cycles = driver.coordinator().degraded_cycles();
  report.lag_quarantines =
      driver.coordinator().failure_detector().total_lagging_verdicts();
  if (auditor != nullptr) report.audit = auditor->report();
  driver.PublishMetrics();
  FillReport(checker, config, "runtime", &report);
  return report;
}

StressReport RunTransportParity(const StressConfig& config) {
  SGM_CHECK(config.protocol == StressProtocol::kSgm);
  StressReport report;

  // Two independent but identically-seeded legs: same workload, same node
  // seeds, different transport wiring. Faults must be off — parity is the
  // faults-off conservation law.
  StressConfig faultless = config;
  faultless.drop_probability = 0.0;
  faultless.duplicate_probability = 0.0;
  faultless.max_delay_rounds = 0;
  faultless.crash_probability = 0.0;
  faultless.corrupt_probability = 0.0;
  // Two drivers share this process; attaching one telemetry context would
  // conflate their counters, so the parity leg runs untelemetered.
  faultless.telemetry = nullptr;

  RuntimeLeg leg(faultless);
  RuntimeDriver bus_driver(faultless.num_sites, *leg.function_,
                           leg.NodeConfig());
  RuntimeDriver sim_driver(faultless.num_sites, *leg.function_,
                           leg.NodeConfig(), leg.TransportConfig());

  InvariantChecker checker(InvariantOptions{});
  std::vector<Vector> locals;
  leg.source_.Advance(&locals);
  bus_driver.Initialize(locals);
  sim_driver.Initialize(locals);

  for (long t = 1; t <= faultless.cycles; ++t) {
    leg.source_.Advance(&locals);
    bus_driver.Tick(locals);
    sim_driver.Tick(locals);

    const InMemoryBus& bus = bus_driver.bus();
    const SimTransport& sim = *sim_driver.sim_transport();
    checker.CheckTransportParity(t, "InMemoryBus vs SimTransport",
                                 bus.messages_sent(), sim.messages_sent(),
                                 bus.site_messages_sent(),
                                 sim.site_messages_sent(), bus.bytes_sent(),
                                 sim.bytes_sent());
    checker.CheckTransportParity(
        t, "transport totals (acks included)", bus.transport_messages_sent(),
        sim.transport_messages_sent(), 0, 0, bus.transport_bytes_sent(),
        sim.transport_bytes_sent());
    // With faults off every ack lands in the round it was sent: the
    // reliability layer must never retransmit, and its overhead must stay
    // invisible to the paper-comparable counters (checked above — those
    // exclude control traffic by construction).
    checker.CheckTransportParity(
        t, "retransmissions under faultless wiring",
        bus_driver.reliable_transport().stats().retransmissions, 0,
        sim_driver.reliable_transport().stats().retransmissions, 0, 0.0, 0.0);
    if (bus_driver.coordinator().BelievesAbove() !=
            sim_driver.coordinator().BelievesAbove() ||
        bus_driver.coordinator().full_syncs() !=
            sim_driver.coordinator().full_syncs() ||
        !(bus_driver.coordinator().estimate() ==
          sim_driver.coordinator().estimate())) {
      checker.CheckTransportParity(
          t, "coordinator end-state diverged", 0, 1,
          bus_driver.coordinator().full_syncs(),
          sim_driver.coordinator().full_syncs(), 0.0, 0.0);
    }
  }

  report.cycles = faultless.cycles;
  report.full_syncs = bus_driver.coordinator().full_syncs();
  FillReport(checker, faultless, "parity", &report);
  return report;
}

std::vector<StressReport> RunStressSuite(std::uint64_t seed, bool audit,
                                         double coord_crash, int coord_down) {
  std::vector<StressReport> reports;

  // Sim legs: the full protocol × function matrix.
  int leg_index = 0;
  for (StressProtocol protocol :
       {StressProtocol::kGm, StressProtocol::kBgm, StressProtocol::kSgm,
        StressProtocol::kCvsgm}) {
    for (StressFunction function :
         {StressFunction::kL2Norm, StressFunction::kLinfDistance}) {
      StressConfig config;
      config.seed = DeriveSeed(seed, 1000 + leg_index++);
      config.protocol = protocol;
      config.function = function;
      config.audit = audit;
      reports.push_back(RunSimStress(config));
    }
  }

  // Runtime legs: the deployment shape under escalating fault profiles.
  struct FaultProfile {
    double drop, dup;
    int delay;
    double crash;
    double corrupt;
    double stall;
  };
  const FaultProfile profiles[] = {
      {0.0, 0.0, 0, 0.0, 0.0, 0.0},     // faultless baseline
      {0.15, 0.05, 2, 0.0, 0.0, 0.0},   // lossy, duplicating, reordering
      {0.25, 0.05, 3, 0.05, 0.0, 0.0},  // hostile links + site crash/recovery
      {0.30, 0.10, 3, 0.05, 0.02, 0.0}, // heavy loss+dup plus wire bit flips
      {0.0, 0.0, 0, 0.0, 0.0, 0.10},    // pure stragglers on clean links
      {0.15, 0.05, 2, 0.0, 0.0, 0.10},  // stragglers behind lossy links
  };
  for (StressFunction function :
       {StressFunction::kL2Norm, StressFunction::kLinfDistance}) {
    for (const FaultProfile& profile : profiles) {
      StressConfig config;
      config.seed = DeriveSeed(seed, 2000 + leg_index++);
      config.protocol = StressProtocol::kSgm;
      config.function = function;
      config.drop_probability = profile.drop;
      config.duplicate_probability = profile.dup;
      config.max_delay_rounds = profile.delay;
      config.crash_probability = profile.crash;
      config.corrupt_probability = profile.corrupt;
      config.stall_probability = profile.stall;
      config.coord_crash_probability = coord_crash;
      config.max_coord_crash_cycles = coord_down;
      config.audit = audit;
      reports.push_back(RunRuntimeStress(config));
    }
  }

  // Conservation across transport layers.
  StressConfig parity;
  parity.seed = DeriveSeed(seed, 3000);
  parity.protocol = StressProtocol::kSgm;
  reports.push_back(RunTransportParity(parity));

  return reports;
}

}  // namespace sgm
