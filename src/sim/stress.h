#ifndef SGM_SIM_STRESS_H_
#define SGM_SIM_STRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/accuracy_auditor.h"
#include "sim/invariants.h"

namespace sgm {

struct Telemetry;

/// Protocols of the stress matrix. GM and BGM are exact (zero tolerated
/// disagreement); SGM and CVSGM are the paper's approximate schemes and are
/// checked against their (ε, δ) self-correction contract.
enum class StressProtocol { kGm, kBgm, kSgm, kCvsgm };

/// Threshold functions of the stress matrix: one plain norm query and one
/// reference-anchored distance query (re-anchors at every sync — the
/// paper's Jester L∞ workload).
enum class StressFunction { kL2Norm, kLinfDistance };

const char* ToString(StressProtocol protocol);
const char* ToString(StressFunction function);
bool ParseStressProtocol(const std::string& text, StressProtocol* out);
bool ParseStressFunction(const std::string& text, StressFunction* out);

/// One fully-specified stress run. Everything stochastic — the workload,
/// the protocol's coin flips, the fault schedule — derives from `seed`, so
/// this struct plus a leg name IS the replay token for any violation.
struct StressConfig {
  std::uint64_t seed = 1;
  StressProtocol protocol = StressProtocol::kSgm;
  StressFunction function = StressFunction::kL2Norm;
  int num_sites = 24;
  long cycles = 300;

  // Fault model (runtime legs; sim legs are transportless).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  int max_delay_rounds = 0;
  /// Per-message probability of a single wire bit flip. The v4 frame CRC
  /// turns every injected flip into a *detected* drop (never a
  /// half-interpreted frame), so this stresses the checksum path rather
  /// than the protocol: the reliability layer retransmits through it.
  double corrupt_probability = 0.0;
  /// Per-cycle probability that one random live site crashes; a crash lasts
  /// uniform-[1, max_crash_cycles] cycles, so staleness stays bounded.
  double crash_probability = 0.0;
  int max_crash_cycles = 8;
  /// Per-cycle probability that the COORDINATOR crashes (runtime legs
  /// only). Half the crashes fire at the cycle boundary, half are armed to
  /// fire inside the next sync cascade's message burst. The coordinator
  /// stays down uniform-[1, max_coord_crash_cycles] cycles, then recovers
  /// from its checkpoint store — with seeded torn-tail / torn-snapshot
  /// storage faults injected first — and the recovery invariants (exact
  /// epoch fence, state == oracle reconstruction, bounded reconvergence)
  /// are checked on the spot.
  double coord_crash_probability = 0.0;
  int max_coord_crash_cycles = 4;
  /// Per-cycle probability that one random live site stalls — goes silent
  /// without losing state for uniform-[1, max_stall_cycles] cycles, the
  /// deterministic stand-in for a SIGSTOP'd or scheduling-starved process.
  /// Stalled sites are reported to the coordinator's barrier-deadline path
  /// each cycle (RuntimeDriver::ReportBarrierLag), so consecutive stalls
  /// drive the lagging → quarantined → rejoined machinery rather than the
  /// heartbeat-death path alone.
  double stall_probability = 0.0;
  int max_stall_cycles = 5;

  // Invariant tolerances; negative = auto (exact protocols get zero
  // tolerance, approximate ones their guarantee-class defaults, widened
  // under fault injection).
  double zone_epsilon = -1.0;
  long max_out_of_zone_run = -1;

  /// Forced-violation demo: collapse both tolerances to zero so the first
  /// benign disagreement cycle of an approximate protocol trips the checker
  /// — proving that a violation prints a deterministically replaying seed.
  bool sabotage_tolerance = false;

  /// Online accuracy audit: classify every cycle TP/FP/FN/TN against the
  /// oracle and check the ε / ε_C bound (see obs/accuracy_auditor.h). The
  /// audit is a pure observer — it shares the invariant checker's resolved
  /// tolerances by default and never changes the run.
  bool audit = false;
  /// Audit tolerance overrides; negative = inherit the invariant checker's
  /// resolved zone_epsilon / max_out_of_zone_run. Setting both to 0 is the
  /// negative-test configuration: any out-of-zone disagreement fires.
  double audit_epsilon = -1.0;
  long audit_max_run = -1;

  /// Optional observability sink (nullable, not owned) threaded through to
  /// every component of the leg. Protocol decisions, fault injection and
  /// paper accounting are identical with or without it; trace timestamps
  /// are logical, so one seed yields one byte-identical trace. The parity
  /// leg ignores it (two drivers in one process would conflate counters).
  Telemetry* telemetry = nullptr;
  /// Head-based trace sampling rate (see RuntimeConfig::trace_sample_rate):
  /// 1.0 keeps the byte-identical full trace; lower rates drop unsampled
  /// cascades and noise events from the trace only — protocol behavior,
  /// counters and the audit plane are unchanged.
  double trace_sample_rate = 1.0;
};

/// Outcome of one stress leg.
struct StressReport {
  StressConfig config;
  std::string leg;  ///< "sim", "runtime" or "parity"
  std::vector<InvariantViolation> violations;
  long cycles = 0;
  long fn_cycles = 0;       ///< cycles with belief != oracle truth
  long full_syncs = 0;
  /// Runtime legs only: syncs that fell back to cached state because a
  /// fault swallowed part of the collection round.
  long degraded_syncs = 0;
  long max_observed_run = 0;  ///< longest out-of-zone disagreement run
  // Runtime legs only: reliability-layer activity (zero on faultless runs).
  long retransmissions = 0;     ///< ack-timeout retransmissions sent
  long rejoins_granted = 0;     ///< coordinator rejoin grants issued
  long stale_epoch_drops = 0;   ///< stale-epoch messages fenced off
  // Runtime legs with coordinator crash injection only.
  long coordinator_crashes = 0;   ///< crash/recover round trips survived
  long wal_records_replayed = 0;  ///< WAL records replayed across recoveries
  long snapshots_discarded = 0;   ///< torn snapshots skipped (fallback hits)
  // Runtime legs with stall injection only (bounded-staleness accounting).
  long degraded_cycles = 0;   ///< barrier cycles closed over a partial quorum
  long lag_quarantines = 0;   ///< kLagging verdicts issued by the detector
  /// Accuracy audit outcome (all-zero unless StressConfig::audit was set).
  AccuracyAuditor::Report audit;
  /// Shell command replaying this exact leg; non-empty iff violations.
  std::string replay_command;

  bool ok() const { return violations.empty(); }
  /// Violations plus the replay command, one block per report.
  std::string Summary() const;
};

/// Sim leg: one simulator protocol against the lock-step oracle (exact
/// global average each cycle) on the seeded ratings workload, checking the
/// zone / self-correction / post-sync / accounting invariants every cycle.
StressReport RunSimStress(const StressConfig& config);

/// Runtime leg: the deployment-shaped SGM (SiteNode/CoordinatorNode) over a
/// seeded fault-injecting SimTransport — drops, duplicates, bounded delays,
/// site crash/recovery — against the same lock-step oracle. The oracle
/// freezes a crashed site's vector (it observes nothing until recovery).
/// `config.protocol` must be kSgm: the message-passing runtime implements
/// the sampling protocol.
StressReport RunRuntimeStress(const StressConfig& config);

/// Parity leg: the identical runtime run wired once over a plain
/// InMemoryBus and once over a faults-off SimTransport. Message/byte
/// accounting and the coordinator's end state (belief, estimate, sync
/// counts) must agree exactly on every cycle — the conservation-across-
/// transport-layers invariant.
StressReport RunTransportParity(const StressConfig& config);

/// The full matrix for one master seed: {GM, BGM, SGM, CVSGM} × {L2, L∞}
/// sim legs, runtime legs under increasingly hostile fault profiles (for
/// both functions), and a parity leg. Sub-seeds are derived per leg so the
/// legs stay independent. With `audit` the accuracy auditor rides along on
/// every sim/runtime leg (the parity leg has no oracle to audit against).
/// With `coord_crash > 0` every runtime leg additionally injects
/// coordinator crashes at that per-cycle probability (downtime bounded by
/// `coord_down`) and checks the recovery invariants.
std::vector<StressReport> RunStressSuite(std::uint64_t seed,
                                         bool audit = false,
                                         double coord_crash = 0.0,
                                         int coord_down = 4);

/// The one-command replay line printed alongside violations, e.g.
/// `dst_stress --leg=sim --protocol=SGM --function=l2 --seed=77 ...`.
std::string FormatReplayCommand(const StressConfig& config,
                                const std::string& leg);

}  // namespace sgm

#endif  // SGM_SIM_STRESS_H_
