#include "sketch/ams_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sgm {

namespace {

// Strong 64-bit mixer (splitmix64 finalizer); applied to (seed ^ item) it
// gives hash values that comfortably pass the four-wise-independence needs
// of AMS in practice.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

AmsSketch::AmsSketch(int depth, int width, std::uint64_t seed)
    : depth_(depth),
      width_(width),
      counters_(static_cast<std::size_t>(depth) *
                static_cast<std::size_t>(width)) {
  SGM_CHECK_MSG(depth > 0 && width > 0, "sketch depth/width must be positive");
  row_seeds_.reserve(depth);
  std::uint64_t s = seed;
  for (int r = 0; r < depth; ++r) {
    s = Mix(s + 0x9e3779b97f4a7c15ULL);
    row_seeds_.push_back(s);
  }
}

double AmsSketch::Sign(int row, std::uint64_t item) const {
  return (Mix(row_seeds_[row] ^ item) & 1ULL) ? 1.0 : -1.0;
}

int AmsSketch::Bucket(int row, std::uint64_t item) const {
  return static_cast<int>(Mix(row_seeds_[row] + 0x51ULL ^ item) %
                          static_cast<std::uint64_t>(width_));
}

void AmsSketch::Update(std::uint64_t item, double weight) {
  for (int r = 0; r < depth_; ++r) {
    counters_[static_cast<std::size_t>(r) * width_ + Bucket(r, item)] +=
        weight * Sign(r, item);
  }
}

double AmsSketch::SelfJoinFromCounters(const Vector& counters, int depth,
                                       int width) {
  SGM_CHECK(counters.dim() ==
            static_cast<std::size_t>(depth) * static_cast<std::size_t>(width));
  std::vector<double> row_estimates(depth);
  for (int r = 0; r < depth; ++r) {
    double sum = 0.0;
    for (int c = 0; c < width; ++c) {
      const double x = counters[static_cast<std::size_t>(r) * width + c];
      sum += x * x;
    }
    row_estimates[r] = sum;
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + depth / 2, row_estimates.end());
  return row_estimates[depth / 2];
}

double AmsSketch::SelfJoinEstimate() const {
  return SelfJoinFromCounters(counters_, depth_, width_);
}

double AmsSketch::JoinEstimate(const AmsSketch& other) const {
  SGM_CHECK(depth_ == other.depth_ && width_ == other.width_);
  std::vector<double> row_estimates(depth_);
  for (int r = 0; r < depth_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < width_; ++c) {
      const std::size_t index = static_cast<std::size_t>(r) * width_ + c;
      sum += counters_[index] * other.counters_[index];
    }
    row_estimates[r] = sum;
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + depth_ / 2, row_estimates.end());
  return row_estimates[depth_ / 2];
}

}  // namespace sgm
