#ifndef SGM_SKETCH_AMS_SKETCH_H_
#define SGM_SKETCH_AMS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "core/vector.h"

namespace sgm {

/// AMS (Alon–Matias–Szegedy) sketch over an item domain — the synopsis
/// behind sketch-based geometric monitoring (Garofalakis, Keren & Samoladas,
/// VLDB'13 — the paper's reference [12]).
///
/// The sketch is a depth×width array of counters; item `i` with weight `w`
/// adds `w·ξ_{r}(i)` to counter (r, h_r(i)) for each row r, where ξ ∈ {±1}
/// is four-wise independent. Crucially, the sketch is a *linear* projection
/// of the frequency vector: the sketch of a union of streams equals the sum
/// of per-stream sketches, which is exactly what lets GM/SGM monitor
/// sketch-based join/self-join estimates as functions of the *average*
/// sketch vector across sites.
///
/// All sites of a deployment must share the same SketchSeed so their
/// projections agree coordinate-by-coordinate.
class AmsSketch {
 public:
  /// `depth` independent rows (median), `width` counters per row (means);
  /// `seed` fixes the hash functions — identical across sites.
  AmsSketch(int depth, int width, std::uint64_t seed);

  /// Adds `weight` occurrences of `item`.
  void Update(std::uint64_t item, double weight = 1.0);

  /// The flattened depth·width counter vector — the local measurements
  /// vector a monitoring site ships into GM/SGM.
  const Vector& counters() const { return counters_; }

  /// Self-join size (second frequency moment F₂) estimate: median over rows
  /// of the sum of squared counters.
  double SelfJoinEstimate() const;

  /// Join size estimate between this sketch and `other` (same geometry and
  /// seed): median over rows of the row inner products.
  double JoinEstimate(const AmsSketch& other) const;

  int depth() const { return depth_; }
  int width() const { return width_; }

  /// Estimates F₂ directly from a flattened counter vector with the given
  /// geometry — the MonitoredFunction-facing entry point (see
  /// SketchSelfJoin below).
  static double SelfJoinFromCounters(const Vector& counters, int depth,
                                     int width);

 private:
  /// Four-wise-independent ±1 sign for (row, item).
  double Sign(int row, std::uint64_t item) const;
  /// Bucket index for (row, item).
  int Bucket(int row, std::uint64_t item) const;

  int depth_;
  int width_;
  std::vector<std::uint64_t> row_seeds_;
  Vector counters_;  // row-major depth×width
};

}  // namespace sgm

#endif  // SGM_SKETCH_AMS_SKETCH_H_
