#include "sketch/sketch_functions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/check.h"
#include "sketch/ams_sketch.h"

namespace sgm {

SketchSelfJoin::SketchSelfJoin(int depth, int width)
    : depth_(depth), width_(width) {
  SGM_CHECK_MSG(depth > 0 && width > 0, "sketch depth/width must be positive");
}

double SketchSelfJoin::Value(const Vector& v) const {
  return AmsSketch::SelfJoinFromCounters(v, depth_, width_);
}

int SketchSelfJoin::MedianRow(const Vector& v) const {
  std::vector<double> estimates(depth_);
  for (int r = 0; r < depth_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < width_; ++c) {
      const double x = v[static_cast<std::size_t>(r) * width_ + c];
      sum += x * x;
    }
    estimates[r] = sum;
  }
  std::vector<int> order(depth_);
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + depth_ / 2, order.end(),
                   [&](int a, int b) { return estimates[a] < estimates[b]; });
  return order[depth_ / 2];
}

Vector SketchSelfJoin::Gradient(const Vector& v) const {
  // Subgradient: 2·v on the median row's counters, zero elsewhere.
  SGM_CHECK(v.dim() ==
            static_cast<std::size_t>(depth_) * static_cast<std::size_t>(width_));
  Vector grad(v.dim());
  const int median = MedianRow(v);
  for (int c = 0; c < width_; ++c) {
    const std::size_t index = static_cast<std::size_t>(median) * width_ + c;
    grad[index] = 2.0 * v[index];
  }
  return grad;
}

Interval SketchSelfJoin::RangeOverBall(const Ball& ball) const {
  const Vector& center = ball.center();
  SGM_CHECK(center.dim() == static_cast<std::size_t>(depth_) *
                                static_cast<std::size_t>(width_));
  const double radius = ball.radius();
  std::vector<double> lows(depth_), highs(depth_);
  for (int r = 0; r < depth_; ++r) {
    double sq = 0.0;
    for (int c = 0; c < width_; ++c) {
      const double x = center[static_cast<std::size_t>(r) * width_ + c];
      sq += x * x;
    }
    const double row_norm = std::sqrt(sq);
    const double lo = std::max(0.0, row_norm - radius);
    const double hi = row_norm + radius;
    lows[r] = lo * lo;
    highs[r] = hi * hi;
  }
  std::nth_element(lows.begin(), lows.begin() + depth_ / 2, lows.end());
  std::nth_element(highs.begin(), highs.begin() + depth_ / 2, highs.end());
  return Interval{lows[depth_ / 2], highs[depth_ / 2]};
}

bool SketchSelfJoin::HomogeneityDegree(double* degree) const {
  *degree = 2.0;
  return true;
}

}  // namespace sgm
