#ifndef SGM_SKETCH_SKETCH_FUNCTIONS_H_
#define SGM_SKETCH_SKETCH_FUNCTIONS_H_

#include <memory>
#include <string>

#include "functions/monitored_function.h"

namespace sgm {

/// Self-join (F₂) estimate over an averaged AMS-sketch vector:
///   f(v) = median over rows r of Σ_c v[r,c]²
///
/// The monitored function of sketch-based geometric monitoring [12]: sites
/// sketch their local streams with a shared-seed AmsSketch, the sketch is a
/// linear projection, so the average sketch vector is the sketch of the
/// averaged stream and f estimates its self-join size. Homogeneous of
/// degree 2, so Section 7's sum transformation (T/N²) covers union-stream
/// semantics.
///
/// Geometry: the median is monotone in every row estimate, so the enclosure
/// [median_r(lo_r), median_r(hi_r)] over per-row norm bounds
/// lo_r = max(0, ‖v_r‖ − ρ)², hi_r = (‖v_r‖ + ρ)² is conservative (each row
/// is granted the whole ball radius).
class SketchSelfJoin final : public MonitoredFunction {
 public:
  SketchSelfJoin(int depth, int width);

  std::string name() const override { return "sketch_self_join"; }

  double Value(const Vector& v) const override;
  Vector Gradient(const Vector& v) const override;
  Interval RangeOverBall(const Ball& ball) const override;
  bool HomogeneityDegree(double* degree) const override;

  std::unique_ptr<MonitoredFunction> Clone() const override {
    return std::make_unique<SketchSelfJoin>(*this);
  }

 private:
  /// Index of the median row by sum-of-squares at `v`.
  int MedianRow(const Vector& v) const;

  int depth_;
  int width_;
};

}  // namespace sgm

#endif  // SGM_SKETCH_SKETCH_FUNCTIONS_H_
