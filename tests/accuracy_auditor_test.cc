// Online accuracy auditor: per-cycle TP/FP/FN/TN classification against the
// lock-step oracle, the out-of-zone run bound, telemetry publication, and
// the end-to-end positive/negative contract on real stress legs — a clean
// audited run reports zero ε-bound violations, and deliberately collapsing
// the tolerances makes the auditor fire (the ISSUE's negative test).

#include "obs/accuracy_auditor.h"

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "sim/stress.h"

namespace sgm {
namespace {

AccuracyAuditor::CycleSample Sample(long cycle, bool believed, bool truth,
                                    double estimate, double exact,
                                    double surface_distance,
                                    std::int64_t span = 0) {
  AccuracyAuditor::CycleSample sample;
  sample.cycle = cycle;
  sample.believed_above = believed;
  sample.truth_above = truth;
  sample.estimate_value = estimate;
  sample.truth_value = exact;
  sample.surface_distance = surface_distance;
  sample.span = span;
  return sample;
}

TEST(AccuracyAuditorTest, ClassifiesAllFourVerdicts) {
  AccuracyAuditorConfig config;
  config.epsilon = 0.5;
  config.max_out_of_zone_run = 10;
  AccuracyAuditor auditor(config);

  EXPECT_EQ(auditor.ObserveCycle(Sample(1, true, true, 1.2, 1.1, 0.6)),
            AccuracyAuditor::Verdict::kTruePositive);
  EXPECT_EQ(auditor.ObserveCycle(Sample(2, false, false, 0.1, 0.2, 0.6)),
            AccuracyAuditor::Verdict::kTrueNegative);
  EXPECT_EQ(auditor.ObserveCycle(Sample(3, true, false, 1.2, 0.2, 0.1)),
            AccuracyAuditor::Verdict::kFalsePositive);
  EXPECT_EQ(auditor.ObserveCycle(Sample(4, false, true, 0.1, 1.2, 0.1)),
            AccuracyAuditor::Verdict::kFalseNegative);

  const AccuracyAuditor::Report& report = auditor.report();
  EXPECT_EQ(report.cycles, 4);
  EXPECT_EQ(report.true_positives, 1);
  EXPECT_EQ(report.true_negatives, 1);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_EQ(report.false_negatives, 1);
  EXPECT_EQ(report.disagreements(), 2);
  // Both disagreements sat inside the ε zone: benign, no bound pressure.
  EXPECT_EQ(report.in_zone_disagreements, 2);
  EXPECT_EQ(report.out_of_zone_disagreements, 0);
  EXPECT_EQ(report.bound_violations, 0);
  EXPECT_DOUBLE_EQ(report.fn_rate(), 0.0);
  // |f(v̂) − f(v)| tracked across all cycles: max is the 1.1 FN gap.
  EXPECT_NEAR(report.max_abs_error, 1.1, 1e-12);
  EXPECT_TRUE(report.ok());
}

TEST(AccuracyAuditorTest, ToleratesOutOfZoneRunUpToHorizon) {
  AccuracyAuditorConfig config;
  config.epsilon = 0.1;
  config.max_out_of_zone_run = 3;
  AccuracyAuditor auditor(config);

  // Exactly max_out_of_zone_run consecutive out-of-zone FNs: tolerated.
  for (long t = 1; t <= 3; ++t) {
    auditor.ObserveCycle(Sample(t, false, true, 0.1, 1.2, 0.5));
  }
  EXPECT_EQ(auditor.report().bound_violations, 0);
  EXPECT_EQ(auditor.report().longest_out_of_zone_run, 3);
  EXPECT_EQ(auditor.report().out_of_zone_false_negatives, 3);

  // An agreement cycle resets the run.
  auditor.ObserveCycle(Sample(4, true, true, 1.2, 1.2, 0.5));
  for (long t = 5; t <= 7; ++t) {
    auditor.ObserveCycle(Sample(t, false, true, 0.1, 1.2, 0.5));
  }
  EXPECT_EQ(auditor.report().bound_violations, 0);

  // One more pushes the run past the horizon: the bound fires.
  auditor.ObserveCycle(Sample(8, false, true, 0.1, 1.2, 0.5, /*span=*/42));
  EXPECT_EQ(auditor.report().bound_violations, 1);
  EXPECT_EQ(auditor.report().first_violation_cycle, 8);
  EXPECT_FALSE(auditor.report().ok());
}

TEST(AccuracyAuditorTest, ViolationCarriesTheRunsOpeningSpan) {
  AccuracyAuditorConfig config;
  config.epsilon = 0.1;
  config.max_out_of_zone_run = 1;
  AccuracyAuditor auditor(config);

  // The run opens at cycle 1 under span 7; the violation at cycle 2 must
  // attribute to that opening cascade, not to whatever span came later.
  auditor.ObserveCycle(Sample(1, false, true, 0.1, 1.2, 0.5, /*span=*/7));
  auditor.ObserveCycle(Sample(2, false, true, 0.1, 1.2, 0.5, /*span=*/9));
  EXPECT_EQ(auditor.report().bound_violations, 1);
  EXPECT_EQ(auditor.report().first_violation_span, 7);
}

TEST(AccuracyAuditorTest, InZoneCycleResetsTheRun) {
  AccuracyAuditorConfig config;
  config.epsilon = 0.4;
  config.max_out_of_zone_run = 2;
  AccuracyAuditor auditor(config);

  auditor.ObserveCycle(Sample(1, false, true, 0.1, 1.2, 0.5));
  auditor.ObserveCycle(Sample(2, false, true, 0.1, 1.2, 0.5));
  // Still disagreeing, but the mean moved into the ε zone: the protocol is
  // within its allowance, so the out-of-zone run ends.
  auditor.ObserveCycle(Sample(3, false, true, 0.1, 1.2, 0.3));
  auditor.ObserveCycle(Sample(4, false, true, 0.1, 1.2, 0.5));
  auditor.ObserveCycle(Sample(5, false, true, 0.1, 1.2, 0.5));
  EXPECT_EQ(auditor.report().bound_violations, 0);
  EXPECT_EQ(auditor.report().in_zone_disagreements, 1);
  EXPECT_EQ(auditor.report().out_of_zone_disagreements, 4);
}

TEST(AccuracyAuditorTest, PublishesVerdictCountersAndErrorHistogram) {
  Telemetry telemetry;
  AccuracyAuditorConfig config;
  config.epsilon = 0.5;
  config.max_out_of_zone_run = 10;
  config.telemetry = &telemetry;
  AccuracyAuditor auditor(config);

  auditor.ObserveCycle(Sample(1, true, true, 1.5, 1.0, 0.6));
  auditor.ObserveCycle(Sample(2, false, true, 0.1, 1.2, 0.1));

  MetricRegistry& reg = telemetry.registry;
  EXPECT_EQ(reg.GetCounter("audit.cycles")->value(), 2);
  EXPECT_EQ(reg.GetCounter("audit.true_positives")->value(), 1);
  EXPECT_EQ(reg.GetCounter("audit.false_negatives")->value(), 1);
  EXPECT_EQ(reg.GetCounter("audit.bound_violations")->value(), 0);
  EXPECT_EQ(reg.GetHistogram("audit.abs_error",
                             AccuracyAuditor::ErrorBuckets())->count(), 2);
  EXPECT_NEAR(reg.GetGauge("audit.max_abs_error")->value(), 1.1, 1e-12);
  EXPECT_NEAR(reg.GetGauge("audit.abs_error_last")->value(), 1.1, 1e-12);
}

TEST(AccuracyAuditorTest, ViolationEmitsBoundViolationTraceEventWithSpan) {
  Telemetry telemetry;
  AccuracyAuditorConfig config;
  config.epsilon = 0.0;
  config.max_out_of_zone_run = 0;
  config.telemetry = &telemetry;
  AccuracyAuditor auditor(config);

  auditor.ObserveCycle(Sample(1, false, true, 0.1, 1.2, 0.5, /*span=*/13));

  bool found = false;
  for (const TraceEvent& event : telemetry.trace.events()) {
    if (event.name != "bound_violation") continue;
    found = true;
    EXPECT_EQ(event.cat, "audit");
    bool has_span = false;
    for (const TraceArg& arg : event.args) {
      if (arg.key == "span") {
        has_span = true;
        EXPECT_EQ(arg.int_value, 13);
      }
      if (arg.key == "kind") EXPECT_EQ(arg.string_value, "false_negative");
    }
    EXPECT_TRUE(has_span);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end: the audited stress legs.

TEST(AccuracyAuditorStressTest, CleanRuntimeLegReportsZeroViolations) {
  StressConfig config;
  config.seed = 7;
  config.protocol = StressProtocol::kSgm;
  config.cycles = 150;
  config.drop_probability = 0.25;
  config.duplicate_probability = 0.05;
  config.max_delay_rounds = 3;
  config.crash_probability = 0.05;
  config.audit = true;
  const StressReport report = RunRuntimeStress(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.audit.cycles, config.cycles);
  EXPECT_EQ(report.audit.bound_violations, 0);
  EXPECT_LE(report.audit.fn_rate(), 0.11);  // δ + 0.01 with default δ = 0.1
  // The verdict partition covers every cycle.
  EXPECT_EQ(report.audit.true_positives + report.audit.true_negatives +
                report.audit.false_positives + report.audit.false_negatives,
            report.audit.cycles);
}

TEST(AccuracyAuditorStressTest, AuditedSimLegMatchesCheckerFnCount) {
  StressConfig config;
  config.seed = 11;
  config.protocol = StressProtocol::kCvsgm;
  config.function = StressFunction::kL2Norm;
  config.cycles = 200;
  config.audit = true;
  const StressReport report = RunSimStress(config);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // The auditor's disagreement count is the harness's FN-cycle count: both
  // observe the same oracle, so they must agree exactly.
  EXPECT_EQ(report.audit.disagreements(), report.fn_cycles);
  EXPECT_EQ(report.audit.bound_violations, 0);
}

TEST(AccuracyAuditorStressTest, CollapsedTolerancesFireOnApproximateRun) {
  // The deliberate negative test: with the audit zone collapsed to exact
  // agreement, any benign disagreement cycle of an approximate protocol
  // becomes a bound violation — proving the auditor actually bites.
  StressConfig config;
  config.seed = 7;
  config.protocol = StressProtocol::kSgm;
  config.cycles = 150;
  config.drop_probability = 0.25;
  config.duplicate_probability = 0.05;
  config.max_delay_rounds = 3;
  config.crash_probability = 0.05;
  config.audit = true;
  config.audit_epsilon = 0.0;
  config.audit_max_run = 0;
  const StressReport report = RunRuntimeStress(config);
  // The protocol invariants still hold (the *checker* kept its tolerances);
  // only the audit fires.
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.audit.bound_violations, 0);
  EXPECT_GE(report.audit.first_violation_cycle, 0);
  EXPECT_NE(report.audit.first_violation_span, 0)
      << "violation must attribute the offending sync-cycle span";
  EXPECT_FALSE(report.audit.ok());
}

}  // namespace
}  // namespace sgm
