// Unit tests for the online anomaly detector (obs/anomaly.h): Welford
// z-score banding, warmup/cooldown discipline, zero-tolerance signals, the
// determinism contract (identical streams + config → byte-identical alert
// output), and the sink plumbing into the metric registry and trace log.

#include "obs/anomaly.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metric_registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace sgm {
namespace {

AnomalyDetectorConfig OneSignalConfig(const std::string& metric,
                                      double min_delta, long warmup) {
  AnomalyDetectorConfig config;
  config.warmup = 10;
  config.cooldown = 5;
  config.signals.push_back({metric, min_delta, warmup});
  return config;
}

TEST(AnomalyDetectorTest, QuietStreamNeverAlerts) {
  AnomalyDetector detector(OneSignalConfig("m", 1.0, -1));
  for (long cycle = 0; cycle < 200; ++cycle) {
    detector.ObserveCycle(cycle, {{"m", 3 + (cycle % 2)}});  // 3,4,3,4,...
  }
  EXPECT_EQ(detector.alert_count(), 0u);
}

TEST(AnomalyDetectorTest, RegimeShiftFiresOnceUnderCooldown) {
  AnomalyDetector detector(OneSignalConfig("m", 1.0, -1));
  for (long cycle = 0; cycle < 50; ++cycle) {
    detector.ObserveCycle(cycle, {{"m", 3 + (cycle % 2)}});
  }
  // Regime shift: the delta jumps far outside the (tight) learned band.
  detector.ObserveCycle(50, {{"m", 100}});
  detector.ObserveCycle(51, {{"m", 100}});  // inside cooldown: suppressed
  ASSERT_EQ(detector.alert_count(), 1u);
  const Alert alert = detector.alerts()[0];
  EXPECT_EQ(alert.cycle, 50);
  EXPECT_EQ(alert.metric, "m");
  EXPECT_EQ(alert.kind, "spike");
  EXPECT_GT(alert.z, 6.0);
}

TEST(AnomalyDetectorTest, DropBelowBandIsLabelledDrop) {
  AnomalyDetector detector(OneSignalConfig("m", 1.0, -1));
  for (long cycle = 0; cycle < 50; ++cycle) {
    detector.ObserveCycle(cycle, {{"m", 40 + (cycle % 3)}});
  }
  detector.ObserveCycle(50, {{"m", 0}});
  ASSERT_EQ(detector.alert_count(), 1u);
  EXPECT_EQ(detector.alerts()[0].kind, "drop");
}

TEST(AnomalyDetectorTest, WarmupSuppressesEarlyOutliers) {
  AnomalyDetector detector(OneSignalConfig("m", 1.0, -1));
  // The very first samples are wild, but the signal is still warming up.
  detector.ObserveCycle(0, {{"m", 0}});
  detector.ObserveCycle(1, {{"m", 500}});
  detector.ObserveCycle(2, {{"m", 0}});
  EXPECT_EQ(detector.alert_count(), 0u);
}

TEST(AnomalyDetectorTest, MinDeltaFloorsSmallCountJitter) {
  // With a constant history the variance is ~0, so the first full sync of a
  // run would z-explode; min_delta keeps small absolute moves quiet.
  AnomalyDetector detector(OneSignalConfig("m", 5.0, -1));
  for (long cycle = 0; cycle < 30; ++cycle) {
    detector.ObserveCycle(cycle, {{"m", 0}});
  }
  detector.ObserveCycle(30, {{"m", 4}});  // |dev| = 4 < min_delta = 5
  EXPECT_EQ(detector.alert_count(), 0u);
  detector.ObserveCycle(31, {{"m", 50}});  // far past the floor
  EXPECT_EQ(detector.alert_count(), 1u);
}

TEST(AnomalyDetectorTest, ZeroToleranceSignalFiresOnFirstMotion) {
  // warmup = 0 models "this counter never moves in a healthy run": the
  // first cycle where it does must alert, even with an empty history —
  // that is how a coordinator restart is caught on its first cycle.
  AnomalyDetector detector(OneSignalConfig("recovery.restores", 1.0, 0));
  detector.ObserveCycle(0, {});  // absent metric counts as delta 0
  EXPECT_EQ(detector.alert_count(), 0u);
  detector.ObserveCycle(1, {{"recovery.restores", 1}});
  ASSERT_EQ(detector.alert_count(), 1u);
  EXPECT_EQ(detector.alerts()[0].metric, "recovery.restores");
  EXPECT_EQ(detector.alerts()[0].cycle, 1);
}

TEST(AnomalyDetectorTest, MissingMetricBuildsBaselineAsZero) {
  AnomalyDetector detector(OneSignalConfig("m", 1.0, -1));
  for (long cycle = 0; cycle < 40; ++cycle) {
    detector.ObserveCycle(cycle, {});  // the signal never appears
  }
  detector.ObserveCycle(40, {{"m", 25}});
  EXPECT_EQ(detector.alert_count(), 1u);
}

TEST(AnomalyDetectorTest, IdenticalStreamsProduceByteIdenticalJsonl) {
  const auto run = [](std::ostream& out) {
    AnomalyDetectorConfig config;
    config.seed = 42;
    AnomalyDetector detector(config);
    for (long cycle = 0; cycle < 60; ++cycle) {
      std::map<std::string, long> delta;
      delta["transport.paper_messages"] = 40 + (cycle * 7) % 5;
      delta["coordinator.full_syncs"] = cycle % 9 == 0 ? 1 : 0;
      if (cycle == 50) delta["transport.paper_messages"] = 4000;
      if (cycle == 55) delta["recovery.restores"] = 1;
      detector.ObserveCycle(cycle, delta);
    }
    detector.WriteAlertsJsonl(out);
    return detector.alert_count();
  };
  std::ostringstream first;
  std::ostringstream second;
  const std::size_t count_first = run(first);
  const std::size_t count_second = run(second);
  EXPECT_GE(count_first, 2u);  // the paper-message spike and the restart
  EXPECT_EQ(count_first, count_second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("\"seed\":42"), std::string::npos);
}

TEST(AnomalyDetectorTest, LiveStreamMatchesWriteAlertsJsonl) {
  std::ostringstream live;
  AnomalyDetector detector(OneSignalConfig("m", 1.0, 0));
  detector.AttachStream(&live);
  detector.ObserveCycle(0, {});
  detector.ObserveCycle(1, {{"m", 9}});
  std::ostringstream replay;
  detector.WriteAlertsJsonl(replay);
  EXPECT_EQ(live.str(), replay.str());
}

TEST(AnomalyDetectorTest, SinksRecordCountersAndTraceEvents) {
  MetricRegistry registry;
  TraceLog trace;
  AnomalyDetector detector(OneSignalConfig("m", 1.0, 0));
  detector.SetSinks(&registry, &trace);
  detector.ObserveCycle(0, {});
  detector.ObserveCycle(1, {{"m", 9}});
  EXPECT_EQ(registry.GetCounter("alert.raised")->value(), 1);
  EXPECT_EQ(registry.GetCounter("alert.raised.m")->value(), 1);
  const std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cat, "alert");
  EXPECT_EQ(events[0].name, "alert_raised");
  // The catalog must accept what the detector emits: round-trip the line
  // through the schema validator.
  std::ostringstream line;
  TraceLog::AppendEventJson(events[0], line);
  std::string error;
  EXPECT_TRUE(ValidateTraceJsonLine(line.str(), &error)) << error;
}

TEST(AnomalyDetectorTest, TelemetryWiringObservesSeriesSamples) {
  // End-to-end through Telemetry: EnableAnomalyDetection subscribes the
  // detector to the TimeSeriesExporter sample stream, so per-cycle
  // registry deltas reach ObserveCycle without any manual plumbing.
  Telemetry telemetry;
  AnomalyDetectorConfig config;
  config.signals.push_back({"m", 1.0, 0});
  telemetry.EnableAnomalyDetection(config);
  Counter* counter = telemetry.registry.GetCounter("m");
  telemetry.series->Sample(0, telemetry.registry);
  counter->Increment();
  counter->Increment();
  telemetry.series->Sample(1, telemetry.registry);
  ASSERT_EQ(telemetry.anomaly->alert_count(), 1u);
  EXPECT_EQ(telemetry.anomaly->alerts()[0].value, 2.0);
}

TEST(AnomalyDetectorTest, DefaultSignalsCoverTheOpsSurface) {
  const std::vector<AnomalySignal> signals = DefaultAnomalySignals();
  std::vector<std::string> names;
  for (const AnomalySignal& signal : signals) names.push_back(signal.metric);
  for (const char* expected :
       {"transport.paper_messages", "coordinator.full_syncs",
        "audit.false_negatives", "transport.retransmissions",
        "recovery.restores"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(AnomalyAlertJsonTest, AppendAlertJsonShape) {
  Alert alert;
  alert.cycle = 7;
  alert.metric = "transport.paper_messages";
  alert.kind = "spike";
  alert.value = 4000;
  alert.mean = 41.5;
  alert.stddev = 1.25;
  alert.z = 3166.5;
  alert.seed = 9;
  std::ostringstream out;
  AppendAlertJson(alert, out);
  EXPECT_EQ(out.str(),
            "{\"cycle\":7,\"metric\":\"transport.paper_messages\","
            "\"kind\":\"spike\",\"value\":4000,\"mean\":41.5,"
            "\"stddev\":1.25,\"z\":3166.5,\"seed\":9}");
}

}  // namespace
}  // namespace sgm
