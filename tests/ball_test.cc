#include "geometry/ball.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sgm {
namespace {

TEST(BallTest, ContainsPoint) {
  Ball b(Vector{0.0, 0.0}, 1.0);
  EXPECT_TRUE(b.Contains(Vector{0.0, 0.0}));
  EXPECT_TRUE(b.Contains(Vector{1.0, 0.0}));  // boundary
  EXPECT_FALSE(b.Contains(Vector{1.01, 0.0}));
}

TEST(BallTest, ContainsBall) {
  Ball outer(Vector{0.0, 0.0}, 2.0);
  Ball inner(Vector{0.5, 0.0}, 1.0);
  Ball crossing(Vector{1.5, 0.0}, 1.0);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(outer.Contains(crossing));
}

TEST(BallTest, DistanceToPoint) {
  Ball b(Vector{0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(Vector{3.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(Vector{0.5, 0.0}), 0.0);
}

TEST(BallTest, SignedDistance) {
  Ball b(Vector{0.0, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(b.SignedDistanceTo(Vector{0.0, 0.0}), -2.0);
  EXPECT_DOUBLE_EQ(b.SignedDistanceTo(Vector{2.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(b.SignedDistanceTo(Vector{5.0, 0.0}), 3.0);
}

TEST(BallTest, Intersects) {
  Ball a(Vector{0.0, 0.0}, 1.0);
  EXPECT_TRUE(a.Intersects(Ball(Vector{1.5, 0.0}, 1.0)));
  EXPECT_TRUE(a.Intersects(Ball(Vector{2.0, 0.0}, 1.0)));  // touching
  EXPECT_FALSE(a.Intersects(Ball(Vector{3.0, 0.0}, 1.0)));
}

TEST(BallTest, LocalConstraintGeometry) {
  // B(e + Δ/2, ‖Δ‖/2) must pass through both e and e + Δ.
  const Vector e{1.0, 2.0, 3.0};
  const Vector drift{2.0, 0.0, -2.0};
  const Ball constraint = Ball::LocalConstraint(e, drift);
  EXPECT_NEAR(constraint.radius(), drift.Norm() / 2.0, 1e-12);
  EXPECT_NEAR(constraint.center().DistanceTo(e), constraint.radius(), 1e-12);
  EXPECT_NEAR(constraint.center().DistanceTo(e + drift), constraint.radius(),
              1e-12);
}

TEST(BallTest, LocalConstraintZeroDrift) {
  const Vector e{1.0, 1.0};
  const Ball constraint = Ball::LocalConstraint(e, Vector{0.0, 0.0});
  EXPECT_EQ(constraint.radius(), 0.0);
  EXPECT_TRUE(constraint.Contains(e));
}

// Sharfman et al.'s covering lemma specialized to one site: every convex
// combination of e and e + Δ lies inside the local-constraint ball.
TEST(BallTest, LocalConstraintCoversSegment) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Vector e(4), drift(4);
    for (int j = 0; j < 4; ++j) {
      e[j] = rng.NextDouble(-5.0, 5.0);
      drift[j] = rng.NextDouble(-3.0, 3.0);
    }
    const Ball constraint = Ball::LocalConstraint(e, drift);
    for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      Vector point = e;
      point.Axpy(lambda, drift);
      EXPECT_TRUE(constraint.Contains(point)) << "lambda=" << lambda;
    }
  }
}

TEST(BallTest, ToStringMentionsRadius) {
  Ball b(Vector{1.0}, 2.5);
  EXPECT_NE(b.ToString().find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace sgm
