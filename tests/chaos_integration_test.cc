// End-to-end chaos harness over real processes and real TCP (CTest labels:
// chaos;integration): four fork()ed site processes run with the seeded
// network-chaos layer enabled (connection resets, stalls, half-open
// partitions), one site process is SIGKILLed mid-cycle and replaced, and the
// fork()ed coordinator process is SIGKILLed mid-run and restarted from its
// file-backed checkpoint store on the same port.
//
// The acceptance invariants, in the order they are checked:
//  * exact epoch fence — the recovery incarnation's epoch is the dead
//    incarnation's durably committed epoch plus one, judged against an
//    independent ReconstructCoordinatorState() of the store;
//  * field-level state match — estimate, belief, cycle and sync counters of
//    the recovered node equal the committed record, not an approximation;
//  * bounded reconvergence — the post-recovery window contains fresh full
//    syncs (the rejoin grants force resyncs) and ends with all sites
//    connected;
//  * accuracy under chaos — the per-cycle belief stream (last incarnation
//    wins for replayed cycles) audited against the generator-derived ground
//    truth stays within the paper's failure allowance: out-of-zone FN rate
//    ≤ δ + 0.01;
//  * quiescence — no unacked reliability entry when the run ends.
//
// Children never run gtest assertions: each invariant failure maps to a
// distinct _exit code (see the tables next to each *ProcessMain), surfaced
// by the parent's waitpid checks. fork() discipline as in
// process_integration_test: no threads exist in a forking process (the
// coordinator children Listen() and fork nothing; the parent forks before
// creating any server).
//
// Knobs: SGM_CHAOS_SEED seeds the fault schedules (default 1, swept by the
// CI chaos job); SGM_CHAOS_ARTIFACTS names a directory to keep the belief
// log, summary and checkpoint store for post-mortem (default: a fresh
// mkdtemp under TMPDIR).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "data/synthetic.h"
#include "functions/l2_norm.h"
#include "obs/accuracy_auditor.h"
#include "obs/anomaly.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/trace_merge.h"
#include "runtime/checkpoint.h"
#include "runtime/coordinator_server.h"
#include "runtime/site_client.h"
#include "sim/stress.h"

namespace sgm {
namespace {

constexpr int kSites = 4;
constexpr long kCycles = 120;       // last cycle index (0 = init sync)
constexpr long kCrashCycle = 50;    // coordinator SIGKILLs itself after this
constexpr long kSiteKillCycle = 30; // victim site SIGKILLs itself here
constexpr int kVictimSite = 2;
constexpr long kCheckpointInterval = 5;

std::uint64_t SeedFromEnv() {
  const char* value = std::getenv("SGM_CHAOS_SEED");
  if (value == nullptr || *value == '\0') return 1;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

/// Artifacts root: the operator-named directory when SGM_CHAOS_ARTIFACTS is
/// set (kept for upload), a fresh mkdtemp otherwise.
std::string ArtifactsDir() {
  const char* named = std::getenv("SGM_CHAOS_ARTIFACTS");
  if (named != nullptr && *named != '\0') {
    ::mkdir(named, 0755);  // fine if it already exists
    return named;
  }
  std::string tmpl = "/tmp/sgm-chaos-XXXXXX";
  const char* dir = ::mkdtemp(tmpl.data());
  SGM_CHECK(dir != nullptr);
  return dir;
}

SyntheticDriftConfig GeneratorConfig() {
  SyntheticDriftConfig config;
  config.num_sites = kSites;
  config.dim = 4;
  config.seed = 23;
  config.global_period = 60;
  // Strong mean reversion makes the states actually track the oscillating
  // anchors (the default 0.02 pull lags a period-60 drift almost entirely
  // away); the peak global norm then lands well above the threshold (3.0),
  // so the run crosses the surface several times and the FN audit below
  // judges real detections.
  config.mean_reversion = 0.2;
  config.global_amplitude = 6.0;
  return config;
}

RuntimeConfig ProtocolConfig() {
  SyntheticDriftGenerator probe(GeneratorConfig());
  RuntimeConfig config;
  config.threshold = 3.0;
  config.max_step_norm = probe.max_step_norm();
  config.drift_norm_cap = probe.max_drift_norm();
  config.seed = 7;
  return config;
}

// ─── Site processes ────────────────────────────────────────────────────────

/// Exit codes: 40 first connect gave up, 41 run ended dirty (reconnect
/// budget exhausted / unrecoverable failure). `self_kill_cycle >= 0` turns
/// the process into the SIGKILL victim: it dies mid-dispatch at that cycle,
/// leaving the coordinator a half-used connection.
[[noreturn]] void SiteProcessMain(int site_id, int port,
                                  std::uint64_t chaos_seed,
                                  long self_kill_cycle) {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  SiteClientConfig config;
  config.site_id = site_id;
  config.num_sites = kSites;
  config.port = port;
  config.runtime = ProtocolConfig();
  // Generous dial budget: it must comfortably bridge the coordinator's
  // death → recovery window on a loaded CI box.
  config.runtime.socket_retry.max_attempts = 600;
  config.runtime.socket_retry.base_backoff_ms = 2;
  config.runtime.socket_retry.max_backoff_ms = 100;
  config.runtime.socket_retry.jitter_seed =
      DeriveSeed(chaos_seed, 900 + static_cast<std::uint64_t>(site_id));
  config.max_reconnects = 64;
  // The seeded fault schedule under test: sparse enough that cycles keep
  // completing, dense enough that every site reconnects a few times.
  config.chaos.seed =
      DeriveSeed(chaos_seed, 700 + static_cast<std::uint64_t>(site_id));
  config.chaos.reset_probability = 0.01;
  config.chaos.stall_probability = 0.02;
  config.chaos.stall_ms = 5;
  config.chaos.half_open_probability = 0.005;

  SiteClient client(norm, config);
  if (!client.Connect()) _exit(40);
  std::vector<Vector> locals;
  long advanced = 0;
  const bool clean = client.Run([&](long cycle) {
    if (self_kill_cycle >= 0 && cycle >= self_kill_cycle) {
      ::kill(::getpid(), SIGKILL);  // crash, not exit: no teardown at all
    }
    while (advanced <= cycle) {
      generator.Advance(&locals);
      ++advanced;
    }
    return locals[site_id];
  });
  if (!clean) _exit(41);
  _exit(0);
}

// ─── Coordinator processes ─────────────────────────────────────────────────

/// Appends one belief record per completed cycle: "cycle belief epoch f(v̂)".
void AppendBeliefLine(FILE* file, long cycle, const CoordinatorServer& server,
                      const L2Norm& norm) {
  std::fprintf(file, "%ld %d %lld %.17g\n", cycle,
               server.BelievesAbove() ? 1 : 0,
               static_cast<long long>(server.Epoch()),
               norm.Value(server.Estimate()));
  std::fflush(file);  // the line must survive the SIGKILL
}

/// First incarnation. Exit codes: 20 bind failed, 21 port pipe failed,
/// 22 hello timeout, 23 belief log unwritable, 24 barrier timeout,
/// 25 outlived its own crash point (the self-SIGKILL did not fire).
[[noreturn]] void CoordinatorProcessMain(int port_pipe, const std::string& dir,
                                         const std::string& beliefs_path) {
  const L2Norm norm;
  FileCheckpointStore store(dir);
  CoordinatorServerConfig config;
  config.num_sites = kSites;
  config.runtime = ProtocolConfig();
  config.runtime.checkpoint_store = &store;
  config.runtime.checkpoint_interval_cycles = kCheckpointInterval;
  CoordinatorServer server(norm, config);
  if (!server.Listen()) _exit(20);
  const int port = server.port();
  if (::write(port_pipe, &port, sizeof(port)) !=
      static_cast<ssize_t>(sizeof(port))) {
    _exit(21);
  }
  ::close(port_pipe);
  if (!server.WaitForSites()) _exit(22);
  FILE* beliefs = std::fopen(beliefs_path.c_str(), "a");
  if (beliefs == nullptr) _exit(23);
  for (long cycle = 0; cycle <= kCycles; ++cycle) {
    if (!server.RunCycle()) _exit(24);
    AppendBeliefLine(beliefs, cycle, server, norm);
    if (cycle == kCrashCycle) {
      // Crash-stop from inside: same SIGKILL death the parent would
      // inflict, but deterministically placed right after a commit —
      // checkpointed state and belief log agree on where the run died.
      ::kill(::getpid(), SIGKILL);
    }
  }
  _exit(25);
}

/// Recovery incarnation: restores from the store the dead one left behind
/// and finishes the schedule. Exit codes — recovery itself: 10 store
/// unreadable, 11 bind failed, 12 Recover() refused; exact fence / state
/// match: 13 epoch fence not committed+1, 14 resume cycle mismatch,
/// 15 estimate mismatch, 16 full-sync counter mismatch, 17 belief mismatch;
/// rest of the run: 18 hello timeout, 19 belief log unwritable, 26 barrier
/// timeout; reconvergence: 30 no fresh full sync after recovery, 31 not all
/// sites connected at the end, 32 unacked reliability entries at quiescence;
/// observability: 33 the anomaly detector never attributed an alert to
/// recovery.restores, 34 alerts sink unwritable.
[[noreturn]] void RecoveryProcessMain(int port, const std::string& dir,
                                      const std::string& beliefs_path,
                                      const std::string& summary_path,
                                      const std::string& alerts_path,
                                      std::uint64_t chaos_seed) {
  const L2Norm norm;
  FileCheckpointStore store(dir);
  // The online detector rides the recovery incarnation's per-cycle sample
  // stream: restoring from the checkpoint moves recovery.restores — a
  // zero-tolerance signal — so the regime shift must surface as an alert
  // on the restored incarnation's first completed cycle.
  Telemetry telemetry;
  telemetry.trace.SetProcess("coordinator");
  AnomalyDetectorConfig anomaly_config;
  anomaly_config.seed = chaos_seed;
  telemetry.EnableAnomalyDetection(anomaly_config);
  std::ofstream alerts_stream(alerts_path, std::ios::app);
  if (!alerts_stream) _exit(34);
  telemetry.anomaly->AttachStream(&alerts_stream);
  // Independent oracle read of what the dead incarnation durably committed,
  // taken before Recover() appends anything to the store.
  const Result<Reconstruction> committed = ReconstructCoordinatorState(store);
  if (!committed.ok()) _exit(10);
  const CoordinatorCheckpoint& state = committed.ValueOrDie().state;

  CoordinatorServerConfig config;
  config.port = port;  // the endpoint every surviving site keeps dialing
  config.num_sites = kSites;
  config.runtime = ProtocolConfig();
  config.runtime.checkpoint_store = &store;
  config.runtime.checkpoint_interval_cycles = kCheckpointInterval;
  config.runtime.telemetry = &telemetry;
  CoordinatorServer server(norm, config);
  if (!server.Listen()) _exit(11);
  if (!server.Recover()) _exit(12);

  if (server.Epoch() != state.epoch + 1) _exit(13);
  if (server.CyclesRun() - 1 != state.cycle) _exit(14);
  if (!(server.Estimate() == state.estimate)) _exit(15);
  if (server.FullSyncs() != state.full_syncs) _exit(16);
  if (server.BelievesAbove() != state.believes_above) _exit(17);

  if (!server.WaitForSites()) _exit(18);
  FILE* beliefs = std::fopen(beliefs_path.c_str(), "a");
  if (beliefs == nullptr) _exit(19);
  for (long cycle = server.CyclesRun(); cycle <= kCycles; ++cycle) {
    if (!server.RunCycle()) _exit(26);
    AppendBeliefLine(beliefs, cycle, server, norm);
  }

  FILE* summary = std::fopen(summary_path.c_str(), "w");
  if (summary != nullptr) {
    std::fprintf(summary,
                 "committed_epoch=%lld\nrecovered_epoch=%lld\n"
                 "committed_cycle=%ld\nfinal_cycle=%ld\n"
                 "committed_full_syncs=%ld\nfinal_full_syncs=%ld\n"
                 "site_disconnects=%ld\nsite_rehellos=%ld\n",
                 static_cast<long long>(state.epoch),
                 static_cast<long long>(server.Epoch()), state.cycle,
                 server.CyclesRun() - 1, state.full_syncs, server.FullSyncs(),
                 server.SiteDisconnects(), server.SiteRehellos());
    std::fclose(summary);
  }

  if (server.FullSyncs() <= state.full_syncs) _exit(30);
  if (server.ConnectedCount() != kSites) _exit(31);
  if (server.HasUnacked()) _exit(32);

  // Detector verdict: at least one alert, correctly attributed to the
  // restore counter (not merely any metric that happened to move).
  bool restore_attributed = false;
  for (const Alert& alert : telemetry.anomaly->alerts()) {
    if (alert.metric == "recovery.restores") restore_attributed = true;
  }
  if (!restore_attributed) _exit(33);

  server.Shutdown();
  _exit(0);
}

// ─── Straggler (SIGSTOP) leg ───────────────────────────────────────────────

constexpr long kStragglerCycles = 80;    // last cycle index of the leg
constexpr int kStragglerVictim = 1;      // the site the parent SIGSTOPs
constexpr long kStragglerPaceMs = 40;    // coordinator pacing per cycle
constexpr long kStragglerDeadlineMs = 300;  // soft barrier deadline

/// Deadline-driven coordinator for the SIGSTOP leg: paced cycles (so the
/// parent can stop/continue a site mid-run), a soft barrier deadline with
/// the per-peer bounded send queue, and end-of-run straggler invariants.
/// Exit codes: 60 bind failed, 61 port pipe failed, 62 hello timeout,
/// 63 belief log unwritable, 64 a cycle hit the HARD barrier timeout (the
/// stalled site blocked progress — the liveness property under test),
/// 65 no degraded cycle was recorded, 66 no lag quarantine was issued,
/// 67 a site is still quarantined at the end (no re-anchor), 68 not every
/// site connected at the end, 69 trace sink unwritable, 70 unacked
/// reliability entries at quiescence.
[[noreturn]] void StragglerCoordinatorMain(int port_pipe,
                                           const std::string& beliefs_path,
                                           const std::string& trace_path) {
  const L2Norm norm;
  Telemetry telemetry;
  telemetry.trace.SetProcess("coordinator");
  CoordinatorServerConfig config;
  config.num_sites = kSites;
  config.barrier_deadline_ms = kStragglerDeadlineMs;
  config.send_queue_frames = 1024;
  config.runtime = ProtocolConfig();
  config.runtime.telemetry = &telemetry;
  CoordinatorServer server(norm, config);
  if (!server.Listen()) _exit(60);
  const int port = server.port();
  if (::write(port_pipe, &port, sizeof(port)) !=
      static_cast<ssize_t>(sizeof(port))) {
    _exit(61);
  }
  ::close(port_pipe);
  if (!server.WaitForSites()) _exit(62);
  FILE* beliefs = std::fopen(beliefs_path.c_str(), "a");
  if (beliefs == nullptr) _exit(63);
  for (long cycle = 0; cycle <= kStragglerCycles; ++cycle) {
    // A false return is the 30 s hard backstop: with the soft deadline on,
    // reaching it means a stalled site DID block cycle progress.
    if (!server.RunCycle()) _exit(64);
    AppendBeliefLine(beliefs, cycle, server, norm);
    // Pace the schedule so the parent's SIGSTOP window spans many cycles.
    std::this_thread::sleep_for(std::chrono::milliseconds(kStragglerPaceMs));
  }
  const CoordinatorServer::Health health = server.GetHealth();
  if (health.degraded_cycles <= 0) _exit(65);
  if (health.lag_quarantines <= 0) _exit(66);
  if (health.lagging_sites != 0) _exit(67);
  if (server.ConnectedCount() != kSites) _exit(68);
  if (server.HasUnacked()) _exit(70);
  {
    std::ofstream out(trace_path);
    if (!out) _exit(69);
    telemetry.trace.WriteJsonl(out);
  }
  server.Shutdown();
  _exit(0);
}

/// Chaos-free site for the SIGSTOP leg; the victim's unresponsiveness is
/// inflicted externally by the parent. The victim writes its trace on clean
/// exit so the parent can merge both process timelines. Exit codes: 40
/// first connect gave up, 41 run ended dirty, 42 trace sink unwritable.
[[noreturn]] void StragglerSiteMain(int site_id, int port,
                                    const std::string& trace_path) {
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  Telemetry telemetry;
  telemetry.trace.SetProcess("site-" + std::to_string(site_id));
  SiteClientConfig config;
  config.site_id = site_id;
  config.num_sites = kSites;
  config.port = port;
  config.runtime = ProtocolConfig();
  if (!trace_path.empty()) config.runtime.telemetry = &telemetry;
  config.max_reconnects = 8;

  SiteClient client(norm, config);
  if (!client.Connect()) _exit(40);
  std::vector<Vector> locals;
  long advanced = 0;
  const bool clean = client.Run([&](long cycle) {
    while (advanced <= cycle) {
      generator.Advance(&locals);
      ++advanced;
    }
    return locals[site_id];
  });
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) _exit(42);
    telemetry.trace.WriteJsonl(out);
  }
  _exit(clean ? 0 : 41);
}

/// Counts complete (newline-terminated) lines of the belief log — the
/// parent's only window into how far the paced coordinator has progressed.
long CountBeliefLines(const std::string& path) {
  std::ifstream in(path);
  long lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

/// Polls the belief log until it holds at least `target` lines. Returns
/// false after ~60 s without progress to the target (deadlocked run).
bool AwaitBeliefLines(const std::string& path, long target) {
  for (int i = 0; i < 1200; ++i) {
    if (CountBeliefLines(path) >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// ─── Flight-recorder crash probe ───────────────────────────────────────────

/// Runs a short faultless runtime leg with the process-wide flight recorder
/// mirroring the trace, arms the fatal-signal dump and abort()s — the
/// abort-path equivalent of the SIGKILL deaths above (SIGKILL cannot be
/// caught, so the crash-dump contract is exercised on SIGABRT). The parent
/// asserts the dump parses and merges cleanly. Exit code 50: the leg
/// violated an invariant before the crash point.
[[noreturn]] void FlightProbeProcessMain(const std::string& dump_path,
                                         std::uint64_t chaos_seed) {
  Telemetry telemetry;
  telemetry.trace.SetProcess("flight-probe");
  FlightRecorder& ring = FlightRecorder::Instance();
  telemetry.trace.AttachFlightRecorder(&ring);
  ring.InstallCrashDump(dump_path);
  StressConfig stress;
  stress.seed = DeriveSeed(chaos_seed, 51);
  stress.num_sites = 8;
  stress.cycles = 15;  // the whole run fits in the ring: no torn-off spans
  stress.telemetry = &telemetry;
  if (!RunRuntimeStress(stress).ok()) _exit(50);
  std::abort();
}

// ─── The harness ───────────────────────────────────────────────────────────

struct BeliefRecord {
  bool above = false;
  long long epoch = 0;
  double estimate_value = 0.0;
};

/// Last-writer-wins per-cycle belief map: cycles between the last committed
/// checkpoint record and the crash are legitimately replayed by the
/// recovery incarnation, and its verdict is the deployment's final answer.
std::map<long, BeliefRecord> ReadBeliefLog(const std::string& path) {
  std::map<long, BeliefRecord> by_cycle;
  FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return by_cycle;
  long cycle = 0;
  int above = 0;
  long long epoch = 0;
  double estimate_value = 0.0;
  while (std::fscanf(file, "%ld %d %lld %lg", &cycle, &above, &epoch,
                     &estimate_value) == 4) {
    by_cycle[cycle] = BeliefRecord{above != 0, epoch, estimate_value};
  }
  std::fclose(file);
  return by_cycle;
}

TEST(ChaosIntegrationTest, KilledCoordinatorAndSiteRecoverUnderSeededChaos) {
  const std::uint64_t chaos_seed = SeedFromEnv();
  const std::string artifacts = ArtifactsDir();
  const std::string checkpoint_dir = artifacts + "/checkpoints";
  ASSERT_EQ(::mkdir(checkpoint_dir.c_str(), 0755), 0) << checkpoint_dir;
  const std::string beliefs_path = artifacts + "/beliefs.txt";
  const std::string summary_path = artifacts + "/recovery-summary.txt";
  const std::string alerts_path = artifacts + "/alerts.jsonl";
  std::printf("chaos seed %llu, artifacts in %s\n",
              static_cast<unsigned long long>(chaos_seed), artifacts.c_str());

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t coordinator = fork();
  ASSERT_GE(coordinator, 0);
  if (coordinator == 0) {
    ::close(port_pipe[0]);
    CoordinatorProcessMain(port_pipe[1], checkpoint_dir, beliefs_path);
  }
  ::close(port_pipe[1]);
  int port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(port_pipe[0]);
  ASSERT_GT(port, 0);

  std::vector<pid_t> sites(kSites);
  for (int id = 0; id < kSites; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      SiteProcessMain(id, port, chaos_seed,
                      id == kVictimSite ? kSiteKillCycle : -1);
    }
    sites[id] = pid;
  }

  // Fault 1: a site process dies by SIGKILL mid-cycle. The cycles keep
  // running against the shrunken membership; the replacement process joins
  // with the same site id (a re-hello), catches its deterministic stream up
  // and is re-anchored by the rejoin handshake.
  int status = 0;
  ASSERT_EQ(::waitpid(sites[kVictimSite], &status, 0), sites[kVictimSite]);
  ASSERT_TRUE(WIFSIGNALED(status)) << "victim site exited instead of dying";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  const pid_t replacement = fork();
  ASSERT_GE(replacement, 0);
  if (replacement == 0) {
    SiteProcessMain(kVictimSite, port, DeriveSeed(chaos_seed, 31), -1);
  }
  sites[kVictimSite] = replacement;

  // Fault 2: the coordinator crash-stops right after committing cycle 50.
  ASSERT_EQ(::waitpid(coordinator, &status, 0), coordinator);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "coordinator exited with code "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " before its crash point";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const pid_t recovery = fork();
  ASSERT_GE(recovery, 0);
  if (recovery == 0) {
    RecoveryProcessMain(port, checkpoint_dir, beliefs_path, summary_path,
                        alerts_path, chaos_seed);
  }
  ASSERT_EQ(::waitpid(recovery, &status, 0), recovery);
  ASSERT_TRUE(WIFEXITED(status)) << "recovery coordinator died by signal";
  ASSERT_EQ(WEXITSTATUS(status), 0)
      << "recovery-side invariant failed — code maps to the _exit table in "
         "RecoveryProcessMain; see " << summary_path;

  for (const pid_t pid : sites) {
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "site process died by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "site failed — code maps to the _exit table in SiteProcessMain";
  }

  // Anomaly artifact: the recovery incarnation's live alert stream names
  // the restore regime shift, and the file parses as JSONL with the fields
  // the runbook keys on.
  {
    std::ifstream alerts(alerts_path);
    ASSERT_TRUE(alerts.good()) << alerts_path;
    std::string line;
    bool restore_line = false;
    long alert_lines = 0;
    while (std::getline(alerts, line)) {
      if (line.empty()) continue;
      ++alert_lines;
      EXPECT_NE(line.find("\"cycle\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"kind\":"), std::string::npos) << line;
      if (line.find("\"metric\":\"recovery.restores\"") != std::string::npos) {
        restore_line = true;
      }
    }
    EXPECT_GE(alert_lines, 1L) << "detector stayed silent through a crash";
    EXPECT_TRUE(restore_line)
        << "no alert attributed to recovery.restores in " << alerts_path;
  }

  // Flight-recorder crash contract: a process that dies mid-run leaves a
  // postmortem dump. SIGKILL is uncatchable, so the probe dies the
  // abort-path way; the dump must validate line by line and merge into a
  // span forest with zero orphans attributable to the dump (the probe's
  // whole run fits inside the ring, so every parent span is in the window).
  {
    const std::string dump_path = artifacts + "/flight-abort.jsonl";
    std::remove(dump_path.c_str());
    const pid_t probe = fork();
    ASSERT_GE(probe, 0);
    if (probe == 0) {
      FlightProbeProcessMain(dump_path, chaos_seed);
    }
    ASSERT_EQ(::waitpid(probe, &status, 0), probe);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "flight probe exited with code "
        << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
        << " instead of crashing";
    EXPECT_EQ(WTERMSIG(status), SIGABRT);

    std::vector<TraceEvent> dumped;
    std::string warning;
    const Status loaded = LoadTraceJsonlTolerant(
        dump_path, "flight-probe", /*validate=*/true, &dumped, &warning);
    ASSERT_TRUE(loaded.ok()) << loaded.message();
    EXPECT_TRUE(warning.empty()) << warning;
    ASSERT_FALSE(dumped.empty()) << "crash dump is empty: " << dump_path;
    const SpanForestSummary forest =
        SummarizeSpanForest(MergeTraceTimelines({std::move(dumped)}));
    EXPECT_GT(forest.spans, 0L) << "dump window carries no cascade spans";
    EXPECT_TRUE(forest.orphans.empty())
        << "crash dump introduced orphan spans: " << forest.orphans.front();
  }

  // Every cycle of the schedule has a final verdict despite both crashes.
  const std::map<long, BeliefRecord> beliefs = ReadBeliefLog(beliefs_path);
  ASSERT_EQ(beliefs.size(), static_cast<std::size_t>(kCycles) + 1);
  ASSERT_EQ(beliefs.begin()->first, 0);
  ASSERT_EQ(beliefs.rbegin()->first, kCycles);

  // Accuracy gate: audit the stitched belief stream against the
  // generator-derived ground truth. The ε zone is a fixed third of the
  // threshold — wide enough to forgive transient lag around a crossing,
  // narrow enough that the workload's peaks (global norm ≈ 5) put a solid
  // block of cycles out of zone above the surface, where a missed detection
  // is a genuine FN. The self-correction horizon mirrors the stress
  // harness's coordinator-crash legs. The paper's δ bounds the out-of-zone
  // FN rate; chaos is allowed to add at most one extra missed cycle per
  // hundred.
  const RuntimeConfig protocol = ProtocolConfig();
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  AccuracyAuditorConfig audit;
  audit.epsilon = protocol.threshold / 3.0;
  audit.max_out_of_zone_run = 200;
  long out_of_zone_above = 0;
  AccuracyAuditor auditor(audit);
  std::vector<Vector> locals;
  for (long cycle = 0; cycle <= kCycles; ++cycle) {
    generator.Advance(&locals);
    Vector global(locals[0].dim());
    for (const Vector& local : locals) global += local;
    global /= static_cast<double>(kSites);
    const double truth_value = norm.Value(global);
    const BeliefRecord& record = beliefs.at(cycle);
    AccuracyAuditor::CycleSample sample;
    sample.cycle = cycle;
    sample.believed_above = record.above;
    sample.truth_above = truth_value > protocol.threshold;
    sample.estimate_value = record.estimate_value;
    sample.truth_value = truth_value;
    sample.surface_distance =
        norm.DistanceToSurface(global, protocol.threshold);
    if (sample.truth_above && sample.surface_distance > audit.epsilon) {
      ++out_of_zone_above;
    }
    auditor.ObserveCycle(sample);
  }
  const AccuracyAuditor::Report& report = auditor.report();
  EXPECT_GT(report.true_positives + report.false_negatives, 0L)
      << "the workload never crossed the threshold — the audit is vacuous";
  EXPECT_GT(out_of_zone_above, 10L)
      << "almost no cycle sits clearly above the surface — the FN gate "
         "judges nothing";
  EXPECT_LE(report.fn_rate(), protocol.delta + 0.01)
      << "missed detections beyond the paper's failure allowance: "
      << report.out_of_zone_false_negatives << " out-of-zone FNs over "
      << report.cycles << " cycles";
  EXPECT_EQ(report.bound_violations, 0L)
      << "an out-of-zone disagreement run outlived the self-correction "
         "horizon";
  std::printf(
      "audit: cycles=%ld TP=%ld TN=%ld FP=%ld FN=%ld oz-FN=%ld "
      "fn-rate=%.4f max-err=%.4f\n",
      report.cycles, report.true_positives, report.true_negatives,
      report.false_positives, report.false_negatives,
      report.out_of_zone_false_negatives, report.fn_rate(),
      report.max_abs_error);
}

TEST(ChaosIntegrationTest, SigstoppedSiteIsQuarantinedNotBlocking) {
  const std::uint64_t chaos_seed = SeedFromEnv();
  const std::string artifacts = ArtifactsDir();
  const std::string beliefs_path = artifacts + "/straggler-beliefs.txt";
  const std::string coord_trace = artifacts + "/straggler-coordinator.jsonl";
  const std::string victim_trace = artifacts + "/straggler-victim.jsonl";
  std::remove(beliefs_path.c_str());
  std::printf("straggler leg: chaos seed %llu, artifacts in %s\n",
              static_cast<unsigned long long>(chaos_seed), artifacts.c_str());

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t coordinator = fork();
  ASSERT_GE(coordinator, 0);
  if (coordinator == 0) {
    ::close(port_pipe[0]);
    StragglerCoordinatorMain(port_pipe[1], beliefs_path, coord_trace);
  }
  ::close(port_pipe[1]);
  int port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(port_pipe[0]);
  ASSERT_GT(port, 0);

  std::vector<pid_t> sites(kSites);
  for (int id = 0; id < kSites; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      StragglerSiteMain(id, port,
                        id == kStragglerVictim ? victim_trace : std::string());
    }
    sites[id] = pid;
  }

  // Let the deployment settle into steady cycles, then freeze the victim
  // process outright — the purest straggler: the TCP session stays up, the
  // process just stops scheduling.
  ASSERT_TRUE(AwaitBeliefLines(beliefs_path, 15))
      << "coordinator never reached cycle 15";
  ASSERT_EQ(::kill(sites[kStragglerVictim], SIGSTOP), 0);

  // Liveness under a stopped site: the deadline-driven barrier must keep
  // closing cycles over the responsive quorum. 40 further cycles against a
  // frozen peer complete only if no send and no barrier wait ever blocks on
  // it (the 60 s polling budget is far below 40 × the 30 s hard timeout).
  ASSERT_TRUE(AwaitBeliefLines(beliefs_path, 55))
      << "cycle progress stalled while a site was SIGSTOPed — the stalled "
         "peer blocked the coordinator";
  ASSERT_EQ(::kill(sites[kStragglerVictim], SIGCONT), 0);

  // The coordinator's end-of-run _exit codes assert the rest: degraded
  // cycles recorded (65), a lag quarantine issued (66), the quarantine
  // lifted again (67), all sites connected (68), reliability quiesced (70).
  int status = 0;
  ASSERT_EQ(::waitpid(coordinator, &status, 0), coordinator);
  ASSERT_TRUE(WIFEXITED(status)) << "straggler coordinator died by signal";
  ASSERT_EQ(WEXITSTATUS(status), 0)
      << "coordinator-side invariant failed — code maps to the _exit table "
         "in StragglerCoordinatorMain";
  for (const pid_t pid : sites) {
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "site process died by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "site failed — code maps to the _exit table in StragglerSiteMain";
  }

  // Complete verdict stream: the quarantined cycles still produced beliefs.
  const std::map<long, BeliefRecord> beliefs = ReadBeliefLog(beliefs_path);
  ASSERT_EQ(beliefs.size(), static_cast<std::size_t>(kStragglerCycles) + 1);

  // Bounded-staleness accuracy gate: the audited out-of-zone FN rate over
  // the whole run — quarantined quorum cycles included — stays within the
  // paper's δ plus the same +0.01 chaos allowance as the crash leg.
  const RuntimeConfig protocol = ProtocolConfig();
  SyntheticDriftGenerator generator(GeneratorConfig());
  const L2Norm norm;
  AccuracyAuditorConfig audit;
  audit.epsilon = protocol.threshold / 3.0;
  audit.max_out_of_zone_run = 200;
  AccuracyAuditor auditor(audit);
  std::vector<Vector> locals;
  for (long cycle = 0; cycle <= kStragglerCycles; ++cycle) {
    generator.Advance(&locals);
    Vector global(locals[0].dim());
    for (const Vector& local : locals) global += local;
    global /= static_cast<double>(kSites);
    const double truth_value = norm.Value(global);
    const BeliefRecord& record = beliefs.at(cycle);
    AccuracyAuditor::CycleSample sample;
    sample.cycle = cycle;
    sample.believed_above = record.above;
    sample.truth_above = truth_value > protocol.threshold;
    sample.estimate_value = record.estimate_value;
    sample.truth_value = truth_value;
    sample.surface_distance =
        norm.DistanceToSurface(global, protocol.threshold);
    auditor.ObserveCycle(sample);
  }
  const AccuracyAuditor::Report& report = auditor.report();
  EXPECT_LE(report.fn_rate(), protocol.delta + 0.01)
      << "degraded cycles pushed missed detections beyond the failure "
         "allowance: " << report.out_of_zone_false_negatives
      << " out-of-zone FNs over " << report.cycles << " cycles";
  EXPECT_EQ(report.bound_violations, 0L);

  // Both process timelines merge into one span forest with no orphans: the
  // quarantine and re-anchor cascades are fully parented — no span was torn
  // by the stop/continue or the degraded barrier closes.
  std::vector<std::vector<TraceEvent>> timelines;
  for (const auto& entry :
       {std::make_pair(coord_trace, std::string("coordinator")),
        std::make_pair(victim_trace, std::string("site-1"))}) {
    std::vector<TraceEvent> events;
    std::string warning;
    const Status loaded = LoadTraceJsonlTolerant(
        entry.first, entry.second, /*validate=*/true, &events, &warning);
    ASSERT_TRUE(loaded.ok()) << entry.first << ": " << loaded.message();
    EXPECT_TRUE(warning.empty()) << warning;
    timelines.push_back(std::move(events));
  }
  const SpanForestSummary forest =
      SummarizeSpanForest(MergeTraceTimelines(std::move(timelines)));
  EXPECT_GT(forest.spans, 0L);
  EXPECT_TRUE(forest.orphans.empty())
      << "straggler run produced orphan spans: " << forest.orphans.front();
  std::printf(
      "straggler audit: cycles=%ld FN=%ld oz-FN=%ld fn-rate=%.4f spans=%ld\n",
      report.cycles, report.false_negatives,
      report.out_of_zone_false_negatives, report.fn_rate(), forest.spans);
}

}  // namespace
}  // namespace sgm
