// Tests of the seeded network-chaos layer (src/runtime/chaos): the fault
// schedule must be a pure function of (seed, send index), the spacing gate
// must bound fault density without shifting the random stream, and every
// triggering message must still reach the transport below (so the write
// failure — not a silent drop — is what the runtime observes).

#include <gtest/gtest.h>

#include <vector>

#include "runtime/chaos.h"
#include "runtime/transport.h"

namespace sgm {
namespace {

/// Transport stub that records every message reaching the layer below.
class RecordingTransport final : public Transport {
 public:
  void Send(const RuntimeMessage& message) override {
    sent_.push_back(message);
  }
  const std::vector<RuntimeMessage>& sent() const { return sent_; }

 private:
  std::vector<RuntimeMessage> sent_;
};

RuntimeMessage Heartbeat(int from) {
  RuntimeMessage message;
  message.type = RuntimeMessage::Type::kHeartbeat;
  message.from = from;
  message.to = kCoordinatorId;
  return message;
}

/// Runs `sends` messages through a fresh chaos layer and returns the send
/// indices (1-based) at which each fault class fired.
struct FaultSchedule {
  std::vector<long> resets;
  std::vector<long> half_opens;
  long stalls = 0;
  long forwarded = 0;
};

FaultSchedule RunSchedule(const ChaosInjectionConfig& config, long sends) {
  RecordingTransport below;
  ChaosSocketTransport chaos(&below, config);
  FaultSchedule schedule;
  long index = 0;
  chaos.SetFaultHooks(
      [&] { schedule.resets.push_back(index); },
      [&] { schedule.half_opens.push_back(index); });
  for (index = 1; index <= sends; ++index) chaos.Send(Heartbeat(0));
  schedule.stalls = chaos.stalls_injected();
  schedule.forwarded = static_cast<long>(below.sent().size());
  return schedule;
}

TEST(ChaosTest, DisabledByDefault) {
  EXPECT_FALSE(ChaosInjectionConfig{}.enabled());
  ChaosInjectionConfig reset_only;
  reset_only.reset_probability = 0.01;
  EXPECT_TRUE(reset_only.enabled());
}

TEST(ChaosTest, SameSeedReproducesTheExactFaultSchedule) {
  ChaosInjectionConfig config;
  config.seed = 42;
  config.reset_probability = 0.05;
  config.half_open_probability = 0.03;
  config.stall_probability = 0.08;
  config.stall_ms = 0;  // keep the test fast
  const FaultSchedule a = RunSchedule(config, 2000);
  const FaultSchedule b = RunSchedule(config, 2000);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.half_opens, b.half_opens);
  EXPECT_EQ(a.stalls, b.stalls);
  ASSERT_FALSE(a.resets.empty()) << "schedule never fired — retune p";

  config.seed = 43;
  const FaultSchedule c = RunSchedule(config, 2000);
  EXPECT_NE(a.resets, c.resets) << "different seeds, same schedule";
}

TEST(ChaosTest, SpacingGateBoundsFaultDensityExactly) {
  // With p(reset)=1 every send *wants* a fault; the gate admits one per
  // min_sends_between_faults+1 sends (the draw stream keeps moving, only
  // the effects are masked).
  ChaosInjectionConfig config;
  config.reset_probability = 1.0;
  config.min_sends_between_faults = 4;
  const long sends = 3 * 5;  // three full gate windows
  const FaultSchedule schedule = RunSchedule(config, sends);
  ASSERT_EQ(schedule.resets.size(), 3u);
  EXPECT_EQ(schedule.resets[0], 1);  // gate starts open
  EXPECT_EQ(schedule.resets[1], 6);
  EXPECT_EQ(schedule.resets[2], 11);
}

TEST(ChaosTest, ResetOutranksHalfOpenOutranksStall) {
  ChaosInjectionConfig config;
  config.reset_probability = 1.0;
  config.half_open_probability = 1.0;
  config.stall_probability = 1.0;
  config.stall_ms = 0;
  config.min_sends_between_faults = 1;
  const FaultSchedule schedule = RunSchedule(config, 100);
  EXPECT_GT(schedule.resets.size(), 0u);
  EXPECT_EQ(schedule.half_opens.size(), 0u);
  EXPECT_EQ(schedule.stalls, 0);
}

TEST(ChaosTest, EveryMessageReachesTheTransportBelow) {
  // Faults break connections; they never eat messages. The triggering
  // message is forwarded into the broken connection so the *write failure*
  // is what the caller sees — the real failure path, not a simulated one.
  ChaosInjectionConfig config;
  config.seed = 7;
  config.reset_probability = 0.2;
  config.half_open_probability = 0.2;
  config.min_sends_between_faults = 2;
  const FaultSchedule schedule = RunSchedule(config, 500);
  EXPECT_EQ(schedule.forwarded, 500);
}

TEST(ChaosTest, GateMasksEffectsWithoutShiftingTheDrawStream) {
  // The gate filters fault *effects*; it never re-rolls. Replicating the
  // layer's draw stream (one reset/stall/half-open Bernoulli triple per
  // send, in that order) must therefore predict every index a gated
  // schedule fires at: each one is a "wanted" reset in the raw stream.
  ChaosInjectionConfig config;
  config.seed = 11;
  config.reset_probability = 0.10;
  config.stall_probability = 0.05;
  config.stall_ms = 0;
  config.half_open_probability = 0.05;
  config.min_sends_between_faults = 25;
  const long sends = 1500;

  Rng replica(config.seed);
  std::vector<bool> wanted_reset(static_cast<std::size_t>(sends) + 1, false);
  for (long i = 1; i <= sends; ++i) {
    wanted_reset[static_cast<std::size_t>(i)] =
        replica.NextBernoulli(config.reset_probability);
    replica.NextBernoulli(config.stall_probability);
    replica.NextBernoulli(config.half_open_probability);
  }

  const FaultSchedule schedule = RunSchedule(config, sends);
  ASSERT_FALSE(schedule.resets.empty());
  for (const long index : schedule.resets) {
    EXPECT_TRUE(wanted_reset[static_cast<std::size_t>(index)])
        << "fault at send " << index
        << " has no matching draw — the gate shifted the stream";
  }
}

}  // namespace
}  // namespace sgm
